#!/usr/bin/env python3
"""Compare two BENCH_*.json files and report per-metric regressions.

Usage:
    scripts/bench_diff.py OLD.json NEW.json [--threshold 0.10]
                          [--fail-on-regression] [--fail-below RATIO]

The JSON layout is what bench/perf_suite.cpp emits:

    {"bench": "...", "schema": 1, "metrics": {"name": value, ...}}

Direction is inferred from the metric name:
  - *_per_sec            higher is better (throughput)
  - *_sec, *_ms          lower is better (durations)
  - anything else        lower is better (objective/quality values)

Only metrics present in BOTH files are compared; metrics only in the new
run are reported as NEW (informational, with their value — the normal
shape of an axis-adding PR), metrics only in the baseline as removed.
--fail-below and --fail-on-regression apply ONLY to the common keys: a NEW
metric can never fail the gate until a baseline records it. A change worse
than --threshold (fractional,
default 0.10 = 10%) is flagged as a regression; with --fail-on-regression
the script exits 1 when any metric regressed, which is how a gating CI job
would use it (the default perf-smoke job is informational and ignores the
exit code).

--fail-below RATIO is the coarse safety net for noisy shared runners: the
exit code turns 1 only when some metric is worse than the baseline by more
than RATIO (e.g. --fail-below 0.5 tolerates run-to-run noise but trips on a
genuine 2x slowdown). It is independent of --threshold, which only controls
reporting. The CI perf-smoke job passes --fail-below non-blockingly today
(continue-on-error) so the signal exists before the job ever gates.
"""

import argparse
import json
import sys


def higher_is_better(name: str) -> bool:
    return name.split("/")[0].endswith("_per_sec")


def load_metrics(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        sys.exit(f"{path}: no 'metrics' object found")
    return metrics


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Report per-metric regressions between two bench JSONs.")
    parser.add_argument("old", help="baseline BENCH_*.json")
    parser.add_argument("new", help="candidate BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="fractional regression threshold (default 0.10)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 if any metric regressed past threshold")
    parser.add_argument("--fail-below", type=float, default=None,
                        metavar="RATIO",
                        help="exit 1 if any metric is worse than baseline by "
                             "more than RATIO (fraction, e.g. 0.5); "
                             "independent of --threshold reporting")
    args = parser.parse_args()

    old = load_metrics(args.old)
    new = load_metrics(args.new)
    shared = [k for k in old if k in new]
    added = sorted(set(new) - set(old))
    removed = sorted(set(old) - set(new))
    if not shared:
        print("no overlapping metrics between the two files")
        for name in added:
            print(f"{name}  {new[name]:.6g}  NEW")
        for name in removed:
            print(f"{name}  (removed)")
        return 0

    width = max(len(k) for k in shared + added + removed)
    regressions = []
    hard_regressions = []
    print(f"{'metric':<{width}}  {'old':>12}  {'new':>12}  {'change':>8}  note")
    for name in shared:
        o, n = old[name], new[name]
        if o == 0:
            change = float("inf") if n != 0 else 0.0
        else:
            change = (n - o) / abs(o)
        better = change > 0 if higher_is_better(name) else change < 0
        worse_by = -change if higher_is_better(name) else change
        note = ""
        if worse_by > args.threshold:
            note = "REGRESSED"
            regressions.append(name)
        elif better and abs(change) > args.threshold:
            note = "improved"
        if args.fail_below is not None and worse_by > args.fail_below:
            hard_regressions.append(name)
        print(f"{name:<{width}}  {o:>12.6g}  {n:>12.6g}  {change:>+7.1%}  {note}")

    for name in removed:
        print(f"{name:<{width}}  {'(removed)':>12}")
    # New-run-only metrics are informational: shown with their value so an
    # axis-adding PR's numbers land in the log, never gated on (--fail-below
    # and --fail-on-regression act on the shared keys above only).
    for name in added:
        print(f"{name:<{width}}  {'':>12}  {new[name]:>12.6g}  {'':>8}  NEW")
    if added:
        print(f"{len(added)} NEW metric(s) not in baseline (informational)")

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed past "
              f"{args.threshold:.0%}: " + ", ".join(regressions))
    else:
        print(f"\nno regressions past {args.threshold:.0%}")
    if hard_regressions:
        print(f"{len(hard_regressions)} metric(s) worse than baseline by "
              f"more than {args.fail_below:.0%}: "
              + ", ".join(hard_regressions))
        return 1
    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
