// ffp_part — command-line graph partitioner over the full method registry.
//
//   ffp_part --graph mesh.graph --k 32 --method "Fusion Fission" \
//            --objective mcut --budget-ms 5000 --out mesh.part
//
// Reads Chaco/METIS graphs (the Walshaw benchmark format), runs any Table-1
// method, prints all criteria, and writes a partition file. With
// --graph atc:<seed> it uses the synthetic core-area instance instead of a
// file; with --list it prints the available methods.
#include <cstdio>
#include <string>

#include "atc/core_area.hpp"
#include "benchlib/methods.hpp"
#include "graph/io.hpp"
#include "partition/balance.hpp"
#include "partition/report.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

ffp::ObjectiveKind parse_objective(const std::string& name) {
  if (name == "cut") return ffp::ObjectiveKind::Cut;
  if (name == "ncut") return ffp::ObjectiveKind::NormalizedCut;
  if (name == "mcut") return ffp::ObjectiveKind::MinMaxCut;
  if (name == "rcut") return ffp::ObjectiveKind::RatioCut;
  throw ffp::Error("unknown objective '" + name +
                   "' (expected cut|ncut|mcut|rcut)");
}

}  // namespace

int main(int argc, char** argv) {
  ffp::ArgParser args;
  args.flag("graph", "atc:2006", "Chaco/METIS file, or atc:<seed>")
      .flag("k", "32", "number of parts")
      .flag("method", "Fusion Fission", "method name from Table 1")
      .flag("objective", "mcut", "metaheuristic criterion: cut|ncut|mcut|rcut")
      .flag("budget-ms", "5000", "metaheuristic wall-clock budget")
      .flag("seed", "2006", "random seed")
      .flag("out", "", "partition output file (optional)")
      .toggle("report", "print the full per-part report")
      .toggle("list", "list available methods and exit")
      .toggle("help", "show this help");
  try {
    args.parse(argc, argv);
  } catch (const ffp::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (args.get_bool("help")) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }

  const auto methods = ffp::table1_methods();
  if (args.get_bool("list")) {
    for (const auto& m : methods) {
      std::printf("%-26s %s\n", m.name.c_str(),
                  m.is_metaheuristic ? "(metaheuristic, budgeted)"
                                     : "(deterministic)");
    }
    return 0;
  }

  try {
    const std::string spec = args.get("graph");
    ffp::Graph graph;
    if (ffp::starts_with(spec, "atc:")) {
      ffp::CoreAreaOptions opt;
      const auto seed = ffp::parse_int(std::string_view(spec).substr(4));
      FFP_CHECK(seed.has_value(), "bad atc spec: ", spec);
      opt.seed = static_cast<std::uint64_t>(*seed);
      graph = ffp::make_core_area_graph(opt).graph;
    } else {
      graph = ffp::read_chaco_file(spec);
    }
    std::printf("graph: %s\n", graph.summary().c_str());

    ffp::MethodContext ctx;
    ctx.k = static_cast<int>(args.get_int("k"));
    ctx.objective = parse_objective(args.get("objective"));
    ctx.budget_ms = args.get_double("budget-ms");
    ctx.seed = static_cast<std::uint64_t>(args.get_int("seed"));

    const auto& method = ffp::method_by_name(methods, args.get("method"));
    std::printf("method: %s  k=%d%s\n", method.name.c_str(), ctx.k,
                method.is_metaheuristic
                    ? (" budget=" + std::to_string(ctx.budget_ms) + "ms")
                          .c_str()
                    : "");
    ffp::WallTimer timer;
    const auto p = method.run(graph, ctx);
    const double seconds = timer.elapsed_seconds();

    std::printf("\n  Cut       = %14.1f\n",
                ffp::objective(ffp::ObjectiveKind::Cut).evaluate(p));
    std::printf("  Ncut      = %14.3f\n",
                ffp::objective(ffp::ObjectiveKind::NormalizedCut).evaluate(p));
    std::printf("  Mcut      = %14.3f\n",
                ffp::objective(ffp::ObjectiveKind::MinMaxCut).evaluate(p));
    std::printf("  RatioCut  = %14.3f\n",
                ffp::objective(ffp::ObjectiveKind::RatioCut).evaluate(p));
    std::printf("  edge cut  = %14.1f (each edge once)\n", p.edge_cut());
    std::printf("  imbalance = %14.3f\n", ffp::imbalance(p, ctx.k));
    std::printf("  parts     = %14d\n", p.num_nonempty_parts());
    std::printf("  time      = %14.2fs\n", seconds);

    if (args.get_bool("report")) {
      std::printf("\n%s", ffp::analyze(p).to_string().c_str());
    }

    const std::string out = args.get("out");
    if (!out.empty()) {
      ffp::write_partition_file(p.assignment(), out);
      std::printf("\npartition written to %s\n", out.c_str());
    }
  } catch (const ffp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
