// ffp_part — command-line graph partitioner over the ffp::api facade.
//
//   ffp_part --graph mesh.graph --k 32 --method "Fusion Fission"
//            --objective mcut --budget-ms 5000 --out mesh.part
//
// Reads Chaco/METIS graphs (the Walshaw benchmark format) and runs any
// solver, named either by its Table-1 row label ("Spectral (RQI, Oct, KL)")
// or by a raw registry spec ("spectral:engine=rqi,arity=oct,kl=true").
// --graph also accepts any generator spec (api::Problem::generated):
// atc:<seed>, grid2d:64,64, geometric:1000,0.055,3, ... With --list it
// prints the available methods and solvers.
//
// --threads T parallelizes. With --restarts N it fans N independently
// seeded runs across T portfolio workers and keeps the best; with a single
// restart it goes to the solver itself — fusion-fission runs its batched
// intra-run engine on T speculation workers (the two levels never share a
// pool). Either way the result is bit-identical for a fixed seed
// regardless of thread count: whenever parallelism is requested,
// metaheuristics run under a deterministic *step* budget derived from
// --budget-ms (override with --steps) — the rule lives in
// api::SolveSpec::resolved_steps(), shared with the daemon, the benches
// and every embedder.
#include <cstdio>
#include <string>

#include "benchlib/methods.hpp"
#include "ffp/api.hpp"
#include "graph/io.hpp"
#include "partition/balance.hpp"
#include "partition/report.hpp"
#include "service/thread_budget.hpp"
#include "solver/registry.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"

namespace {

ffp::ObjectiveKind parse_objective(const std::string& name) {
  const auto kind = ffp::objective_from_name(name);
  if (!kind) {
    throw ffp::Error("unknown objective '" + name +
                     "' (expected cut|ncut|mcut|rcut)");
  }
  return *kind;
}

/// --method accepts a Table-1 row label or a registry spec; either way the
/// SolveSpec carries a registry spec string.
std::string resolve_method_spec(const std::string& method) {
  const std::string trimmed(ffp::trim(method));
  if (trimmed.find(':') != std::string::npos) {
    // Has options → it can only be a registry spec; submission surfaces
    // the registry's errors (unknown solver + available list, bad keys).
    return trimmed;
  }
  try {
    return ffp::table1_spec(trimmed);
  } catch (const ffp::Error&) {
    // Not a Table-1 label; registry name, or the registry's richer error.
    return trimmed;
  }
}

void list_methods() {
  std::printf("Table-1 rows (--method accepts the label):\n");
  for (const auto& m : ffp::table1_methods()) {
    std::printf("  %-26s -> %s\n", m.name.c_str(), m.solver_spec.c_str());
  }
  std::printf("\nregistry solvers (--method accepts "
              "\"name:key=value,key=value\"):\n");
  const auto& reg = ffp::SolverRegistry::builtin();
  for (const auto& name : reg.names()) {
    std::printf("  %-16s %s\n", name.c_str(), reg.help(name).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  ffp::ArgParser args;
  args.flag("graph", "atc:2006", "Chaco/METIS file, or a generator spec "
                                 "(atc:<seed>, grid2d:64,64, ...)")
      .flag("k", "32", "number of parts")
      .flag("method", "Fusion Fission", "Table-1 label or registry spec")
      .flag("objective", "mcut", "metaheuristic criterion: cut|ncut|mcut|rcut")
      .flag("budget-ms", "5000", "metaheuristic wall-clock budget")
      .flag("steps", "0", "metaheuristic step budget (0 = derive from budget)")
      .flag("restarts", "1", "portfolio restarts (parallel multi-start)")
      .flag("threads", "0",
            "process-wide worker budget. All levels lease from it: with "
            "--restarts R the portfolio takes min(R, budget) restart "
            "workers and each restart's intra-run engine leases whatever "
            "remains, so restarts x engine threads never exceeds the "
            "budget (total workers <= --threads, not R x T). 0 = hardware "
            "concurrency for the portfolio, serial engine otherwise")
      .flag("seed", "2006", "random seed")
      .flag("out", "", "partition output file (optional)")
      .toggle("report", "print the full per-part report")
      .toggle("list", "list available methods and exit")
      .toggle("help", "show this help");
  try {
    args.parse(argc, argv);
  } catch (const ffp::Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (args.get_bool("help")) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  if (args.get_bool("list")) {
    list_methods();
    return 0;
  }

  try {
    const ffp::api::Problem problem =
        ffp::api::Problem::from_any(args.get("graph"));
    std::printf("graph: %s\n", problem.graph().summary().c_str());

    const std::int64_t threads_arg = args.get_int("threads");
    FFP_CHECK(threads_arg >= 0, "--threads must be >= 0");

    // Both parallelism levels lease from one process-wide budget sized by
    // --threads: the portfolio takes its restart workers first, and each
    // restart's intra-run engine leases what remains — so the old R×T
    // oversubscription (restarts × speculation workers) cannot happen.
    // The partition is budget-independent: engine schedules are fixed by
    // the request, and leases only decide where the work runs.
    ffp::ThreadBudget::set_process_total(
        static_cast<unsigned>(threads_arg));

    ffp::api::SolveSpec spec;
    spec.method = resolve_method_spec(args.get("method"));
    spec.k = static_cast<int>(args.get_int("k"));
    spec.objective = parse_objective(args.get("objective"));
    spec.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    spec.steps = args.get_int("steps");
    spec.budget_ms = args.get_double("budget-ms");
    spec.restarts = static_cast<int>(args.get_int("restarts"));
    spec.threads = static_cast<unsigned>(threads_arg);
    FFP_CHECK(spec.restarts >= 1, "--restarts must be >= 1");

    const ffp::api::ResolvedSpec resolved = spec.resolve();
    const std::int64_t steps = resolved.steps;
    std::printf("method: %s  k=%d", args.get("method").c_str(), spec.k);
    if (resolved.metaheuristic) {
      if (steps > 0) {
        std::printf("  steps=%lld", static_cast<long long>(steps));
      } else {
        std::printf("  budget=%.0fms", spec.budget_ms);
      }
    }
    if (spec.restarts > 1) std::printf("  restarts=%d", spec.restarts);
    std::printf("\n");

    ffp::api::Engine engine;  // one runner over the process budget
    const ffp::SolverResult result = engine.solve(problem, spec);
    const auto& p = result.best;

    std::printf("\n  Cut       = %14.1f\n",
                ffp::objective(ffp::ObjectiveKind::Cut).evaluate(p));
    std::printf("  Ncut      = %14.3f\n",
                ffp::objective(ffp::ObjectiveKind::NormalizedCut).evaluate(p));
    std::printf("  Mcut      = %14.3f\n",
                ffp::objective(ffp::ObjectiveKind::MinMaxCut).evaluate(p));
    std::printf("  RatioCut  = %14.3f\n",
                ffp::objective(ffp::ObjectiveKind::RatioCut).evaluate(p));
    std::printf("  edge cut  = %14.1f (each edge once)\n", p.edge_cut());
    std::printf("  imbalance = %14.3f\n", ffp::imbalance(p, spec.k));
    std::printf("  parts     = %14d\n", p.num_nonempty_parts());
    std::printf("  time      = %14.2fs\n", result.seconds);
    for (const auto& [stat, value] : result.stats) {
      std::printf("  %-9s = %14.0f\n", stat.c_str(), value);
    }

    if (args.get_bool("report")) {
      std::printf("\n%s", ffp::analyze(p).to_string().c_str());
    }

    const std::string out = args.get("out");
    if (!out.empty()) {
      ffp::write_partition_file(p.assignment(), out);
      std::printf("\npartition written to %s\n", out.c_str());
    }
  } catch (const ffp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
