// ffp_serve — the partitioning service daemon.
//
//   ffp_serve --listen 17917 --runners 2 --budget 8 --stream
//   ffp_serve < requests.jsonl > responses.jsonl        # pipe mode
//
// Speaks the line-delimited JSON protocol (src/service/protocol.hpp):
// submit / status / cancel / result / shutdown in, ack / status / result /
// progress / error events out. Without --listen it serves exactly one
// session over stdin/stdout — the zero-config mode scripts and tests pipe
// into. With --listen it binds 127.0.0.1:<port> (0 picks an ephemeral
// port, printed on stderr) and serves connections one at a time, each with
// a fresh session, until a client sends {"op":"shutdown"}.
//
// Concurrency model: --runners jobs execute at once, and every solve
// leases its workers from the process-wide ThreadBudget capped by
// --budget — so runners × per-job threads can never exceed the budget no
// matter what clients ask for. Input is untrusted: requests are strictly
// validated, graph files go through the hardened readers under
// --max-vertices/--max-edges, and --no-files restricts submissions to
// inline graphs.
#include <cstdio>
#include <iostream>
#include <string>

#include "service/net.hpp"
#include "service/service.hpp"
#include "service/thread_budget.hpp"
#include "util/args.hpp"

namespace {

ffp::ServiceOptions session_options(const ffp::ArgParser& args) {
  ffp::ServiceOptions options;
  options.runners = static_cast<unsigned>(args.get_int("runners"));
  options.stream_progress = args.get_bool("stream");
  options.allow_files = !args.get_bool("no-files");
  options.limits.graph.max_vertices = args.get_int("max-vertices");
  options.limits.graph.max_edges = args.get_int("max-edges");
  FFP_CHECK(options.limits.graph.max_vertices >= 0,
            "--max-vertices must be >= 0");
  FFP_CHECK(options.limits.graph.max_edges >= 0, "--max-edges must be >= 0");
  return options;
}

/// One session over stdin/stdout. Returns when the client shuts down or
/// the pipe closes.
void serve_stdio(const ffp::ArgParser& args) {
  ffp::ServiceSession session(session_options(args), [](const std::string& line) {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);  // clients poll line by line; never buffer
  });
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!session.handle_line(line)) return;
  }
  // EOF without shutdown: finish what was accepted so piped batch runs
  // (generate requests | ffp_serve > responses) still get their results.
  session.drain();
}

/// TCP accept loop: one connection at a time, fresh session each, until a
/// session ends with shutdown.
int serve_tcp(const ffp::ArgParser& args, int port) {
  int bound = 0;
  ffp::FdHandle listener = ffp::tcp_listen(port, &bound);
  std::fprintf(stderr, "ffp_serve: listening on 127.0.0.1:%d\n", bound);
  for (;;) {
    ffp::FdHandle conn = ffp::tcp_accept(listener);
    bool shutdown_requested = false;
    {
      ffp::ServiceSession session(
          session_options(args), [&conn](const std::string& line) {
            ffp::write_line(conn, line);
          });
      ffp::LineReader reader(conn);
      std::string line;
      try {
        while (reader.next(line)) {
          if (!session.handle_line(line)) {
            shutdown_requested = true;
            break;
          }
        }
      } catch (const ffp::Error& e) {
        // Connection-level failure (peer vanished mid-line): log, keep
        // serving the next client.
        std::fprintf(stderr, "ffp_serve: connection error: %s\n", e.what());
      }
      if (!shutdown_requested) session.drain();
    }
    if (shutdown_requested) return 0;
  }
}

}  // namespace

int main(int argc, char** argv) {
  ffp::ArgParser args;
  args.flag("listen", "", "TCP port on 127.0.0.1 (0 = ephemeral; "
                          "unset = serve stdin/stdout)")
      .flag("runners", "1", "concurrent jobs")
      .flag("budget", "0", "process-wide worker-thread budget "
                           "(0 = hardware concurrency)")
      .flag("max-vertices", "0", "per-graph vertex ceiling (0 = VertexId range)")
      .flag("max-edges", "0", "per-graph edge ceiling (0 = unlimited)")
      .toggle("stream", "stream progress events as improvements happen")
      .toggle("no-files", "reject graph_file submissions (inline graphs only)")
      .toggle("help", "show this help");
  try {
    args.parse(argc, argv);
    if (args.get_bool("help")) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
    const std::int64_t runners = args.get_int("runners");
    FFP_CHECK(runners >= 1, "--runners must be >= 1");
    const std::int64_t budget = args.get_int("budget");
    FFP_CHECK(budget >= 0 && budget <= 1 << 20,
              "--budget must be in [0, 2^20] (0 = hardware concurrency)");
    ffp::ThreadBudget::set_process_total(static_cast<unsigned>(budget));

    const std::string listen = args.get("listen");
    if (listen.empty()) {
      serve_stdio(args);
      return 0;
    }
    const auto port = ffp::parse_int(listen);
    FFP_CHECK(port.has_value() && *port >= 0 && *port <= 65535,
              "--listen must be a port number (0..65535)");
    return serve_tcp(args, static_cast<int>(*port));
  } catch (const ffp::Error& e) {
    std::fprintf(stderr, "ffp_serve: %s\n", e.what());
    return 1;
  }
}
