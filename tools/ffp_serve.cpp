// ffp_serve — the partitioning service daemon.
//
//   ffp_serve --listen 17917 --runners 2 --budget 8 --max-clients 8 --stream
//   ffp_serve < requests.jsonl > responses.jsonl        # pipe mode
//
// Speaks the line-delimited JSON protocol (src/service/protocol.hpp):
// submit / status / cancel / result / shutdown in, ack / status / result /
// progress / error events out. Without --listen it serves exactly one
// session over stdin/stdout — the zero-config mode scripts and tests pipe
// into. With --listen it binds 127.0.0.1:<port> (0 picks an ephemeral
// port, printed on stderr) and serves up to --max-clients connections
// CONCURRENTLY, thread-per-connection, every session submitting into one
// shared ServiceHost — one JobScheduler, one ThreadBudget, one result
// cache — until a client sends {"op":"shutdown"}.
//
// Concurrency model: --runners jobs execute at once across ALL clients,
// and every solve leases its workers from the process-wide ThreadBudget
// capped by --budget — so clients × runners × per-job threads can never
// exceed the budget no matter what anyone asks for. Deterministic repeat
// submissions are answered from the --cache-entries LRU (status replies
// carry hit/miss counters). Input is untrusted: requests are strictly
// validated, graph files go through the hardened readers under
// --max-vertices/--max-edges, and --no-files restricts submissions to
// inline graphs.
#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/net.hpp"
#include "service/service.hpp"
#include "service/thread_budget.hpp"
#include "util/args.hpp"

namespace {

ffp::ServiceOptions host_options(const ffp::ArgParser& args) {
  ffp::ServiceOptions options;
  options.runners = static_cast<unsigned>(args.get_int("runners"));
  options.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache-entries"));
  options.stream_progress = args.get_bool("stream");
  options.allow_files = !args.get_bool("no-files");
  options.limits.graph.max_vertices = args.get_int("max-vertices");
  options.limits.graph.max_edges = args.get_int("max-edges");
  FFP_CHECK(options.limits.graph.max_vertices >= 0,
            "--max-vertices must be >= 0");
  FFP_CHECK(options.limits.graph.max_edges >= 0, "--max-edges must be >= 0");
  return options;
}

/// One session over stdin/stdout. Returns when the client shuts down or
/// the pipe closes.
void serve_stdio(const ffp::ArgParser& args) {
  ffp::ServiceHost host(host_options(args));
  ffp::ServiceSession session(host, [](const std::string& line) {
    std::fputs(line.c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);  // clients poll line by line; never buffer
  });
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!session.handle_line(line)) return;
  }
  // EOF without shutdown: finish what was accepted so piped batch runs
  // (generate requests | ffp_serve > responses) still get their results.
  session.drain();
}

/// The accept loop's shared view of every live connection: a slot gate
/// (--max-clients) plus the fd registry the shutdown path uses to kick
/// readers loose.
class ConnectionSet {
 public:
  explicit ConnectionSet(unsigned max_clients) : max_clients_(max_clients) {}

  /// Blocks until a slot is free, then claims it for `conn` and returns a
  /// connection index. Returns -1 when the server is shutting down.
  int claim(std::shared_ptr<ffp::FdHandle> conn) {
    std::unique_lock lock(mu_);
    freed_.wait(lock, [this] {
      return stopping_ || live_.size() < max_clients_;
    });
    if (stopping_) return -1;
    const int index = next_index_++;
    live_.emplace(index, std::move(conn));
    return index;
  }

  /// Called by a session thread as its last act: frees the slot and queues
  /// the index for the accept loop to join — so finished threads are
  /// reaped continuously instead of accumulating until shutdown.
  void release(int index) {
    {
      std::lock_guard lock(mu_);
      live_.erase(index);
      finished_.push_back(index);
    }
    freed_.notify_one();
  }

  /// Drains the reap queue (accept loop only).
  std::vector<int> take_finished() {
    std::lock_guard lock(mu_);
    return std::exchange(finished_, {});
  }

  /// Flips the stop flag and full-closes every live connection so their
  /// session threads fall out of blocking reads.
  void stop_all() {
    std::lock_guard lock(mu_);
    stopping_ = true;
    for (const auto& [index, conn] : live_) ffp::shutdown_both(*conn);
    freed_.notify_all();
  }

  bool stopping() const {
    std::lock_guard lock(mu_);
    return stopping_;
  }

 private:
  const std::size_t max_clients_;
  mutable std::mutex mu_;
  std::condition_variable freed_;
  std::map<int, std::shared_ptr<ffp::FdHandle>> live_;
  std::vector<int> finished_;  ///< released, awaiting join by the acceptor
  int next_index_ = 0;
  bool stopping_ = false;
};

/// TCP accept loop: thread-per-connection sessions over one shared host,
/// capped at --max-clients, until a session ends with shutdown.
int serve_tcp(const ffp::ArgParser& args, int port) {
  const std::int64_t max_clients = args.get_int("max-clients");
  FFP_CHECK(max_clients >= 1 && max_clients <= 4096,
            "--max-clients must be in [1, 4096]");

  ffp::ServiceHost host(host_options(args));
  ConnectionSet connections(static_cast<unsigned>(max_clients));
  int bound = 0;
  ffp::FdHandle listener = ffp::tcp_listen(port, &bound);
  std::fprintf(stderr, "ffp_serve: listening on 127.0.0.1:%d (up to %lld "
                       "concurrent clients)\n",
               bound, static_cast<long long>(max_clients));

  std::map<int, std::thread> workers;
  const auto reap = [&] {
    for (const int done : connections.take_finished()) {
      const auto it = workers.find(done);
      if (it == workers.end()) continue;
      it->second.join();  // already past release(): joins immediately
      workers.erase(it);
    }
  };
  for (;;) {
    std::shared_ptr<ffp::FdHandle> conn;
    try {
      conn = std::make_shared<ffp::FdHandle>(ffp::tcp_accept(listener));
    } catch (const ffp::Error& e) {
      // accept() fails when the shutdown path shuts the listener under
      // us — the clean exit; anything else is a real error worth logging.
      if (connections.stopping()) break;
      std::fprintf(stderr, "ffp_serve: accept error: %s\n", e.what());
      continue;
    }
    const int index = connections.claim(conn);
    if (index < 0) break;  // shutdown raced the accept
    reap();  // bounded thread table: join everything that finished

    workers.emplace(index, std::thread([&host, &connections, &listener, conn,
                                        index] {
      {
        ffp::ServiceSession session(host, [conn](const std::string& line) {
          ffp::write_line(*conn, line);
        });
        ffp::LineReader reader(*conn);
        std::string line;
        bool shutdown_requested = false;
        try {
          while (reader.next(line)) {
            if (!session.handle_line(line)) {
              shutdown_requested = true;
              break;
            }
          }
          if (!shutdown_requested) session.drain();
        } catch (const ffp::Error& e) {
          // Connection-level failure (peer vanished mid-line): log, let the
          // session destructor cancel the client's leftovers, keep serving.
          std::fprintf(stderr, "ffp_serve: connection error: %s\n", e.what());
        }
        if (shutdown_requested) {
          // Stop the world: every other client's read returns EOF, and
          // shutdown(2) on the listener makes the blocked accept() fail.
          // NOTE: waking accept this way is a Linux behavior (the deploy
          // target; CI is ubuntu) — BSD/macOS would need a self-pipe.
          connections.stop_all();
          ffp::shutdown_both(listener);
        }
      }
      connections.release(index);
    }));
  }
  for (auto& [index, worker] : workers) {
    (void)index;
    if (worker.joinable()) worker.join();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ffp::ArgParser args;
  args.flag("listen", "", "TCP port on 127.0.0.1 (0 = ephemeral; "
                          "unset = serve stdin/stdout)")
      .flag("runners", "1", "concurrent jobs (shared by all clients)")
      .flag("budget", "0", "process-wide worker-thread budget "
                           "(0 = hardware concurrency)")
      .flag("max-clients", "8", "concurrent TCP connections (--listen mode)")
      .flag("cache-entries", "64", "result-cache entries (0 = no cache)")
      .flag("max-vertices", "0", "per-graph vertex ceiling (0 = VertexId range)")
      .flag("max-edges", "0", "per-graph edge ceiling (0 = unlimited)")
      .toggle("stream", "stream progress events as improvements happen")
      .toggle("no-files", "reject graph_file submissions (inline graphs only)")
      .toggle("help", "show this help");
  try {
    args.parse(argc, argv);
    if (args.get_bool("help")) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
    const std::int64_t runners = args.get_int("runners");
    FFP_CHECK(runners >= 1, "--runners must be >= 1");
    const std::int64_t cache_entries = args.get_int("cache-entries");
    FFP_CHECK(cache_entries >= 0 && cache_entries <= 1 << 20,
              "--cache-entries must be in [0, 2^20]");
    const std::int64_t budget = args.get_int("budget");
    FFP_CHECK(budget >= 0 && budget <= 1 << 20,
              "--budget must be in [0, 2^20] (0 = hardware concurrency)");
    ffp::ThreadBudget::set_process_total(static_cast<unsigned>(budget));

    const std::string listen = args.get("listen");
    if (listen.empty()) {
      serve_stdio(args);
      return 0;
    }
    const auto port = ffp::parse_int(listen);
    FFP_CHECK(port.has_value() && *port >= 0 && *port <= 65535,
              "--listen must be a port number (0..65535)");
    return serve_tcp(args, static_cast<int>(*port));
  } catch (const ffp::Error& e) {
    std::fprintf(stderr, "ffp_serve: %s\n", e.what());
    return 1;
  }
}
