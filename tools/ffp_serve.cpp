// ffp_serve — the partitioning service daemon.
//
//   ffp_serve --listen 17917 --runners 2 --budget 8 --max-clients 8 --stream
//   ffp_serve < requests.jsonl > responses.jsonl        # pipe mode
//
// Speaks the line-delimited JSON protocol (src/service/protocol.hpp):
// submit / status / cancel / result / shutdown in, ack / status / result /
// progress / error events out. Without --listen it serves exactly one
// session over stdin/stdout — the zero-config mode scripts and tests pipe
// into. With --listen it binds 127.0.0.1:<port> (0 picks an ephemeral
// port, printed on stderr) and serves up to --max-clients connections
// CONCURRENTLY, thread-per-connection, every session submitting into one
// shared ServiceHost — one JobScheduler, one ThreadBudget, one result
// cache — until SIGTERM/SIGINT or an authorized {"op":"shutdown"}.
//
// Concurrency model: --runners jobs execute at once across ALL clients,
// and every solve leases its workers from the process-wide ThreadBudget
// capped by --budget — so clients × runners × per-job threads can never
// exceed the budget no matter what anyone asks for. Deterministic repeat
// submissions are answered from the --cache-entries LRU (status replies
// carry hit/miss counters). Input is untrusted: requests are strictly
// validated, graph files go through the hardened readers under
// --max-vertices/--max-edges, and --no-files restricts submissions to
// inline graphs.
//
// Failure hardening (service/server.hpp has the machinery):
//   * connections beyond --max-clients are told "overloaded" (with a
//     retry-after hint) and closed immediately — never queued;
//   * more than --max-queued waiting jobs shed submits the same way;
//   * a connection idle past --idle-timeout-ms is reaped, so a silent
//     client cannot hold a slot;
//   * every response write is bounded by --write-timeout-ms;
//   * SIGTERM/SIGINT drain gracefully: stop accepting, cancel queued
//     jobs, let running jobs finish with best-so-far semantics;
//   * {"op":"shutdown"} from a TCP peer is FORBIDDEN unless the server
//     was started with --allow-remote-shutdown (pipe mode — the
//     operator's own terminal — always honors it).
//
// Scale-out: --event-loop swaps thread-per-connection for one epoll
// thread (src/net/event_loop.hpp) so --max-clients can go to the
// thousands with a bounded thread count; --peers lists sibling shard
// ports and turns on periodic elite migration (src/shard/migrate.hpp).
// Both speak the identical wire protocol with identical results.
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "service/thread_budget.hpp"
#include "shard/migrate.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"

namespace {

/// "17917,17918" -> ports. Used by --peers.
std::vector<int> parse_ports(const std::string& csv) {
  std::vector<int> ports;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string_view piece =
        ffp::trim(std::string_view(csv).substr(start, comma - start));
    if (!piece.empty()) {
      const auto port = ffp::parse_int(piece);
      FFP_CHECK(port.has_value() && *port >= 1 && *port <= 65535,
                "--peers entries must be ports (1..65535), got '",
                std::string(piece), "'");
      ports.push_back(static_cast<int>(*port));
    }
    start = comma + 1;
  }
  return ports;
}

ffp::ServiceOptions host_options(const ffp::ArgParser& args) {
  ffp::ServiceOptions options;
  options.runners = static_cast<unsigned>(args.get_int("runners"));
  options.cache_capacity =
      static_cast<std::size_t>(args.get_int("cache-entries"));
  options.stream_progress = args.get_bool("stream");
  options.allow_files = !args.get_bool("no-files");
  options.max_queued = static_cast<std::size_t>(args.get_int("max-queued"));
  options.state_dir = args.get("state-dir");
  options.evolve_capacity =
      static_cast<std::size_t>(args.get_int("evolve-elites"));
  options.limits.graph.max_vertices = args.get_int("max-vertices");
  options.limits.graph.max_edges = args.get_int("max-edges");
  FFP_CHECK(options.limits.graph.max_vertices >= 0,
            "--max-vertices must be >= 0");
  FFP_CHECK(options.limits.graph.max_edges >= 0, "--max-edges must be >= 0");
  return options;
}

/// One session over stdin/stdout. Returns when the client shuts down or
/// the pipe closes. The pipe is the operator's own terminal, so shutdown
/// stays allowed and teardown waits are unbounded.
void serve_stdio(const ffp::ArgParser& args) {
  ffp::ServiceHost host(host_options(args));
  ffp::SessionPolicy policy;
  policy.allow_shutdown = true;
  policy.teardown_wait_ms = 0;  // trusted caller; wait for everything
  ffp::ServiceSession session(
      host,
      [](const std::string& line) {
        std::fputs(line.c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);  // clients poll line by line; never buffer
      },
      policy);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!session.handle_line(line)) return;
  }
  // EOF without shutdown: finish what was accepted so piped batch runs
  // (generate requests | ffp_serve > responses) still get their results.
  session.drain();
}

/// The signal path: SIGTERM/SIGINT write one byte down the server's
/// self-pipe / eventfd (both async-signal-safe) and the serving loop
/// drains. Exactly one of the two pointers is set at a time.
ffp::TcpServer* g_server = nullptr;
ffp::EventLoopServer* g_loop_server = nullptr;

extern "C" void on_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
  if (g_loop_server != nullptr) g_loop_server->request_stop();
}

/// Inter-shard elite migration rides along either server type: a nullptr
/// when --peers is empty, a running EliteMigrator otherwise.
std::unique_ptr<ffp::shard::EliteMigrator> make_migrator(
    const ffp::ArgParser& args, ffp::ServiceHost& host) {
  const std::vector<int> peers = parse_ports(args.get("peers"));
  if (peers.empty()) return nullptr;
  const std::int64_t period = args.get_int("migrate-every-ms");
  FFP_CHECK(period >= 1, "--migrate-every-ms must be >= 1");
  ffp::shard::MigrateOptions options;
  options.peer_ports = peers;
  options.period_ms = static_cast<double>(period);
  std::fprintf(stderr, "ffp_serve: migrating elites to %zu peer(s) every "
               "%lld ms\n", peers.size(), static_cast<long long>(period));
  return std::make_unique<ffp::shard::EliteMigrator>(
      host.engine(), host.serve_stats(), std::move(options));
}

int serve_tcp(const ffp::ArgParser& args, int port) {
  const std::int64_t max_clients = args.get_int("max-clients");
  FFP_CHECK(max_clients >= 1 && max_clients <= 4096,
            "--max-clients must be in [1, 4096]");
  const std::int64_t idle_ms = args.get_int("idle-timeout-ms");
  FFP_CHECK(idle_ms >= 0, "--idle-timeout-ms must be >= 0 (0 = no reaping)");
  const std::int64_t write_ms = args.get_int("write-timeout-ms");
  FFP_CHECK(write_ms >= 0, "--write-timeout-ms must be >= 0 (0 = unbounded)");

  ffp::ServiceHost host(host_options(args));
  if (!args.get("state-dir").empty()) {
    std::fprintf(stderr, "ffp_serve: recovered %zu journaled job(s)\n",
                 host.engine().recovered_jobs());
  }
  const std::unique_ptr<ffp::shard::EliteMigrator> migrator =
      make_migrator(args, host);

  std::signal(SIGPIPE, SIG_IGN);  // torn peers surface as EPIPE, not death

  if (args.get_bool("event-loop")) {
    ffp::EventLoopOptions options;
    options.port = port;
    options.max_clients = static_cast<unsigned>(max_clients);
    options.idle_timeout_ms = static_cast<double>(idle_ms);
    options.write_timeout_ms = static_cast<double>(write_ms);
    options.session.allow_shutdown = args.get_bool("allow-remote-shutdown");
    ffp::EventLoopServer server(host, options);

    g_loop_server = &server;
    std::signal(SIGTERM, on_stop_signal);
    std::signal(SIGINT, on_stop_signal);
    std::fprintf(stderr,
                 "ffp_serve: listening on 127.0.0.1:%d (event loop, up to "
                 "%lld concurrent clients%s)\n",
                 server.port(), static_cast<long long>(max_clients),
                 options.session.allow_shutdown ? ", remote shutdown allowed"
                                                : "");
    server.run();
    g_loop_server = nullptr;
  } else {
    ffp::TcpServerOptions options;
    options.port = port;
    options.max_clients = static_cast<unsigned>(max_clients);
    options.idle_timeout_ms = static_cast<double>(idle_ms);
    options.write_timeout_ms = static_cast<double>(write_ms);
    options.session.allow_shutdown = args.get_bool("allow-remote-shutdown");
    ffp::TcpServer server(host, options);

    g_server = &server;
    std::signal(SIGTERM, on_stop_signal);
    std::signal(SIGINT, on_stop_signal);
    std::fprintf(stderr,
                 "ffp_serve: listening on 127.0.0.1:%d (up to %lld "
                 "concurrent clients%s)\n",
                 server.port(), static_cast<long long>(max_clients),
                 options.session.allow_shutdown ? ", remote shutdown allowed"
                                                : "");
    server.run();
    g_server = nullptr;
  }
  std::fprintf(stderr, "ffp_serve: drained, exiting\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ffp::ArgParser args;
  args.flag("listen", "", "TCP port on 127.0.0.1 (0 = ephemeral; "
                          "unset = serve stdin/stdout)")
      .flag("runners", "1", "concurrent jobs (shared by all clients)")
      .flag("budget", "0", "process-wide worker-thread budget "
                           "(0 = hardware concurrency)")
      .flag("max-clients", "8", "concurrent TCP connections (--listen mode); "
                                "extra connections are shed, not queued")
      .flag("max-queued", "0", "waiting-job ceiling across all clients; "
                               "submits beyond it are shed (0 = unbounded)")
      .flag("idle-timeout-ms", "30000", "reap connections idle this long "
                                        "(0 = never)")
      .flag("write-timeout-ms", "10000", "per-response write deadline "
                                         "(0 = unbounded)")
      .flag("cache-entries", "64", "result-cache entries (0 = no cache)")
      .flag("evolve-elites", "8", "elite-archive capacity per (graph, k, "
                                  "objective) population; feeds "
                                  "\"evolve\":true submissions (0 = off; "
                                  "persists under --state-dir)")
      .flag("state-dir", "", "durable-state directory: write-ahead job "
                             "journal, persisted results, solve checkpoints; "
                             "startup replays the journal and resubmits "
                             "unfinished jobs (unset = in-memory only)")
      .flag("max-vertices", "0", "per-graph vertex ceiling (0 = VertexId range)")
      .flag("max-edges", "0", "per-graph edge ceiling (0 = unlimited)")
      .flag("peers", "", "comma-separated peer shard ports; best elites "
                         "migrate to them every --migrate-every-ms")
      .flag("migrate-every-ms", "1000", "elite-migration tick interval")
      .toggle("event-loop", "serve all connections on one epoll thread "
                            "instead of thread-per-connection (--listen "
                            "mode; identical wire protocol and results)")
      .toggle("stream", "stream progress events as improvements happen")
      .toggle("no-files", "reject graph_file submissions (inline graphs only)")
      .toggle("allow-remote-shutdown",
              "honor {\"op\":\"shutdown\"} from TCP clients (pipe mode "
              "always honors it)")
      .toggle("help", "show this help");
  try {
    args.parse(argc, argv);
    if (args.get_bool("help")) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
    const std::int64_t runners = args.get_int("runners");
    FFP_CHECK(runners >= 1, "--runners must be >= 1");
    const std::int64_t cache_entries = args.get_int("cache-entries");
    FFP_CHECK(cache_entries >= 0 && cache_entries <= 1 << 20,
              "--cache-entries must be in [0, 2^20]");
    const std::int64_t evolve_elites = args.get_int("evolve-elites");
    FFP_CHECK(evolve_elites >= 0 && evolve_elites <= 4096,
              "--evolve-elites must be in [0, 4096]");
    const std::int64_t max_queued = args.get_int("max-queued");
    FFP_CHECK(max_queued >= 0 && max_queued <= 1 << 20,
              "--max-queued must be in [0, 2^20] (0 = unbounded)");
    const std::int64_t budget = args.get_int("budget");
    FFP_CHECK(budget >= 0 && budget <= 1 << 20,
              "--budget must be in [0, 2^20] (0 = hardware concurrency)");
    ffp::ThreadBudget::set_process_total(static_cast<unsigned>(budget));

    const std::string listen = args.get("listen");
    if (listen.empty()) {
      serve_stdio(args);
      return 0;
    }
    const auto port = ffp::parse_int(listen);
    FFP_CHECK(port.has_value() && *port >= 0 && *port <= 65535,
              "--listen must be a port number (0..65535)");
    return serve_tcp(args, static_cast<int>(*port));
  } catch (const ffp::Error& e) {
    std::fprintf(stderr, "ffp_serve: %s\n", e.what());
    return 1;
  }
}
