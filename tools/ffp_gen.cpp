// ffp_gen — generate benchmark graphs in Chaco/METIS format.
//
//   ffp_gen --family grid2d --args 64,64 --out grid.graph
//   ffp_gen --family atc --seed 2006 --out core_area.graph
//
// Families mirror the Walshaw-archive structures the test/bench suites use
// (see graph/generators.hpp), plus the synthetic ATC core area. The output
// feeds straight into the partitioner:
//
//   ffp_gen --family grid2d --args 64,64 --out grid.graph
//   ffp_part --graph grid.graph --k 32 --method fusion_fission
//            --restarts 8 --threads 4
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "ffp/api.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"

namespace {

std::vector<std::int64_t> parse_int_list(const std::string& csv) {
  std::vector<std::int64_t> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    const auto token = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!token.empty()) {
      const auto v = ffp::parse_int(token);
      FFP_CHECK(v.has_value(), "bad integer in --args: '", token, "'");
      out.push_back(*v);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ffp::ArgParser args;
  args.flag("family", "grid2d",
            "grid2d|grid3d|torus|path|cycle|complete|star|barbell|"
            "geometric|powerlaw|random|caterpillar|atc")
      .flag("args", "32,32", "family dimensions, comma separated")
      .flag("seed", "1", "random seed (stochastic families)")
      .flag("weights", "", "randomize edge weights: lo,hi")
      .flag("out", "", "output file (stdout if empty)")
      .toggle("help", "show this help");
  try {
    args.parse(argc, argv);
    if (args.get_bool("help")) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
    const std::string family = args.get("family");
    const auto dims = parse_int_list(args.get("args"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    auto dim = [&](std::size_t i, std::int64_t fallback) -> long long {
      return dims.size() > i ? dims[i] : fallback;
    };

    // The CLI's --family/--args/--seed flags assemble an api::Problem
    // generator spec, so ffp_gen and every other graph source in the repo
    // construct instances through the one facade path.
    std::string spec = family + ":";
    if (family == "grid2d") {
      spec += ffp::format("%lld,%lld", dim(0, 32), dim(1, 32));
    } else if (family == "grid3d") {
      spec += ffp::format("%lld,%lld,%lld", dim(0, 10), dim(1, 10),
                          dim(2, 10));
    } else if (family == "torus") {
      spec += ffp::format("%lld,%lld", dim(0, 16), dim(1, 16));
    } else if (family == "path" || family == "cycle") {
      spec += ffp::format("%lld", dim(0, 100));
    } else if (family == "complete") {
      spec += ffp::format("%lld", dim(0, 16));
    } else if (family == "star") {
      spec += ffp::format("%lld", dim(0, 32));
    } else if (family == "barbell") {
      spec += ffp::format("%lld,%lld", dim(0, 10), dim(1, 2));
    } else if (family == "geometric") {
      spec += ffp::format("%lld,%g,%llu", dim(0, 500),
                          dim(1, 0) > 0 ? dim(1, 0) / 1000.0 : 0.06,
                          static_cast<unsigned long long>(seed));
    } else if (family == "powerlaw") {
      spec += ffp::format("%lld,%lld,2.5,%llu", dim(0, 500), dim(1, 6),
                          static_cast<unsigned long long>(seed));
    } else if (family == "random") {
      spec += ffp::format("%lld,%lld,%llu", dim(0, 200), dim(1, 800),
                          static_cast<unsigned long long>(seed));
    } else if (family == "caterpillar") {
      spec += ffp::format("%lld,%lld", dim(0, 30), dim(1, 3));
    } else if (family == "atc") {
      spec += ffp::format("%llu", static_cast<unsigned long long>(seed));
      if (!dims.empty()) spec += ffp::format(",%lld", dim(0, 0));
      if (dims.size() > 1) spec += ffp::format(",%lld", dim(1, 0));
    } else {
      throw ffp::Error("unknown family '" + family + "'");
    }
    const ffp::api::Problem problem = ffp::api::Problem::generated(spec);
    ffp::Graph g = problem.graph();

    const std::string wspec = args.get("weights");
    if (!wspec.empty()) {
      const auto range = parse_int_list(wspec);
      FFP_CHECK(range.size() == 2, "--weights expects lo,hi");
      g = ffp::with_random_weights(g, static_cast<double>(range[0]),
                                   static_cast<double>(range[1]), seed ^ 0xb5);
    }

    std::fprintf(stderr, "%s\n", g.summary().c_str());
    const std::string out = args.get("out");
    if (out.empty()) {
      ffp::write_chaco(g, std::cout);
    } else {
      ffp::write_chaco_file(g, out);
      std::fprintf(stderr, "written to %s\n", out.c_str());
    }
  } catch (const ffp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
