// ffp_router — the scale-out front end.
//
//   ffp_router --listen 17900 --shards 17917,17918,17919
//
// Speaks the same line-delimited JSON protocol as ffp_serve and forwards
// every request to one of the backend shards, chosen by graph digest on a
// consistent-hash ring — repeat traffic on a graph always lands on the
// same shard, so that shard's result cache and elite archive stay hot.
// Responses relay verbatim; the router holds no solver state.
//
// Failover: a shard that refuses or drops connections is cooled down for
// --down-cooldown-ms and submissions fail over along the ring; ops pinned
// to a dead shard come back as retryable errors that a ffp_client retry
// loop resubmits (idempotent via the shard result caches). See
// src/shard/router.hpp for the full failure story.
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include "shard/router.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"

namespace {

std::vector<int> parse_ports(const std::string& csv) {
  std::vector<int> ports;
  std::size_t start = 0;
  while (start <= csv.size()) {
    std::size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    const std::string_view piece =
        ffp::trim(std::string_view(csv).substr(start, comma - start));
    if (!piece.empty()) {
      const auto port = ffp::parse_int(piece);
      FFP_CHECK(port.has_value() && *port >= 1 && *port <= 65535,
                "--shards entries must be ports (1..65535), got '",
                std::string(piece), "'");
      ports.push_back(static_cast<int>(*port));
    }
    start = comma + 1;
  }
  return ports;
}

ffp::shard::Router* g_router = nullptr;

extern "C" void on_stop_signal(int) {
  if (g_router != nullptr) g_router->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  ffp::ArgParser args;
  args.flag("listen", "0", "TCP port on 127.0.0.1 (0 = ephemeral)")
      .flag("shards", "", "comma-separated backend ffp_serve ports "
                          "(required)")
      .flag("max-clients", "64", "concurrent client connections; extra "
                                 "connections are shed, not queued")
      .flag("idle-timeout-ms", "30000", "reap client connections idle this "
                                        "long (0 = never)")
      .flag("write-timeout-ms", "10000", "per-line write deadline, client "
                                         "and shard (0 = unbounded)")
      .flag("io-timeout-ms", "0", "per-line shard read deadline (0 = wait "
                                  "forever; result ops block for the solve)")
      .flag("down-cooldown-ms", "2000", "how long a failed shard sits out "
                                        "of the rotation")
      .flag("vnodes", "64", "consistent-hash ring points per shard")
      .flag("max-vertices", "0", "per-graph vertex ceiling (0 = VertexId "
                                 "range)")
      .flag("max-edges", "0", "per-graph edge ceiling (0 = unlimited)")
      .toggle("allow-remote-shutdown",
              "honor {\"op\":\"shutdown\"} from clients (stops the ROUTER "
              "only; shards stay up)")
      .toggle("help", "show this help");
  try {
    args.parse(argc, argv);
    if (args.get_bool("help")) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
    ffp::shard::RouterOptions options;
    const std::int64_t listen = args.get_int("listen");
    FFP_CHECK(listen >= 0 && listen <= 65535,
              "--listen must be a port number (0..65535)");
    options.port = static_cast<int>(listen);
    options.shard_ports = parse_ports(args.get("shards"));
    FFP_CHECK(!options.shard_ports.empty(),
              "--shards needs at least one backend port");
    const std::int64_t max_clients = args.get_int("max-clients");
    FFP_CHECK(max_clients >= 1 && max_clients <= 4096,
              "--max-clients must be in [1, 4096]");
    options.max_clients = static_cast<unsigned>(max_clients);
    const std::int64_t idle_ms = args.get_int("idle-timeout-ms");
    FFP_CHECK(idle_ms >= 0, "--idle-timeout-ms must be >= 0 (0 = never)");
    options.idle_timeout_ms = static_cast<double>(idle_ms);
    const std::int64_t write_ms = args.get_int("write-timeout-ms");
    FFP_CHECK(write_ms >= 0, "--write-timeout-ms must be >= 0");
    options.write_timeout_ms = static_cast<double>(write_ms);
    const std::int64_t io_ms = args.get_int("io-timeout-ms");
    FFP_CHECK(io_ms >= 0, "--io-timeout-ms must be >= 0 (0 = unbounded)");
    options.backend_io_timeout_ms = static_cast<double>(io_ms);
    const std::int64_t cooldown = args.get_int("down-cooldown-ms");
    FFP_CHECK(cooldown >= 1, "--down-cooldown-ms must be >= 1");
    options.down_cooldown_ms = static_cast<double>(cooldown);
    const std::int64_t vnodes = args.get_int("vnodes");
    FFP_CHECK(vnodes >= 1 && vnodes <= 4096,
              "--vnodes must be in [1, 4096]");
    options.vnodes = static_cast<int>(vnodes);
    options.allow_shutdown = args.get_bool("allow-remote-shutdown");
    options.limits.graph.max_vertices = args.get_int("max-vertices");
    options.limits.graph.max_edges = args.get_int("max-edges");
    FFP_CHECK(options.limits.graph.max_vertices >= 0,
              "--max-vertices must be >= 0");
    FFP_CHECK(options.limits.graph.max_edges >= 0,
              "--max-edges must be >= 0");

    ffp::shard::Router router(std::move(options));
    g_router = &router;
    std::signal(SIGTERM, on_stop_signal);
    std::signal(SIGINT, on_stop_signal);
    std::signal(SIGPIPE, SIG_IGN);
    std::fprintf(stderr,
                 "ffp_router: listening on 127.0.0.1:%d (%zu shard(s), up "
                 "to %lld clients)\n",
                 router.port(), router.shards(),
                 static_cast<long long>(max_clients));
    router.run();
    g_router = nullptr;
    std::fprintf(stderr, "ffp_router: drained, exiting\n");
    return 0;
  } catch (const ffp::Error& e) {
    std::fprintf(stderr, "ffp_router: %s\n", e.what());
    return 1;
  }
}
