// ffp_client — submit/poll/batch driver for ffp_serve, used by the CI
// smoke job and by hand when poking at a running daemon.
//
//   # 4 jobs on one graph, distinct seeds, partitions written per job:
//   ffp_client --connect 17917 --graph mesh.graph --k 8 --jobs 4
//              --seed 7 --steps 20000 --out-dir parts/
//
//   # replay raw protocol lines from a file (one request per line):
//   ffp_client --connect 17917 --script requests.jsonl
//
// In graph mode the client submits --jobs copies of the job (ids j0, j1,
// …, seeds seed, seed+1, …), then requests every result and writes each
// partition to --out-dir/<id>.part. Every response line is echoed to
// stdout, so logs double as protocol transcripts. Exit status is 0 only
// if every submitted job came back with a result.
#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include "service/json.hpp"
#include "service/net.hpp"
#include "graph/io.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"

namespace {

/// Result lines carry one array element per vertex, so the client must
/// parse far bigger documents than the server accepts as requests.
ffp::JsonLimits client_limits() {
  ffp::JsonLimits limits;
  limits.max_bytes = 1u << 30;
  limits.max_elements = 1u << 30;
  return limits;
}
constexpr std::size_t kClientMaxLineBytes = 1u << 30;

/// Reads lines until the terminal event (result/error) for `id` arrives,
/// echoing everything; returns true when it was a result, writing the
/// partition to `out_path` if non-empty.
bool await_result(ffp::LineReader& reader, const std::string& id,
                  const std::string& out_path) {
  std::string line;
  while (reader.next(line, kClientMaxLineBytes)) {
    std::printf("%s\n", line.c_str());
    const ffp::JsonValue event = ffp::JsonValue::parse(line, client_limits());
    const ffp::JsonValue* ev = event.find("event");
    const ffp::JsonValue* eid = event.find("id");
    if (ev == nullptr || eid == nullptr || !eid->is_string() ||
        eid->as_string() != id) {
      continue;  // progress or an event for another job
    }
    if (ev->as_string() == "result") {
      if (!out_path.empty()) {
        const ffp::JsonValue* partition = event.find("partition");
        if (partition == nullptr || !partition->is_array()) {
          throw ffp::Error("result event for '" + id + "' has no partition");
        }
        const auto& parts_json = partition->as_array();
        std::vector<int> parts;
        parts.reserve(parts_json.size());
        for (const auto& p : parts_json) {
          parts.push_back(static_cast<int>(p.as_int()));
        }
        ffp::write_partition_file(parts, out_path);
      }
      return true;
    }
    if (ev->as_string() == "error") return false;
  }
  throw ffp::Error("server closed the connection before result of '" + id +
                   "'");
}

/// Reads until the ack/error response for `id`; true on ack.
bool await_ack(ffp::LineReader& reader, const std::string& id) {
  std::string line;
  while (reader.next(line)) {
    std::printf("%s\n", line.c_str());
    const ffp::JsonValue event = ffp::JsonValue::parse(line);
    const ffp::JsonValue* ev = event.find("event");
    const ffp::JsonValue* eid = event.find("id");
    if (ev == nullptr || eid == nullptr || !eid->is_string() ||
        eid->as_string() != id) {
      continue;
    }
    if (ev->as_string() == "ack") return true;
    if (ev->as_string() == "error") return false;
  }
  throw ffp::Error("server closed the connection before ack of '" + id + "'");
}

std::string submit_line(const ffp::ArgParser& args, const std::string& id,
                        std::uint64_t seed) {
  std::string out = "{\"op\":\"submit\",\"id\":";
  ffp::json_append_quoted(out, id);
  out += ",\"graph_file\":";
  ffp::json_append_quoted(out, args.get("graph"));
  out += ",\"method\":";
  ffp::json_append_quoted(out, args.get("method"));
  out += ",\"objective\":";
  ffp::json_append_quoted(out, args.get("objective"));
  out += ",\"k\":" + std::to_string(args.get_int("k"));
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"steps\":" + std::to_string(args.get_int("steps"));
  out += ",\"threads\":" + std::to_string(args.get_int("threads"));
  out += ",\"priority\":" + std::to_string(args.get_int("priority"));
  out += "}";
  return out;
}

int run_script(const ffp::FdHandle& conn, ffp::LineReader& reader,
               const std::string& path, bool send_shutdown) {
  std::ifstream in(path);
  FFP_CHECK(in.good(), "cannot open script: ", path);
  std::string line;
  std::int64_t sent = 0;
  while (std::getline(in, line)) {
    if (ffp::trim(line).empty()) continue;
    ffp::write_line(conn, line);
    ++sent;
  }
  if (send_shutdown) ffp::write_line(conn, "{\"op\":\"shutdown\"}");
  // Half-close so the server sees EOF after the last request, drains the
  // session, and closes — without this (and without a shutdown op in the
  // script) both sides would wait on each other forever.
  ffp::shutdown_write(conn);
  std::string reply;
  while (sent > 0 && reader.next(reply, kClientMaxLineBytes)) {
    std::printf("%s\n", reply.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ffp::ArgParser args;
  args.flag("connect", "", "ffp_serve port on 127.0.0.1 (required)")
      .flag("script", "", "file of raw request lines to replay")
      .flag("graph", "", "graph file to submit (server-side path)")
      .flag("jobs", "1", "number of jobs to submit (ids j0..jN-1)")
      .flag("k", "8", "parts per job")
      .flag("method", "fusion_fission", "registry solver spec")
      .flag("objective", "mcut", "cut|ncut|mcut|rcut")
      .flag("seed", "1", "seed of job j0; job ji uses seed+i")
      .flag("steps", "10000", "deterministic step budget per job")
      .flag("threads", "0", "intra-run worker want per job")
      .flag("priority", "0", "job priority (higher runs first)")
      .flag("out-dir", "", "write each partition to <out-dir>/<id>.part")
      .toggle("shutdown", "send shutdown after the last result")
      .toggle("help", "show this help");
  try {
    args.parse(argc, argv);
    if (args.get_bool("help")) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
    const auto port = ffp::parse_int(args.get("connect"));
    FFP_CHECK(port.has_value() && *port > 0 && *port <= 65535,
              "--connect must be a port number");
    ffp::FdHandle conn = ffp::tcp_connect(static_cast<int>(*port));
    ffp::LineReader reader(conn);

    if (!args.get("script").empty()) {
      return run_script(conn, reader, args.get("script"),
                        args.get_bool("shutdown"));
    }

    FFP_CHECK(!args.get("graph").empty(),
              "need --graph (or --script) to submit jobs");
    const std::int64_t jobs = args.get_int("jobs");
    FFP_CHECK(jobs >= 1, "--jobs must be >= 1");
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

    // Submit everything first (the scheduler runs jobs concurrently),
    // then collect results in submission order.
    std::set<std::string> failed;
    for (std::int64_t i = 0; i < jobs; ++i) {
      const std::string id = "j" + std::to_string(i);
      ffp::write_line(conn, submit_line(args, id, seed + static_cast<std::uint64_t>(i)));
      if (!await_ack(reader, id)) failed.insert(id);
    }
    for (std::int64_t i = 0; i < jobs; ++i) {
      const std::string id = "j" + std::to_string(i);
      if (failed.count(id) > 0) continue;
      std::string request = "{\"op\":\"result\",\"id\":";
      ffp::json_append_quoted(request, id);
      request += "}";
      ffp::write_line(conn, request);
      const std::string out_dir = args.get("out-dir");
      const std::string out_path =
          out_dir.empty() ? std::string() : out_dir + "/" + id + ".part";
      if (!await_result(reader, id, out_path)) failed.insert(id);
    }
    if (args.get_bool("shutdown")) {
      ffp::write_line(conn, "{\"op\":\"shutdown\"}");
      std::string line;
      while (reader.next(line)) std::printf("%s\n", line.c_str());
    }
    if (!failed.empty()) {
      std::fprintf(stderr, "ffp_client: %zu job(s) failed\n", failed.size());
      return 1;
    }
    return 0;
  } catch (const ffp::Error& e) {
    std::fprintf(stderr, "ffp_client: %s\n", e.what());
    return 1;
  }
}
