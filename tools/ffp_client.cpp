// ffp_client — submit/poll/batch driver for ffp_serve, used by the CI
// smoke job and by hand when poking at a running daemon.
//
//   # 4 jobs on one graph, distinct seeds, partitions written per job:
//   ffp_client --connect 17917 --graph mesh.graph --k 8 --jobs 4
//              --seed 7 --steps 20000 --out-dir parts/
//
//   # replay raw protocol lines from a file (one request per line):
//   ffp_client --connect 17917 --script requests.jsonl
//
// In graph mode the client submits --jobs copies of the job (ids j0, j1,
// …, seeds seed, seed+1, …) through the resilient ServiceClient
// (service/client.hpp): retryable failures — shed connections, queue
// expiry, torn connections, server restarts — are retried up to --retries
// times with deterministic exponential backoff (--backoff-ms cap growth,
// jitter seeded by --retry-seed), honoring any server retry-after hint.
// Resubmission after a torn connection is idempotent: a job that already
// completed comes back as a server-side cache hit with byte-identical
// results. Every response line is echoed to stdout, so logs double as
// protocol transcripts; backoffs are logged to stderr. Exit status is 0
// only if every submitted job came back with a result.
//
// Script mode stays a raw replay (no retries): it exists to prod the
// protocol, including with malformed lines.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "graph/io.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/net.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"

namespace {

constexpr std::size_t kClientMaxLineBytes = 1u << 30;

ffp::JsonLimits client_limits() {
  ffp::JsonLimits limits;
  limits.max_bytes = 1u << 30;
  limits.max_elements = 1u << 30;
  return limits;
}

std::string submit_line(const ffp::ArgParser& args, const std::string& id,
                        std::uint64_t seed) {
  std::string out = "{\"op\":\"submit\",\"id\":";
  ffp::json_append_quoted(out, id);
  out += ",\"graph_file\":";
  ffp::json_append_quoted(out, args.get("graph"));
  out += ",\"method\":";
  ffp::json_append_quoted(out, args.get("method"));
  out += ",\"objective\":";
  ffp::json_append_quoted(out, args.get("objective"));
  out += ",\"k\":" + std::to_string(args.get_int("k"));
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"steps\":" + std::to_string(args.get_int("steps"));
  out += ",\"threads\":" + std::to_string(args.get_int("threads"));
  out += ",\"priority\":" + std::to_string(args.get_int("priority"));
  if (args.get_int("restarts") > 1) {
    out += ",\"restarts\":" + std::to_string(args.get_int("restarts"));
  }
  if (args.get_int("queue-ttl-ms") > 0) {
    out += ",\"queue_ttl_ms\":" + std::to_string(args.get_int("queue-ttl-ms"));
  }
  if (args.get_int("checkpoint-every-ms") > 0) {
    out += ",\"checkpoint_every_ms\":" +
           std::to_string(args.get_int("checkpoint-every-ms"));
  }
  if (args.get_bool("warm-start")) out += ",\"warm_start\":true";
  if (args.get_bool("evolve")) out += ",\"evolve\":true";
  out += "}";
  return out;
}

/// Extracts the partition array from a raw `result` event line and writes
/// it as a partition file.
void write_result_partition(const std::string& result_line,
                            const std::string& id,
                            const std::string& out_path) {
  const ffp::JsonValue event =
      ffp::JsonValue::parse(result_line, client_limits());
  const ffp::JsonValue* partition = event.find("partition");
  if (partition == nullptr || !partition->is_array()) {
    throw ffp::Error("result event for '" + id + "' has no partition");
  }
  const auto& parts_json = partition->as_array();
  std::vector<int> parts;
  parts.reserve(parts_json.size());
  for (const auto& p : parts_json) {
    parts.push_back(static_cast<int>(p.as_int()));
  }
  ffp::write_partition_file(parts, out_path);
}

int run_script(const ffp::FdHandle& conn, ffp::LineReader& reader,
               const std::string& path, bool send_shutdown) {
  std::ifstream in(path);
  FFP_CHECK(in.good(), "cannot open script: ", path);
  std::string line;
  std::int64_t sent = 0;
  while (std::getline(in, line)) {
    if (ffp::trim(line).empty()) continue;
    ffp::write_line(conn, line);
    ++sent;
  }
  if (send_shutdown) ffp::write_line(conn, "{\"op\":\"shutdown\"}");
  // Half-close so the server sees EOF after the last request, drains the
  // session, and closes — without this (and without a shutdown op in the
  // script) both sides would wait on each other forever.
  ffp::shutdown_write(conn);
  std::string reply;
  while (sent > 0 && reader.next(reply, kClientMaxLineBytes)) {
    std::printf("%s\n", reply.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ffp::ArgParser args;
  args.flag("connect", "", "ffp_serve port on 127.0.0.1 (required)")
      .flag("script", "", "file of raw request lines to replay (no retries)")
      .flag("graph", "", "graph file to submit (server-side path)")
      .flag("jobs", "1", "number of jobs to submit (ids j0..jN-1)")
      .flag("k", "8", "parts per job")
      .flag("method", "fusion_fission", "registry solver spec")
      .flag("objective", "mcut", "cut|ncut|mcut|rcut")
      .flag("seed", "1", "seed of job j0; job ji uses seed+i")
      .flag("steps", "10000", "deterministic step budget per job")
      .flag("threads", "0", "intra-run worker want per job")
      .flag("priority", "0", "job priority (higher runs first)")
      .flag("restarts", "1", "restart portfolio width per job")
      .flag("queue-ttl-ms", "0", "per-job queue TTL (0 = none)")
      .flag("checkpoint-every-ms", "0", "durable checkpoint interval per job "
                                        "(needs a --state-dir server; 0 = off)")
      .toggle("warm-start", "resume each job from its durable checkpoint "
                            "when one exists")
      .toggle("evolve", "seed each job's restarts from the server's elite "
                        "archive and feed results back (needs a server with "
                        "--evolve-elites > 0)")
      .flag("retries", "5", "connection attempts before giving up")
      .flag("backoff-ms", "100", "base retry backoff (doubles per attempt, "
                                 "capped at 50x, jittered)")
      .flag("retry-seed", "1", "jitter seed (deterministic backoff schedule)")
      .flag("timeout-ms", "0", "per-read/write deadline awaiting responses "
                               "(0 = block forever)")
      .flag("out-dir", "", "write each partition to <out-dir>/<id>.part")
      .toggle("shutdown", "send shutdown after the last result")
      .toggle("help", "show this help");
  try {
    args.parse(argc, argv);
    if (args.get_bool("help")) {
      std::fputs(args.usage().c_str(), stdout);
      return 0;
    }
    const auto port = ffp::parse_int(args.get("connect"));
    FFP_CHECK(port.has_value() && *port > 0 && *port <= 65535,
              "--connect must be a port number");

    if (!args.get("script").empty()) {
      ffp::FdHandle conn = ffp::tcp_connect(static_cast<int>(*port));
      ffp::LineReader reader(conn);
      return run_script(conn, reader, args.get("script"),
                        args.get_bool("shutdown"));
    }

    FFP_CHECK(!args.get("graph").empty(),
              "need --graph (or --script) to submit jobs");
    const std::int64_t jobs = args.get_int("jobs");
    FFP_CHECK(jobs >= 1, "--jobs must be >= 1");
    FFP_CHECK(args.get_int("restarts") >= 1, "--restarts must be >= 1");
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
    const std::int64_t retries = args.get_int("retries");
    FFP_CHECK(retries >= 1, "--retries must be >= 1");
    const std::int64_t backoff_ms = args.get_int("backoff-ms");
    FFP_CHECK(backoff_ms >= 1, "--backoff-ms must be >= 1");
    const std::int64_t timeout_ms = args.get_int("timeout-ms");
    FFP_CHECK(timeout_ms >= 0, "--timeout-ms must be >= 0");

    ffp::ServiceClientOptions options;
    options.port = static_cast<int>(*port);
    options.retry.max_attempts = static_cast<int>(retries);
    options.retry.base_ms = static_cast<double>(backoff_ms);
    options.retry.max_ms = static_cast<double>(backoff_ms) * 50;
    options.retry.seed = static_cast<std::uint64_t>(args.get_int("retry-seed"));
    options.io_timeout_ms = static_cast<double>(timeout_ms);
    options.on_line = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
    };
    options.on_backoff = [](int attempt, double wait_ms,
                            const std::string& why) {
      std::fprintf(stderr,
                   "ffp_client: attempt %d failed (%s); retrying in %.0f ms\n",
                   attempt, why.c_str(), wait_ms);
    };

    std::vector<ffp::ClientJob> batch;
    batch.reserve(static_cast<std::size_t>(jobs));
    for (std::int64_t i = 0; i < jobs; ++i) {
      const std::string id = "j" + std::to_string(i);
      batch.push_back(
          {id, submit_line(args, id, seed + static_cast<std::uint64_t>(i))});
    }

    ffp::ServiceClient client(options);
    const std::vector<ffp::ClientResult> results = client.run(batch);

    std::size_t failed = 0;
    const std::string out_dir = args.get("out-dir");
    for (const ffp::ClientResult& r : results) {
      if (!r.ok) {
        ++failed;
        std::fprintf(stderr, "ffp_client: job '%s' failed [%.*s]: %s\n",
                     r.id.c_str(),
                     static_cast<int>(ffp::err_name(r.code).size()),
                     ffp::err_name(r.code).data(), r.error.c_str());
        continue;
      }
      if (!out_dir.empty()) {
        write_result_partition(r.result_line, r.id,
                               out_dir + "/" + r.id + ".part");
      }
    }
    if (args.get_bool("shutdown")) {
      // Best-effort: the server may gate remote shutdown (Forbidden) or
      // be gone already; neither should fail a batch that succeeded.
      try {
        ffp::FdHandle conn = ffp::tcp_connect(static_cast<int>(*port));
        ffp::LineReader reader(conn);
        if (timeout_ms > 0) {
          reader.set_timeout_ms(static_cast<double>(timeout_ms));
        }
        ffp::write_line(conn, "{\"op\":\"shutdown\"}");
        std::string line;
        while (reader.next(line, kClientMaxLineBytes)) {
          std::printf("%s\n", line.c_str());
        }
      } catch (const ffp::Error& e) {
        std::fprintf(stderr, "ffp_client: shutdown send failed: %s\n",
                     e.what());
      }
    }
    if (failed > 0) {
      std::fprintf(stderr, "ffp_client: %zu job(s) failed\n", failed);
      return 1;
    }
    return 0;
  } catch (const ffp::Error& e) {
    std::fprintf(stderr, "ffp_client: %s\n", e.what());
    return 1;
  }
}
