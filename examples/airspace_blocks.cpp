// The paper's application (§5): cut the European "country core area" into
// k functional airspace blocks, maximizing aircraft flows inside blocks and
// minimizing flows between them (the Mcut criterion).
//
//   $ ./airspace_blocks [k] [budget_ms] [output.part] [output.geojson]
//
// Reconstructs the 762-sector / 3,165-edge core-area graph, runs
// fusion-fission, prints a per-block report with country composition, and
// optionally writes the partition (Chaco/METIS format) and a GeoJSON map
// of the blocks for any viewer.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "atc/core_area.hpp"
#include "atc/geojson.hpp"
#include "ffp/api.hpp"
#include "graph/io.hpp"
#include "partition/balance.hpp"
#include "partition/objectives.hpp"

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 32;
  const double budget_ms = argc > 2 ? std::atof(argv[2]) : 3000.0;
  const std::string out_path = argc > 3 ? argv[3] : "";

  std::printf("building the synthetic country core area "
              "(substitute for the paper's ENAC data)...\n");
  const auto core = ffp::make_core_area_graph();
  std::printf("  %s\n", core.graph.summary().c_str());
  std::printf("  %zu hub airports, flows routed by gravity model\n\n",
              core.hubs.size());

  ffp::api::SolveSpec spec;
  spec.method = "fusion_fission";
  spec.k = k;
  spec.objective = ffp::ObjectiveKind::MinMaxCut;  // §5: the right criterion
  spec.budget_ms = budget_ms;
  spec.seed = 2006;
  std::printf("running fusion-fission for %.1fs toward %d blocks...\n",
              budget_ms / 1000.0, k);
  const auto result = ffp::api::Engine::shared().solve(
      ffp::api::Problem::viewing(core.graph), spec);
  const auto& blocks = result.best;

  std::printf("\nresult: Mcut = %.2f   Cut/1000 = %.1f   Ncut = %.2f   "
              "imbalance = %.2f\n\n",
              result.best_value,
              ffp::objective(ffp::ObjectiveKind::Cut).evaluate(blocks) / 1000.0,
              ffp::objective(ffp::ObjectiveKind::NormalizedCut).evaluate(blocks),
              ffp::imbalance(blocks, k));

  const auto countries = ffp::core_area_countries();
  std::printf("%-6s %8s %12s %10s  %s\n", "block", "sectors", "intern.flow",
              "cut flow", "dominant countries");
  for (int q : blocks.nonempty_parts()) {
    // Count sectors per country inside the block.
    std::map<int, int> per_country;
    for (ffp::VertexId v : blocks.members(q)) {
      ++per_country[core.airspace.sectors[static_cast<std::size_t>(v)].country];
    }
    // Two most common countries.
    std::string dominant;
    for (int pick = 0; pick < 2; ++pick) {
      int best_c = -1, best_n = 0;
      for (const auto& [c, n] : per_country) {
        if (n > best_n) {
          best_n = n;
          best_c = c;
        }
      }
      if (best_c < 0) break;
      if (!dominant.empty()) dominant += ", ";
      dominant += countries[static_cast<std::size_t>(best_c)].name;
      dominant += " (" + std::to_string(best_n) + ")";
      per_country.erase(best_c);
    }
    std::printf("%-6d %8d %12.0f %10.0f  %s\n", q, blocks.part_size(q),
                blocks.part_internal(q) / 2.0, blocks.part_cut(q),
                dominant.c_str());
  }

  // The FABOP-style takeaway: blocks are flow-coherent, not border-coherent.
  int crossing_blocks = 0;
  for (int q : blocks.nonempty_parts()) {
    std::map<int, int> per_country;
    for (ffp::VertexId v : blocks.members(q)) {
      ++per_country[core.airspace.sectors[static_cast<std::size_t>(v)].country];
    }
    if (per_country.size() > 1) ++crossing_blocks;
  }
  std::printf("\n%d of %d blocks cross a country border — the paper's point: "
              "blocks follow flows, not borders.\n",
              crossing_blocks, blocks.num_nonempty_parts());

  if (!out_path.empty()) {
    ffp::write_partition_file(blocks.assignment(), out_path);
    std::printf("partition written to %s\n", out_path.c_str());
  }
  if (argc > 4) {
    ffp::write_geojson_file(core.airspace, blocks.assignment(), argv[4]);
    std::printf("geojson map written to %s\n", argv[4]);
  }
  return 0;
}
