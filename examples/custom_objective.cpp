// Extending ffp with a custom criterion: the metaheuristics only see the
// ObjectiveFn interface, so any partition-quality measure plugs in. This
// example defines "max-part cut" (minimize the WORST part's boundary — a
// bottleneck objective the paper does not consider), optimizes it with
// k-way refinement and an ObjectiveTracker-driven annealing loop, and
// reports each stage's wall time through the shared util/timer.hpp path
// (the same monotonic clock the bench JSON uses).
//
//   $ ./custom_objective
#include <algorithm>
#include <cstdio>

#include "ffp/api.hpp"
#include "graph/generators.hpp"
#include "metaheuristics/annealing.hpp"
#include "metaheuristics/percolation.hpp"
#include "partition/objective_tracker.hpp"
#include "refine/kway_fm.hpp"
#include "util/timer.hpp"

namespace {

/// Bottleneck objective: max over parts of cut(A, V−A).
class MaxPartCut final : public ffp::ObjectiveFn {
 public:
  std::string_view name() const override { return "MaxPartCut"; }

  double evaluate(const ffp::Partition& p) const override {
    double worst = 0.0;
    for (int q : p.nonempty_parts()) {
      worst = std::max(worst, p.part_cut(q));
    }
    return worst;
  }

  // A max() objective has no cheap local delta, so reuse the library's
  // trial-move helper semantics: simulate the move through the partition
  // statistics the Partition already maintains.
  double move_delta(const ffp::Partition& p, ffp::VertexId v,
                    int target) const override {
    const int from = p.part_of(v);
    if (from == target) return 0.0;
    const auto prof = p.move_profile(v, target);
    const double d = p.graph().weighted_degree(v);
    const double cut_from_new = p.part_cut(from) + 2.0 * prof.ext_from - d;
    const double cut_to_new = p.part_cut(target) + d - 2.0 * prof.ext_to;
    double worst_before = 0.0, worst_after = 0.0;
    for (int q : p.nonempty_parts()) {
      worst_before = std::max(worst_before, p.part_cut(q));
      const double c = q == from ? cut_from_new
                       : q == target ? cut_to_new
                                     : p.part_cut(q);
      worst_after = std::max(worst_after, c);
    }
    if (p.part_size(from) == 1) {
      // The source part disappears; recompute without it.
      worst_after = cut_to_new;
      for (int q : p.nonempty_parts()) {
        if (q != from && q != target) {
          worst_after = std::max(worst_after, p.part_cut(q));
        }
      }
    }
    return worst_after - worst_before;
  }
};

}  // namespace

int main() {
  const int k = 6;
  const auto g = ffp::with_random_weights(
      ffp::make_random_geometric(300, 0.1, 11), 1.0, 8.0, 12);
  std::printf("graph: %s, k = %d\n\n", g.summary().c_str(), k);

  // The BUILT-IN criteria are one facade call — the same Engine the CLI
  // and daemon run. Custom ObjectiveFn objectives are not in SolveSpec's
  // vocabulary (it is a wire-friendly value type), so the rest of this
  // example drives the algorithm layer directly, one level below api/.
  {
    ffp::api::SolveSpec spec;
    spec.method = "fusion_fission";
    spec.k = k;
    spec.objective = ffp::ObjectiveKind::MinMaxCut;
    spec.budget_ms = 400;
    const auto res = ffp::api::Engine::shared().solve(
        ffp::api::Problem::viewing(g), spec);
    std::printf("facade baseline:    Mcut       = %8.3f   total cut = %8.1f"
                "   (%.3f s)\n\n",
                res.best_value, res.best.edge_cut(), res.seconds);
  }

  const MaxPartCut bottleneck;
  ffp::Partition start(g, 1);
  const double perc_sec = ffp::timed_seconds(
      [&] { start = ffp::percolation_partition(g, k, {}); });
  std::printf("percolation start:  MaxPartCut = %8.1f   total cut = %8.1f"
              "   (%.3f s)\n",
              bottleneck.evaluate(start), start.edge_cut(), perc_sec);

  // Local refinement under the custom objective.
  ffp::Rng rng(13);
  ffp::KwayFmOptions fm_opt;
  fm_opt.enforce_balance = false;
  ffp::Partition p = start;
  const double fm_sec = ffp::timed_seconds(
      [&] { ffp::kway_fm_refine(p, bottleneck, fm_opt, rng); });
  std::printf("after k-way FM:     MaxPartCut = %8.1f   total cut = %8.1f"
              "   (%.3f s)\n",
              bottleneck.evaluate(p), p.edge_cut(), fm_sec);

  // The library's SA is wired to the built-in kinds (the paper's
  // protocol), so for custom objectives the idiomatic loop is annealing by
  // hand on an ObjectiveTracker: it owns the partition, keeps the running
  // objective in sync across moves (move_delta accumulation for custom
  // fns), and hands the partition back at the end.
  ffp::ObjectiveTracker tracker(std::move(p), bottleneck);
  double best = tracker.value();
  std::vector<int> best_assign(tracker.partition().assignment().begin(),
                               tracker.partition().assignment().end());
  const double sa_sec = ffp::timed_seconds([&] {
    double temperature = best * 0.01;
    for (int step = 0; step < 300000; ++step) {
      const auto v = static_cast<ffp::VertexId>(
          rng.below(static_cast<std::uint64_t>(g.num_vertices())));
      const int target = static_cast<int>(rng.below(k));
      const int from = tracker.partition().part_of(v);
      if (target == from || tracker.partition().part_size(from) <= 1) continue;
      const double delta = tracker.move_delta(v, target);
      if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
        tracker.move(v, target, delta);  // reuses the delta just computed
        if (tracker.value() < best) {
          best = tracker.value();
          best_assign.assign(tracker.partition().assignment().begin(),
                             tracker.partition().assignment().end());
        }
      }
      temperature *= 0.99997;  // effectively frozen by the end of the run
    }
  });
  p = ffp::Partition::from_assignment(g, best_assign, k);
  std::printf("after annealing:    MaxPartCut = %8.1f   total cut = %8.1f"
              "   (%.3f s)\n",
              bottleneck.evaluate(p), p.edge_cut(), sa_sec);
  std::printf("\nany ObjectiveFn works with ObjectiveTracker::move / "
              "move_delta —\nthe paper's point that metaheuristics 'can "
              "easily change of goals'.\n");
  return 0;
}
