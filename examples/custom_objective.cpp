// Extending ffp with a custom criterion: the metaheuristics only see the
// ObjectiveFn interface, so any partition-quality measure plugs in. This
// example defines "max-part cut" (minimize the WORST part's boundary — a
// bottleneck objective the paper does not consider) and optimizes it with
// simulated annealing and k-way refinement.
//
//   $ ./custom_objective
#include <algorithm>
#include <cstdio>

#include "graph/generators.hpp"
#include "metaheuristics/annealing.hpp"
#include "metaheuristics/percolation.hpp"
#include "refine/kway_fm.hpp"

namespace {

/// Bottleneck objective: max over parts of cut(A, V−A).
class MaxPartCut final : public ffp::ObjectiveFn {
 public:
  std::string_view name() const override { return "MaxPartCut"; }

  double evaluate(const ffp::Partition& p) const override {
    double worst = 0.0;
    for (int q : p.nonempty_parts()) {
      worst = std::max(worst, p.part_cut(q));
    }
    return worst;
  }

  // A max() objective has no cheap local delta, so reuse the library's
  // trial-move helper semantics: simulate the move through the partition
  // statistics the Partition already maintains.
  double move_delta(const ffp::Partition& p, ffp::VertexId v,
                    int target) const override {
    const int from = p.part_of(v);
    if (from == target) return 0.0;
    const auto prof = p.move_profile(v, target);
    const double d = p.graph().weighted_degree(v);
    const double cut_from_new = p.part_cut(from) + 2.0 * prof.ext_from - d;
    const double cut_to_new = p.part_cut(target) + d - 2.0 * prof.ext_to;
    double worst_before = 0.0, worst_after = 0.0;
    for (int q : p.nonempty_parts()) {
      worst_before = std::max(worst_before, p.part_cut(q));
      const double c = q == from ? cut_from_new
                       : q == target ? cut_to_new
                                     : p.part_cut(q);
      worst_after = std::max(worst_after, c);
    }
    if (p.part_size(from) == 1) {
      // The source part disappears; recompute without it.
      worst_after = cut_to_new;
      for (int q : p.nonempty_parts()) {
        if (q != from && q != target) {
          worst_after = std::max(worst_after, p.part_cut(q));
        }
      }
    }
    return worst_after - worst_before;
  }
};

}  // namespace

int main() {
  const int k = 6;
  const auto g = ffp::with_random_weights(
      ffp::make_random_geometric(300, 0.1, 11), 1.0, 8.0, 12);
  std::printf("graph: %s, k = %d\n\n", g.summary().c_str(), k);

  const MaxPartCut bottleneck;
  auto p = ffp::percolation_partition(g, k, {});
  std::printf("percolation start:  MaxPartCut = %8.1f   total cut = %8.1f\n",
              bottleneck.evaluate(p), p.edge_cut());

  // Local refinement under the custom objective.
  ffp::Rng rng(13);
  ffp::KwayFmOptions fm_opt;
  fm_opt.enforce_balance = false;
  ffp::kway_fm_refine(p, bottleneck, fm_opt, rng);
  std::printf("after k-way FM:     MaxPartCut = %8.1f   total cut = %8.1f\n",
              bottleneck.evaluate(p), p.edge_cut());

  // The library's SA is wired to the built-in kinds (the paper's
  // protocol), so for custom objectives the idiomatic loop is annealing by
  // hand on top of Partition::move + ObjectiveFn::move_delta:
  double current = bottleneck.evaluate(p);
  double best = current;
  std::vector<int> best_assign(p.assignment().begin(), p.assignment().end());
  double temperature = current * 0.01;
  for (int step = 0; step < 300000; ++step) {
    const auto v = static_cast<ffp::VertexId>(
        rng.below(static_cast<std::uint64_t>(g.num_vertices())));
    const int target = static_cast<int>(rng.below(k));
    if (target == p.part_of(v) || p.part_size(p.part_of(v)) <= 1) continue;
    const double delta = bottleneck.move_delta(p, v, target);
    if (delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature)) {
      p.move(v, target);
      current += delta;
      if (current < best) {
        best = current;
        best_assign.assign(p.assignment().begin(), p.assignment().end());
      }
    }
    temperature *= 0.99997;  // effectively frozen by the end of the run
  }
  p = ffp::Partition::from_assignment(g, best_assign, k);
  std::printf("after annealing:    MaxPartCut = %8.1f   total cut = %8.1f\n",
              bottleneck.evaluate(p), p.edge_cut());
  std::printf("\nany ObjectiveFn works with Partition::move / move_delta —\n"
              "the paper's point that metaheuristics 'can easily change of "
              "goals'.\n");
  return 0;
}
