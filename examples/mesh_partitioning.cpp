// The classic graph-partitioning motivation (§1): distribute a finite-
// element-style mesh over processors so per-processor work is balanced and
// inter-processor communication (edge cut) is small.
//
//   $ ./mesh_partitioning [k]
//
// Compares the specific tools (spectral, multilevel) with the paper's
// metaheuristics on a 3D mesh, reporting edge cut, imbalance, communication
// volume, and wall-clock time — the trade-off the paper's conclusion
// describes (specific tools are faster; metaheuristics win on quality given
// time).
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "ffp/api.hpp"
#include "graph/generators.hpp"
#include "partition/balance.hpp"

namespace {

/// Communication volume: for each part, the number of distinct remote
/// (vertex, part) adjacencies — the ghost cells a solver would exchange.
double comm_volume(const ffp::Partition& p) {
  const auto& g = p.graph();
  double volume = 0.0;
  std::vector<char> seen(static_cast<std::size_t>(p.num_parts()), 0);
  for (ffp::VertexId v = 0; v < g.num_vertices(); ++v) {
    std::vector<int> touched;
    for (ffp::VertexId u : g.neighbors(v)) {
      const int q = p.part_of(u);
      if (q != p.part_of(v) && !seen[static_cast<std::size_t>(q)]) {
        seen[static_cast<std::size_t>(q)] = 1;
        touched.push_back(q);
      }
    }
    volume += static_cast<double>(touched.size());
    for (int q : touched) seen[static_cast<std::size_t>(q)] = 0;
  }
  return volume;
}

void report(const char* name, const ffp::Partition& p, double seconds,
            int k) {
  std::printf("  %-18s cut %8.0f   imbalance %5.2f   comm-volume %7.0f   "
              "%6.2fs\n",
              name, p.edge_cut(), ffp::imbalance(p, k), comm_volume(p),
              seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 16;
  const ffp::Graph mesh = ffp::make_grid3d(12, 12, 8);
  std::printf("mesh: %s, partitioning into %d processor domains\n\n",
              mesh.summary().c_str(), k);

  // One facade spec, many methods: distribution is the mesh use case, so
  // every run optimizes plain Cut under the same 2 s budget and seed.
  const ffp::api::Problem problem = ffp::api::Problem::viewing(mesh);
  ffp::api::SolveSpec spec;
  spec.k = k;
  spec.objective = ffp::ObjectiveKind::Cut;
  spec.budget_ms = 2000;
  spec.seed = 1;

  struct Row {
    const char* label;
    const char* method;
  };
  const Row rows[] = {
      {"multilevel", "multilevel"},
      {"spectral+KL", "spectral:kl=true"},   // k must be a power of two
      {"percolation", "percolation"},
      {"annealing (2s)", "annealing"},
      {"fusion-fission(2s)", "fusion_fission"},
  };
  for (const auto& row : rows) {
    if (std::string_view(row.label) == "spectral+KL" && (k & (k - 1)) != 0) {
      continue;
    }
    spec.method = row.method;
    const auto res = ffp::api::Engine::shared().solve(problem, spec);
    report(row.label, res.best, res.seconds, k);
  }

  // The facade's multi-start portfolio: 4 independently seeded
  // fusion-fission restarts across the hardware threads, best kept. The
  // step budget keeps the winner bit-identical at any thread count.
  {
    spec.method = "fusion_fission";
    spec.restarts = 4;
    spec.steps = 20000;
    const auto res = ffp::api::Engine::shared().solve(problem, spec);
    report("ff portfolio x4", res.best, res.seconds, k);
  }

  std::printf("\nthe paper's conclusion in miniature: the specific tools "
              "finish in milliseconds;\nthe metaheuristics spend their "
              "budget and close in on (or beat) them.\n");
  return 0;
}
