// The classic graph-partitioning motivation (§1): distribute a finite-
// element-style mesh over processors so per-processor work is balanced and
// inter-processor communication (edge cut) is small.
//
//   $ ./mesh_partitioning [k]
//
// Compares the specific tools (spectral, multilevel) with the paper's
// metaheuristics on a 3D mesh, reporting edge cut, imbalance, communication
// volume, and wall-clock time — the trade-off the paper's conclusion
// describes (specific tools are faster; metaheuristics win on quality given
// time).
#include <cstdio>
#include <cstdlib>

#include "core/fusion_fission.hpp"
#include "graph/generators.hpp"
#include "metaheuristics/annealing.hpp"
#include "metaheuristics/percolation.hpp"
#include "multilevel/multilevel.hpp"
#include "partition/balance.hpp"
#include "spectral/spectral_partition.hpp"
#include "util/timer.hpp"

namespace {

/// Communication volume: for each part, the number of distinct remote
/// (vertex, part) adjacencies — the ghost cells a solver would exchange.
double comm_volume(const ffp::Partition& p) {
  const auto& g = p.graph();
  double volume = 0.0;
  std::vector<char> seen(static_cast<std::size_t>(p.num_parts()), 0);
  for (ffp::VertexId v = 0; v < g.num_vertices(); ++v) {
    std::vector<int> touched;
    for (ffp::VertexId u : g.neighbors(v)) {
      const int q = p.part_of(u);
      if (q != p.part_of(v) && !seen[static_cast<std::size_t>(q)]) {
        seen[static_cast<std::size_t>(q)] = 1;
        touched.push_back(q);
      }
    }
    volume += static_cast<double>(touched.size());
    for (int q : touched) seen[static_cast<std::size_t>(q)] = 0;
  }
  return volume;
}

void report(const char* name, const ffp::Partition& p, double seconds,
            int k) {
  std::printf("  %-18s cut %8.0f   imbalance %5.2f   comm-volume %7.0f   "
              "%6.2fs\n",
              name, p.edge_cut(), ffp::imbalance(p, k), comm_volume(p),
              seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 16;
  const ffp::Graph mesh = ffp::make_grid3d(12, 12, 8);
  std::printf("mesh: %s, partitioning into %d processor domains\n\n",
              mesh.summary().c_str(), k);

  {
    ffp::WallTimer t;
    ffp::MultilevelOptions opt;
    const auto p = ffp::multilevel_partition(mesh, k, opt);
    report("multilevel", p, t.elapsed_seconds(), k);
  }
  if ((k & (k - 1)) == 0) {
    ffp::WallTimer t;
    ffp::SpectralOptions opt;
    opt.kl_refine = true;
    const auto p = ffp::spectral_partition(mesh, k, opt);
    report("spectral+KL", p, t.elapsed_seconds(), k);
  }
  {
    ffp::WallTimer t;
    const auto p = ffp::percolation_partition(mesh, k, {});
    report("percolation", p, t.elapsed_seconds(), k);
  }
  {
    ffp::WallTimer t;
    const auto init = ffp::percolation_partition(mesh, k, {});
    ffp::AnnealingOptions opt;
    opt.objective = ffp::ObjectiveKind::Cut;
    ffp::SimulatedAnnealing sa(mesh, k, opt);
    const auto res = sa.run(init, ffp::StopCondition::after_millis(2000));
    report("annealing (2s)", res.best, t.elapsed_seconds(), k);
  }
  {
    ffp::WallTimer t;
    ffp::FusionFissionOptions opt;
    opt.objective = ffp::ObjectiveKind::Cut;
    ffp::FusionFission ff(mesh, k, opt);
    const auto res = ff.run(ffp::StopCondition::after_millis(2000));
    report("fusion-fission(2s)", res.best, t.elapsed_seconds(), k);
  }

  std::printf("\nthe paper's conclusion in miniature: the specific tools "
              "finish in milliseconds;\nthe metaheuristics spend their "
              "budget and close in on (or beat) them.\n");
  return 0;
}
