// Quickstart: partition a graph through the ffp::api facade — the same
// entry point the CLI, the daemon, and every bench in the repo use.
//
//   $ ./quickstart [k]
//
// Builds a weighted random geometric graph, runs the paper's
// fusion-fission metaheuristic for half a second, then reruns it as an
// async 4-restart portfolio solve with streamed improvements — two calls
// on one Engine.
#include <cstdio>
#include <cstdlib>

#include "ffp/api.hpp"
#include "graph/generators.hpp"
#include "partition/balance.hpp"
#include "partition/objectives.hpp"

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 8;

  // 1. A Problem. Graphs enter the facade from a file
  //    (Problem::from_file("mesh.graph")), a generator spec
  //    (Problem::generated("grid2d:64,64")), or any ffp::Graph you built.
  const ffp::api::Problem problem = ffp::api::Problem::from_graph(
      ffp::with_random_weights(
          ffp::make_random_geometric(400, 0.09, /*seed=*/42), 1.0, 10.0,
          /*seed=*/43));
  std::printf("graph: %s\n", problem.graph().summary().c_str());

  // 2. A SolveSpec: method (any registry spec — try "multilevel:arity=oct"
  //    or "fusion_fission:nbt=800,tmax=1.2"), target k, criterion (the
  //    paper's Mcut by default), budget, seed.
  ffp::api::SolveSpec spec;
  spec.method = "fusion_fission";
  spec.k = k;
  spec.objective = ffp::ObjectiveKind::MinMaxCut;
  spec.budget_ms = 500;
  spec.seed = 7;

  // 3. Solve. Engine::shared() queues the solve on the process-wide
  //    scheduler and thread budget; solve() blocks and returns the result.
  const ffp::SolverResult result =
      ffp::api::Engine::shared().solve(problem, spec);
  const auto& best = result.best;
  std::printf("\nbest %d-partition (%.0f steps, %.0f fusions, %.0f fissions, "
              "%.0f reheats) in %.2fs:\n",
              best.num_nonempty_parts(), result.stat("steps"),
              result.stat("fusions"), result.stat("fissions"),
              result.stat("reheats"), result.seconds);
  std::printf("  Cut  = %10.1f\n",
              ffp::objective(ffp::ObjectiveKind::Cut).evaluate(best));
  std::printf("  Ncut = %10.3f\n",
              ffp::objective(ffp::ObjectiveKind::NormalizedCut).evaluate(best));
  std::printf("  Mcut = %10.3f (= best_value)\n", result.best_value);
  std::printf("  imbalance = %.3f\n", ffp::imbalance(best, k));

  std::printf("\nblocks:\n");
  for (int q : best.nonempty_parts()) {
    std::printf("  block %2d: %3d vertices, internal weight %8.1f, "
                "cut weight %8.1f\n",
                q, best.part_size(q), best.part_internal(q) / 2.0,
                best.part_cut(q));
  }

  // 4. The same spec as an ASYNC portfolio solve: 4 independently seeded
  //    restarts, improvements streamed as they happen, a handle to
  //    wait/poll/cancel. A step budget (set here implicitly by the
  //    determinism rule, or explicitly via spec.steps) makes the outcome
  //    bit-identical whatever the thread count.
  spec.restarts = 4;
  spec.steps = 20000;
  const ffp::api::SolveHandle handle = ffp::api::Engine::shared().submit(
      problem, spec, [](double seconds, double value) {
        std::printf("  improvement at %5.2fs: Mcut = %.3f\n", seconds, value);
      });
  std::printf("\nportfolio of 4 restarts, streaming:\n");
  const ffp::JobStatus status = handle.wait();
  std::printf("portfolio best Mcut = %.3f (restart %.0f won) in %.2fs\n",
              status.result->best_value,
              status.result->stat("winner_restart"), status.result->seconds);
  return 0;
}
