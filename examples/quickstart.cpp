// Quickstart: partition a graph through the solver engine layer.
//
//   $ ./quickstart [k]
//
// Builds a weighted random geometric graph, constructs the paper's
// fusion-fission metaheuristic from the solver registry, runs it for half a
// second, then reruns it as a 4-restart parallel portfolio — the same two
// calls every tool and bench in the repo is built on.
#include <cstdio>
#include <cstdlib>

#include "graph/generators.hpp"
#include "partition/balance.hpp"
#include "partition/objectives.hpp"
#include "solver/portfolio.hpp"
#include "solver/registry.hpp"

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 8;

  // 1. A graph. Any ffp::Graph works: build one from edges, read a Chaco /
  //    METIS file (graph/io.hpp), or use a generator.
  const ffp::Graph graph = ffp::with_random_weights(
      ffp::make_random_geometric(400, 0.09, /*seed=*/42), 1.0, 10.0,
      /*seed=*/43);
  std::printf("graph: %s\n", graph.summary().c_str());

  // 2. A solver, by registry spec. "fusion_fission" is the paper's
  //    metaheuristic; try "multilevel:arity=oct" or
  //    "spectral:engine=rqi,kl=true" for the Chaco-family tools, or tune
  //    options inline: "fusion_fission:nbt=800,tmax=1.2".
  const ffp::SolverPtr solver = ffp::make_solver("fusion_fission");

  // 3. One request drives any solver: target k, criterion (the paper's Mcut
  //    by default), budget, seed.
  ffp::SolverRequest request;
  request.k = k;
  request.objective = ffp::ObjectiveKind::MinMaxCut;
  request.stop = ffp::StopCondition::after_millis(500);
  request.seed = 7;

  const ffp::SolverResult result = solver->run(graph, request);
  const auto& best = result.best;
  std::printf("\nbest %d-partition (%.0f steps, %.0f fusions, %.0f fissions, "
              "%.0f reheats) in %.2fs:\n",
              best.num_nonempty_parts(), result.stat("steps"),
              result.stat("fusions"), result.stat("fissions"),
              result.stat("reheats"), result.seconds);
  std::printf("  Cut  = %10.1f\n",
              ffp::objective(ffp::ObjectiveKind::Cut).evaluate(best));
  std::printf("  Ncut = %10.3f\n",
              ffp::objective(ffp::ObjectiveKind::NormalizedCut).evaluate(best));
  std::printf("  Mcut = %10.3f (= best_value)\n", result.best_value);
  std::printf("  imbalance = %.3f\n", ffp::imbalance(best, k));

  std::printf("\nblocks:\n");
  for (int q : best.nonempty_parts()) {
    std::printf("  block %2d: %3d vertices, internal weight %8.1f, "
                "cut weight %8.1f\n",
                q, best.part_size(q), best.part_internal(q) / 2.0,
                best.part_cut(q));
  }

  // 4. The same request through a parallel portfolio: 4 independently
  //    seeded restarts across the hardware threads, best result kept. A
  //    step budget (instead of wall clock) makes the outcome bit-identical
  //    whatever the thread count.
  request.stop = ffp::StopCondition::after_steps(20000);
  ffp::PortfolioRunner portfolio(solver, {/*restarts=*/4, /*threads=*/0});
  const ffp::SolverResult team = portfolio.run(graph, request);
  std::printf("\nportfolio of %.0f restarts on %.0f threads: Mcut = %.3f "
              "(restart %.0f won) in %.2fs\n",
              team.stat("restarts"), team.stat("threads"), team.best_value,
              team.stat("winner_restart"), team.seconds);
  return 0;
}
