// Quickstart: partition a graph with the fusion-fission metaheuristic.
//
//   $ ./quickstart [k]
//
// Builds a weighted random geometric graph, runs fusion-fission for half a
// second, and prints the resulting blocks with all three of the paper's
// criteria.
#include <cstdio>
#include <cstdlib>

#include "core/fusion_fission.hpp"
#include "graph/generators.hpp"
#include "partition/balance.hpp"
#include "partition/objectives.hpp"

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 8;

  // 1. A graph. Any ffp::Graph works: build one from edges, read a Chaco /
  //    METIS file (graph/io.hpp), or use a generator.
  const ffp::Graph graph = ffp::with_random_weights(
      ffp::make_random_geometric(400, 0.09, /*seed=*/42), 1.0, 10.0,
      /*seed=*/43);
  std::printf("graph: %s\n", graph.summary().c_str());

  // 2. Configure fusion-fission. The objective is the paper's Mcut by
  //    default; seed makes the run reproducible.
  ffp::FusionFissionOptions options;
  options.objective = ffp::ObjectiveKind::MinMaxCut;
  options.seed = 7;

  ffp::FusionFission ff(graph, k, options);
  const auto result = ff.run(ffp::StopCondition::after_millis(500));

  // 3. Inspect the best k-partition found.
  const auto& best = result.best;
  std::printf("\nbest %d-partition after %lld steps "
              "(%lld fusions, %lld fissions, %d reheats):\n",
              best.num_nonempty_parts(), static_cast<long long>(result.steps),
              static_cast<long long>(result.fusions),
              static_cast<long long>(result.fissions), result.reheats);
  std::printf("  Cut  = %10.1f\n",
              ffp::objective(ffp::ObjectiveKind::Cut).evaluate(best));
  std::printf("  Ncut = %10.3f\n",
              ffp::objective(ffp::ObjectiveKind::NormalizedCut).evaluate(best));
  std::printf("  Mcut = %10.3f\n",
              ffp::objective(ffp::ObjectiveKind::MinMaxCut).evaluate(best));
  std::printf("  imbalance = %.3f\n", ffp::imbalance(best, k));

  std::printf("\nblocks:\n");
  for (int q : best.nonempty_parts()) {
    std::printf("  block %2d: %3d vertices, internal weight %8.1f, "
                "cut weight %8.1f\n",
                q, best.part_size(q), best.part_internal(q) / 2.0,
                best.part_cut(q));
  }

  // 4. The search also kept the best solution at every part count it
  //    visited (the paper: good solutions from k−5 to k+6).
  std::printf("\nbest objective by part count:\n");
  for (const auto& [parts, value] : result.best_by_part_count) {
    if (parts >= k - 3 && parts <= k + 3) {
      std::printf("  %2d parts: %.3f%s\n", parts, value,
                  parts == k ? "   <- target" : "");
    }
  }
  return 0;
}
