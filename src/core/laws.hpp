// Fusion-fission "laws" (§4.1): for every atom size there are two laws —
// one for fusion, one for fission — each a probability vector over how many
// nucleons the event ejects (0..3, truncated so that result atoms stay
// non-empty: "each law is composed of four probabilities, less if the sum
// of nucleons is lower").
//
// The laws learn: "if the law gives a better solution, the process is
// enforced, else it is weakened" — on success the chosen entry gains delta
// and the others lose delta/3 (the paper's rule: "we add to its probability
// an input value and remove to the other probabilities the third of this
// input value"); on failure the signs flip. Every probability is kept
// strictly inside (0,1) and the vector renormalized.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ffp {

enum class LawKind { Fusion, Fission };

/// Maximum nucleons a single event may eject.
inline constexpr int kMaxEjected = 3;

class LawTable {
 public:
  /// max_atom_size: largest atom the table must cover (= vertex count:
  /// "the number of laws is twice the number of vertices").
  /// delta: the reinforcement input value.
  LawTable(int max_atom_size, double delta);

  /// Number of valid ejection counts for an atom of `size` under `kind`:
  /// fission of size s needs s − m >= 2, fusion needs s − m >= 1.
  int choices(LawKind kind, int size) const;

  /// Samples an ejection count from the law.
  int sample(LawKind kind, int size, Rng& rng) const;

  /// Probability vector (size = choices(kind, size)).
  std::span<const double> probabilities(LawKind kind, int size) const;

  /// Reinforces (success) or weakens (failure) the entry `chosen`.
  void update(LawKind kind, int size, int chosen, bool success);

  int max_atom_size() const { return max_size_; }
  double delta() const { return delta_; }

 private:
  std::size_t index(LawKind kind, int size) const;

  int max_size_;
  double delta_;
  // Flat storage: [fusion laws | fission laws], each law kMaxEjected+1 wide.
  std::vector<std::array<double, kMaxEjected + 1>> probs_;
};

}  // namespace ffp
