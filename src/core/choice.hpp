// The fusion/fission choice function (§4.3). With x the nucleon count of
// the chosen atom, n̄ = nbv/k the target atom size, and
//
//   α(t) = k_slope · (tmax − t) / (tmax − tmin) + r,
//
// the probability that the atom undergoes FISSION is
//
//   choice(x) = 1                      if x > n̄ + 1/(2α(t))
//             = 0                      if x < n̄ − 1/(2α(t))
//             = α(t)·(x − n̄) + 1/2     otherwise.
//
// Hot (t ≈ tmax): α ≈ r is small, the window ±1/(2α) is wide and the slope
// shallow — fission/fusion is nearly a coin flip regardless of size. Cold:
// α grows, the choice becomes a sharp size thermostat around n̄. k_slope
// and r are the two user-adjusted parameters the paper calls k and r.
#pragma once

#include "util/check.hpp"

namespace ffp {

struct ChoiceParams {
  double target_size = 1.0;  ///< n̄ = nbv / k
  double tmax = 1.0;
  double tmin = 0.0;
  double slope = 4.0;   ///< the paper's "k" in α(t)
  double offset = 0.25; ///< the paper's "r" in α(t)
};

/// α(t) — always > 0 for offset > 0.
double choice_alpha(double t, const ChoiceParams& params);

/// Probability of fission for an atom with `size` nucleons at temperature t.
double fission_probability(int size, double t, const ChoiceParams& params);

}  // namespace ffp
