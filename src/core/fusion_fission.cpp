#include "core/fusion_fission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "metaheuristics/percolation.hpp"
#include "util/check.hpp"

namespace ffp {

struct FusionFission::State {
  Partition current;
  double current_energy = 0.0;
  Partition best;                 // best energy overall (reheat target)
  double best_energy = std::numeric_limits<double>::infinity();
  std::optional<Partition> best_at_k;  // best objective with exactly k parts
  double best_at_k_value = std::numeric_limits<double>::infinity();
  double temperature = 0.0;
  LawTable laws;
  Rng rng;
  FusionFissionResult* result = nullptr;
  bool init_mode = false;  // Algorithm 2: no nucleon-triggered fission

  State(Partition p, int max_atom, double delta, std::uint64_t seed)
      : current(std::move(p)),
        best(current),
        laws(max_atom, delta),
        rng(seed) {}
};

FusionFission::FusionFission(const Graph& g, int k,
                             FusionFissionOptions options)
    : g_(&g), k_(k), options_(options) {
  FFP_CHECK(k >= 2, "k must be >= 2");
  FFP_CHECK(g.num_vertices() >= k, "graph has fewer vertices than parts");
  FFP_CHECK(options.tmax > options.tmin && options.tmin >= 0.0,
            "need tmax > tmin >= 0");
  FFP_CHECK(options.nbt >= 1, "nbt must be >= 1");
  choice_.target_size = static_cast<double>(g.num_vertices()) / k;
  choice_.tmax = options.tmax;
  choice_.tmin = options.tmin;
  choice_.slope = options.choice_slope;
  choice_.offset = options.choice_offset;
  scaling_ = make_scaling(options.scaling, options.objective,
                          g.total_edge_weight());
}

double FusionFission::energy_of(const Partition& p) const {
  const double value = objective(options_.objective).evaluate(p);
  return partition_energy(value, p.num_nonempty_parts(), *scaling_);
}

// ---------------------------------------------------------------------------
// Shared operators
// ---------------------------------------------------------------------------

int FusionFission::select_fusion_partner(State& s, int atom) {
  // §4.2: "a second partition is selected according to its size, its
  // distance to the first one, and temperature". Connection weight is the
  // inverse distance; the size preference cools with temperature: hot → big
  // merged atoms are easy, cold → strongly size-penalized.
  static thread_local std::vector<std::pair<int, Weight>> conns;
  conns.clear();
  s.current.connections(atom, conns);
  if (conns.empty()) return -1;

  const double heat = (s.temperature - options_.tmin) /
                      (options_.tmax - options_.tmin);  // 1 hot … 0 cold
  const double size_a = s.current.part_size(atom);
  static thread_local std::vector<double> scores;
  scores.clear();
  for (const auto& [b, w] : conns) {
    const double merged = size_a + s.current.part_size(b);
    const double over = std::max(0.0, merged / choice_.target_size - 1.0);
    // Hot: penalty exponent ~0; cold: strong exponential size penalty.
    const double size_penalty = std::exp(-over * (1.0 - heat) * 3.0);
    scores.push_back(w * size_penalty);
  }
  const auto pick = s.rng.weighted_pick(scores);
  if (pick >= scores.size()) return conns[0].first;
  return conns[static_cast<std::size_t>(pick)].first;
}

std::vector<VertexId> FusionFission::pick_ejected(State& s, int atom,
                                                  int count) {
  // Eject the most "misplaced" boundary nucleons: those whose best
  // relocation improves the objective the most (external-minus-internal
  // connection is the Cut special case of this rule). Never empties the
  // atom.
  std::vector<VertexId> out;
  if (count <= 0) return out;
  const auto members = s.current.members(atom);
  const int keep = 1;
  count = std::min<int>(count, static_cast<int>(members.size()) - keep);
  if (count <= 0) return out;

  const auto& fn = objective(options_.objective);
  std::vector<std::pair<double, VertexId>> scored;
  scored.reserve(members.size());
  static thread_local std::vector<int> adjacent;
  for (VertexId v : members) {
    adjacent.clear();
    Weight external = 0.0;
    const auto nbrs = g_->neighbors(v);
    const auto ws = g_->neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const int q = s.current.part_of(nbrs[i]);
      if (q == atom) continue;
      external += ws[i];
      if (std::find(adjacent.begin(), adjacent.end(), q) == adjacent.end()) {
        adjacent.push_back(q);
      }
    }
    if (external <= 0.0) continue;  // interior nucleon: not ejectable
    double best_gain = -std::numeric_limits<double>::infinity();
    for (int q : adjacent) {
      best_gain = std::max(best_gain, -fn.move_delta(s.current, v, q));
    }
    scored.emplace_back(best_gain, v);
  }
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(count),
                                          scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(), std::greater<>());
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

int FusionFission::absorb_nucleon(State& s, VertexId v) {
  // nfusion: incorporate v into a connected atom (§4.2). The paper leaves
  // the choice among connected atoms open; we take the one with the best
  // objective delta (ties broken by connection weight), which makes every
  // ejection a genuine local repair of the criterion being optimized.
  const int from = s.current.part_of(v);
  const auto& fn = objective(options_.objective);
  int best = -1;
  double best_delta = std::numeric_limits<double>::infinity();
  static thread_local std::vector<int> candidates;
  candidates.clear();
  for (VertexId u : g_->neighbors(v)) {
    const int q = s.current.part_of(u);
    if (q == from) continue;
    if (std::find(candidates.begin(), candidates.end(), q) ==
        candidates.end()) {
      candidates.push_back(q);
    }
  }
  for (int q : candidates) {
    const double delta = fn.move_delta(s.current, v, q);
    if (delta < best_delta) {
      best_delta = delta;
      best = q;
    }
  }
  if (best == -1) {
    // Isolated from every other atom: pick any other non-empty atom.
    for (int q : s.current.nonempty_parts()) {
      if (q != from) {
        best = q;
        break;
      }
    }
  }
  if (best != -1 && s.current.part_size(from) > 1) {
    s.current.move(v, best);
    ++s.result->ejections;
  }
  return best;
}

void FusionFission::split_atom(State& s, int atom, bool allow_percolation) {
  const auto members_span = s.current.members(atom);
  if (members_span.size() < 2) return;
  std::vector<VertexId> members(members_span.begin(), members_span.end());

  std::vector<int> side;
  if (allow_percolation && options_.percolation_fission) {
    side = percolation_bisect(*g_, members, s.rng);
  } else {
    // Ablation / fallback: random halving.
    side.assign(members.size(), 0);
    for (std::size_t i = members.size() / 2; i < members.size(); ++i) {
      side[i] = 1;
    }
    s.rng.shuffle(side);
  }
  // Find a part slot for the new half (reuse an empty slot if any).
  int fresh = -1;
  for (int q = 0; q < s.current.num_parts(); ++q) {
    if (s.current.part_size(q) == 0) {
      fresh = q;
      break;
    }
  }
  if (fresh == -1) fresh = s.current.make_part();
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (side[i] == 1) s.current.move(members[i], fresh);
  }
  // Percolation can label everything one side on pathological subgraphs;
  // force a non-trivial split.
  if (s.current.part_size(fresh) == 0) {
    s.current.move(members.back(), fresh);
  } else if (s.current.part_size(atom) == 0) {
    s.current.move(members.front(), atom);
  }
}

void FusionFission::simple_fission(State& s, int atom) {
  split_atom(s, atom, /*allow_percolation=*/true);
}

// ---------------------------------------------------------------------------
// Algorithm 1 branches
// ---------------------------------------------------------------------------

void FusionFission::do_fusion(State& s, int atom) {
  const int partner = select_fusion_partner(s, atom);
  if (partner == -1) return;  // isolated atom; nothing to fuse with
  ++s.result->fusions;

  // Merge the smaller atom into the larger (cheaper move count).
  int src = atom, dst = partner;
  if (s.current.part_size(src) > s.current.part_size(dst)) std::swap(src, dst);
  const int merged_size = s.current.part_size(src) + s.current.part_size(dst);
  static thread_local std::vector<VertexId> to_move;
  to_move.assign(s.current.members(src).begin(), s.current.members(src).end());
  for (VertexId v : to_move) s.current.move(v, dst);

  // The fusion law for the merged size may eject nucleons.
  const int size_for_law = std::min(merged_size, s.laws.max_atom_size());
  const int eject =
      options_.use_laws ? s.laws.sample(LawKind::Fusion, size_for_law, s.rng) : 0;
  for (VertexId v : pick_ejected(s, dst, eject)) {
    absorb_nucleon(s, v);
  }

  if (options_.use_laws) {
    const double before = s.current_energy;
    const double after = energy_of(s.current);
    s.laws.update(LawKind::Fusion, size_for_law, eject, after < before);
  }
}

void FusionFission::do_fission(State& s, int atom) {
  if (s.current.part_size(atom) < 2) return;
  ++s.result->fissions;

  const int size_for_law =
      std::min(s.current.part_size(atom), s.laws.max_atom_size());
  split_atom(s, atom, /*allow_percolation=*/true);

  const int eject =
      options_.use_laws ? s.laws.sample(LawKind::Fission, size_for_law, s.rng) : 0;
  const auto ejected = pick_ejected(s, atom, eject);
  const double heat = (s.temperature - options_.tmin) /
                      (options_.tmax - options_.tmin);
  for (VertexId v : ejected) {
    // §4.2: hot nucleons trigger a simple fission of a connected atom; cold
    // nucleons are absorbed. Algorithm 2 (init) always absorbs.
    if (!s.init_mode && s.rng.bernoulli(heat)) {
      const int neighbor_atom = absorb_nucleon(s, v);
      if (neighbor_atom != -1 && s.current.part_size(neighbor_atom) >= 2) {
        simple_fission(s, neighbor_atom);
      }
    } else {
      absorb_nucleon(s, v);
    }
  }

  if (options_.use_laws) {
    const double before = s.current_energy;
    const double after = energy_of(s.current);
    s.laws.update(LawKind::Fission, size_for_law, eject, after < before);
  }
}

// ---------------------------------------------------------------------------
// Main loop
// ---------------------------------------------------------------------------

void FusionFission::note_partition(State& s, AnytimeRecorder* recorder) {
  const double value = objective(options_.objective).evaluate(s.current);
  const int p = s.current.num_nonempty_parts();
  s.current_energy = partition_energy(value, p, *scaling_);

  auto [it, inserted] = s.result->best_by_part_count.try_emplace(p, value);
  if (!inserted && value < it->second) it->second = value;

  if (s.current_energy < s.best_energy) {
    s.best_energy = s.current_energy;
    s.best = s.current;
  }
  if (p == k_ && value < s.best_at_k_value) {
    s.best_at_k_value = value;
    s.best_at_k = s.current;
    if (recorder != nullptr) recorder->record(value);
  }
}

void FusionFission::step(State& s) {
  ++s.result->steps;

  // choose_atom: uniformly over non-empty atoms.
  const auto atoms = s.current.nonempty_parts();
  const int atom = atoms[s.rng.below(atoms.size())];

  double p_fission =
      fission_probability(s.current.part_size(atom), s.temperature, choice_);

  // Customized choice function (see FusionFissionOptions::choice_term_bias):
  // an atom whose ratio term is worse than the molecule average is pushed
  // toward fission, a better-than-average atom toward staying fused.
  if (options_.choice_term_bias > 0.0 && !s.init_mode) {
    auto leak_ratio = [&](int q) {
      const double cut = s.current.part_cut(q);
      const double internal = s.current.part_internal(q);
      if (internal <= 0.0) return cut > 0.0 ? 1e6 : 0.0;
      return cut / internal;
    };
    const double term = leak_ratio(atom);
    double avg_term = 0.0;
    for (int q : atoms) avg_term += leak_ratio(q);
    avg_term /= static_cast<double>(atoms.size());
    if (avg_term > 0.0) {
      const double bias = std::clamp((term - avg_term) / avg_term, -1.0, 1.0);
      p_fission = std::clamp(
          p_fission + options_.choice_term_bias * bias, 0.0, 1.0);
    }
  }

  const bool can_fission = s.current.part_size(atom) >= 2;
  const bool can_fusion = s.current.num_nonempty_parts() >= 2;
  if ((s.rng.bernoulli(p_fission) && can_fission) || !can_fusion) {
    if (can_fission) do_fission(s, atom);
  } else {
    do_fusion(s, atom);
  }
}

Partition FusionFission::initialize() {
  FusionFissionResult scratch{Partition(*g_, 1), 0.0, 0.0, {}, 0, 0, 0, 0, 0};
  State s(Partition::singletons(*g_), g_->num_vertices(), options_.law_delta,
          options_.seed ^ 0xabcdef12345ULL);
  s.result = &scratch;
  s.init_mode = true;
  s.temperature = options_.tmax;  // fixed: Algorithm 2 removes temperature
  s.current_energy = energy_of(s.current);

  // Fusion-biased choice until the atom count first reaches k: with n
  // singleton atoms every atom is far below n̄, so choice() picks fusion
  // nearly always; each fusion reduces the atom count by one.
  const std::int64_t max_steps = 8LL * g_->num_vertices() + 64;
  for (std::int64_t i = 0;
       i < max_steps && s.current.num_nonempty_parts() > k_; ++i) {
    step(s);
    s.current_energy = energy_of(s.current);
  }
  s.current.compact();
  return s.current;
}

FusionFissionResult FusionFission::run(const StopCondition& stop,
                                       AnytimeRecorder* recorder) {
  FusionFissionResult result{Partition(*g_, 1), 0.0, 0.0, {}, 0, 0, 0, 0, 0};

  // Algorithm 2: build the starting near-k molecule from singletons
  // ("the algorithm of fusion fission starts with the worst
  // initialization" — the recorder clock covers it).
  if (recorder != nullptr) recorder->start();
  Partition start = initialize();

  State s(std::move(start), g_->num_vertices(), options_.law_delta,
          options_.seed);
  s.result = &result;
  s.temperature = options_.tmax;
  note_partition(s, recorder);
  // Seed the reheat target even if we never hit k exactly before freezing.
  s.best = s.current;
  s.best_energy = s.current_energy;

  const double t_step =
      (options_.tmax - options_.tmin) / static_cast<double>(options_.nbt);

  std::int64_t steps = 0;
  while (!stop.done(steps)) {
    ++steps;
    step(s);
    note_partition(s, recorder);

    s.temperature -= t_step;
    if (s.temperature <= options_.tmin) {
      // low_temperature: reheat from the best partition (Algorithm 1). The
      // paper does not say which "best"; restarting from the best
      // TARGET-k partition keeps the drift centered on k, which measures
      // better than restarting from the best-energy molecule at any k.
      s.temperature = options_.tmax;
      if (s.best_at_k.has_value()) {
        s.current = *s.best_at_k;
        s.current_energy = partition_energy(
            s.best_at_k_value, s.current.num_nonempty_parts(), *scaling_);
      } else {
        s.current = s.best;
        s.current_energy = s.best_energy;
      }
      ++result.reheats;
    }
  }

  // Result: best at k if we ever reached k, else force the best overall to
  // k parts by splitting/merging (degenerate inputs only).
  if (s.best_at_k.has_value()) {
    result.best = std::move(*s.best_at_k);
    result.best_value = s.best_at_k_value;
  } else {
    s.current = s.best;
    while (s.current.num_nonempty_parts() > k_) {
      const auto atoms = s.current.nonempty_parts();
      int smallest = atoms[0], second = -1;
      for (int q : atoms) {
        if (s.current.part_size(q) < s.current.part_size(smallest)) smallest = q;
      }
      for (int q : atoms) {
        if (q != smallest) {
          second = q;
          break;
        }
      }
      // Force-merge (do_fusion could no-op on an isolated atom and loop).
      std::vector<VertexId> to_move(s.current.members(smallest).begin(),
                                    s.current.members(smallest).end());
      for (VertexId v : to_move) s.current.move(v, second);
    }
    while (s.current.num_nonempty_parts() < k_) {
      const auto atoms = s.current.nonempty_parts();
      int largest = atoms[0];
      for (int q : atoms) {
        if (s.current.part_size(q) > s.current.part_size(largest)) largest = q;
      }
      if (s.current.part_size(largest) < 2) break;
      split_atom(s, largest, true);
    }
    result.best = s.current;
    result.best_value = objective(options_.objective).evaluate(s.current);
  }
  result.best.compact();
  result.best_energy =
      partition_energy(result.best_value, result.best.num_nonempty_parts(),
                       *scaling_);
  return result;
}

}  // namespace ffp
