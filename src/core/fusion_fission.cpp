#include "core/fusion_fission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <tuple>

#include "core/batch_scheduler.hpp"
#include "metaheuristics/percolation.hpp"
#include "partition/objective_terms.hpp"
#include "partition/part_scratch.hpp"
#include "solver/worker_pool.hpp"  // leased_worker_pool (budget-governed runs)
#include "util/check.hpp"

namespace ffp {

namespace {

/// The choice_term_bias per-atom leak ratio (cut leaking out vs weight held
/// inside), tracked incrementally as the ObjectiveTracker's auxiliary term
/// so step() never rescans all atoms.
double leak_ratio_term(const Partition& p, int q) {
  const double cut = p.part_cut(q);
  const double internal = p.part_internal(q);
  if (internal <= 0.0) return cut > 0.0 ? 1e6 : 0.0;
  return cut / internal;
}

}  // namespace

struct FusionFission::State {
  ObjectiveTracker tracker;       // current molecule + running objective
  double current_energy = 0.0;
  Partition best;                 // best energy overall (reheat target)
  double best_energy = std::numeric_limits<double>::infinity();
  std::optional<Partition> best_at_k;  // best objective with exactly k parts
  double best_at_k_value = std::numeric_limits<double>::infinity();
  double temperature = 0.0;
  LawTable laws;
  Rng rng;
  FusionFissionResult* result = nullptr;
  bool init_mode = false;  // Algorithm 2: no nucleon-triggered fission
  /// Best objective per visited part count, flat-indexed by p — the per-step
  /// record note_partition keeps without a map lookup in the hot loop; run()
  /// converts it into FusionFissionResult::best_by_part_count at the end.
  std::vector<double> best_by_p;
  /// Batched commit phase only: every part a committed operation mutates is
  /// marked here so later slots can detect stale speculation. Null outside
  /// the commit phase (serial mode pays one predictable branch per bulk op).
  PartMarkScratch* dirty = nullptr;
  // Checkpoint pump (options.checkpoint_sink): armed once in run(), so
  // the disabled path is a single branch in the hot loops.
  bool ckpt_on = false;
  WallTimer ckpt_timer;
  double ckpt_emitted = std::numeric_limits<double>::infinity();

  State(Partition p, ObjectiveKind kind, int max_atom, double delta,
        std::uint64_t seed)
      : tracker(std::move(p), kind),
        best(tracker.partition()),
        laws(max_atom, delta),
        rng(seed) {}

  const Partition& cur() const { return tracker.partition(); }

  void touch(int part) {
    if (dirty != nullptr) {
      dirty->grow(cur().num_parts());
      dirty->mark(part);
    }
  }
};

FusionFission::FusionFission(const Graph& g, int k,
                             FusionFissionOptions options)
    : g_(&g), k_(k), options_(options) {
  FFP_CHECK(k >= 2, "k must be >= 2");
  FFP_CHECK(g.num_vertices() >= k, "graph has fewer vertices than parts");
  FFP_CHECK(options.tmax > options.tmin && options.tmin >= 0.0,
            "need tmax > tmin >= 0");
  FFP_CHECK(options.nbt >= 1, "nbt must be >= 1");
  choice_.target_size = static_cast<double>(g.num_vertices()) / k;
  choice_.tmax = options.tmax;
  choice_.tmin = options.tmin;
  choice_.slope = options.choice_slope;
  choice_.offset = options.choice_offset;
  scaling_ = make_scaling(options.scaling, options.objective,
                          g.total_edge_weight());
}

double FusionFission::energy_now(const State& s) const {
  return partition_energy(s.tracker.value(), s.cur().num_nonempty_parts(),
                          *scaling_);
}

double FusionFission::heat_of(double temperature) const {
  return (temperature - options_.tmin) / (options_.tmax - options_.tmin);
}

// ---------------------------------------------------------------------------
// Shared operators
// ---------------------------------------------------------------------------

std::pair<int, Weight> FusionFission::select_fusion_partner(
    const Partition& cur, double heat, int atom, Rng& rng) const {
  // §4.2: "a second partition is selected according to its size, its
  // distance to the first one, and temperature". Connection weight is the
  // inverse distance; the size preference cools with temperature: hot → big
  // merged atoms are easy, cold → strongly size-penalized. Const +
  // thread_local scratch: the batched engine's workers score candidates
  // concurrently against the frozen molecule.
  static thread_local std::vector<std::pair<int, Weight>> conns;
  conns.clear();
  cur.connections(atom, conns);
  if (conns.empty()) return {-1, 0.0};

  const double size_a = cur.part_size(atom);
  static thread_local std::vector<double> scores;
  scores.clear();
  for (const auto& [b, w] : conns) {
    const double merged = size_a + cur.part_size(b);
    const double over = std::max(0.0, merged / choice_.target_size - 1.0);
    // Hot: penalty exponent ~0; cold: strong exponential size penalty.
    const double size_penalty = std::exp(-over * (1.0 - heat) * 3.0);
    scores.push_back(w * size_penalty);
  }
  const auto pick = rng.weighted_pick(scores);
  if (pick >= scores.size()) return conns[0];
  return conns[static_cast<std::size_t>(pick)];
}

std::vector<VertexId> FusionFission::pick_ejected(State& s, int atom,
                                                  int count) {
  // Eject the most "misplaced" boundary nucleons: those whose best
  // relocation improves the objective the most (external-minus-internal
  // connection is the Cut special case of this rule). Never empties the
  // atom.
  std::vector<VertexId> out;
  if (count <= 0) return out;
  const Partition& cur = s.cur();
  const auto members = cur.members(atom);
  const int keep = 1;
  count = std::min<int>(count, static_cast<int>(members.size()) - keep);
  if (count <= 0) return out;

  // One neighbor scan per nucleon gathers its connection weight to every
  // adjacent atom; each candidate's exact objective delta is then O(1) via
  // the shared move identities — no per-candidate rescans.
  static thread_local std::vector<std::pair<double, VertexId>> scored;
  scored.clear();
  scored.reserve(members.size());
  static thread_local PartMarkScratch adjacent;
  for (VertexId v : members) {
    adjacent.begin(cur.num_parts());
    Weight external = 0.0, internal = 0.0;
    const auto nbrs = g_->neighbors(v);
    const auto ws = g_->neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const int q = cur.part_of(nbrs[i]);
      if (q == atom) {
        internal += ws[i];
        continue;
      }
      external += ws[i];
      adjacent.add_weight(q, ws[i]);
    }
    if (external <= 0.0) continue;  // interior nucleon: not ejectable
    double best_gain = -std::numeric_limits<double>::infinity();
    for (int q : adjacent.marked()) {
      const double delta = detail::move_delta_from_profile(
          cur, options_.objective, v, q, internal, adjacent.weight(q));
      best_gain = std::max(best_gain, -delta);
    }
    scored.emplace_back(best_gain, v);
  }
  const auto take = std::min<std::size_t>(static_cast<std::size_t>(count),
                                          scored.size());
  std::partial_sort(scored.begin(),
                    scored.begin() + static_cast<std::ptrdiff_t>(take),
                    scored.end(), std::greater<>());
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

int FusionFission::absorb_nucleon(State& s, VertexId v) {
  // nfusion: incorporate v into a connected atom (§4.2). The paper leaves
  // the choice among connected atoms open; we take the one with the best
  // objective delta (ties broken by connection weight), which makes every
  // ejection a genuine local repair of the criterion being optimized.
  const int from = s.cur().part_of(v);
  int best = -1;
  double best_delta = std::numeric_limits<double>::infinity();
  static thread_local PartMarkScratch candidates;
  candidates.begin(s.cur().num_parts());
  Weight ext_from = 0.0;
  {
    const auto nbrs = g_->neighbors(v);
    const auto ws = g_->neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const int q = s.cur().part_of(nbrs[i]);
      if (q == from) {
        ext_from += ws[i];
      } else {
        candidates.add_weight(q, ws[i]);
      }
    }
  }
  for (int q : candidates.marked()) {
    const double delta = detail::move_delta_from_profile(
        s.cur(), options_.objective, v, q, ext_from, candidates.weight(q));
    if (delta < best_delta) {
      best_delta = delta;
      best = q;
    }
  }
  if (best == -1) {
    // Isolated from every other atom: pick any other non-empty atom.
    for (int q : s.cur().nonempty_parts()) {
      if (q != from) {
        best = q;
        break;
      }
    }
  }
  if (best != -1 && s.cur().part_size(from) > 1) {
    s.tracker.move(v, best);
    s.touch(from);
    s.touch(best);
    ++s.result->ejections;
  }
  return best;
}

void FusionFission::plan_split(std::span<const VertexId> members,
                               bool allow_percolation, Rng& rng,
                               std::vector<VertexId>& moved) const {
  static thread_local std::vector<int> side;
  if (allow_percolation && options_.percolation_fission) {
    percolation_bisect_into(*g_, members, rng, side);
  } else {
    // Ablation / fallback: random halving.
    side.assign(members.size(), 0);
    for (std::size_t i = members.size() / 2; i < members.size(); ++i) {
      side[i] = 1;
    }
    rng.shuffle(side);
  }
  // Keep the smaller half as the side to relocate (both halves' statistics
  // are rebuilt from the same arc scan either way). An empty result means
  // percolation labeled everything one side (pathological subgraph); the
  // applier forces a single-vertex split.
  const auto ones = static_cast<std::size_t>(
      std::count(side.begin(), side.end(), 1));
  const int move_label = 2 * ones > members.size() ? 0 : 1;
  moved.clear();
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (side[i] == move_label) moved.push_back(members[i]);
  }
}

void FusionFission::split_atom(State& s, int atom, bool allow_percolation,
                               Rng& rng, const FissionPlan* plan) {
  const auto members = s.cur().members(atom);
  if (members.size() < 2) return;

  static thread_local std::vector<VertexId> planned;
  const std::vector<VertexId>* moved = &planned;
  if (plan != nullptr) {
    moved = &plan->moved;
  } else {
    plan_split(members, allow_percolation, rng, planned);
  }

  // Find a part slot for the new half (reuse an empty slot if any).
  int fresh = -1;
  for (int q = 0; q < s.cur().num_parts(); ++q) {
    if (s.cur().part_size(q) == 0) {
      fresh = q;
      break;
    }
  }
  if (fresh == -1) fresh = s.tracker.make_part();

  if (moved->empty()) {
    // Percolation labeled everything one side (pathological subgraph):
    // force a non-trivial split.
    s.tracker.move(members.back(), fresh);
  } else {
    // The minority-side choice in plan_split caps |moved| at half the atom,
    // so this is always a proper subset.
    FFP_DCHECK(moved->size() < members.size());
    s.tracker.split_part(atom, fresh, *moved);
  }
  s.touch(atom);
  s.touch(fresh);
}

void FusionFission::simple_fission(State& s, int atom, Rng& rng) {
  split_atom(s, atom, /*allow_percolation=*/true, rng, nullptr);
}

// ---------------------------------------------------------------------------
// Algorithm 1 branches
// ---------------------------------------------------------------------------

void FusionFission::do_fusion(State& s, int atom, Rng& rng,
                              const FusionPlan* plan) {
  int partner = -1;
  Weight w_conn = 0.0;
  if (plan != nullptr) {
    partner = plan->partner;
    w_conn = plan->w_conn;
  } else {
    // Algorithm 2 (init) keeps the full size penalty (heat 0): at tmax the
    // penalty vanishes and on skewed degree distributions hub atoms then win
    // every connection-weighted pick, growing one giant atom — which turns
    // the ejection / connection scans quadratic and keeps the atom count
    // from ever reaching k ("fusion-biased" must still mean balanced
    // growth). Measured on powerlaw n=16384: init 1.47s → 0.06s.
    const double heat = s.init_mode ? 0.0 : heat_of(s.temperature);
    std::tie(partner, w_conn) = select_fusion_partner(s.cur(), heat, atom, rng);
  }
  if (partner == -1) return;  // isolated atom; nothing to fuse with
  ++s.result->fusions;

  // Merge the smaller atom into the larger: O(|smaller|) relabel plus the
  // O(1) merge identities — no per-vertex neighbor scans.
  int src = atom, dst = partner;
  if (s.cur().part_size(src) > s.cur().part_size(dst)) std::swap(src, dst);
  const int merged_size = s.cur().part_size(src) + s.cur().part_size(dst);
  s.tracker.merge_parts(src, dst, w_conn);
  s.touch(src);
  s.touch(dst);

  // The fusion law for the merged size may eject nucleons.
  const int size_for_law = std::min(merged_size, s.laws.max_atom_size());
  const int eject =
      options_.use_laws ? s.laws.sample(LawKind::Fusion, size_for_law, rng) : 0;
  for (VertexId v : pick_ejected(s, dst, eject)) {
    absorb_nucleon(s, v);
  }

  if (options_.use_laws) {
    const double before = s.current_energy;
    const double after = energy_now(s);
    s.laws.update(LawKind::Fusion, size_for_law, eject, after < before);
  }
}

void FusionFission::do_fission(State& s, int atom, Rng& rng,
                               const FissionPlan* plan) {
  if (s.cur().part_size(atom) < 2) return;
  ++s.result->fissions;

  const int size_for_law =
      std::min(s.cur().part_size(atom), s.laws.max_atom_size());
  split_atom(s, atom, /*allow_percolation=*/true, rng, plan);

  const int eject =
      options_.use_laws ? s.laws.sample(LawKind::Fission, size_for_law, rng) : 0;
  const auto ejected = pick_ejected(s, atom, eject);
  const double heat = heat_of(s.temperature);
  for (VertexId v : ejected) {
    // §4.2: hot nucleons trigger a simple fission of a connected atom; cold
    // nucleons are absorbed. Algorithm 2 (init) always absorbs.
    if (!s.init_mode && rng.bernoulli(heat)) {
      const int neighbor_atom = absorb_nucleon(s, v);
      if (neighbor_atom != -1 && s.cur().part_size(neighbor_atom) >= 2) {
        simple_fission(s, neighbor_atom, rng);
      }
    } else {
      absorb_nucleon(s, v);
    }
  }

  if (options_.use_laws) {
    const double before = s.current_energy;
    const double after = energy_now(s);
    s.laws.update(LawKind::Fission, size_for_law, eject, after < before);
  }
}

// ---------------------------------------------------------------------------
// Main loops: the classic serial schedule, and the batched parallel engine
// (select → speculate → commit; see the header comment).
// ---------------------------------------------------------------------------

void FusionFission::run_serial(State& s, const StopCondition& stop,
                               AnytimeRecorder* recorder) {
  const double t_step =
      (options_.tmax - options_.tmin) / static_cast<double>(options_.nbt);

  std::int64_t steps = 0;
  while (!stop.done(steps)) {
    ++steps;
    step(s);
    note_partition(s, recorder);
    // Clock reads amortized to every 64th step; emits are rarer still.
    if (s.ckpt_on && (steps & 63) == 0) maybe_checkpoint(s);

    s.temperature -= t_step;
    if (s.temperature <= options_.tmin) reheat(s);
  }
}

namespace {

/// One selected slot of a batch. The speculation seeds derive from the
/// run's single splitmix64 stream at selection time, so an operation's
/// draws depend only on (seed, how many candidates preceded it) — never on
/// which worker executes it.
struct BatchOp {
  enum class Kind { Noop, Fusion, Fission };
  Kind kind = Kind::Noop;
  int atom = -1;
  double temperature = 0.0;
  std::uint64_t spec_seed = 0;    // speculation draws (bisect, partner pick)
  std::uint64_t commit_seed = 0;  // commit draws (laws, hot/cold, absorb)
  std::vector<int> claimed;       // the operation's territory (read set)
  int partner = -1;               // fusion speculation output
  Weight w_conn = 0.0;
  std::vector<VertexId> moved;    // fission speculation output (FissionPlan)
};

}  // namespace

void FusionFission::run_batched(State& s, const StopCondition& stop,
                                AnytimeRecorder* recorder) {
  const int batch_size =
      options_.batch >= 1 ? options_.batch : kDefaultFusionFissionBatch;
  const auto workers = static_cast<unsigned>(std::max(1, options_.threads));
  // Declared before the pool so the slots return only after the pool's
  // threads are joined — the budget never reads free while leased workers
  // still run.
  WorkerLease lease;
  std::shared_ptr<ThreadPool> pool = options_.pool;
  // Under a leased pool the calling thread doubles as a speculation lane:
  // one pool worker per granted slot plus the caller, whose own thread is
  // accounted by whatever level invoked this run. That keeps ThreadBudget
  // books exact even when leases nest (portfolio restart → engine), while
  // an injected or ungoverned pool keeps the historical caller-waits shape.
  bool caller_lane = false;
  if (pool == nullptr && workers > 1) {
    if (options_.budget != nullptr) {
      // Governed run: `threads` is a want — take whatever is free beyond
      // this calling thread (a 0 grant runs speculation inline). The
      // schedule, and thus the partition, is fixed by threads/batch alone,
      // so the grant only moves latency.
      lease = options_.budget->lease(workers - 1);
      pool = leased_worker_pool(lease);
      caller_lane = true;
    } else {
      pool = std::make_shared<ThreadPool>(workers);
    }
  }

  const double t_step =
      (options_.tmax - options_.tmin) / static_cast<double>(options_.nbt);

  AtomBatchScheduler scheduler;
  PartMarkScratch dirty;
  // Slot storage persists across batches so per-op vectors keep capacity.
  std::vector<BatchOp> ops(static_cast<std::size_t>(batch_size));
  std::uint64_t stream = options_.seed ^ 0x9e3779b97f4a7c15ULL;

  std::int64_t steps = 0;
  while (!stop.done(steps)) {
    // ---- SELECT (serial): draw candidates, claim disjoint territories ----
    Rng select_rng(splitmix64(stream));
    scheduler.begin_batch(s.cur());
    const double t_base = s.temperature;
    std::size_t n_ops = 0;
    for (int c = 0; c < batch_size; ++c) {
      const std::uint64_t op_seed = splitmix64(stream);
      const auto atoms = s.cur().nonempty_parts();
      const int atom = atoms[select_rng.below(atoms.size())];
      const double t_op = std::max(
          options_.tmin, t_base - static_cast<double>(n_ops) * t_step);

      const double p_fission = choice_probability(s, atom, t_op);

      const bool can_fission = s.cur().part_size(atom) >= 2;
      const bool can_fusion = s.cur().num_nonempty_parts() >= 2;
      BatchOp& op = ops[n_ops];
      op.claimed.clear();
      op.moved.clear();
      op.partner = -1;
      op.w_conn = 0.0;
      op.atom = atom;
      op.temperature = t_op;
      std::uint64_t seed_state = op_seed;
      op.spec_seed = splitmix64(seed_state);
      op.commit_seed = splitmix64(seed_state);
      if ((select_rng.bernoulli(p_fission) && can_fission) || !can_fusion) {
        op.kind = can_fission ? BatchOp::Kind::Fission : BatchOp::Kind::Noop;
      } else {
        op.kind = BatchOp::Kind::Fusion;
      }
      if (op.kind != BatchOp::Kind::Noop &&
          !scheduler.try_claim(s.cur(), atom, op.claimed)) {
        ++s.result->conflicts;  // discarded: overlapping territory
        continue;
      }
      ++n_ops;
    }

    // ---- SPECULATE (parallel): bisect fissions, score fusion partners ----
    // One planner for both the parallel phase and the commit-phase stale
    // re-plan, so the two can never diverge — only the molecule they read
    // differs (frozen vs current).
    const auto plan_op = [this](const Partition& molecule, BatchOp& op) {
      Rng rng(op.spec_seed);
      if (op.kind == BatchOp::Kind::Fusion) {
        std::tie(op.partner, op.w_conn) = select_fusion_partner(
            molecule, heat_of(op.temperature), op.atom, rng);
      } else if (op.kind == BatchOp::Kind::Fission &&
                 molecule.part_size(op.atom) >= 2) {
        plan_split(molecule.members(op.atom), /*allow_percolation=*/true, rng,
                   op.moved);
      }
    };
    const Partition& frozen = s.cur();
    const auto speculate = [&frozen, &plan_op](BatchOp& op) {
      plan_op(frozen, op);
    };
    if (pool != nullptr && n_ops > 1) {
      TaskGroup group(*pool);
      const std::size_t lanes = std::min<std::size_t>(
          pool->size() + (caller_lane ? 1 : 0), n_ops);
      // Lane → ops assignment is fixed by index alone, so which thread
      // (pool worker or the caller) runs a lane can never change results.
      for (std::size_t lane = caller_lane ? 1 : 0; lane < lanes; ++lane) {
        group.submit([&ops, &speculate, lane, lanes, n_ops] {
          for (std::size_t i = lane; i < n_ops; i += lanes) {
            speculate(ops[i]);
          }
        });
      }
      if (caller_lane) {
        for (std::size_t i = 0; i < n_ops; i += lanes) speculate(ops[i]);
      }
      group.wait();
    } else {
      for (std::size_t i = 0; i < n_ops; ++i) speculate(ops[i]);
    }

    // ---- COMMIT (serial, fixed slot order) ----
    dirty.begin(s.cur().num_parts());
    s.dirty = &dirty;
    std::size_t committed = 0;
    for (std::size_t i = 0; i < n_ops; ++i) {
      // Honor the budget mid-batch: after_steps(N) must mean exactly N
      // committed steps, as the serial loop guarantees. (Step budgets make
      // this check thread-count independent; wall-clock budgets are
      // nondeterministic in any mode.)
      if (stop.done(steps)) break;
      BatchOp& op = ops[i];
      ++steps;
      ++s.result->steps;
      ++committed;
      s.temperature = op.temperature;
      if (op.kind != BatchOp::Kind::Noop) {
        // A committed predecessor that wrote into this operation's
        // territory (ejection absorbs reach two hops out) invalidates its
        // speculation; re-plan serially against the current state with the
        // same speculation stream.
        bool stale = false;
        for (int q : op.claimed) {
          if (dirty.seen(q)) {
            stale = true;
            break;
          }
        }
        if (stale) {
          ++s.result->stale_redone;
          plan_op(s.cur(), op);
        }
        Rng rng(op.commit_seed);
        if (op.kind == BatchOp::Kind::Fusion) {
          const FusionPlan plan{op.partner, op.w_conn};
          do_fusion(s, op.atom, rng, &plan);
        } else {
          FissionPlan plan;
          plan.moved.swap(op.moved);
          do_fission(s, op.atom, rng, &plan);
          plan.moved.swap(op.moved);  // hand the capacity back to the slot
        }
      }
      note_partition(s, recorder);
    }
    s.dirty = nullptr;
    ++s.result->batches;
    if (s.ckpt_on) maybe_checkpoint(s);

    s.temperature = t_base - static_cast<double>(committed) * t_step;
    if (s.temperature <= options_.tmin) reheat(s);
  }
}

void FusionFission::maybe_checkpoint(State& s) {
  if (s.ckpt_timer.elapsed_millis() <
      static_cast<double>(options_.checkpoint_every_ms)) {
    return;
  }
  flush_checkpoint(s);
  s.ckpt_timer.reset();
}

void FusionFission::flush_checkpoint(State& s) {
  if (!s.best_at_k.has_value() || s.best_at_k_value >= s.ckpt_emitted) return;
  // The live best-at-k molecule can carry empty part slots; checkpoints
  // store the compacted assignment so a resume (or any other consumer)
  // sees part ids 0..k-1 exactly as the final result would.
  Partition snapshot = *s.best_at_k;
  snapshot.compact();
  const auto parts = snapshot.assignment();
  options_.checkpoint_sink(std::vector<int>(parts.begin(), parts.end()),
                           s.best_at_k_value);
  s.ckpt_emitted = s.best_at_k_value;
}

void FusionFission::note_partition(State& s, AnytimeRecorder* recorder) {
  const double value = s.tracker.value();
  const int p = s.cur().num_nonempty_parts();
  s.current_energy = partition_energy(value, p, *scaling_);

  if (static_cast<int>(s.best_by_p.size()) <= p) {
    s.best_by_p.resize(static_cast<std::size_t>(p) + 1,
                       std::numeric_limits<double>::infinity());
  }
  auto& best_at_p = s.best_by_p[static_cast<std::size_t>(p)];
  if (value < best_at_p) best_at_p = value;

  if (s.current_energy < s.best_energy) {
    s.best_energy = s.current_energy;
    s.best = s.cur();
  }
  if (p == k_ && value < s.best_at_k_value) {
    s.best_at_k_value = value;
    s.best_at_k = s.cur();
    if (recorder != nullptr) recorder->record(value);
  }
}

void FusionFission::reheat(State& s) {
  // The paper does not say which "best" the reheat restarts from;
  // restarting from the best TARGET-k partition keeps the drift centered
  // on k, which measures better than restarting from the best-energy
  // molecule at any k.
  s.temperature = options_.tmax;
  if (s.best_at_k.has_value()) {
    s.tracker.reset(*s.best_at_k, s.best_at_k_value);
    s.current_energy = partition_energy(
        s.best_at_k_value, s.cur().num_nonempty_parts(), *scaling_);
  } else {
    s.tracker.reset(s.best);
    s.current_energy = s.best_energy;
  }
  ++s.result->reheats;
}

double FusionFission::choice_probability(const State& s, int atom,
                                         double temperature) const {
  double p_fission =
      fission_probability(s.cur().part_size(atom), temperature, choice_);

  // Customized choice function (see FusionFissionOptions::choice_term_bias):
  // an atom whose ratio term is worse than the molecule average is pushed
  // toward fission, a better-than-average atom toward staying fused. The
  // molecule-wide term sum is the tracker's auxiliary sum — O(1) here.
  if (options_.choice_term_bias > 0.0 && !s.init_mode) {
    const double term = leak_ratio_term(s.cur(), atom);
    const double avg_term =
        s.tracker.aux_sum() /
        static_cast<double>(s.cur().num_nonempty_parts());
    if (avg_term > 0.0) {
      const double bias = std::clamp((term - avg_term) / avg_term, -1.0, 1.0);
      p_fission = std::clamp(
          p_fission + options_.choice_term_bias * bias, 0.0, 1.0);
    }
  }
  return p_fission;
}

void FusionFission::step(State& s) {
  ++s.result->steps;

  // choose_atom: uniformly over non-empty atoms.
  const auto atoms = s.cur().nonempty_parts();
  const int atom = atoms[s.rng.below(atoms.size())];

  const double p_fission = choice_probability(s, atom, s.temperature);

  const bool can_fission = s.cur().part_size(atom) >= 2;
  const bool can_fusion = s.cur().num_nonempty_parts() >= 2;
  if ((s.rng.bernoulli(p_fission) && can_fission) || !can_fusion) {
    if (can_fission) do_fission(s, atom, s.rng, nullptr);
  } else {
    do_fusion(s, atom, s.rng, nullptr);
  }
}

Partition FusionFission::initialize() {
  FusionFissionResult scratch{Partition(*g_, 1), 0.0, 0.0, {}, 0, 0, 0, 0, 0};
  State s(Partition::singletons(*g_), options_.objective, g_->num_vertices(),
          options_.law_delta, options_.seed ^ 0xabcdef12345ULL);
  s.result = &scratch;
  s.init_mode = true;
  s.temperature = options_.tmax;  // fixed: Algorithm 2 removes temperature
  s.current_energy = energy_now(s);

  // Fusion-biased choice until the atom count first reaches k: with n
  // singleton atoms every atom is far below n̄, so choice() picks fusion
  // nearly always; each fusion reduces the atom count by one. Every energy
  // read here is O(1) off the tracker — Algorithm 2 used to be O(n²) in
  // full evaluate() calls.
  // Stall guard: on disconnected graphs (Chung–Lu powerlaw leaves isolated
  // vertices) the atom count can never drop below the component count, so
  // "until the count reaches k" would burn the whole step cap churning
  // fission/fusion at the equilibrium. Exit once a full sweep's worth of
  // steps passes with no new minimum part count.
  const std::int64_t max_steps = 8LL * g_->num_vertices() + 64;
  int min_parts = s.cur().num_nonempty_parts();
  std::int64_t last_progress = 0;
  for (std::int64_t i = 0;
       i < max_steps && s.cur().num_nonempty_parts() > k_; ++i) {
    step(s);
    s.current_energy = energy_now(s);
    const int parts = s.cur().num_nonempty_parts();
    if (parts < min_parts) {
      min_parts = parts;
      last_progress = i;
    } else if (i - last_progress > 8LL * parts + 64) {
      break;
    }
  }
  Partition out = std::move(s.tracker).take();
  out.compact();
  return out;
}

FusionFissionResult FusionFission::run(const StopCondition& stop,
                                       AnytimeRecorder* recorder) {
  FusionFissionResult result{Partition(*g_, 1), 0.0, 0.0, {}, 0, 0, 0, 0, 0};

  // Algorithm 2: build the starting near-k molecule from singletons
  // ("the algorithm of fusion fission starts with the worst
  // initialization" — the recorder clock covers it). A warm start
  // replaces Algorithm 2 entirely: the loop operates on any molecule, and
  // when the restored partition has exactly k parts the first
  // note_partition below seeds best-at-k from it, which is what makes a
  // resumed run monotone with respect to its checkpoint.
  if (recorder != nullptr) recorder->start();
  Partition start = Partition(*g_, 1);
  if (options_.warm_start != nullptr) {
    FFP_CHECK(static_cast<VertexId>(options_.warm_start->size()) ==
                  g_->num_vertices(),
              "warm_start assignment covers ", options_.warm_start->size(),
              " vertices, graph has ", g_->num_vertices());
    start = Partition::from_assignment(*g_, *options_.warm_start);
  } else {
    start = initialize();
  }

  State s(std::move(start), options_.objective, g_->num_vertices(),
          options_.law_delta, options_.seed);
  s.result = &result;
  s.temperature = options_.tmax;
  s.ckpt_on =
      options_.checkpoint_sink != nullptr && options_.checkpoint_every_ms > 0;
  if (options_.choice_term_bias > 0.0) s.tracker.track_aux(&leak_ratio_term);
  note_partition(s, recorder);
  if (options_.warm_start != nullptr && s.best_at_k.has_value() &&
      options_.warm_start_value < s.best_at_k_value) {
    // Same partition, two float renderings of its objective (incremental
    // tracker of the writing run vs this run's fresh accumulation): keep
    // the checkpointed one so a resume can never report an ulp worse.
    s.best_at_k_value = options_.warm_start_value;
  }
  if (options_.incumbent != nullptr) {
    // The memetic-crossover cap: best-at-k starts at the incumbent (the
    // better parent), so the result is min(search, incumbent) whatever
    // the overlay start evolves into. Adopt the lower of the archived
    // value and a fresh evaluation — same ulp discipline as warm starts.
    FFP_CHECK(static_cast<VertexId>(options_.incumbent->size()) ==
                  g_->num_vertices(),
              "incumbent assignment covers ", options_.incumbent->size(),
              " vertices, graph has ", g_->num_vertices());
    Partition inc = Partition::from_assignment(*g_, *options_.incumbent);
    if (inc.num_nonempty_parts() == k_) {
      double value = objective(options_.objective).evaluate(inc);
      if (options_.incumbent_value < value) value = options_.incumbent_value;
      if (value < s.best_at_k_value) {
        s.best_at_k_value = value;
        s.best_at_k = std::move(inc);
        if (recorder != nullptr) recorder->record(value);
      }
    }
  }
  // Seed the reheat target even if we never hit k exactly before freezing.
  s.best = s.cur();
  s.best_energy = s.current_energy;

  if (batched()) {
    run_batched(s, stop, recorder);
  } else {
    run_serial(s, stop, recorder);
  }
  // Final flush: the checkpoint on disk always matches the best this run
  // will report, even when the run was shorter than one interval.
  if (s.ckpt_on) flush_checkpoint(s);

  // Result: best at k if we ever reached k, else force the best overall to
  // k parts by splitting/merging (degenerate inputs only).
  if (s.best_at_k.has_value()) {
    result.best = std::move(*s.best_at_k);
    result.best_value = s.best_at_k_value;
  } else {
    s.tracker.reset(s.best);
    while (s.cur().num_nonempty_parts() > k_) {
      const auto atoms = s.cur().nonempty_parts();
      int smallest = atoms[0], second = -1;
      for (int q : atoms) {
        if (s.cur().part_size(q) < s.cur().part_size(smallest)) smallest = q;
      }
      for (int q : atoms) {
        if (q != smallest) {
          second = q;
          break;
        }
      }
      // Force-merge (do_fusion could no-op on an isolated atom and loop).
      std::vector<VertexId> to_move(s.cur().members(smallest).begin(),
                                    s.cur().members(smallest).end());
      for (VertexId v : to_move) s.tracker.move(v, second);
    }
    while (s.cur().num_nonempty_parts() < k_) {
      const auto atoms = s.cur().nonempty_parts();
      int largest = atoms[0];
      for (int q : atoms) {
        if (s.cur().part_size(q) > s.cur().part_size(largest)) largest = q;
      }
      if (s.cur().part_size(largest) < 2) break;
      split_atom(s, largest, /*allow_percolation=*/true, s.rng, nullptr);
    }
    result.best = s.cur();
    result.best_value = s.tracker.value();
  }
  result.best.compact();
  result.best_energy =
      partition_energy(result.best_value, result.best.num_nonempty_parts(),
                       *scaling_);
  for (std::size_t p = 0; p < s.best_by_p.size(); ++p) {
    if (std::isfinite(s.best_by_p[p])) {
      result.best_by_part_count.emplace(static_cast<int>(p), s.best_by_p[p]);
    }
  }
  return result;
}

}  // namespace ffp
