// The fusion-fission metaheuristic (§4, Algorithms 1 & 2) — the paper's
// contribution. Vertices are nucleons, parts are atoms, the partition is
// the molecule; the search repeatedly fuses and fissions atoms, so the part
// count drifts around the target k instead of being fixed.
//
// One step (Algorithm 1):
//   1. choose a random atom;
//   2. choice(x) (core/choice) decides fusion or fission by atom size and
//      temperature;
//   3. FUSION: pick a partner by connection strength (inverse "distance":
//      "the inverse of the sum of the weights of connected edges"), size
//      and temperature; merge; the law for the merged size ejects 0..3
//      nucleons, each absorbed by its best-connected atom ("incorporated
//      into different atoms connected with them");
//      FISSION: cut the atom in two by percolation (§4.4); the law ejects
//      0..3 nucleons; hot nucleons trigger a simple (no-ejection) fission
//      of a connected atom, cold ones are absorbed (§4.2);
//   4. the law is updated (reinforced on success), temperature decreases
//      linearly (decrease(t) = t − (tmax−tmin)/nbt);
//   5. the new partition is always accepted ("even if energy is higher");
//      at the freezing point the search reheats from the best partition.
//
// Energy = objective / scaling(p) (core/scaling): comparable across part
// counts. The best partition *at the target k* is the result; the best
// seen for each nearby k is also kept (§6: "if fusion fission returns a
// 32-partition, it returns good solutions from 27 to 38 partitions").
//
// Initialization (Algorithm 2) starts from singleton atoms and runs a
// simplified loop (no temperature, no nucleon-triggered fission, a
// fusion-biased choice) until the atom count first reaches k.
//
// Implementation: the molecule lives inside an ObjectiveTracker
// (partition/objective_tracker.hpp), so the objective value and the energy
// are running quantities — step(), do_fusion/do_fission's law updates, and
// the whole of initialize() read them in O(1) and never call a full
// ObjectiveFn::evaluate. Fusions use the bulk merge identity, fissions the
// bulk split identity, and the choice_term_bias leak-ratio sum is the
// tracker's auxiliary term, maintained under the same per-move updates.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "core/choice.hpp"
#include "core/laws.hpp"
#include "core/scaling.hpp"
#include "metaheuristics/anytime.hpp"
#include "partition/objective_tracker.hpp"
#include "partition/objectives.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ffp {

struct FusionFissionOptions {
  ObjectiveKind objective = ObjectiveKind::MinMaxCut;

  // The paper's five parameters (§6): tmax, tmin, nbt, and (k, r) of α(t).
  double tmax = 1.0;
  double tmin = 0.05;
  int nbt = 400;          ///< temperature steps from tmax to tmin
  double choice_slope = 4.0;
  double choice_offset = 0.25;

  double law_delta = 0.05;  ///< law reinforcement input value

  /// Experimental "customized" choice-function variant (§ conclusion
  /// mentions such variants): bias the fusion/fission decision by the
  /// atom's own leak ratio relative to the molecule average. Our ablation
  /// (bench/ablation_choice) found it HURTS on the core-area instance, so
  /// the default 0 keeps the paper's pure size-based choice(x).
  double choice_term_bias = 0.0;

  // Ablation switches (paper-faithful pure Algorithm 1 when
  // choice_term_bias = 0 and the rest are left at defaults).
  bool use_laws = true;               ///< frozen uniform laws when false
  bool percolation_fission = true;    ///< random halving when false
  ScalingKind scaling = ScalingKind::BindingEnergy;

  std::uint64_t seed = 17;
};

struct FusionFissionResult {
  Partition best;            ///< best partition with exactly k parts
  double best_value = 0.0;   ///< its objective value
  double best_energy = 0.0;  ///< its scaled energy
  /// Best objective seen at every visited part count (the §6 k-range claim).
  std::map<int, double> best_by_part_count;
  std::int64_t steps = 0;
  std::int64_t fusions = 0;
  std::int64_t fissions = 0;
  std::int64_t ejections = 0;
  int reheats = 0;
};

class FusionFission {
 public:
  FusionFission(const Graph& g, int k, FusionFissionOptions options);

  /// Full run: Algorithm 2 initialization, then Algorithm 1 until `stop`.
  FusionFissionResult run(const StopCondition& stop,
                          AnytimeRecorder* recorder = nullptr);

  /// Algorithm 2 only (exposed for tests/benches): a near-k partition grown
  /// from singletons.
  Partition initialize();

 private:
  struct State;
  void step(State& s);
  void do_fusion(State& s, int atom);
  void do_fission(State& s, int atom);
  int absorb_nucleon(State& s, VertexId v);          // nfusion
  void simple_fission(State& s, int atom);           // nfission, no ejection
  /// Chosen partner id (or -1) plus the connection weight to it.
  std::pair<int, Weight> select_fusion_partner(State& s, int atom);
  std::vector<VertexId> pick_ejected(State& s, int atom, int count);
  void split_atom(State& s, int atom, bool allow_percolation);
  /// Energy of the current molecule, O(1) off the tracker's running value.
  double energy_now(const State& s) const;
  void note_partition(State& s, AnytimeRecorder* recorder);

  const Graph* g_;
  int k_;
  FusionFissionOptions options_;
  ChoiceParams choice_;
  std::unique_ptr<ScalingFunction> scaling_;
};

}  // namespace ffp
