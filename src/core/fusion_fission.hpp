// The fusion-fission metaheuristic (§4, Algorithms 1 & 2) — the paper's
// contribution. Vertices are nucleons, parts are atoms, the partition is
// the molecule; the search repeatedly fuses and fissions atoms, so the part
// count drifts around the target k instead of being fixed.
//
// One step (Algorithm 1):
//   1. choose a random atom;
//   2. choice(x) (core/choice) decides fusion or fission by atom size and
//      temperature;
//   3. FUSION: pick a partner by connection strength (inverse "distance":
//      "the inverse of the sum of the weights of connected edges"), size
//      and temperature; merge; the law for the merged size ejects 0..3
//      nucleons, each absorbed by its best-connected atom ("incorporated
//      into different atoms connected with them");
//      FISSION: cut the atom in two by percolation (§4.4); the law ejects
//      0..3 nucleons; hot nucleons trigger a simple (no-ejection) fission
//      of a connected atom, cold ones are absorbed (§4.2);
//   4. the law is updated (reinforced on success), temperature decreases
//      linearly (decrease(t) = t − (tmax−tmin)/nbt);
//   5. the new partition is always accepted ("even if energy is higher");
//      at the freezing point the search reheats from the best partition.
//
// Energy = objective / scaling(p) (core/scaling): comparable across part
// counts. The best partition *at the target k* is the result; the best
// seen for each nearby k is also kept (§6: "if fusion fission returns a
// 32-partition, it returns good solutions from 27 to 38 partitions").
//
// Initialization (Algorithm 2) starts from singleton atoms and runs a
// simplified loop (no temperature, no nucleon-triggered fission, a
// fusion-biased choice) until the atom count first reaches k.
//
// Implementation: the molecule lives inside an ObjectiveTracker
// (partition/objective_tracker.hpp), so the objective value and the energy
// are running quantities — step(), do_fusion/do_fission's law updates, and
// the whole of initialize() read them in O(1) and never call a full
// ObjectiveFn::evaluate. Fusions use the bulk merge identity, fissions the
// bulk split identity, and the choice_term_bias leak-ratio sum is the
// tracker's auxiliary term, maintained under the same per-move updates.
//
// Parallelism (threads/batch options): besides the classic serial loop,
// the engine has a batched mode that exploits the per-atom independence
// inside Algorithm 1. Each *batch* runs three phases:
//
//   1. SELECT (serial): up to `batch` candidate atoms are drawn; each must
//      claim its territory — the atom plus every connected atom — through
//      the epoch-stamped AtomBatchScheduler (core/batch_scheduler.hpp).
//      Overlapping candidates are discarded as conflicts.
//   2. SPECULATE (parallel): the expensive per-atom work — percolation
//      bisection for fissions, connection scoring + partner selection for
//      fusions — runs on worker threads against the frozen molecule, each
//      operation on its own splitmix64-derived Rng stream. Disjoint
//      territories make every read conflict-free.
//   3. COMMIT (serial, fixed slot order): operations apply through the
//      ObjectiveTracker one by one — merge/split, law-driven ejection,
//      absorption, law reinforcement — exactly as the serial loop would.
//      Commits may touch parts outside their own territory (ejected
//      nucleons absorb two hops out), so committed mutations mark parts
//      dirty; a later operation whose territory got dirtied re-plans its
//      speculation serially against the current state (counted in
//      FusionFissionResult::stale_redone).
//
// Every random draw comes from a stream derived only from (seed, batch
// index, slot), and phases 1 and 3 are serial — so the result is
// byte-identical for any thread count at a fixed batch size; `threads`
// only decides where phase 2 runs. The batched schedule is NOT the serial
// schedule (temperature steps per slot, reheats land on batch boundaries),
// which is why `threads = 0` keeps the untouched serial loop as default.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/choice.hpp"
#include "core/laws.hpp"
#include "core/scaling.hpp"
#include "metaheuristics/anytime.hpp"
#include "service/thread_budget.hpp"
#include "partition/objective_tracker.hpp"
#include "partition/objectives.hpp"
#include "partition/partition.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ffp {

/// Batch size the batched engine uses when FusionFissionOptions::batch is
/// left at 0. Deliberately a fixed constant, never derived from `threads`,
/// so changing the worker count can never change the schedule.
inline constexpr int kDefaultFusionFissionBatch = 16;

struct FusionFissionOptions {
  ObjectiveKind objective = ObjectiveKind::MinMaxCut;

  // The paper's five parameters (§6): tmax, tmin, nbt, and (k, r) of α(t).
  double tmax = 1.0;
  double tmin = 0.05;
  int nbt = 400;          ///< temperature steps from tmax to tmin
  double choice_slope = 4.0;
  double choice_offset = 0.25;

  double law_delta = 0.05;  ///< law reinforcement input value

  /// Experimental "customized" choice-function variant (§ conclusion
  /// mentions such variants): bias the fusion/fission decision by the
  /// atom's own leak ratio relative to the molecule average. Our ablation
  /// (bench/ablation_choice) found it HURTS on the core-area instance, so
  /// the default 0 keeps the paper's pure size-based choice(x).
  double choice_term_bias = 0.0;

  // Ablation switches (paper-faithful pure Algorithm 1 when
  // choice_term_bias = 0 and the rest are left at defaults).
  bool use_laws = true;               ///< frozen uniform laws when false
  bool percolation_fission = true;    ///< random halving when false
  ScalingKind scaling = ScalingKind::BindingEnergy;

  // Batched parallel engine (header comment above). threads == 0 runs the
  // classic serial Algorithm 1 loop. threads >= 1 runs the batched engine
  // with that many speculation workers (1 = inline on the calling thread);
  // results are byte-identical across all threads >= 1 for a fixed batch
  // size. batch > 0 overrides the default batch size and, on its own,
  // also selects the batched engine.
  int threads = 0;
  int batch = 0;  ///< candidate atoms per batch; 0 = kDefaultFusionFissionBatch
  /// Optional shared worker pool (solver/worker_pool.hpp). When null and
  /// threads > 1, run() creates a private pool for the run.
  std::shared_ptr<ThreadPool> pool;
  /// Optional process-wide governor (service/thread_budget.hpp). When set
  /// and no pool was injected, the run *leases* its speculation workers:
  /// `threads` becomes a want, the pool is sized to the grant (possibly
  /// inline-only), and the slots return when the run ends. `threads` and
  /// `batch` alone still fix the schedule, so the result stays
  /// byte-identical whatever the grant. This is how the engine composes
  /// with portfolio restarts and service jobs without oversubscribing.
  ThreadBudget* budget = nullptr;

  std::uint64_t seed = 17;

  // Durable-solve hooks (persist/). FF is anytime by construction — the
  // loop operates on ANY partition, not just the Algorithm 2 start — so
  // resume is just a different initialization and checkpointing is just a
  // different observer. Both default off and cost nothing when off.
  /// Skip Algorithm 2 and build the starting molecule from this
  /// assignment (one part id per vertex; must cover every vertex). When
  /// it has exactly k parts it also seeds best-at-k, so the run can never
  /// report a worse result than the partition it resumed from.
  std::shared_ptr<const std::vector<int>> warm_start;
  /// The checkpointed objective value of `warm_start` (see
  /// SolverRequest::warm_start_value): when it is LOWER than what the
  /// incremental tracker computes for the restored partition — float
  /// summation order can differ by an ulp — best-at-k adopts it, keeping
  /// the resume contract exact. Infinity = unknown.
  double warm_start_value = std::numeric_limits<double>::infinity();
  /// Memetic incumbent (evolve crossover's better parent): a full k-part
  /// assignment whose objective CAPS the result. Unlike warm_start it
  /// does not replace the starting molecule — the run still starts from
  /// warm_start (the parents' overlay) — it seeds best-at-k directly, so
  /// a crossover offspring can never report worse than its better parent
  /// no matter where the search wanders. Ignored when its part count is
  /// not exactly k (the guarantee would be meaningless).
  std::shared_ptr<const std::vector<int>> incumbent;
  /// The archived objective value of `incumbent`; the lower of it and the
  /// fresh re-evaluation is adopted (same ulp rule as warm_start_value).
  double incumbent_value = std::numeric_limits<double>::infinity();
  /// With checkpoint_sink set and checkpoint_every_ms > 0, the best-at-k
  /// partition (compacted assignment + objective value) is pushed through
  /// the sink at most once per interval — and once more at the end of the
  /// run — but only when it improved since the last push. The sink runs
  /// on the solve thread; persist::save_checkpoint is the intended body.
  std::int64_t checkpoint_every_ms = 0;
  std::function<void(const std::vector<int>& assignment, double value)>
      checkpoint_sink;
};

struct FusionFissionResult {
  Partition best;            ///< best partition with exactly k parts
  double best_value = 0.0;   ///< its objective value
  double best_energy = 0.0;  ///< its scaled energy
  /// Best objective seen at every visited part count (the §6 k-range claim).
  std::map<int, double> best_by_part_count;
  std::int64_t steps = 0;
  std::int64_t fusions = 0;
  std::int64_t fissions = 0;
  std::int64_t ejections = 0;
  int reheats = 0;
  // Batched-engine speculative-work accounting (all 0 in serial mode).
  std::int64_t batches = 0;       ///< step-batches committed
  std::int64_t conflicts = 0;     ///< candidates discarded for territory overlap
  std::int64_t stale_redone = 0;  ///< operations re-planned at commit
};

class FusionFission {
 public:
  FusionFission(const Graph& g, int k, FusionFissionOptions options);

  /// Full run: Algorithm 2 initialization, then Algorithm 1 until `stop`.
  FusionFissionResult run(const StopCondition& stop,
                          AnytimeRecorder* recorder = nullptr);

  /// Algorithm 2 only (exposed for tests/benches): a near-k partition grown
  /// from singletons. Always serial — initialization is fusion-dominated
  /// and already measures in milliseconds.
  Partition initialize();

 private:
  struct State;
  /// Speculative outputs, computed on workers against the frozen molecule
  /// and applied at commit (or re-planned there when stale).
  struct FusionPlan {
    int partner = -1;
    Weight w_conn = 0.0;
  };
  struct FissionPlan {
    /// Minority side to split off; empty = percolation degenerated to one
    /// side, force a single-vertex split.
    std::vector<VertexId> moved;
  };

  bool batched() const { return options_.threads >= 1 || options_.batch >= 1; }
  /// The fission probability of Algorithm 1 step 2 at `temperature`,
  /// including the optional leak-ratio choice bias — shared by the serial
  /// step and the batched SELECT phase so the choice rule stays one
  /// definition.
  double choice_probability(const State& s, int atom,
                            double temperature) const;
  void run_serial(State& s, const StopCondition& stop,
                  AnytimeRecorder* recorder);
  void run_batched(State& s, const StopCondition& stop,
                   AnytimeRecorder* recorder);
  void step(State& s);
  void do_fusion(State& s, int atom, Rng& rng, const FusionPlan* plan);
  void do_fission(State& s, int atom, Rng& rng, const FissionPlan* plan);
  int absorb_nucleon(State& s, VertexId v);          // nfusion
  void simple_fission(State& s, int atom, Rng& rng); // nfission, no ejection
  /// Chosen partner id (or -1) plus the connection weight to it. Const and
  /// reentrant: reads the molecule, draws only from `rng` — the fusion
  /// speculation entry point.
  std::pair<int, Weight> select_fusion_partner(const Partition& cur,
                                               double heat, int atom,
                                               Rng& rng) const;
  std::vector<VertexId> pick_ejected(State& s, int atom, int count);
  /// Computes the side to split off `members` (percolation or the random-
  /// halving ablation). Const and reentrant — the fission speculation
  /// entry point.
  void plan_split(std::span<const VertexId> members, bool allow_percolation,
                  Rng& rng, std::vector<VertexId>& moved) const;
  void split_atom(State& s, int atom, bool allow_percolation, Rng& rng,
                  const FissionPlan* plan);
  /// Energy of the current molecule, O(1) off the tracker's running value.
  double energy_now(const State& s) const;
  /// 1 at tmax … 0 at tmin.
  double heat_of(double temperature) const;
  /// low_temperature (Algorithm 1): back to tmax, restart from the best.
  void reheat(State& s);
  void note_partition(State& s, AnytimeRecorder* recorder);
  /// Checkpoint pump: emits best-at-k through options_.checkpoint_sink
  /// when the interval elapsed and the value improved. Callers gate on
  /// State::ckpt_on so the disabled path pays one branch.
  void maybe_checkpoint(State& s);
  void flush_checkpoint(State& s);

  const Graph* g_;
  int k_;
  FusionFissionOptions options_;
  ChoiceParams choice_;
  std::unique_ptr<ScalingFunction> scaling_;
};

}  // namespace ffp
