#include "core/laws.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ffp {

namespace {
constexpr double kMinProb = 0.01;
constexpr double kMaxProb = 0.97;
}  // namespace

LawTable::LawTable(int max_atom_size, double delta)
    : max_size_(max_atom_size), delta_(delta) {
  FFP_CHECK(max_atom_size >= 1, "max_atom_size must be >= 1");
  FFP_CHECK(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
  probs_.resize(2 * static_cast<std::size_t>(max_atom_size));
  for (int size = 1; size <= max_atom_size; ++size) {
    for (LawKind kind : {LawKind::Fusion, LawKind::Fission}) {
      const int c = choices(kind, size);
      auto& law = probs_[index(kind, size)];
      law.fill(0.0);
      for (int i = 0; i < c; ++i) {
        law[static_cast<std::size_t>(i)] = 1.0 / c;
      }
    }
  }
}

int LawTable::choices(LawKind kind, int size) const {
  FFP_CHECK(size >= 1 && size <= max_size_, "atom size out of range: ", size);
  // Result atoms must stay non-empty: fusion leaves one atom (>= 1 nucleon),
  // fission leaves two (>= 2 nucleons).
  const int room = kind == LawKind::Fusion ? size - 1 : size - 2;
  return std::clamp(room, 0, kMaxEjected) + 1;
}

std::size_t LawTable::index(LawKind kind, int size) const {
  FFP_DCHECK(size >= 1 && size <= max_size_);
  const std::size_t base =
      kind == LawKind::Fusion ? 0 : static_cast<std::size_t>(max_size_);
  return base + static_cast<std::size_t>(size - 1);
}

int LawTable::sample(LawKind kind, int size, Rng& rng) const {
  const int c = choices(kind, size);
  const auto& law = probs_[index(kind, size)];
  const auto pick = rng.weighted_pick(
      std::span<const double>(law.data(), static_cast<std::size_t>(c)));
  return pick >= static_cast<std::size_t>(c) ? 0 : static_cast<int>(pick);
}

std::span<const double> LawTable::probabilities(LawKind kind, int size) const {
  const int c = choices(kind, size);
  return {probs_[index(kind, size)].data(), static_cast<std::size_t>(c)};
}

void LawTable::update(LawKind kind, int size, int chosen, bool success) {
  const int c = choices(kind, size);
  FFP_CHECK(chosen >= 0 && chosen < c, "chosen ejection count out of range");
  if (c <= 1) return;  // nothing to learn from a single-entry law

  auto& law = probs_[index(kind, size)];
  // §4.1: add delta to the winner, remove delta/3 from the others (the paper
  // fixes /3 because laws have four entries; for truncated laws the same
  // total is spread over the remaining entries). Failure reverses the flow.
  const double gain = success ? delta_ : -delta_;
  const double spread = gain / (c - 1);
  law[static_cast<std::size_t>(chosen)] += gain;
  for (int i = 0; i < c; ++i) {
    if (i != chosen) law[static_cast<std::size_t>(i)] -= spread;
  }
  // Clamp strictly inside (0,1) and renormalize.
  double total = 0.0;
  for (int i = 0; i < c; ++i) {
    auto& p = law[static_cast<std::size_t>(i)];
    p = std::clamp(p, kMinProb, kMaxProb);
    total += p;
  }
  for (int i = 0; i < c; ++i) {
    law[static_cast<std::size_t>(i)] /= total;
  }
}

}  // namespace ffp
