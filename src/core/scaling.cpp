#include "core/scaling.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace ffp {

namespace {

class BindingEnergyScaling final : public ScalingFunction {
 public:
  BindingEnergyScaling(ObjectiveKind objective, double total_edge_weight)
      : objective_(objective), two_m_(2.0 * total_edge_weight) {}

  std::string_view name() const override { return "binding-energy"; }

  double scale(int p) const override {
    if (p < 2) return 0.0;  // caller maps to +inf energy
    const double pd = p;
    switch (objective_) {
      case ObjectiveKind::Cut:
        return std::max(two_m_, 1.0) * (1.0 - 1.0 / pd);
      case ObjectiveKind::NormalizedCut:
      case ObjectiveKind::RatioCut:
        return pd - 1.0;
      case ObjectiveKind::MinMaxCut:
        return pd * (pd - 1.0);
    }
    throw Error("unknown ObjectiveKind in scaling");
  }

 private:
  ObjectiveKind objective_;
  double two_m_;
};

class LinearScaling final : public ScalingFunction {
 public:
  std::string_view name() const override { return "linear"; }
  double scale(int p) const override { return p < 2 ? 0.0 : static_cast<double>(p); }
};

class IdentityScaling final : public ScalingFunction {
 public:
  std::string_view name() const override { return "identity"; }
  double scale(int p) const override { return p < 2 ? 0.0 : 1.0; }
};

}  // namespace

std::unique_ptr<ScalingFunction> make_scaling(ScalingKind kind,
                                              ObjectiveKind objective,
                                              double total_edge_weight) {
  switch (kind) {
    case ScalingKind::BindingEnergy:
      return std::make_unique<BindingEnergyScaling>(objective,
                                                    total_edge_weight);
    case ScalingKind::Linear:
      return std::make_unique<LinearScaling>();
    case ScalingKind::Identity:
      return std::make_unique<IdentityScaling>();
  }
  throw Error("unknown ScalingKind");
}

double partition_energy(double objective_value, int nonempty_parts,
                        const ScalingFunction& scaling) {
  const double s = scaling.scale(nonempty_parts);
  if (s <= 0.0) return std::numeric_limits<double>::infinity();
  return objective_value / s;
}

}  // namespace ffp
