// The fusion-fission scaling function (§4.1): objective values of
// partitions with different part counts are not comparable (fewer parts →
// smaller objective; "results is the smallest when there is no partition"),
// so FF divides the objective by a per-part-count scale s(p) chosen so that
// *equal-quality* partitions at different p carry equal energy — the
// binding-energy analogy.
//
// Our concrete instantiation (DESIGN.md §5.3) uses the expected objective
// of a uniformly random p-partition as the scale:
//   Cut : E[Σ cut(A)] = 2M·(1 − 1/p)            → s(p) ∝ 1 − 1/p
//   Ncut: each term ≈ 1 − 1/p, p terms          → s(p) ∝ p − 1
//   Mcut: each term ≈ (1−1/p)/(1/p) = p−1       → s(p) ∝ p(p − 1)
// (RatioCut behaves like Ncut.) A random partition then has energy ≈ const
// for every p, and a good one has energy < 1 uniformly — the flat "region
// of stability" of the binding-energy curve, with the steep light-element
// rise coming from the p→1 collapse of the scale. Linear and identity
// scalings are kept for the ablation bench.
#pragma once

#include <memory>
#include <string_view>

#include "partition/objectives.hpp"

namespace ffp {

enum class ScalingKind {
  BindingEnergy,  ///< the random-expectation normalization above (default)
  Linear,         ///< s(p) = p (ablation)
  Identity,       ///< s(p) = 1 — no scaling (ablation)
};

class ScalingFunction {
 public:
  virtual ~ScalingFunction() = default;
  virtual std::string_view name() const = 0;
  /// Scale for a partition with p non-empty parts; must be > 0 for p >= 2.
  virtual double scale(int p) const = 0;
};

/// Factory. The BindingEnergy scaling needs the objective it normalizes and
/// the graph's total edge weight (for the Cut criterion).
std::unique_ptr<ScalingFunction> make_scaling(ScalingKind kind,
                                              ObjectiveKind objective,
                                              double total_edge_weight);

/// Energy(P) = objective(P) / scale(p). p <= 1 is an invalid FF state
/// (a single atom has nothing to cut) and maps to +infinity.
double partition_energy(double objective_value, int nonempty_parts,
                        const ScalingFunction& scaling);

}  // namespace ffp
