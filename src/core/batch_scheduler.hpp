// Conflict-free atom batching for the parallel fusion-fission engine
// (core/fusion_fission): a batch may only contain operations whose
// *territories* are pairwise disjoint, where an operation's territory is
// its chosen atom plus every atom connected to it. Disjoint territories
// guarantee that the speculative phase — worker threads bisecting atoms
// and scoring fusion partners against the frozen molecule — never reads
// state that another operation in the same batch will write at commit, so
// speculation results are valid regardless of execution order and the
// batch commits in fixed slot order with byte-identical results at any
// thread count.
//
// Claims are epoch-stamped (partition/part_scratch.hpp): beginning a batch
// is O(1) amortized, and each claim costs one arc scan over the atom's
// members plus O(|territory|) stamp probes — no hashing, no allocation
// after warm-up.
#pragma once

#include <vector>

#include "partition/part_scratch.hpp"
#include "partition/partition.hpp"

namespace ffp {

class AtomBatchScheduler {
 public:
  /// Starts a new batch over `p`'s current part-id range, dropping every
  /// claim from the previous batch.
  void begin_batch(const Partition& p);

  /// Attempts to claim `atom`'s territory for this batch. On success the
  /// territory's part ids (atom first) are appended to `claimed` and true
  /// is returned; on any overlap with an earlier claim nothing is taken
  /// and the candidate should be discarded (a *conflict*).
  bool try_claim(const Partition& p, int atom, std::vector<int>& claimed);

  /// True iff `part` is claimed in the current batch.
  bool claimed(int part) const { return claims_.seen(part); }

 private:
  PartMarkScratch claims_;     // parts owned by some accepted operation
  PartMarkScratch territory_;  // per-call dedup of the candidate's territory
};

}  // namespace ffp
