#include "core/batch_scheduler.hpp"

namespace ffp {

void AtomBatchScheduler::begin_batch(const Partition& p) {
  claims_.begin(p.num_parts());
}

bool AtomBatchScheduler::try_claim(const Partition& p, int atom,
                                   std::vector<int>& claimed) {
  const Graph& g = p.graph();
  territory_.begin(p.num_parts());
  territory_.mark(atom);
  for (VertexId v : p.members(atom)) {
    for (VertexId u : g.neighbors(v)) {
      territory_.mark(p.part_of(u));
    }
  }
  for (int q : territory_.marked()) {
    if (claims_.seen(q)) return false;
  }
  for (int q : territory_.marked()) {
    claims_.mark(q);
    claimed.push_back(q);
  }
  return true;
}

}  // namespace ffp
