#include "core/choice.hpp"

#include <algorithm>

namespace ffp {

double choice_alpha(double t, const ChoiceParams& params) {
  FFP_CHECK(params.tmax > params.tmin, "tmax must exceed tmin");
  FFP_CHECK(params.offset > 0.0, "offset r must be > 0 (keeps alpha positive)");
  const double ratio = (params.tmax - t) / (params.tmax - params.tmin);
  return params.slope * ratio + params.offset;
}

double fission_probability(int size, double t, const ChoiceParams& params) {
  FFP_CHECK(size >= 1, "atom size must be >= 1");
  const double alpha = choice_alpha(t, params);
  const double x = size;
  const double nbar = params.target_size;
  const double window = 1.0 / (2.0 * alpha);
  if (x > nbar + window) return 1.0;
  if (x < nbar - window) return 0.0;
  return std::clamp(alpha * (x - nbar) + 0.5, 0.0, 1.0);
}

}  // namespace ffp
