// Synthetic aircraft flows over an airspace: a gravity model between hub
// airports, routed along shortest sector paths. Edge weights become the
// number of aircraft crossing between adjacent sectors — heavy-tailed and
// spatially correlated, like the radar-derived counts the paper used.
#pragma once

#include <cstdint>
#include <vector>

#include "atc/airspace.hpp"

namespace ffp {

struct FlowOptions {
  // Defaults are calibrated so the resulting graph is as hard to cut as the
  // paper's real sector graph (whose Mcut at k=32 sits near 2–3 per part):
  // many hubs with flat sizes and a significant background flow level keep
  // the graph from decomposing into a few obvious corridors.
  int n_hubs = 72;
  double gravity_exponent = 1.1;  ///< demand ~ pop·pop / dist^exponent
  double hub_zipf = 0.6;          ///< hub "population" ~ rank^-zipf
  double total_flow = 350000.0;   ///< scale: Σ edge weights after routing
  double base_flow = 25.0;        ///< background flow on every adjacency edge
  std::uint64_t seed = 4051;
};

struct FlowResult {
  std::vector<WeightedEdge> weighted_edges;  ///< adjacency with flow weights
  std::vector<VertexId> hubs;                ///< chosen hub sectors (lower layer)
};

/// Routes gravity-model demand over the airspace adjacency and returns the
/// same edges re-weighted by traffic.
FlowResult route_flows(const Airspace& airspace, const FlowOptions& options);

}  // namespace ffp
