// Synthetic European airspace geometry — the substitute for the paper's
// proprietary ENAC sector data (DESIGN.md §2.1).
//
// Sector centres are sampled (best-candidate blue-noise) from a union of
// country boxes approximating the paper's "country core area" (Germany,
// France, UK, Switzerland, Benelux, Austria, Spain, Denmark, Luxembourg,
// Italy), in two vertical layers (lower/upper airspace). Adjacency is a
// mutual k-nearest-neighbour graph per layer plus vertical edges between
// stacked sectors — the structure real sector graphs have: planar-ish
// layers, mean degree ≈ 8, spatial locality.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ffp {

struct Sector {
  double x = 0.0;  ///< lon-like coordinate (degrees-ish)
  double y = 0.0;  ///< lat-like coordinate
  int layer = 0;   ///< 0 = lower airspace, 1 = upper
  int country = 0; ///< index into core_area_countries()
};

struct CountryBox {
  const char* name;
  double x0, y0, x1, y1;
  double traffic_weight;  ///< relative share of European traffic
};

/// The 11-country core area of Bichot & Alliot (2005), as coarse boxes.
std::span<const CountryBox> core_area_countries();

struct AirspaceOptions {
  int n_sectors = 762;
  double lower_fraction = 0.55;  ///< share of sectors in the lower layer
  int neighbors_per_sector = 5;  ///< k for the mutual-kNN adjacency
  std::uint64_t seed = 2006;
};

struct Airspace {
  std::vector<Sector> sectors;
  /// Geometric adjacency (weights = 1; flows.hpp turns them into traffic).
  std::vector<WeightedEdge> adjacency;
};

Airspace make_airspace(const AirspaceOptions& options);

/// Euclidean distance between two sectors (vertical hops count a little).
double sector_distance(const Sector& a, const Sector& b);

}  // namespace ffp
