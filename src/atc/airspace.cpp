#include "atc/airspace.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ffp {

namespace {

// Coarse lon/lat boxes; traffic weights roughly follow 2005 IFR movement
// shares (Germany/France/UK dominate).
constexpr CountryBox kCountries[] = {
    {"Germany", 6.0, 47.5, 15.0, 55.0, 0.20},
    {"France", -4.5, 42.5, 8.0, 51.0, 0.19},
    {"UnitedKingdom", -5.5, 50.0, 1.8, 58.5, 0.16},
    {"Italy", 7.0, 37.5, 18.5, 46.5, 0.11},
    {"Spain", -9.0, 36.0, 3.0, 43.5, 0.11},
    {"Netherlands", 3.4, 50.8, 7.2, 53.5, 0.06},
    {"Belgium", 2.5, 49.5, 6.4, 51.5, 0.05},
    {"Switzerland", 6.0, 45.8, 10.5, 47.8, 0.05},
    {"Austria", 9.5, 46.4, 17.0, 49.0, 0.04},
    {"Denmark", 8.0, 54.5, 12.8, 57.8, 0.02},
    {"Luxembourg", 5.7, 49.4, 6.5, 50.2, 0.01},
};

double sq(double v) { return v * v; }

}  // namespace

std::span<const CountryBox> core_area_countries() { return kCountries; }

double sector_distance(const Sector& a, const Sector& b) {
  // A layer change costs about one sector width (climb/descent).
  const double layer_penalty = a.layer == b.layer ? 0.0 : 0.6;
  return std::sqrt(sq(a.x - b.x) + sq(a.y - b.y) + sq(layer_penalty));
}

Airspace make_airspace(const AirspaceOptions& options) {
  FFP_CHECK(options.n_sectors >= 8, "need at least 8 sectors");
  FFP_CHECK(options.lower_fraction > 0.0 && options.lower_fraction < 1.0,
            "lower_fraction must be in (0,1)");
  Rng rng(options.seed);

  const auto countries = core_area_countries();
  double total_area = 0.0;
  std::vector<double> areas;
  for (const auto& c : countries) {
    areas.push_back((c.x1 - c.x0) * (c.y1 - c.y0));
    total_area += areas.back();
  }

  auto sample_point = [&](Sector& s) {
    // Pick a country by area, then uniform in its box: the blobs overlap,
    // producing the connected multi-lobe footprint of the core area.
    const auto c = rng.weighted_pick(areas);
    const auto& box = countries[c];
    s.x = rng.uniform(box.x0, box.x1);
    s.y = rng.uniform(box.y0, box.y1);
    s.country = static_cast<int>(c);
  };

  Airspace out;
  out.sectors.resize(static_cast<std::size_t>(options.n_sectors));
  const int n_lower = std::max(
      1, static_cast<int>(options.n_sectors * options.lower_fraction));

  // Best-candidate (Mitchell) sampling per layer for an even, irregular
  // spread — real sectorizations are irregular but non-clumped.
  std::vector<std::size_t> layer_members[2];
  for (int i = 0; i < options.n_sectors; ++i) {
    auto& s = out.sectors[static_cast<std::size_t>(i)];
    s.layer = i < n_lower ? 0 : 1;
    const auto& same_layer = layer_members[s.layer];
    constexpr int kCandidates = 8;
    double best_d = -1.0;
    Sector best{};
    for (int c = 0; c < kCandidates; ++c) {
      Sector cand;
      cand.layer = s.layer;
      sample_point(cand);
      double nearest = std::numeric_limits<double>::infinity();
      for (std::size_t j : same_layer) {
        nearest = std::min(nearest, sq(cand.x - out.sectors[j].x) +
                                        sq(cand.y - out.sectors[j].y));
      }
      if (nearest > best_d) {
        best_d = nearest;
        best = cand;
      }
    }
    s.x = best.x;
    s.y = best.y;
    s.country = best.country;
    layer_members[s.layer].push_back(static_cast<std::size_t>(i));
  }

  // Mutual k-nearest adjacency per layer (mutuality keeps it planar-ish),
  // then each upper sector gets vertical edges to its nearest lower sectors.
  const int n = options.n_sectors;
  const int k = options.neighbors_per_sector;
  std::vector<std::vector<VertexId>> knn(static_cast<std::size_t>(n));
  for (int layer = 0; layer < 2; ++layer) {
    const auto& members = layer_members[layer];
    for (std::size_t ii = 0; ii < members.size(); ++ii) {
      const auto i = members[ii];
      std::vector<std::pair<double, VertexId>> dists;
      dists.reserve(members.size());
      for (std::size_t jj = 0; jj < members.size(); ++jj) {
        if (ii == jj) continue;
        const auto j = members[jj];
        dists.emplace_back(sq(out.sectors[i].x - out.sectors[j].x) +
                               sq(out.sectors[i].y - out.sectors[j].y),
                           static_cast<VertexId>(j));
      }
      const auto take = std::min<std::size_t>(static_cast<std::size_t>(k),
                                              dists.size());
      std::partial_sort(dists.begin(),
                        dists.begin() + static_cast<std::ptrdiff_t>(take),
                        dists.end());
      for (std::size_t t = 0; t < take; ++t) {
        knn[i].push_back(dists[t].second);
      }
    }
  }
  std::vector<WeightedEdge> edges;
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : knn[static_cast<std::size_t>(v)]) {
      if (u <= v) continue;
      const auto& back = knn[static_cast<std::size_t>(u)];
      if (std::find(back.begin(), back.end(), v) != back.end()) {
        edges.push_back({v, u, 1.0});
      }
    }
  }
  // Vertical edges: every upper sector to its 2 nearest lower sectors.
  for (std::size_t iu : layer_members[1]) {
    std::vector<std::pair<double, VertexId>> dists;
    for (std::size_t il : layer_members[0]) {
      dists.emplace_back(sq(out.sectors[iu].x - out.sectors[il].x) +
                             sq(out.sectors[iu].y - out.sectors[il].y),
                         static_cast<VertexId>(il));
    }
    const auto take = std::min<std::size_t>(2, dists.size());
    std::partial_sort(dists.begin(),
                      dists.begin() + static_cast<std::ptrdiff_t>(take),
                      dists.end());
    for (std::size_t t = 0; t < take; ++t) {
      edges.push_back({static_cast<VertexId>(iu), dists[t].second, 1.0});
    }
  }
  out.adjacency = std::move(edges);

  // Relabel sectors in a spatially coherent order — layer, then a coarse
  // west-to-east column sweep. Real sector identifiers cluster
  // geographically, which is what gives the paper's "Linear" rows (index-
  // block partitions) their meaning.
  std::vector<std::size_t> order(out.sectors.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto& sa = out.sectors[a];
    const auto& sb = out.sectors[b];
    const int col_a = static_cast<int>(std::floor(sa.x / 2.0));
    const int col_b = static_cast<int>(std::floor(sb.x / 2.0));
    if (sa.layer != sb.layer) return sa.layer < sb.layer;
    if (col_a != col_b) return col_a < col_b;
    if (sa.y != sb.y) return sa.y < sb.y;
    return sa.x < sb.x;
  });
  std::vector<VertexId> new_id(out.sectors.size());
  std::vector<Sector> relabeled(out.sectors.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    new_id[order[pos]] = static_cast<VertexId>(pos);
    relabeled[pos] = out.sectors[order[pos]];
  }
  out.sectors = std::move(relabeled);
  for (auto& e : out.adjacency) {
    e.u = new_id[static_cast<std::size_t>(e.u)];
    e.v = new_id[static_cast<std::size_t>(e.v)];
  }
  return out;
}

}  // namespace ffp
