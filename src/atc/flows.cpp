#include "atc/flows.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ffp {

namespace {

/// Dijkstra over the adjacency with geometric edge lengths; returns the
/// predecessor tree.
std::vector<VertexId> dijkstra_tree(
    const std::vector<Sector>& sectors,
    const std::vector<std::vector<std::pair<VertexId, double>>>& adj,
    VertexId source) {
  const auto n = sectors.size();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<VertexId> pred(n, -1);
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(source)] = 0.0;
  pq.push({0.0, source});
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    for (const auto& [u, len] : adj[static_cast<std::size_t>(v)]) {
      const double nd = d + len;
      if (nd < dist[static_cast<std::size_t>(u)]) {
        dist[static_cast<std::size_t>(u)] = nd;
        pred[static_cast<std::size_t>(u)] = v;
        pq.push({nd, u});
      }
    }
  }
  return pred;
}

}  // namespace

FlowResult route_flows(const Airspace& airspace, const FlowOptions& options) {
  FFP_CHECK(options.n_hubs >= 2, "need at least two hubs");
  const auto& sectors = airspace.sectors;
  const auto n = static_cast<VertexId>(sectors.size());
  Rng rng(options.seed);

  // Build an adjacency list with geometric lengths and an edge-id map.
  std::vector<std::vector<std::pair<VertexId, double>>> adj(
      static_cast<std::size_t>(n));
  std::unordered_map<std::int64_t, std::size_t> edge_index;
  for (std::size_t e = 0; e < airspace.adjacency.size(); ++e) {
    const auto& ed = airspace.adjacency[e];
    const double len = std::max(
        1e-3, sector_distance(sectors[static_cast<std::size_t>(ed.u)],
                              sectors[static_cast<std::size_t>(ed.v)]));
    adj[static_cast<std::size_t>(ed.u)].emplace_back(ed.v, len);
    adj[static_cast<std::size_t>(ed.v)].emplace_back(ed.u, len);
    const std::int64_t key =
        static_cast<std::int64_t>(std::min(ed.u, ed.v)) * n + std::max(ed.u, ed.v);
    edge_index[key] = e;
  }

  // Hubs: lower-layer sectors, spread by best-candidate sampling, weighted
  // toward high-traffic countries. "Population" follows a Zipf law.
  std::vector<VertexId> lower;
  for (VertexId v = 0; v < n; ++v) {
    if (sectors[static_cast<std::size_t>(v)].layer == 0) lower.push_back(v);
  }
  FFP_CHECK(!lower.empty(), "airspace has no lower layer");
  const auto countries = core_area_countries();

  FlowResult result;
  std::vector<char> is_hub(static_cast<std::size_t>(n), 0);
  const int n_hubs = std::min<int>(options.n_hubs,
                                   static_cast<int>(lower.size()));
  for (int h = 0; h < n_hubs; ++h) {
    VertexId best = -1;
    double best_score = -1.0;
    for (int c = 0; c < 10; ++c) {
      const VertexId cand = lower[rng.below(lower.size())];
      if (is_hub[static_cast<std::size_t>(cand)]) continue;
      double nearest = std::numeric_limits<double>::infinity();
      for (VertexId h2 : result.hubs) {
        const auto& a = sectors[static_cast<std::size_t>(cand)];
        const auto& b = sectors[static_cast<std::size_t>(h2)];
        nearest = std::min(nearest, (a.x - b.x) * (a.x - b.x) +
                                        (a.y - b.y) * (a.y - b.y));
      }
      const double country_w =
          countries[static_cast<std::size_t>(
                        sectors[static_cast<std::size_t>(cand)].country)]
              .traffic_weight;
      const double score = (result.hubs.empty() ? 1.0 : nearest) *
                           (0.3 + country_w);
      if (score > best_score) {
        best_score = score;
        best = cand;
      }
    }
    if (best == -1) continue;
    is_hub[static_cast<std::size_t>(best)] = 1;
    result.hubs.push_back(best);
  }
  FFP_CHECK(result.hubs.size() >= 2, "hub selection failed");

  // Hub populations: Zipf over a shuffled rank order.
  std::vector<double> pop(result.hubs.size());
  std::vector<std::size_t> rank(result.hubs.size());
  for (std::size_t i = 0; i < rank.size(); ++i) rank[i] = i;
  rng.shuffle(rank);
  for (std::size_t i = 0; i < pop.size(); ++i) {
    pop[i] = std::pow(static_cast<double>(rank[i] + 1), -options.hub_zipf);
  }

  // Route each ordered hub pair along the shortest path, accumulating
  // demand on every crossed edge.
  std::vector<double> flow(airspace.adjacency.size(), 0.0);
  for (std::size_t a = 0; a < result.hubs.size(); ++a) {
    const auto pred = dijkstra_tree(sectors, adj, result.hubs[a]);
    for (std::size_t b = 0; b < result.hubs.size(); ++b) {
      if (a == b) continue;
      const auto& sa = sectors[static_cast<std::size_t>(result.hubs[a])];
      const auto& sb = sectors[static_cast<std::size_t>(result.hubs[b])];
      const double d = std::max(0.5, sector_distance(sa, sb));
      const double demand =
          pop[a] * pop[b] / std::pow(d, options.gravity_exponent);
      // Walk the predecessor chain from b back to a.
      VertexId at = result.hubs[b];
      while (pred[static_cast<std::size_t>(at)] != -1) {
        const VertexId p = pred[static_cast<std::size_t>(at)];
        const std::int64_t key =
            static_cast<std::int64_t>(std::min(at, p)) * n + std::max(at, p);
        const auto it = edge_index.find(key);
        FFP_CHECK(it != edge_index.end(), "path uses unknown edge");
        flow[it->second] += demand;
        at = p;
      }
    }
  }

  // Scale to the requested total and floor at base_flow.
  double total = 0.0;
  for (double f : flow) total += f;
  const double scale = total > 0.0 ? options.total_flow / total : 0.0;
  result.weighted_edges = airspace.adjacency;
  for (std::size_t e = 0; e < flow.size(); ++e) {
    // Round to whole aircraft counts, as radar data would be.
    result.weighted_edges[e].w =
        std::max(options.base_flow, std::round(flow[e] * scale));
  }
  return result;
}

}  // namespace ffp
