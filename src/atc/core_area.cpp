#include "atc/core_area.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/connectivity.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ffp {

namespace {

/// Maximum-weight spanning forest edge mask (Kruskal with a union-find):
/// these edges are never dropped, so trimming preserves connectivity.
std::vector<char> max_spanning_edges(VertexId n,
                                     std::span<const WeightedEdge> edges) {
  std::vector<std::size_t> order(edges.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return edges[a].w != edges[b].w ? edges[a].w > edges[b].w : a < b;
  });
  std::vector<VertexId> parent(static_cast<std::size_t>(n));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](VertexId v) {
    while (parent[static_cast<std::size_t>(v)] != v) {
      parent[static_cast<std::size_t>(v)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(v)])];
      v = parent[static_cast<std::size_t>(v)];
    }
    return v;
  };
  std::vector<char> in_tree(edges.size(), 0);
  for (std::size_t e : order) {
    const VertexId ru = find(edges[e].u);
    const VertexId rv = find(edges[e].v);
    if (ru != rv) {
      parent[static_cast<std::size_t>(ru)] = rv;
      in_tree[e] = 1;
    }
  }
  return in_tree;
}

}  // namespace

CoreAreaGraph make_core_area_graph(const CoreAreaOptions& options) {
  FFP_CHECK(options.n_sectors >= 8, "n_sectors too small");
  FFP_CHECK(options.n_edges >= options.n_sectors - 1,
            "n_edges cannot even form a spanning tree");

  CoreAreaGraph out;
  AirspaceOptions aopt;
  aopt.n_sectors = options.n_sectors;
  aopt.seed = options.seed;
  // Overshoot the edge count a little so trimming (never growing) usually
  // suffices; kNN with k=5 on two layers plus vertical edges lands near
  // 4.4 edges/vertex.
  aopt.neighbors_per_sector = 5;
  out.airspace = make_airspace(aopt);

  FlowOptions fopt;
  fopt.seed = options.seed ^ 0x51f15eedULL;
  auto flows = route_flows(out.airspace, fopt);
  out.hubs = std::move(flows.hubs);
  std::vector<WeightedEdge> edges = std::move(flows.weighted_edges);

  Rng rng(options.seed ^ 0xc0ffeeULL);
  const auto n = static_cast<VertexId>(options.n_sectors);

  // Mutual-kNN layers can come out disconnected; bridge components with the
  // geometrically closest cross-component pair before trimming (the flow
  // weight on a bridge is base-level, like a quiet border sector).
  for (;;) {
    const Graph probe = Graph::from_edges(n, edges);
    const auto comps = connected_components(probe);
    if (comps.count <= 1) break;
    VertexId bu = -1, bv = -1;
    double best_d = std::numeric_limits<double>::infinity();
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (comps.label[static_cast<std::size_t>(u)] ==
            comps.label[static_cast<std::size_t>(v)]) {
          continue;
        }
        const double d =
            sector_distance(out.airspace.sectors[static_cast<std::size_t>(u)],
                            out.airspace.sectors[static_cast<std::size_t>(v)]);
        if (d < best_d) {
          best_d = d;
          bu = u;
          bv = v;
        }
      }
    }
    FFP_CHECK(bu != -1, "could not bridge components");
    edges.push_back({bu, bv, 1.0});
  }

  // Trim: drop the lightest non-spanning edges until the count matches.
  if (static_cast<int>(edges.size()) > options.n_edges) {
    const auto keep = max_spanning_edges(n, edges);
    std::vector<std::size_t> removable;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (!keep[e]) removable.push_back(e);
    }
    std::sort(removable.begin(), removable.end(),
              [&](std::size_t a, std::size_t b) {
                return edges[a].w != edges[b].w ? edges[a].w < edges[b].w
                                                : a < b;
              });
    std::vector<char> drop(edges.size(), 0);
    const auto excess =
        static_cast<std::size_t>(static_cast<int>(edges.size()) - options.n_edges);
    FFP_CHECK(excess <= removable.size(),
              "cannot trim to requested edge count without disconnecting");
    for (std::size_t i = 0; i < excess; ++i) drop[removable[i]] = 1;
    std::vector<WeightedEdge> kept;
    kept.reserve(static_cast<std::size_t>(options.n_edges));
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (!drop[e]) kept.push_back(edges[e]);
    }
    edges = std::move(kept);
  }

  // Grow: connect nearest not-yet-adjacent same-layer pairs.
  while (static_cast<int>(edges.size()) < options.n_edges) {
    // Adjacency lookup set.
    std::vector<std::vector<VertexId>> adj(static_cast<std::size_t>(n));
    for (const auto& e : edges) {
      adj[static_cast<std::size_t>(e.u)].push_back(e.v);
      adj[static_cast<std::size_t>(e.v)].push_back(e.u);
    }
    VertexId bu = -1, bv = -1;
    double best_d = std::numeric_limits<double>::infinity();
    // Randomized sampling of candidate pairs keeps this O(n·samples).
    for (int attempt = 0; attempt < 4096; ++attempt) {
      const auto u = static_cast<VertexId>(rng.below(static_cast<std::uint64_t>(n)));
      const auto v = static_cast<VertexId>(rng.below(static_cast<std::uint64_t>(n)));
      if (u == v) continue;
      const auto& au = adj[static_cast<std::size_t>(u)];
      if (std::find(au.begin(), au.end(), v) != au.end()) continue;
      const double d =
          sector_distance(out.airspace.sectors[static_cast<std::size_t>(u)],
                          out.airspace.sectors[static_cast<std::size_t>(v)]);
      if (d < best_d) {
        best_d = d;
        bu = u;
        bv = v;
      }
    }
    FFP_CHECK(bu != -1, "failed to find a new edge to add");
    edges.push_back({bu, bv, 1.0});
  }

  out.graph = Graph::from_edges(n, edges);
  // Keep the geometry view consistent with the final (trimmed/grown and
  // flow-weighted) edge set, so GeoJSON exports draw the real adjacency.
  out.airspace.adjacency = std::move(edges);
  FFP_CHECK(out.graph.num_vertices() == options.n_sectors,
            "vertex count mismatch");
  FFP_CHECK(out.graph.num_edges() == options.n_edges,
            "edge count mismatch: got ", out.graph.num_edges());
  FFP_CHECK(is_connected(out.graph), "core-area graph must be connected");
  return out;
}

}  // namespace ffp
