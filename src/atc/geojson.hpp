// GeoJSON export of an airspace and its block partition — drop the output
// into any GeoJSON viewer to see the functional airspace blocks over
// Europe. Sectors become Point features with block/layer/country
// properties; block adjacencies with their flow weights become LineString
// features.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "atc/airspace.hpp"

namespace ffp {

struct GeoJsonOptions {
  bool include_edges = true;
  /// Skip edges lighter than this (keeps viewers responsive).
  Weight min_edge_weight = 0.0;
};

/// `blocks` may be empty (no partition yet) or one id per sector.
void write_geojson(const Airspace& airspace, std::span<const int> blocks,
                   std::ostream& out, const GeoJsonOptions& options = {});

void write_geojson_file(const Airspace& airspace, std::span<const int> blocks,
                        const std::string& path,
                        const GeoJsonOptions& options = {});

}  // namespace ffp
