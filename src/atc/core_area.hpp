// The paper's evaluation graph, reconstructed: "762 vertices and 3,165
// edges … the total number of sectors of the country core area". Builds the
// synthetic airspace, routes gravity flows, then trims/grows the edge set to
// exactly the published counts while preserving connectivity.
#pragma once

#include <cstdint>

#include "atc/airspace.hpp"
#include "atc/flows.hpp"
#include "graph/graph.hpp"

namespace ffp {

struct CoreAreaOptions {
  int n_sectors = 762;   ///< the paper's vertex count
  int n_edges = 3165;    ///< the paper's edge count
  std::uint64_t seed = 2006;
};

struct CoreAreaGraph {
  Graph graph;
  Airspace airspace;               ///< geometry, for examples/visualization
  std::vector<VertexId> hubs;
};

/// Deterministic for a given seed; FFP_CHECKs the exact counts and
/// connectivity before returning.
CoreAreaGraph make_core_area_graph(const CoreAreaOptions& options = {});

}  // namespace ffp
