#include "atc/geojson.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>

#include "util/check.hpp"

namespace ffp {

void write_geojson(const Airspace& airspace, std::span<const int> blocks,
                   std::ostream& out, const GeoJsonOptions& options) {
  FFP_CHECK(blocks.empty() || blocks.size() == airspace.sectors.size(),
            "blocks must be empty or one per sector");
  const auto countries = core_area_countries();
  out << std::setprecision(8);
  out << "{\"type\":\"FeatureCollection\",\"features\":[";
  bool first = true;
  for (std::size_t i = 0; i < airspace.sectors.size(); ++i) {
    const auto& s = airspace.sectors[i];
    if (!first) out << ",";
    first = false;
    out << "{\"type\":\"Feature\",\"geometry\":{\"type\":\"Point\","
        << "\"coordinates\":[" << s.x << "," << s.y << "]},"
        << "\"properties\":{\"sector\":" << i << ",\"layer\":" << s.layer
        << ",\"country\":\""
        << countries[static_cast<std::size_t>(s.country)].name << "\"";
    if (!blocks.empty()) out << ",\"block\":" << blocks[i];
    out << "}}";
  }
  if (options.include_edges) {
    for (const auto& e : airspace.adjacency) {
      if (e.w < options.min_edge_weight) continue;
      const auto& a = airspace.sectors[static_cast<std::size_t>(e.u)];
      const auto& b = airspace.sectors[static_cast<std::size_t>(e.v)];
      out << ",{\"type\":\"Feature\",\"geometry\":{\"type\":\"LineString\","
          << "\"coordinates\":[[" << a.x << "," << a.y << "],[" << b.x << ","
          << b.y << "]]},\"properties\":{\"flow\":" << e.w;
      if (!blocks.empty()) {
        out << ",\"crossing\":"
            << (blocks[static_cast<std::size_t>(e.u)] !=
                        blocks[static_cast<std::size_t>(e.v)]
                    ? "true"
                    : "false");
      }
      out << "}}";
    }
  }
  out << "]}";
}

void write_geojson_file(const Airspace& airspace, std::span<const int> blocks,
                        const std::string& path,
                        const GeoJsonOptions& options) {
  std::ofstream out(path);
  FFP_CHECK(out.good(), "cannot open for writing: ", path);
  write_geojson(airspace, blocks, out, options);
}

}  // namespace ffp
