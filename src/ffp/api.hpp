// The stable public include path for the ffp facade: everything an
// embedder needs is behind `#include "ffp/api.hpp"` (see src/api/api.hpp
// for the surface). Internal headers under api/, solver/ and service/ may
// reorganize; this path will not.
#pragma once

#include "api/api.hpp"
