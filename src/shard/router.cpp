#include "shard/router.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <map>
#include <thread>
#include <utility>

#include "api/problem.hpp"
#include "service/json.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace ffp::shard {

namespace {

/// Relay failure toward the CLIENT, as opposed to a backend failure: the
/// two must stay distinguishable, or a vanished client would put a
/// healthy shard into cooldown.
struct ClientGone : Error {
  using Error::Error;
};

/// Routing identity for graph_file submissions: hash the path string.
/// The router never opens graph files — same path routes to the same
/// shard, and the content digest is computed (and cached) there.
std::uint64_t path_digest(const std::string& path) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : path) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

/// Slot gate + fd registry, the TcpServer pattern: shedding happens at
/// the acceptor, the stop path kicks blocked readers loose.
class Router::ConnectionSet {
 public:
  explicit ConnectionSet(unsigned max_clients) : max_clients_(max_clients) {}

  int try_claim(std::shared_ptr<FdHandle> conn) {
    std::lock_guard lock(mu_);
    if (stopping_ || live_.size() >= max_clients_) return -1;
    const int index = next_index_++;
    live_.emplace(index, std::move(conn));
    return index;
  }

  void release(int index) {
    std::lock_guard lock(mu_);
    live_.erase(index);
    finished_.push_back(index);
  }

  std::vector<int> take_finished() {
    std::lock_guard lock(mu_);
    return std::exchange(finished_, {});
  }

  void stop_all() {
    std::lock_guard lock(mu_);
    stopping_ = true;
    for (const auto& [index, conn] : live_) {
      (void)index;
      shutdown_both(*conn);
    }
  }

  bool stopping() const {
    std::lock_guard lock(mu_);
    return stopping_;
  }

 private:
  const std::size_t max_clients_;
  mutable std::mutex mu_;
  std::map<int, std::shared_ptr<FdHandle>> live_;
  std::vector<int> finished_;
  int next_index_ = 0;
  bool stopping_ = false;
};

/// One client connection's routing state: lazy backend connections (one
/// per shard, reused across ops so the shard sees one session per client)
/// and where each job id went.
struct Router::ClientCtx {
  struct Backend {
    FdHandle fd;
    LineReader reader;
    explicit Backend(FdHandle f) : fd(std::move(f)), reader(fd) {}
  };

  std::shared_ptr<FdHandle> conn;
  std::map<std::size_t, std::unique_ptr<Backend>> backends;
  std::map<std::string, std::size_t> routed;  ///< job id -> shard
};

Router::Router(RouterOptions options)
    : options_(std::move(options)),
      ring_(options_.shard_ports.size(), options_.vnodes) {
  FFP_CHECK(!options_.shard_ports.empty(),
            "Router needs at least one shard port");
  FFP_CHECK(options_.max_clients >= 1, "Router needs max_clients >= 1");
  down_until_ms_.assign(options_.shard_ports.size(), 0.0);
  listener_ = tcp_listen(options_.port, &port_);
  int fds[2] = {-1, -1};
  FFP_CHECK(::pipe(fds) == 0, "self-pipe creation failed: errno ", errno);
  stop_read_ = FdHandle(fds[0]);
  stop_write_ = FdHandle(fds[1]);
  ::fcntl(stop_write_.get(), F_SETFL, O_NONBLOCK);
  ::fcntl(stop_read_.get(), F_SETFD, FD_CLOEXEC);
  ::fcntl(stop_write_.get(), F_SETFD, FD_CLOEXEC);
  connections_ = std::make_unique<ConnectionSet>(options_.max_clients);
}

Router::~Router() = default;

void Router::request_stop() noexcept {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(stop_write_.get(), &byte, 1);
}

bool Router::shard_up(std::size_t s) {
  std::lock_guard lock(health_mu_);
  return down_until_ms_[s] <= clock_.elapsed_millis();
}

void Router::mark_down(std::size_t s) {
  std::lock_guard lock(health_mu_);
  down_until_ms_[s] = clock_.elapsed_millis() + options_.down_cooldown_ms;
  std::fprintf(stderr,
               "ffp_router: shard %zu (port %d) marked down for %.0f ms\n", s,
               options_.shard_ports[s], options_.down_cooldown_ms);
}

void Router::mark_up(std::size_t s) {
  std::lock_guard lock(health_mu_);
  down_until_ms_[s] = 0;
}

void Router::run() {
  std::map<int, std::thread> workers;
  const auto reap = [&] {
    for (const int done : connections_->take_finished()) {
      const auto it = workers.find(done);
      if (it == workers.end()) continue;
      it->second.join();
      workers.erase(it);
    }
  };

  for (;;) {
    struct pollfd fds[2];
    fds[0] = {listener_.get(), POLLIN, 0};
    fds[1] = {stop_read_.get(), POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "ffp_router: poll error: errno %d\n", errno);
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || connections_->stopping()) break;
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;

    std::shared_ptr<FdHandle> conn;
    try {
      conn = std::make_shared<FdHandle>(tcp_accept(listener_));
    } catch (const Error& e) {
      if (connections_->stopping()) break;
      std::fprintf(stderr, "ffp_router: accept error: %s\n", e.what());
      continue;
    }
    reap();

    const int index = connections_->try_claim(conn);
    if (index < 0) {
      if (connections_->stopping()) break;
      try {
        write_line(*conn,
                   format_error("",
                                "router at capacity (" +
                                    std::to_string(options_.max_clients) +
                                    " clients); retry after backoff",
                                ErrCode::Overloaded,
                                options_.overload_retry_after_ms),
                   options_.write_timeout_ms);
      } catch (const std::exception&) {
      }
      continue;
    }

    workers.emplace(index, std::thread([this, index, conn] {
      serve_client(index, conn);
    }));
  }

  connections_->stop_all();
  shutdown_both(listener_);
  for (auto& [index, worker] : workers) {
    (void)index;
    if (worker.joinable()) worker.join();
  }
}

void Router::serve_client(int index, std::shared_ptr<FdHandle> conn) {
  {
    ClientCtx ctx;
    ctx.conn = conn;
    LineReader reader(*conn);
    reader.set_timeout_ms(options_.idle_timeout_ms);
    std::string line;
    bool shutdown_requested = false;
    try {
      while (reader.next(line)) {
        if (!handle_request(ctx, line)) {
          shutdown_requested = true;
          break;
        }
      }
    } catch (const ClientGone& e) {
      std::fprintf(stderr, "ffp_router: client vanished: %s\n", e.what());
    } catch (const ServiceError& e) {
      if (e.code() == ErrCode::Timeout) {
        try {
          write_line(*conn,
                     format_error("", std::string("idle timeout: ") + e.what(),
                                  ErrCode::Timeout),
                     options_.write_timeout_ms);
        } catch (const std::exception&) {
        }
      } else {
        std::fprintf(stderr, "ffp_router: connection error: %s\n", e.what());
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "ffp_router: connection error: %s\n", e.what());
    }
    if (shutdown_requested) request_stop();
  }
  connections_->release(index);
}

bool Router::handle_request(ClientCtx& ctx, const std::string& raw_line) {
  if (trim(raw_line).empty()) return true;  // keep-alive
  std::string id;
  try {
    // Full validation up front: a malformed request dies HERE with a
    // structured error and never costs a backend round trip.
    Request request = parse_request(raw_line, options_.limits);
    id = request.id;
    switch (request.op) {
      case RequestOp::Submit: {
        const std::uint64_t digest =
            request.inline_graph != nullptr
                ? api::graph_digest(*request.inline_graph)
                : path_digest(request.graph_file);
        const std::size_t shard =
            forward_submit(ctx, digest, raw_line, request.id);
        ctx.routed[request.id] = shard;
        return true;
      }
      case RequestOp::Status:
      case RequestOp::Cancel:
      case RequestOp::Result: {
        const auto it = ctx.routed.find(id);
        if (it == ctx.routed.end()) {
          throw ServiceError(ErrCode::UnknownJob,
                             "unknown job id '" + id +
                                 "' (not routed on this connection)");
        }
        const std::size_t shard = it->second;
        try {
          forward_op(ctx, shard, raw_line, id);
        } catch (const ServiceError& e) {
          // The shard died with this client's job on it. Cooldown the
          // shard and hand the client a retryable error: its retry loop
          // resubmits, and the ring routes around the corpse.
          mark_down(shard);
          ctx.backends.erase(shard);
          throw ServiceError(
              ErrCode::ShuttingDown,
              "shard " + std::to_string(shard) + " unavailable (" +
                  e.what() + "); resubmit to fail over",
              options_.down_cooldown_ms);
        }
        return true;
      }
      case RequestOp::MigrateElite:
        throw Error(
            "migrate_elite is shard-to-shard gossip; the router does not "
            "accept it");
      case RequestOp::Shutdown:
        if (!options_.allow_shutdown) {
          throw ServiceError(
              ErrCode::Forbidden,
              "shutdown is not allowed through the router (start it with "
              "--allow-remote-shutdown)");
        }
        // Router-local: the fleet stays up; stopping shards is an
        // operator action on the shards themselves.
        write_client(ctx, format_bye());
        return false;
    }
  } catch (const ServiceError& e) {
    write_client(ctx, format_error(id, e.what(), e.code(),
                                   e.retry_after_ms()));
  } catch (const ClientGone&) {
    throw;  // nothing left to answer to
  } catch (const Error& e) {
    write_client(ctx, format_error(id, e.what(), ErrCode::BadRequest));
  } catch (const std::exception& e) {
    write_client(ctx, format_error(id, e.what(), ErrCode::Internal));
  }
  return true;
}

void Router::write_client(ClientCtx& ctx, const std::string& line) {
  try {
    write_line(*ctx.conn, line, options_.write_timeout_ms);
  } catch (const std::exception& e) {
    throw ClientGone(e.what());
  }
}

std::size_t Router::forward_submit(ClientCtx& ctx, std::uint64_t digest,
                                   const std::string& raw_line,
                                   const std::string& id) {
  const std::vector<std::size_t> pref = ring_.preference(digest);
  // Pass 0: live shards in ring order. Pass 1: everyone — when the whole
  // preference list is cooling down, probing a corpse beats refusing.
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::size_t s : pref) {
      if (pass == 0 && !shard_up(s)) continue;
      try {
        forward_op(ctx, s, raw_line, id);
        mark_up(s);
        return s;
      } catch (const ServiceError&) {
        mark_down(s);
        ctx.backends.erase(s);
      }
    }
  }
  throw ServiceError(ErrCode::ShuttingDown,
                     "no shard is reachable for this graph; retry after "
                     "backoff",
                     options_.down_cooldown_ms);
}

void Router::forward_op(ClientCtx& ctx, std::size_t shard,
                        const std::string& raw_line, const std::string& id) {
  auto it = ctx.backends.find(shard);
  if (it == ctx.backends.end()) {
    // tcp_connect to a dead loopback port fails immediately
    // (ECONNREFUSED) — that is the router's health probe.
    it = ctx.backends
             .emplace(shard, std::make_unique<ClientCtx::Backend>(
                                 tcp_connect(options_.shard_ports[shard])))
             .first;
  }
  ClientCtx::Backend& backend = *it->second;
  write_line(backend.fd, raw_line, options_.write_timeout_ms);
  backend.reader.set_timeout_ms(options_.backend_io_timeout_ms);

  bool drop_backend = false;
  std::string line;
  for (;;) {
    if (!backend.reader.next(line)) {
      throw ServiceError(ErrCode::ConnLost, "shard closed the connection");
    }
    // Verbatim relay FIRST: whatever the shard said, the client hears —
    // the router adds routing, never rewrites answers.
    write_client(ctx, line);

    std::string event;
    std::string line_id;
    try {
      const JsonValue root = JsonValue::parse(line, options_.limits.json);
      if (const JsonValue* e = root.find("event");
          e != nullptr && e->is_string()) {
        event = e->as_string();
      }
      if (const JsonValue* i = root.find("id");
          i != nullptr && i->is_string()) {
        line_id = i->as_string();
      }
    } catch (const Error&) {
      throw ServiceError(ErrCode::ConnLost,
                         "shard response was not parseable");
    }
    if (event == "progress") continue;  // stream-through, op still open
    if (event == "error" && line_id.empty()) {
      // Connection-level rejection from the shard (shed, reap, drain):
      // already relayed; this backend conversation is over. The client's
      // own retry policy takes it from here.
      drop_backend = true;
      break;
    }
    if (line_id == id || event == "bye") break;  // op settled
  }
  if (drop_backend) ctx.backends.erase(shard);
}

}  // namespace ffp::shard
