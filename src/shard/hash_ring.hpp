// Consistent hashing for the shard router: maps a graph content digest to
// one of N backend shards so that repeat submissions of the same graph
// always land on the same shard — its result cache answers the repeats
// and its elite archive keeps learning that graph — while adding or
// losing a shard remaps only ~1/N of the digest space instead of
// reshuffling everything (the classic ring argument).
//
// Deterministic by construction: ring points are splitmix64 expansions of
// (shard index, vnode index), so every router over the same shard count
// computes the identical ring — two routers in front of the same fleet
// agree on ownership with no coordination.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace ffp::shard {

class HashRing {
 public:
  /// `vnodes` points per shard smooth the arc lengths; 64 keeps the
  /// imbalance within a few ten percent at small N.
  explicit HashRing(std::size_t shards, int vnodes = 64);

  std::size_t shards() const { return shards_; }

  /// The shard owning `digest`: the first ring point clockwise from the
  /// digest's hash.
  std::size_t owner(std::uint64_t digest) const;

  /// Failover order for `digest`: the owner first, then each remaining
  /// shard in the order their ring points appear clockwise — the
  /// deterministic "next replica" walk the router uses when a shard is
  /// down.
  std::vector<std::size_t> preference(std::uint64_t digest) const;

 private:
  std::size_t shards_;
  std::vector<std::pair<std::uint64_t, std::size_t>> ring_;  ///< sorted
};

}  // namespace ffp::shard
