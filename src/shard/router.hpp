// Router — the scale-out front end (ffp_router): accepts the same wire
// protocol as ffp_serve and forwards each request to one of N backend
// shards, chosen by graph digest on a consistent-hash ring (hash_ring.hpp)
// so that repeat traffic on one graph always hits the same shard — that
// shard's result cache answers the repeats and its elite archive keeps
// learning the graph. The router holds no solver state at all: every
// response line from the shard is relayed to the client verbatim.
//
// Routing identity: inline graphs route by their content digest (the same
// api::graph_digest the cache keys on); graph_file submissions route by a
// hash of the path string — the router never opens graph files, and same
// path means same shard means the digest computed THERE is hot.
//
// Failure story (the retryable-error taxonomy end to end):
//   * A shard that refuses, resets, or times out is marked down for
//     `down_cooldown_ms` and the submit fails over along the ring's
//     preference order in the same request — the client sees the ack from
//     whichever shard took the job.
//   * Ops pinned to a shard that died mid-flight (status/cancel/result of
//     a routed job) are answered with a retryable `shutting_down` error;
//     a ServiceClient resubmits the job on its next attempt and the ring
//     routes it to the failover shard — idempotent via the shard caches.
//   * A shard's own connection-level rejections (overload shed, idle
//     reap) relay verbatim; the client's backoff applies unchanged.
//
// Shutdown ops are router-local (gated by allow_shutdown) — a client must
// not be able to stop a whole fleet through the front door. migrate_elite
// is rejected: migration is shard-to-shard gossip, not client traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "service/net.hpp"
#include "service/protocol.hpp"
#include "shard/hash_ring.hpp"
#include "util/timer.hpp"

namespace ffp::shard {

struct RouterOptions {
  int port = 0;               ///< 127.0.0.1 port; 0 picks ephemeral
  std::vector<int> shard_ports;  ///< backend ffp_serve ports, 127.0.0.1
  unsigned max_clients = 64;  ///< live client sessions; beyond this, shed
  double idle_timeout_ms = 30000;   ///< client idle reap
  double write_timeout_ms = 10000;  ///< client response write deadline
  /// Relay read deadline per backend response line. <= 0 blocks forever —
  /// the right default, because a `result` op legitimately waits out the
  /// whole solve; a shard that dies mid-wait closes the socket and fails
  /// the read immediately either way.
  double backend_io_timeout_ms = 0;
  double overload_retry_after_ms = 250;
  /// How long a failed shard stays out of the rotation before the next
  /// request may probe it again.
  double down_cooldown_ms = 2000;
  int vnodes = 64;  ///< ring points per shard
  bool allow_shutdown = false;  ///< honor client {"op":"shutdown"} (router-local)
  ProtocolLimits limits;
};

class Router {
 public:
  /// Binds the listener (throws ffp::Error when the port is taken).
  explicit Router(RouterOptions options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  int port() const { return port_; }
  std::size_t shards() const { return options_.shard_ports.size(); }

  /// Serves until request_stop() (or an allowed client shutdown op).
  void run();

  /// Async-signal-safe stop request (self-pipe write); idempotent.
  void request_stop() noexcept;

 private:
  class ConnectionSet;
  struct ClientCtx;

  void serve_client(int index, std::shared_ptr<FdHandle> conn);
  bool handle_request(ClientCtx& ctx, const std::string& raw_line);
  /// Writes one line to the client; rethrows write failures as a distinct
  /// type so they never masquerade as shard failures.
  void write_client(ClientCtx& ctx, const std::string& line);

  bool shard_up(std::size_t s);
  void mark_down(std::size_t s);
  void mark_up(std::size_t s);
  /// Routes one submit: tries the ring's preference order, skipping
  /// shards in cooldown (falling back to them last-resort when everyone
  /// is down). Returns the shard that settled the op.
  std::size_t forward_submit(ClientCtx& ctx, std::uint64_t digest,
                             const std::string& raw_line,
                             const std::string& id);
  /// Forwards one raw line to `shard` and relays responses until the op
  /// settles (terminal event for `id`, or a connection-level error).
  /// Throws ServiceError on backend transport failure.
  void forward_op(ClientCtx& ctx, std::size_t shard,
                  const std::string& raw_line, const std::string& id);

  RouterOptions options_;
  HashRing ring_;
  FdHandle listener_;
  int port_ = 0;
  FdHandle stop_read_;
  FdHandle stop_write_;
  std::unique_ptr<ConnectionSet> connections_;

  WallTimer clock_;
  std::mutex health_mu_;
  std::vector<double> down_until_ms_;  ///< per shard; 0 = up
};

}  // namespace ffp::shard
