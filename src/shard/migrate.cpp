#include "shard/migrate.hpp"

#include <chrono>
#include <cstdio>
#include <utility>

#include "service/json.hpp"
#include "service/net.hpp"
#include "service/protocol.hpp"

namespace ffp::shard {

EliteMigrator::EliteMigrator(api::Engine& engine, ServeStats& stats,
                             MigrateOptions options)
    : engine_(engine), stats_(stats), options_(std::move(options)) {
  FFP_CHECK(options_.period_ms > 0, "EliteMigrator needs period_ms > 0");
  sent_.resize(options_.peer_ports.size());
  if (!options_.peer_ports.empty()) {
    thread_ = std::thread([this] { loop(); });
  }
}

EliteMigrator::~EliteMigrator() {
  stop();
  if (thread_.joinable()) thread_.join();
}

void EliteMigrator::stop() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
}

void EliteMigrator::loop() {
  std::unique_lock lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                           options_.period_ms));
    if (stop_) break;
    lock.unlock();
    try {
      migrate_once();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ffp_serve: elite migration error: %s\n",
                   e.what());
    }
    lock.lock();
  }
}

std::size_t EliteMigrator::migrate_once() {
  const auto exports = engine_.archive_exports();
  if (exports.empty()) return 0;
  std::size_t pushed = 0;
  for (std::size_t p = 0; p < options_.peer_ports.size(); ++p) {
    for (const auto& [key, elite] : exports) {
      {
        std::lock_guard lock(mu_);
        const auto it = sent_[p].find(key);
        if (it != sent_[p].end() && elite.value >= it->second) continue;
      }
      if (!send_elite(options_.peer_ports[p], key, elite)) continue;
      ++pushed;
      stats_.migrations_sent.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard lock(mu_);
      sent_[p][key] = elite.value;
    }
  }
  return pushed;
}

bool EliteMigrator::send_elite(int port, const evolve::PopulationKey& key,
                               const evolve::Elite& elite) {
  try {
    const FdHandle conn = tcp_connect(port);
    write_line(conn, format_migrate_elite(key, elite.value, *elite.assignment),
               options_.io_timeout_ms);
    LineReader reader(conn);
    reader.set_timeout_ms(options_.io_timeout_ms);
    std::string line;
    if (!reader.next(line)) return false;
    // Admitted or rejected, the peer answered — both settle this value.
    const JsonValue root = JsonValue::parse(line);
    const JsonValue* event = root.find("event");
    return event != nullptr && event->is_string() &&
           event->as_string() == "migrate";
  } catch (const std::exception&) {
    return false;  // peer down / slow: gossip tries again next improvement
  }
}

}  // namespace ffp::shard
