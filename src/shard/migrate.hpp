// EliteMigrator — the distributed half of the KaFFPaE evolve engine: a
// background thread that periodically ships this shard's best elite per
// (graph digest, k, objective) population to its peer shards as
// `migrate_elite` protocol ops. The receiving shard admits the foreign
// partition through its own diversity-aware EliteArchive rules, so
// concurrent evolve traffic on the same graph converges across the fleet
// instead of each shard learning alone.
//
// Send policy: an elite is pushed to a peer only when it improves on what
// this migrator last sent that peer for that population (strictly lower
// value), so a quiet archive costs zero wire traffic on every tick. A
// peer that is down is skipped without fuss and retried with the next
// improvement — migration is gossip, not delivery-guaranteed replication;
// the archive's own persistence is the durability story.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "evolve/elite_archive.hpp"
#include "service/service.hpp"

namespace ffp::shard {

struct MigrateOptions {
  std::vector<int> peer_ports;  ///< 127.0.0.1 shard peers
  double period_ms = 1000;      ///< tick interval
  double io_timeout_ms = 5000;  ///< per-peer connect/write/read deadline
};

class EliteMigrator {
 public:
  /// Starts the migration thread. Engine and stats must outlive it.
  EliteMigrator(api::Engine& engine, ServeStats& stats,
                MigrateOptions options);
  ~EliteMigrator();  ///< stop() + join

  EliteMigrator(const EliteMigrator&) = delete;
  EliteMigrator& operator=(const EliteMigrator&) = delete;

  void stop();

  /// One synchronous sweep (what the thread runs per tick) — exposed so
  /// tests can force a migration without sleeping through a period.
  /// Returns the number of accepted pushes.
  std::size_t migrate_once();

 private:
  void loop();
  /// Sends one elite to one peer; true on a confirmed admit-or-reject
  /// response (the peer is up and spoke the protocol).
  bool send_elite(int port, const evolve::PopulationKey& key,
                  const evolve::Elite& elite);

  api::Engine& engine_;
  ServeStats& stats_;
  MigrateOptions options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  /// Per peer: the best value already pushed per population (only a
  /// strict improvement is sent again).
  std::vector<std::map<evolve::PopulationKey, double>> sent_;

  std::thread thread_;  ///< last member: joined before the rest dies
};

}  // namespace ffp::shard
