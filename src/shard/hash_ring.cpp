#include "shard/hash_ring.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ffp::shard {

HashRing::HashRing(std::size_t shards, int vnodes) : shards_(shards) {
  FFP_CHECK(shards >= 1, "HashRing needs at least one shard");
  FFP_CHECK(vnodes >= 1, "HashRing needs at least one vnode per shard");
  ring_.reserve(shards * static_cast<std::size_t>(vnodes));
  for (std::size_t s = 0; s < shards; ++s) {
    // One splitmix64 stream per shard: point sequences are stable under
    // shard-count changes, which is what bounds remapping to ~1/N. The
    // origin must go through the mixer — splitmix64 steps its state by
    // the same golden-ratio constant, so seeding shard s at a multiple
    // of it would make every shard's sequence a shift of shard 0's
    // (near-total point collisions, ties all won by shard 0).
    std::uint64_t origin = 0x2545f4914f6cdd1dull + s;
    std::uint64_t state = splitmix64(origin);
    for (int v = 0; v < vnodes; ++v) {
      ring_.emplace_back(splitmix64(state), s);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t HashRing::owner(std::uint64_t digest) const {
  // Hash the digest once more: raw digests are FNV over graph bytes and
  // arrive pre-clustered; one splitmix64 round decorrelates them from
  // the ring-point stream.
  std::uint64_t state = digest;
  const std::uint64_t point = splitmix64(state);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(point, std::size_t{0}));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::vector<std::size_t> HashRing::preference(std::uint64_t digest) const {
  std::uint64_t state = digest;
  const std::uint64_t point = splitmix64(state);
  auto start = std::lower_bound(
      ring_.begin(), ring_.end(), std::make_pair(point, std::size_t{0}));
  if (start == ring_.end()) start = ring_.begin();

  std::vector<std::size_t> order;
  order.reserve(shards_);
  std::vector<bool> seen(shards_, false);
  auto it = start;
  do {
    if (!seen[it->second]) {
      seen[it->second] = true;
      order.push_back(it->second);
    }
    ++it;
    if (it == ring_.end()) it = ring_.begin();
  } while (it != start && order.size() < shards_);
  return order;
}

}  // namespace ffp::shard
