#include "solver/portfolio.hpp"

#include <mutex>
#include <optional>
#include <thread>

#include "service/thread_budget.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace ffp {

namespace {

/// Thread-safe monotone merge of improvement events from concurrent
/// restarts into one master recorder. start() is a no-op because the
/// runner arms the master exactly once, before any restart begins.
class SharedAnytimeRecorder final : public AnytimeRecorder {
 public:
  explicit SharedAnytimeRecorder(AnytimeRecorder* master) : master_(master) {}

  void start() override {}

  void record(double best_value) override {
    std::lock_guard lock(mu_);
    if (!has_best_ || best_value < best_) {
      has_best_ = true;
      best_ = best_value;
      master_->record(best_value);
    }
  }

 private:
  AnytimeRecorder* master_;
  std::mutex mu_;
  bool has_best_ = false;
  double best_ = 0.0;
};

}  // namespace

PortfolioRunner::PortfolioRunner(SolverPtr solver, PortfolioOptions options)
    : PortfolioRunner(std::vector<SolverPtr>{std::move(solver)}, options) {}

PortfolioRunner::PortfolioRunner(std::vector<SolverPtr> solvers,
                                 PortfolioOptions options)
    : solvers_(std::move(solvers)), options_(options) {
  FFP_CHECK(!solvers_.empty(), "portfolio needs at least one solver");
  for (const auto& s : solvers_) {
    FFP_CHECK(s != nullptr, "portfolio solver must not be null");
  }
  FFP_CHECK(options_.restarts >= 1, "portfolio needs at least one restart");
}

std::vector<std::uint64_t> PortfolioRunner::seed_stream(std::uint64_t seed,
                                                        int n) {
  FFP_CHECK(n >= 0, "seed stream length must be >= 0");
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(n));
  std::uint64_t state = seed;
  for (auto& s : seeds) s = splitmix64(state);
  return seeds;
}

SolverResult PortfolioRunner::run(const Graph& g,
                                  const SolverRequest& request) const {
  const int restarts = options_.restarts;
  const auto seeds = seed_stream(request.seed, restarts);

  std::optional<SharedAnytimeRecorder> shared;
  if (request.recorder != nullptr) {
    request.recorder->start();
    shared.emplace(request.recorder);
  }

  WallTimer timer;
  std::vector<std::optional<SolverResult>> results(
      static_cast<std::size_t>(restarts));
  unsigned pool_size = 0;
  {
    // More workers than restarts would only idle; cap the want. Under a
    // budget every restart worker holds a leased slot — the calling
    // thread only blocks, so it is not counted and transfers nothing (the
    // leaf engines inside the restarts lease their own slots from the
    // same governor via request.budget, which is what keeps the whole
    // nest within one machine-wide cap). A fully contended 0 grant falls
    // back to one unleased worker: the entry thread's own concurrency.
    unsigned want = options_.threads == 0
                        ? std::max(1u, std::thread::hardware_concurrency())
                        : options_.threads;
    want = std::min(want, static_cast<unsigned>(restarts));
    WorkerLease lease;
    if (options_.budget != nullptr) {
      lease = options_.budget->lease(want);
      want = std::max(1u, lease.granted());
    }
    ThreadPool pool(want);
    pool_size = pool.size();
    parallel_for(pool, restarts, [&](std::int64_t i) {
      const auto idx = static_cast<std::size_t>(i);
      SolverRequest local = request;
      local.seed = seeds[idx];
      local.recorder = shared.has_value() ? &*shared : nullptr;
      if (options_.seed_restart) {
        options_.seed_restart(static_cast<int>(i), local);
      }
      const Solver& solver = *solvers_[idx % solvers_.size()];
      results[idx].emplace(solver.run(g, local));
    });
  }

  if (options_.on_result) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      options_.on_result(static_cast<int>(i), *results[i]);
    }
  }

  // Winner: lowest value, ties broken by lowest restart index — an order
  // that depends only on the results, never on completion order.
  std::size_t winner = 0;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i]->best_value < results[winner]->best_value) winner = i;
  }

  SolverResult out = std::move(*results[winner]);
  out.seconds = timer.elapsed_seconds();
  out.stats.emplace_back("restarts", static_cast<double>(restarts));
  out.stats.emplace_back("threads", static_cast<double>(pool_size));
  out.stats.emplace_back("winner_restart", static_cast<double>(winner));
  return out;
}

}  // namespace ffp
