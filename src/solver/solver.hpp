// The engine layer: every partitioner in the repo — the paper's
// fusion-fission contribution, the two rival metaheuristics, and the whole
// Chaco family (linear / spectral / multilevel / percolation) — behind one
// uniform `Solver` interface, so CLIs, benches and the portfolio runner
// construct and drive them identically.
//
// The split mirrors Table 1: *direct* solvers ignore the stop condition and
// objective (they minimize Cut once, deterministically for a given seed);
// *metaheuristics* honor the wall-clock/step budget and optimize the
// requested criterion anytime-style. Both return a `SolverResult` whose
// `best_value` is always the requested objective evaluated on the returned
// partition, which is what lets a mixed portfolio compare apples to apples.
//
// Construction by name + options lives in solver/registry.hpp; parallel
// multi-start composition lives in solver/portfolio.hpp.
#pragma once

#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/fusion_fission.hpp"
#include "graph/graph.hpp"
#include "metaheuristics/annealing.hpp"
#include "metaheuristics/ant_colony.hpp"
#include "metaheuristics/anytime.hpp"
#include "metaheuristics/percolation.hpp"
#include "multilevel/mlff.hpp"
#include "multilevel/multilevel.hpp"
#include "partition/objectives.hpp"
#include "partition/partition.hpp"
#include "spectral/linear_partition.hpp"
#include "spectral/spectral_partition.hpp"
#include "util/timer.hpp"

namespace ffp {

class ThreadBudget;  // service/thread_budget.hpp

/// Everything a solver needs for one run. The stop condition is re-armed
/// (copied and restarted) by each solver at the top of run(), so a request
/// can be built ahead of time and reused across restarts.
struct SolverRequest {
  int k = 2;
  ObjectiveKind objective = ObjectiveKind::MinMaxCut;
  StopCondition stop;                   ///< metaheuristics only
  std::uint64_t seed = 1;
  AnytimeRecorder* recorder = nullptr;  ///< optional anytime trajectory
  /// Worker threads the solver may use INSIDE one run (fusion-fission's
  /// batched engine; solvers without intra-run parallelism ignore it).
  /// 0 keeps the solver's own default. Distinct from portfolio threads,
  /// which parallelize across restarts — the two levels never share a
  /// pool (see solver/worker_pool.hpp).
  unsigned threads = 0;
  /// Process-wide worker governor (service/thread_budget.hpp). When set,
  /// `threads` becomes a *want*: the solver leases min(threads−1, free)
  /// extra workers beyond its own calling thread and degrades gracefully
  /// to fewer lanes — never changing the result, only where phase work
  /// runs. Null keeps the historical fixed-size-pool behavior.
  ThreadBudget* budget = nullptr;
  // Durable-solve hooks (persist/), honored by the anytime-capable
  // fusion-fission and mlff adapters and ignored by the rest. See
  // FusionFissionOptions for the contract.
  std::shared_ptr<const std::vector<int>> warm_start;
  /// The objective value the checkpoint recorded for `warm_start`, as
  /// accumulated by the run that wrote it. Re-evaluating the restored
  /// partition can land an ulp away (different summation order); adopting
  /// the lower rendering keeps resume monotonicity exact. Infinity (the
  /// default) means "unknown — trust the re-evaluation".
  double warm_start_value = std::numeric_limits<double>::infinity();
  std::int64_t checkpoint_every_ms = 0;
  std::function<void(const std::vector<int>& assignment, double value)>
      checkpoint_sink;
  /// Memetic incumbent (evolve crossover): a k-part assignment that CAPS
  /// the reported result — the run can never return worse than
  /// min(incumbent_value, its evaluation). Fusion-fission seeds best-at-k
  /// from it in-search (the offspring may still improve on it); mlff
  /// applies it as a post-hoc guard; the other solvers ignore it.
  std::shared_ptr<const std::vector<int>> incumbent;
  double incumbent_value = std::numeric_limits<double>::infinity();
};

struct SolverResult {
  Partition best;
  double best_value = 0.0;  ///< request.objective evaluated on `best`
  double seconds = 0.0;     ///< wall clock of the run() call
  /// Solver-specific counters (steps, fusions, coolings, …) for reporting.
  std::vector<std::pair<std::string, double>> stats;

  double stat(std::string_view name, double fallback = 0.0) const;
};

class Solver {
 public:
  virtual ~Solver() = default;

  virtual std::string name() const = 0;
  /// True for budgeted, objective-aware solvers; false for the direct
  /// (deterministic, Cut-minimizing) Chaco family.
  virtual bool is_metaheuristic() const = 0;
  virtual SolverResult run(const Graph& g, const SolverRequest& request) const = 0;
};

using SolverPtr = std::shared_ptr<const Solver>;

// --------------------------------------------------------------------------
// Adapters. Each wraps one algorithm with its native options struct; the
// request's objective and seed always override the corresponding fields of
// the base options, so a solver instance is reusable across runs and seeds.
// --------------------------------------------------------------------------

/// The paper's contribution (§4). Metaheuristic.
class FusionFissionSolver final : public Solver {
 public:
  explicit FusionFissionSolver(FusionFissionOptions base = {})
      : base_(std::move(base)) {}
  std::string name() const override { return "fusion_fission"; }
  bool is_metaheuristic() const override { return true; }
  SolverResult run(const Graph& g, const SolverRequest& request) const override;

 private:
  FusionFissionOptions base_;
};

/// Multilevel × fusion-fission hybrid (multilevel/mlff.hpp) — fusion-
/// fission run on a coarsened graph, projected back with boundary
/// refinement bursts. Metaheuristic: the stop condition governs the
/// coarse-level search.
class MlffSolver final : public Solver {
 public:
  explicit MlffSolver(MlffOptions base = {}) : base_(std::move(base)) {}
  std::string name() const override { return "mlff"; }
  bool is_metaheuristic() const override { return true; }
  SolverResult run(const Graph& g, const SolverRequest& request) const override;

 private:
  MlffOptions base_;
};

/// Simulated annealing (§3.1), seeded from percolation as in the paper.
class AnnealingSolver final : public Solver {
 public:
  explicit AnnealingSolver(AnnealingOptions base = {}) : base_(std::move(base)) {}
  std::string name() const override { return "annealing"; }
  bool is_metaheuristic() const override { return true; }
  SolverResult run(const Graph& g, const SolverRequest& request) const override;

 private:
  AnnealingOptions base_;
};

/// Competing ant colonies (§3.2), seeded from percolation as in the paper.
class AntColonySolver final : public Solver {
 public:
  explicit AntColonySolver(AntColonyOptions base = {}) : base_(std::move(base)) {}
  std::string name() const override { return "ant_colony"; }
  bool is_metaheuristic() const override { return true; }
  SolverResult run(const Graph& g, const SolverRequest& request) const override;

 private:
  AntColonyOptions base_;
};

/// Multilevel partitioning (§2.2). Direct.
class MultilevelSolver final : public Solver {
 public:
  explicit MultilevelSolver(MultilevelOptions base = {}) : base_(std::move(base)) {}
  std::string name() const override { return "multilevel"; }
  bool is_metaheuristic() const override { return false; }
  SolverResult run(const Graph& g, const SolverRequest& request) const override;

 private:
  MultilevelOptions base_;
};

/// Recursive spectral partitioning (§2.1). Direct. `final_kway_refine`
/// applies the Chaco REFINE_PARTITION analog after the recursion, exactly
/// as the Table-1 protocol does.
class SpectralSolver final : public Solver {
 public:
  explicit SpectralSolver(SpectralOptions base = {}, bool final_kway_refine = true)
      : base_(std::move(base)), final_kway_refine_(final_kway_refine) {}
  std::string name() const override { return "spectral"; }
  bool is_metaheuristic() const override { return false; }
  SolverResult run(const Graph& g, const SolverRequest& request) const override;

 private:
  SpectralOptions base_;
  bool final_kway_refine_;
};

/// Chaco's linear scheme, plain or KL-recursive. Direct.
class LinearSolver final : public Solver {
 public:
  explicit LinearSolver(LinearOptions base = {}) : base_(base) {}
  std::string name() const override { return "linear"; }
  bool is_metaheuristic() const override { return false; }
  SolverResult run(const Graph& g, const SolverRequest& request) const override;

 private:
  LinearOptions base_;
};

/// Standalone percolation partitioning (§4.4). Direct.
class PercolationSolver final : public Solver {
 public:
  explicit PercolationSolver(PercolationOptions base = {}) : base_(base) {}
  std::string name() const override { return "percolation"; }
  bool is_metaheuristic() const override { return false; }
  SolverResult run(const Graph& g, const SolverRequest& request) const override;

 private:
  PercolationOptions base_;
};

}  // namespace ffp
