#include "solver/solver.hpp"

#include "refine/kway_fm.hpp"
#include "solver/worker_pool.hpp"
#include "util/rng.hpp"

namespace ffp {

namespace {

/// Arms a private copy of the request's stop condition so the budget clock
/// starts when this run starts, not when the request was built (portfolio
/// restarts may be queued long after the request exists).
StopCondition armed(const SolverRequest& request) {
  StopCondition stop = request.stop;
  stop.start();
  return stop;
}

double value_of(const Partition& p, const SolverRequest& request) {
  return objective(request.objective).evaluate(p);
}

}  // namespace

double SolverResult::stat(std::string_view name, double fallback) const {
  for (const auto& [key, value] : stats) {
    if (key == name) return value;
  }
  return fallback;
}

SolverResult FusionFissionSolver::run(const Graph& g,
                                      const SolverRequest& request) const {
  FusionFissionOptions opt = base_;
  opt.objective = request.objective;
  opt.seed = request.seed;
  opt.warm_start = request.warm_start;
  opt.warm_start_value = request.warm_start_value;
  opt.incumbent = request.incumbent;
  opt.incumbent_value = request.incumbent_value;
  opt.checkpoint_every_ms = request.checkpoint_every_ms;
  opt.checkpoint_sink = request.checkpoint_sink;
  if (request.threads > 0) opt.threads = static_cast<int>(request.threads);
  if (opt.budget == nullptr) opt.budget = request.budget;
  if (opt.threads > 1 && opt.pool == nullptr && opt.budget == nullptr) {
    // Ungoverned: speculation workers come from the process-wide shared
    // pool so repeated solves (and concurrent portfolio restarts) reuse
    // warm threads instead of spawning per run. Budget-governed runs skip
    // this — the engine leases its own exactly-sized private pool inside
    // run_batched, because a size-keyed shared pool cannot match lease
    // accounting (equal grants would share threads).
    opt.pool = shared_worker_pool(static_cast<unsigned>(opt.threads));
  }
  WallTimer timer;
  const StopCondition stop = armed(request);
  FusionFission ff(g, request.k, opt);
  auto res = ff.run(stop, request.recorder);
  SolverResult out{std::move(res.best), res.best_value,
                   timer.elapsed_seconds(), {}};
  out.stats = {{"steps", static_cast<double>(res.steps)},
               {"fusions", static_cast<double>(res.fusions)},
               {"fissions", static_cast<double>(res.fissions)},
               {"ejections", static_cast<double>(res.ejections)},
               {"reheats", static_cast<double>(res.reheats)},
               {"part_counts_visited",
                static_cast<double>(res.best_by_part_count.size())}};
  if (res.batches > 0) {
    out.stats.emplace_back("batches", static_cast<double>(res.batches));
    out.stats.emplace_back("conflicts", static_cast<double>(res.conflicts));
    out.stats.emplace_back("stale_redone",
                           static_cast<double>(res.stale_redone));
  }
  return out;
}

SolverResult MlffSolver::run(const Graph& g,
                             const SolverRequest& request) const {
  MlffOptions opt = base_;
  opt.objective = request.objective;
  opt.seed = request.seed;
  opt.warm_start = request.warm_start;
  opt.warm_start_value = request.warm_start_value;
  opt.checkpoint_every_ms = request.checkpoint_every_ms;
  opt.checkpoint_sink = request.checkpoint_sink;
  if (request.threads > 0) opt.threads = static_cast<int>(request.threads);
  if (opt.budget == nullptr) opt.budget = request.budget;
  if (opt.threads > 1 && opt.pool == nullptr && opt.budget == nullptr) {
    // Same pool policy as FusionFissionSolver: ungoverned runs speculate on
    // the process-wide shared pool, governed runs lease inside the engine.
    opt.pool = shared_worker_pool(static_cast<unsigned>(opt.threads));
  }
  WallTimer timer;
  const StopCondition stop = armed(request);
  auto res = mlff_partition(g, request.k, opt, stop, request.recorder);
  SolverResult out{std::move(res.best), res.best_value,
                   timer.elapsed_seconds(), {}};
  if (request.incumbent != nullptr &&
      request.incumbent->size() ==
          static_cast<std::size_t>(g.num_vertices())) {
    // Memetic incumbent cap, post-hoc: mlff has no in-search best-at-k to
    // seed (the coarsening would dissolve it), so when the incumbent
    // still beats the run, report the incumbent.
    Partition inc = Partition::from_assignment(g, *request.incumbent);
    if (inc.num_nonempty_parts() == request.k) {
      double value = objective(request.objective).evaluate(inc);
      if (request.incumbent_value < value) value = request.incumbent_value;
      if (value < out.best_value) {
        out.best = std::move(inc);
        out.best_value = value;
      }
    }
  }
  out.stats = {{"levels", static_cast<double>(res.levels)},
               {"coarse_vertices", static_cast<double>(res.coarse_vertices)},
               {"steps", static_cast<double>(res.coarse_steps)},
               {"fusions", static_cast<double>(res.fusions)},
               {"fissions", static_cast<double>(res.fissions)},
               {"reheats", static_cast<double>(res.reheats)},
               {"refine_attempts", static_cast<double>(res.refine_attempts)},
               {"refine_moves", static_cast<double>(res.refine_moves)}};
  if (res.batches > 0) {
    out.stats.emplace_back("batches", static_cast<double>(res.batches));
  }
  return out;
}

SolverResult AnnealingSolver::run(const Graph& g,
                                  const SolverRequest& request) const {
  AnnealingOptions opt = base_;
  opt.objective = request.objective;
  opt.seed = request.seed;
  WallTimer timer;
  const StopCondition stop = armed(request);
  PercolationOptions popt;
  popt.seed = request.seed;
  const auto init = percolation_partition(g, request.k, popt);
  SimulatedAnnealing sa(g, request.k, opt);
  if (request.recorder != nullptr) request.recorder->start();
  auto res = sa.run(init, stop, request.recorder);
  SolverResult out{std::move(res.best), res.best_value,
                   timer.elapsed_seconds(), {}};
  out.stats = {{"steps", static_cast<double>(res.steps)},
               {"accepted", static_cast<double>(res.accepted)},
               {"coolings", static_cast<double>(res.coolings)}};
  return out;
}

SolverResult AntColonySolver::run(const Graph& g,
                                  const SolverRequest& request) const {
  AntColonyOptions opt = base_;
  opt.objective = request.objective;
  opt.seed = request.seed;
  WallTimer timer;
  const StopCondition stop = armed(request);
  PercolationOptions popt;
  popt.seed = request.seed;
  const auto init = percolation_partition(g, request.k, popt);
  AntColony aco(g, request.k, opt);
  if (request.recorder != nullptr) request.recorder->start();
  auto res = aco.run(init, stop, request.recorder);
  SolverResult out{std::move(res.best), res.best_value,
                   timer.elapsed_seconds(), {}};
  out.stats = {{"iterations", static_cast<double>(res.iterations)}};
  return out;
}

SolverResult MultilevelSolver::run(const Graph& g,
                                   const SolverRequest& request) const {
  MultilevelOptions opt = base_;
  opt.seed = request.seed;
  WallTimer timer;
  auto p = multilevel_partition(g, request.k, opt);
  const double value = value_of(p, request);
  return SolverResult{std::move(p), value, timer.elapsed_seconds(), {}};
}

SolverResult SpectralSolver::run(const Graph& g,
                                 const SolverRequest& request) const {
  SpectralOptions opt = base_;
  opt.seed = request.seed;
  WallTimer timer;
  auto p = spectral_partition(g, request.k, opt);
  if (final_kway_refine_) {
    // Chaco REFINE_PARTITION analog, with the Table-1 seed derivation kept
    // bit-for-bit so the reproduced rows don't shift.
    Rng rng(request.seed ^ 0xfeed);
    KwayFmOptions fm;
    fm.max_imbalance = 1.10;
    kway_fm_refine(p, objective(ObjectiveKind::Cut), fm, rng);
  }
  const double value = value_of(p, request);
  return SolverResult{std::move(p), value, timer.elapsed_seconds(), {}};
}

SolverResult LinearSolver::run(const Graph& g,
                               const SolverRequest& request) const {
  LinearOptions opt = base_;
  opt.seed = request.seed;
  WallTimer timer;
  auto p = linear_partition(g, request.k, opt);
  const double value = value_of(p, request);
  return SolverResult{std::move(p), value, timer.elapsed_seconds(), {}};
}

SolverResult PercolationSolver::run(const Graph& g,
                                    const SolverRequest& request) const {
  PercolationOptions opt = base_;
  opt.seed = request.seed;
  WallTimer timer;
  auto p = percolation_partition(g, request.k, opt);
  const double value = value_of(p, request);
  return SolverResult{std::move(p), value, timer.elapsed_seconds(), {}};
}

}  // namespace ffp
