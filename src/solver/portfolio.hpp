// Parallel multi-start portfolio over the Solver interface, in the spirit of
// KaFFPaE's parallel evolutionary restarts: fan N restarts of one solver (or
// a round-robin mix) across a ThreadPool, each with its own seed drawn from
// a splitmix64 stream of the request seed, and keep the best result.
//
// Determinism contract: the per-restart seed stream and the winner selection
// (best value, ties broken by lowest restart index) depend only on the
// request, never on scheduling — so for solvers whose individual runs are
// deterministic for a fixed seed (all direct solvers, and metaheuristics
// under a *step* budget rather than a wall-clock one), the returned best
// partition is bit-identical regardless of thread count.
//
// An optional shared anytime record merges improvements from all restarts
// into one monotone best-so-far trajectory. The trajectory is a
// scheduling-dependent subsample of the true improvement events (whether an
// intermediate value beats the global best depends on which restart got
// there first, and timestamps are wall-clock); only the final value is
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "solver/solver.hpp"

namespace ffp {

struct PortfolioOptions {
  int restarts = 1;
  unsigned threads = 0;  ///< 0 → hardware concurrency
  /// Process-wide governor (service/thread_budget.hpp). When set, the
  /// restart workers are *leased*: the runner takes min(threads, restarts)
  /// − 1 extra workers beyond its calling thread, or fewer when the budget
  /// is contended, and each restart's solver leases its own intra-run
  /// workers from what remains (the request's `budget` field carries the
  /// same governor down). Restarts × intra-run threads can therefore never
  /// exceed the budget. Null keeps the historical fixed-size pool.
  ThreadBudget* budget = nullptr;
  /// Per-restart request customization (the evolve layer's seeding hook):
  /// called on the restart's WORKER thread, after the stream seed is set,
  /// with the restart index and the request the restart will run. Must be
  /// thread-safe and a pure function of (index, request) — e.g. reading a
  /// precomputed immutable plan — or the determinism contract breaks.
  std::function<void(int restart, SolverRequest& request)> seed_restart = {};
  /// Per-restart result observation (the evolve layer's feedback hook):
  /// called SERIALLY, in restart-index order, after every restart finished
  /// and before the winner is selected — so feeding results into an
  /// archive happens in an order that cannot depend on scheduling.
  std::function<void(int restart, const SolverResult& result)> on_result = {};
};

class PortfolioRunner {
 public:
  /// N restarts of a single solver.
  PortfolioRunner(SolverPtr solver, PortfolioOptions options);
  /// Mixed portfolio: restart i runs solvers[i % solvers.size()].
  PortfolioRunner(std::vector<SolverPtr> solvers, PortfolioOptions options);

  const PortfolioOptions& options() const { return options_; }
  const std::vector<SolverPtr>& solvers() const { return solvers_; }

  /// Runs every restart (request.seed is replaced by the restart's stream
  /// seed; request.recorder, if any, receives the merged best-so-far
  /// trajectory) and returns the winner. The winner's stats are augmented
  /// with portfolio counters: restarts, threads, winner_restart.
  SolverResult run(const Graph& g, const SolverRequest& request) const;

  /// The per-restart seeds used for `seed`: a splitmix64 stream, computed
  /// up front so it cannot depend on scheduling.
  static std::vector<std::uint64_t> seed_stream(std::uint64_t seed, int n);

 private:
  std::vector<SolverPtr> solvers_;
  PortfolioOptions options_;
};

}  // namespace ffp
