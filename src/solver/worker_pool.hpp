// Process-wide shared worker pools for intra-solver parallelism.
//
// The batched fusion-fission engine wants a pool of speculation workers per
// run; spinning threads up and down per solve (or per portfolio restart)
// would waste both startup latency and warm thread_local scratch. This
// hands out one cached ThreadPool per requested size, shared by every
// solver run that asks for it — concurrent clients are safe because each
// waits through its own TaskGroup (util/parallel.hpp), never wait_idle().
//
// Contract: work submitted to a shared pool must never block on the pool
// itself (a task waiting for pool capacity it is occupying deadlocks).
// That is why PortfolioRunner keeps a private pool — its restart tasks DO
// block, on whole solver runs — while the solvers' leaf-level speculation
// tasks, which only compute, ride the shared pools. The two levels never
// share a pool, so portfolio-of-parallel-solvers nesting cannot deadlock.
#pragma once

#include <memory>

#include "service/thread_budget.hpp"
#include "util/parallel.hpp"

namespace ffp {

/// Returns the shared pool with exactly `threads` workers, creating it on
/// first use. The pool stays alive while any client holds the handle and is
/// torn down when the last handle drops.
std::shared_ptr<ThreadPool> shared_worker_pool(unsigned threads);

/// Budget-aware variant: a PRIVATE pool with exactly `lease.granted()`
/// workers — one pool worker per leased slot, so ThreadBudget accounting
/// stays truthful. Deliberately NOT the size-keyed shared cache above:
/// concurrent clients with equal grants must not share threads, or the
/// budget would record capacity that does not exist. Null on a 0 grant —
/// the caller runs inline on its own (parent-accounted) thread.
std::shared_ptr<ThreadPool> leased_worker_pool(const WorkerLease& lease);

}  // namespace ffp
