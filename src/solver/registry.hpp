// Name-based solver construction, so CLIs, benches and config files build
// solvers from one uniform string form:
//
//   "fusion_fission"                          — defaults
//   "spectral:engine=rqi,arity=oct,kl=true"   — key=value options
//
// Factories read options through `SolverOptions`, which tracks which keys
// were consumed; `create()` rejects specs with unknown keys (typos fail
// loudly instead of silently running defaults). The builtin registry covers
// every algorithm family in the repo; `table1_methods()` (benchlib) and the
// `ffp_part` tool are both built on top of it.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "solver/solver.hpp"
#include "util/check.hpp"

namespace ffp {

/// Parsed `key=value,key=value` options with typed, consumption-tracked
/// access. Getter name mismatches throw; unread keys are reported by
/// unread_keys() so the registry can reject typos.
class SolverOptions {
 public:
  SolverOptions() = default;

  /// Parses "key=value,key=value" (empty string → no options). Throws
  /// ffp::Error on malformed pairs or duplicate keys.
  static SolverOptions parse(std::string_view text);

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  bool empty() const { return values_.empty(); }

  std::string get_string(const std::string& key, std::string fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Maps a string option through an explicit value table; throws with the
  /// valid choices listed when the value is not in the table.
  template <typename Enum>
  Enum get_enum(const std::string& key, Enum fallback,
                const std::vector<std::pair<std::string, Enum>>& table) const {
    if (!has(key)) return fallback;
    const std::string value = get_string(key, "");
    for (const auto& [name, e] : table) {
      if (name == value) return e;
    }
    std::string valid;
    for (const auto& [name, e] : table) {
      (void)e;
      if (!valid.empty()) valid += "|";
      valid += name;
    }
    throw Error("bad value '" + value + "' for option '" + key +
                "' (expected " + valid + ")");
  }

  /// Keys never touched by any getter — typos, from the registry's view.
  std::vector<std::string> unread_keys() const;

  /// The options re-emitted as `key=value,key=value` with keys sorted and
  /// whitespace gone — the canonical text canonical_spec() builds on.
  std::string canonical_text() const;

  /// Forgets which keys were read (the registry calls this before handing
  /// the options to a factory, so reuse across create() calls is safe).
  void reset_consumption() const { read_.clear(); }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> read_;
};

class SolverRegistry {
 public:
  using Factory = std::function<SolverPtr(const SolverOptions&)>;

  /// Registers a factory. Throws on duplicate names.
  void add(std::string name, std::string help, Factory factory);

  bool contains(std::string_view name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;
  /// One-line description for a registered name (throws if unknown).
  const std::string& help(std::string_view name) const;

  /// Builds a solver by name. Throws ffp::Error on unknown names (listing
  /// what is available) and on unknown option keys.
  SolverPtr create(std::string_view name,
                   const SolverOptions& options = {}) const;

  /// Builds from a full spec: `name` or `name:key=value,key=value` (a
  /// whitespace separator is accepted in place of the colon when the tail
  /// contains key=value pairs).
  SolverPtr create_from_spec(std::string_view spec) const;

  /// Splits a spec into {name, options text}. Shared by create_from_spec
  /// and canonical_spec so the two can never disagree on the grammar.
  static std::pair<std::string_view, std::string_view> split_spec(
      std::string_view spec);

  /// Re-emits already-parsed spec pieces in canonical form (`name` or
  /// `name:key=value,...`, keys sorted). The single normalization emitter
  /// behind canonical_spec() AND api::SolveSpec::resolve() — callers must
  /// have validated the pieces (create()) first.
  static std::string canonical_join(std::string_view name,
                                    const SolverOptions& options);

  /// THE one place spec strings are normalized: validates the spec end to
  /// end (unknown names, unknown/duplicate keys, and bad values all throw)
  /// and returns `name` or `name:key=value,...` with keys sorted and
  /// whitespace stripped — so `fusion_fission threads=2` and
  /// `fusion_fission: threads=2 ,` resolve and cache identically.
  std::string canonical_spec(std::string_view spec) const;

  /// The process-wide registry with every built-in solver registered.
  static const SolverRegistry& builtin();

 private:
  std::map<std::string, std::pair<std::string, Factory>, std::less<>> entries_;
};

/// Convenience: `builtin().create_from_spec(spec)`.
SolverPtr make_solver(std::string_view spec);

}  // namespace ffp
