#include "solver/worker_pool.hpp"

#include <map>
#include <mutex>

namespace ffp {

std::shared_ptr<ThreadPool> shared_worker_pool(unsigned threads) {
  FFP_CHECK(threads >= 1, "shared_worker_pool needs at least one thread");
  static std::mutex mu;
  // Weak cache: handles keep a pool alive; a size nobody uses anymore is
  // reclaimed and lazily rebuilt on the next request.
  static std::map<unsigned, std::weak_ptr<ThreadPool>>* cache =
      new std::map<unsigned, std::weak_ptr<ThreadPool>>();
  std::lock_guard lock(mu);
  auto& slot = (*cache)[threads];
  if (auto pool = slot.lock()) return pool;
  auto pool = std::make_shared<ThreadPool>(threads);
  slot = pool;
  return pool;
}

std::shared_ptr<ThreadPool> leased_worker_pool(const WorkerLease& lease) {
  if (lease.granted() == 0) return nullptr;
  return std::make_shared<ThreadPool>(lease.granted());
}

}  // namespace ffp
