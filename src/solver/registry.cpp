#include "solver/registry.hpp"

#include "util/strings.hpp"

namespace ffp {

namespace {

bool is_spec_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// One comma-delimited piece may hold several whitespace-separated pairs
/// ("threads=2 batch=1") or a single pair with cosmetic spaces around '='
/// ("beta = x") — disambiguated by counting '=' signs.
std::vector<std::string_view> split_pairs(std::string_view piece) {
  std::size_t equals = 0;
  for (char c : piece) equals += c == '=' ? 1u : 0u;
  if (equals <= 1) return {piece};
  std::vector<std::string_view> pairs;
  std::size_t i = 0;
  while (i < piece.size()) {
    while (i < piece.size() && is_spec_space(piece[i])) ++i;
    std::size_t j = i;
    while (j < piece.size() && !is_spec_space(piece[j])) ++j;
    if (j > i) pairs.push_back(piece.substr(i, j - i));
    i = j;
  }
  return pairs;
}

}  // namespace

SolverOptions SolverOptions::parse(std::string_view text) {
  SolverOptions out;
  std::size_t i = 0;
  while (i < text.size()) {
    std::size_t j = text.find(',', i);
    if (j == std::string_view::npos) j = text.size();
    const std::string_view piece = trim(text.substr(i, j - i));
    if (!piece.empty()) {
      for (const std::string_view pair : split_pairs(piece)) {
        const std::size_t eq = pair.find('=');
        FFP_CHECK(eq != std::string_view::npos && eq > 0,
                  "bad solver option '", std::string(pair),
                  "' (expected key=value)");
        const std::string key(trim(pair.substr(0, eq)));
        const std::string value(trim(pair.substr(eq + 1)));
        FFP_CHECK(!out.values_.count(key), "duplicate solver option '", key,
                  "'");
        out.values_[key] = value;
      }
    }
    i = j + 1;
  }
  return out;
}

std::string SolverOptions::canonical_text() const {
  std::string out;
  for (const auto& [key, value] : values_) {  // std::map: sorted by key
    if (!out.empty()) out += ',';
    out += key;
    out += '=';
    out += value;
  }
  return out;
}

std::string SolverOptions::get_string(const std::string& key,
                                      std::string fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  read_.insert(key);
  return it->second;
}

double SolverOptions::get_double(const std::string& key, double fallback) const {
  if (!has(key)) return fallback;
  const std::string text = get_string(key, "");
  const auto v = parse_double(text);
  FFP_CHECK(v.has_value(), "option '", key, "' expects a number, got '", text,
            "'");
  return *v;
}

std::int64_t SolverOptions::get_int(const std::string& key,
                                    std::int64_t fallback) const {
  if (!has(key)) return fallback;
  const std::string text = get_string(key, "");
  const auto v = parse_int(text);
  FFP_CHECK(v.has_value(), "option '", key, "' expects an integer, got '",
            text, "'");
  return *v;
}

bool SolverOptions::get_bool(const std::string& key, bool fallback) const {
  if (!has(key)) return fallback;
  const std::string text = get_string(key, "");
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    return false;
  }
  throw Error("option '" + key + "' expects a boolean, got '" + text + "'");
}

std::vector<std::string> SolverOptions::unread_keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!read_.count(key)) out.push_back(key);
  }
  return out;
}

void SolverRegistry::add(std::string name, std::string help, Factory factory) {
  FFP_CHECK(!entries_.count(name), "duplicate solver name '", name, "'");
  entries_[std::move(name)] = {std::move(help), std::move(factory)};
}

bool SolverRegistry::contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

std::vector<std::string> SolverRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    out.push_back(name);
  }
  return out;
}

const std::string& SolverRegistry::help(std::string_view name) const {
  const auto it = entries_.find(name);
  FFP_CHECK(it != entries_.end(), "unknown solver '", std::string(name), "'");
  return it->second.first;
}

SolverPtr SolverRegistry::create(std::string_view name,
                                 const SolverOptions& options) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::string known;
    for (const auto& n : names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw Error("unknown solver '" + std::string(name) + "' (available: " +
                known + ")");
  }
  // A SolverOptions may be tried against several solvers; consumption only
  // counts reads made by THIS factory, or unknown-key detection would go
  // silent on the second create().
  options.reset_consumption();
  SolverPtr solver = it->second.second(options);
  const auto unread = options.unread_keys();
  if (!unread.empty()) {
    std::string keys;
    for (const auto& k : unread) {
      if (!keys.empty()) keys += ", ";
      keys += k;
    }
    throw Error("unknown option(s) for solver '" + std::string(name) + "': " +
                keys);
  }
  return solver;
}

std::pair<std::string_view, std::string_view> SolverRegistry::split_spec(
    std::string_view spec) {
  const std::size_t colon = spec.find(':');
  if (colon != std::string_view::npos) {
    return {trim(spec.substr(0, colon)), spec.substr(colon + 1)};
  }
  // Whitespace form ("fusion_fission threads=2"): only split when the tail
  // actually looks like options — otherwise multi-word names keep reporting
  // "unknown solver '<whole string>'" instead of a misleading option error.
  const std::string_view trimmed = trim(spec);
  for (std::size_t i = 0; i < trimmed.size(); ++i) {
    if (is_spec_space(trimmed[i])) {
      const std::string_view tail = trimmed.substr(i);
      if (tail.find('=') != std::string_view::npos) {
        return {trim(trimmed.substr(0, i)), tail};
      }
      break;
    }
  }
  return {trimmed, {}};
}

SolverPtr SolverRegistry::create_from_spec(std::string_view spec) const {
  const auto [name, opts] = split_spec(spec);
  return create(name, SolverOptions::parse(opts));
}

std::string SolverRegistry::canonical_join(std::string_view name,
                                           const SolverOptions& options) {
  std::string out(name);
  const std::string text = options.canonical_text();
  if (!text.empty()) {
    out += ':';
    out += text;
  }
  return out;
}

std::string SolverRegistry::canonical_spec(std::string_view spec) const {
  const auto [name, opts_text] = split_spec(spec);
  const SolverOptions options = SolverOptions::parse(opts_text);
  // Constructing the solver validates the name, every option key, and every
  // option value — a spec only canonicalizes if it actually resolves.
  (void)create(name, options);
  return canonical_join(name, options);
}

namespace {

SectionArity parse_arity(const SolverOptions& o, SectionArity fallback) {
  return o.get_enum<SectionArity>(
      "arity", fallback,
      {{"bi", SectionArity::Bisection},
       {"quad", SectionArity::Quadrisection},
       {"oct", SectionArity::Octasection}});
}

SolverRegistry make_builtin() {
  SolverRegistry r;

  r.add("fusion_fission",
        "the paper's fusion-fission metaheuristic (tmax, tmin, nbt, "
        "choice_slope, choice_offset, law_delta, use_laws, "
        "percolation_fission, scaling=binding|linear|identity, "
        "threads, batch — threads>=1 or batch>=1 selects the batched "
        "parallel engine, byte-identical across thread counts)",
        [](const SolverOptions& o) -> SolverPtr {
          FusionFissionOptions opt;
          opt.tmax = o.get_double("tmax", opt.tmax);
          opt.tmin = o.get_double("tmin", opt.tmin);
          opt.nbt = static_cast<int>(o.get_int("nbt", opt.nbt));
          opt.choice_slope = o.get_double("choice_slope", opt.choice_slope);
          opt.choice_offset = o.get_double("choice_offset", opt.choice_offset);
          opt.law_delta = o.get_double("law_delta", opt.law_delta);
          opt.choice_term_bias =
              o.get_double("choice_term_bias", opt.choice_term_bias);
          opt.use_laws = o.get_bool("use_laws", opt.use_laws);
          opt.percolation_fission =
              o.get_bool("percolation_fission", opt.percolation_fission);
          opt.threads = static_cast<int>(o.get_int("threads", opt.threads));
          FFP_CHECK(opt.threads >= 0, "fusion_fission threads must be >= 0");
          opt.batch = static_cast<int>(o.get_int("batch", opt.batch));
          FFP_CHECK(opt.batch >= 0, "fusion_fission batch must be >= 0");
          opt.scaling = o.get_enum<ScalingKind>(
              "scaling", opt.scaling,
              {{"binding", ScalingKind::BindingEnergy},
               {"linear", ScalingKind::Linear},
               {"identity", ScalingKind::Identity}});
          return std::make_shared<FusionFissionSolver>(opt);
        });

  r.add("mlff",
        "multilevel fusion-fission hybrid for large graphs: coarsen to "
        "coarse_n vertices (0 = max(k*64, n/64)), run full fusion-fission "
        "on the coarse graph, project back with boundary refinement bursts "
        "(refine_steps at the coarsest projection, halving toward the fine "
        "levels). Options: coarse_n, refine_steps, matching=heavy|random, "
        "threads, batch — threads>=1 or batch>=1 selects the batched "
        "coarse engine, byte-identical across thread counts",
        [](const SolverOptions& o) -> SolverPtr {
          MlffOptions opt;
          opt.coarse_n = static_cast<int>(o.get_int("coarse_n", opt.coarse_n));
          FFP_CHECK(opt.coarse_n >= 0, "mlff coarse_n must be >= 0");
          opt.refine_steps = o.get_int("refine_steps", opt.refine_steps);
          FFP_CHECK(opt.refine_steps >= 0, "mlff refine_steps must be >= 0");
          opt.matching = o.get_enum<MatchingKind>(
              "matching", opt.matching,
              {{"heavy", MatchingKind::HeavyEdge},
               {"random", MatchingKind::Random}});
          opt.threads = static_cast<int>(o.get_int("threads", opt.threads));
          FFP_CHECK(opt.threads >= 0, "mlff threads must be >= 0");
          opt.batch = static_cast<int>(o.get_int("batch", opt.batch));
          FFP_CHECK(opt.batch >= 0, "mlff batch must be >= 0");
          return std::make_shared<MlffSolver>(opt);
        });

  r.add("annealing",
        "simulated annealing from a percolation start (tmax, tmin_fraction, "
        "cooling, equilibrium, high_temp_fraction)",
        [](const SolverOptions& o) -> SolverPtr {
          AnnealingOptions opt;
          opt.tmax = o.get_double("tmax", opt.tmax);
          opt.tmin_fraction = o.get_double("tmin_fraction", opt.tmin_fraction);
          opt.cooling = o.get_double("cooling", opt.cooling);
          opt.equilibrium_rejections = static_cast<int>(
              o.get_int("equilibrium", opt.equilibrium_rejections));
          opt.high_temp_fraction =
              o.get_double("high_temp_fraction", opt.high_temp_fraction);
          return std::make_shared<AnnealingSolver>(opt);
        });

  r.add("ant_colony",
        "competing ant colonies from a percolation start (ants, evaporation, "
        "deposit, explore_bonus, alpha, beta, walk_length)",
        [](const SolverOptions& o) -> SolverPtr {
          AntColonyOptions opt;
          opt.ants_per_colony =
              static_cast<int>(o.get_int("ants", opt.ants_per_colony));
          opt.evaporation = o.get_double("evaporation", opt.evaporation);
          opt.deposit = o.get_double("deposit", opt.deposit);
          opt.explore_bonus = o.get_double("explore_bonus", opt.explore_bonus);
          opt.alpha = o.get_double("alpha", opt.alpha);
          opt.beta = o.get_double("beta", opt.beta);
          opt.walk_length =
              static_cast<int>(o.get_int("walk_length", opt.walk_length));
          return std::make_shared<AntColonySolver>(opt);
        });

  r.add("multilevel",
        "multilevel partitioning (arity=bi|quad|oct, initial=spectral|greedy, "
        "coarsest, max_imbalance, final_refine)",
        [](const SolverOptions& o) -> SolverPtr {
          MultilevelOptions opt;
          opt.arity = parse_arity(o, opt.arity);
          opt.initial = o.get_enum<InitialPartitioner>(
              "initial", opt.initial,
              {{"spectral", InitialPartitioner::SpectralBisection},
               {"greedy", InitialPartitioner::GreedyGrowing}});
          opt.coarsest_vertices =
              static_cast<int>(o.get_int("coarsest", opt.coarsest_vertices));
          opt.max_imbalance = o.get_double("max_imbalance", opt.max_imbalance);
          opt.final_kway_refine =
              o.get_bool("final_refine", opt.final_kway_refine);
          return std::make_shared<MultilevelSolver>(opt);
        });

  r.add("spectral",
        "recursive spectral partitioning (engine=lanczos|rqi, "
        "arity=bi|quad|oct, kl, problem=combinatorial|normalized, "
        "max_imbalance, tolerance, final_refine)",
        [](const SolverOptions& o) -> SolverPtr {
          SpectralOptions opt;
          opt.engine = o.get_enum<FiedlerEngine>(
              "engine", opt.engine,
              {{"lanczos", FiedlerEngine::Lanczos},
               {"rqi", FiedlerEngine::MultilevelRqi}});
          opt.problem = o.get_enum<SpectralProblem>(
              "problem", opt.problem,
              {{"combinatorial", SpectralProblem::Combinatorial},
               {"normalized", SpectralProblem::Normalized}});
          opt.arity = parse_arity(o, opt.arity);
          opt.kl_refine = o.get_bool("kl", opt.kl_refine);
          opt.max_imbalance = o.get_double("max_imbalance", opt.max_imbalance);
          opt.tolerance = o.get_double("tolerance", opt.tolerance);
          const bool final_refine = o.get_bool("final_refine", true);
          return std::make_shared<SpectralSolver>(opt, final_refine);
        });

  r.add("linear",
        "Chaco's linear scheme (arity=2|8, kl)",
        [](const SolverOptions& o) -> SolverPtr {
          LinearOptions opt;
          opt.arity = static_cast<int>(o.get_int("arity", opt.arity));
          FFP_CHECK(opt.arity == 2 || opt.arity == 4 || opt.arity == 8,
                    "linear arity must be 2, 4 or 8, got ", opt.arity);
          opt.kl_refine = o.get_bool("kl", opt.kl_refine);
          return std::make_shared<LinearSolver>(opt);
        });

  r.add("percolation",
        "standalone percolation partitioning (max_rounds)",
        [](const SolverOptions& o) -> SolverPtr {
          PercolationOptions opt;
          opt.max_rounds =
              static_cast<int>(o.get_int("max_rounds", opt.max_rounds));
          return std::make_shared<PercolationSolver>(opt);
        });

  return r;
}

}  // namespace

const SolverRegistry& SolverRegistry::builtin() {
  static const SolverRegistry r = make_builtin();
  return r;
}

SolverPtr make_solver(std::string_view spec) {
  return SolverRegistry::builtin().create_from_spec(spec);
}

}  // namespace ffp
