// Helpers shared by the spectral code: deflation vectors for the trivial
// eigenspace of each spectral problem.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "spectral/fiedler.hpp"

namespace ffp {

/// The (normalized) trivial eigenvector: constant for the combinatorial
/// Laplacian, D^{1/2}·1 for the normalized one.
std::vector<double> trivial_eigenvector(const Graph& g,
                                        SpectralProblem problem);

}  // namespace ffp
