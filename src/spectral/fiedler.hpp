// Fiedler vectors (and higher Laplacian eigenvectors) by two engines:
//
//  - Lanczos on the full graph (the paper's "Spectral (Lanc, …)" rows), and
//  - multilevel RQI/SYMMLQ (the "Spectral (RQI, …)" rows): coarsen the
//    graph, solve the small coarse eigenproblem with Lanczos, interpolate,
//    and polish with Rayleigh quotient iteration at every level — the Chaco
//    scheme of Hendrickson & Leland.
//
// Both return the eigenvectors after the trivial one (constant for L,
// D^{1/2}·1 for the normalized variant), ascending by eigenvalue.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ffp {

enum class FiedlerEngine { Lanczos, MultilevelRqi };

/// Which eigenproblem supplies the embedding: the combinatorial Laplacian
/// minimizes the Cut relaxation; the normalized variant targets Ncut (and,
/// through the λ → λ/(1+λ) transform, Mcut — see linalg/operators.hpp).
enum class SpectralProblem { Combinatorial, Normalized };

struct FiedlerOptions {
  FiedlerEngine engine = FiedlerEngine::Lanczos;
  SpectralProblem problem = SpectralProblem::Combinatorial;
  int count = 1;             ///< number of nontrivial eigenvectors
  double tolerance = 1e-7;
  int coarse_vertices = 80;  ///< multilevel engine: coarsest solve size
  std::uint64_t seed = 7;
};

struct FiedlerResult {
  /// vectors[i] is the (i+2)-th eigenvector of the chosen problem
  /// (vectors[0] = the Fiedler vector), each of size n.
  std::vector<std::vector<double>> vectors;
  std::vector<double> values;
  bool converged = false;
};

FiedlerResult fiedler_vectors(const Graph& g, const FiedlerOptions& options);

}  // namespace ffp
