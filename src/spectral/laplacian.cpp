#include "spectral/laplacian.hpp"

#include <cmath>

#include "linalg/operators.hpp"

namespace ffp {

std::vector<double> trivial_eigenvector(const Graph& g,
                                        SpectralProblem problem) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> v(n, 1.0);
  if (problem == SpectralProblem::Normalized) {
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      v[static_cast<std::size_t>(u)] = std::sqrt(g.weighted_degree(u));
    }
  }
  normalize(v);
  return v;
}

}  // namespace ffp
