#include "spectral/linear_partition.hpp"

#include "util/check.hpp"

namespace ffp {

Partition linear_partition(const Graph& g, int k) {
  FFP_CHECK(k >= 1, "k must be >= 1");
  FFP_CHECK(g.num_vertices() >= k, "graph has fewer vertices than parts");

  const double per_part = g.total_vertex_weight() / k;
  std::vector<int> assign(static_cast<std::size_t>(g.num_vertices()), 0);
  double acc = 0.0;
  int part = 0;
  VertexId remaining = g.num_vertices();
  for (VertexId v = 0; v < g.num_vertices(); ++v, --remaining) {
    // Never let the tail of parts outnumber the remaining vertices.
    if ((acc >= per_part * (part + 1) && part + 1 < k) ||
        (k - part - 1 >= remaining && part + 1 < k)) {
      ++part;
    }
    assign[static_cast<std::size_t>(v)] = part;
    acc += g.vertex_weight(v);
  }
  return Partition::from_assignment(g, assign, k);
}

}  // namespace ffp
