#include "spectral/linear_partition.hpp"

#include <algorithm>
#include <numeric>

#include "graph/connectivity.hpp"
#include "refine/kl_bisection.hpp"
#include "util/check.hpp"

namespace ffp {

namespace {

/// Recursive division of the vertex-id range (Chaco's linear global
/// method), with KL refinement after every division — arity 2 (Bi) or
/// 8 (Oct).
void linear_recurse(const Graph& g, const std::vector<VertexId>& vertices,
                    int k, int offset, int arity, bool kl, std::uint64_t seed,
                    std::vector<int>& out) {
  if (k == 1 || vertices.size() <= 1) {
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      out[static_cast<std::size_t>(vertices[i])] =
          offset + static_cast<int>(i % static_cast<std::size_t>(std::max(k, 1)));
    }
    return;
  }
  int ways = std::min(arity, k);
  while (ways > 2 && k % ways != 0) ways /= 2;
  // Odd arities can halve past 2 (e.g. 3/2 == 1); bisection is always valid.
  ways = std::max(ways, 2);
  ways = std::min<int>(ways, static_cast<int>(vertices.size()));

  // Contiguous chunks of near-equal vertex weight (ids are already sorted).
  double total = 0.0;
  for (VertexId v : vertices) total += g.vertex_weight(v);
  std::vector<std::vector<VertexId>> chunks(static_cast<std::size_t>(ways));
  double acc = 0.0;
  int chunk = 0;
  std::size_t remaining = vertices.size();
  for (VertexId v : vertices) {
    const int needed_after = ways - chunk - 1;
    if ((acc >= total * (chunk + 1) / ways && chunk + 1 < ways) ||
        (static_cast<std::size_t>(needed_after) >= remaining && chunk + 1 < ways)) {
      ++chunk;
    }
    chunks[static_cast<std::size_t>(chunk)].push_back(v);
    acc += g.vertex_weight(v);
    --remaining;
  }

  if (kl) {
    // KL between the chunks, on the induced subgraph of this range.
    std::vector<int> local(vertices.size());
    std::vector<VertexId> to_local(
        static_cast<std::size_t>(g.num_vertices()), -1);
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      to_local[static_cast<std::size_t>(vertices[i])] =
          static_cast<VertexId>(i);
    }
    for (int c = 0; c < ways; ++c) {
      for (VertexId v : chunks[static_cast<std::size_t>(c)]) {
        local[static_cast<std::size_t>(
            to_local[static_cast<std::size_t>(v)])] = c;
      }
    }
    const auto sub = induced_subgraph(g, vertices);
    kl_refine_kway(sub.graph, local, ways, 1.05, seed);
    for (auto& c : chunks) c.clear();
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      chunks[static_cast<std::size_t>(local[i])].push_back(vertices[i]);
    }
  }

  const int per = k / ways;
  int off = offset;
  for (int c = 0; c < ways; ++c) {
    // Chunk vertex lists stay sorted (KL preserves membership, not order),
    // so re-sort for the next level's "linear" semantics.
    auto& chunk_vertices = chunks[static_cast<std::size_t>(c)];
    std::sort(chunk_vertices.begin(), chunk_vertices.end());
    linear_recurse(g, chunk_vertices, per, off, arity, kl,
                   seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(c),
                   out);
    off += per;
  }
}

}  // namespace

Partition linear_partition(const Graph& g, int k) {
  FFP_CHECK(k >= 1, "k must be >= 1");
  FFP_CHECK(g.num_vertices() >= k, "graph has fewer vertices than parts");

  const double per_part = g.total_vertex_weight() / k;
  std::vector<int> assign(static_cast<std::size_t>(g.num_vertices()), 0);
  double acc = 0.0;
  int part = 0;
  VertexId remaining = g.num_vertices();
  for (VertexId v = 0; v < g.num_vertices(); ++v, --remaining) {
    // Never let the tail of parts outnumber the remaining vertices.
    if ((acc >= per_part * (part + 1) && part + 1 < k) ||
        (k - part - 1 >= remaining && part + 1 < k)) {
      ++part;
    }
    assign[static_cast<std::size_t>(v)] = part;
    acc += g.vertex_weight(v);
  }
  return Partition::from_assignment(g, assign, k);
}

Partition linear_partition(const Graph& g, int k,
                           const LinearOptions& options) {
  FFP_CHECK(options.arity >= 2, "linear arity must be >= 2");
  if (!options.kl_refine) return linear_partition(g, k);
  FFP_CHECK(k >= 1, "k must be >= 1");
  FFP_CHECK(g.num_vertices() >= k, "graph has fewer vertices than parts");
  std::vector<int> out(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<VertexId> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), 0);
  linear_recurse(g, all, k, 0, options.arity, options.kl_refine, options.seed,
                 out);
  return Partition::from_assignment(g, out, k);
}

}  // namespace ffp
