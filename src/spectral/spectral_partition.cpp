#include "spectral/spectral_partition.hpp"

#include <algorithm>
#include <numeric>

#include "graph/connectivity.hpp"
#include "partition/balance.hpp"
#include "refine/kl_bisection.hpp"
#include "util/check.hpp"

namespace ffp {

std::vector<int> median_split(const Graph& g, std::span<const double> values) {
  const VertexId n = g.num_vertices();
  FFP_CHECK(static_cast<VertexId>(values.size()) == n, "values size mismatch");
  FFP_CHECK(n >= 2, "cannot bisect fewer than two vertices");

  std::vector<VertexId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const double va = values[static_cast<std::size_t>(a)];
    const double vb = values[static_cast<std::size_t>(b)];
    return va != vb ? va < vb : a < b;  // deterministic tiebreak
  });

  const double half = g.total_vertex_weight() / 2.0;
  std::vector<int> side(static_cast<std::size_t>(n), 1);
  double acc = 0.0;
  std::size_t i = 0;
  for (; i < order.size(); ++i) {
    const double w = g.vertex_weight(order[i]);
    // Stop before crossing the midpoint unless the side is still empty.
    if (i > 0 && acc + w > half) break;
    acc += w;
    side[static_cast<std::size_t>(order[i])] = 0;
  }
  if (i == order.size()) {  // degenerate weights: keep last vertex on side 1
    side[static_cast<std::size_t>(order.back())] = 1;
  }
  return side;
}

std::vector<int> sign_section(const Graph& g,
                              std::span<const std::vector<double>> vectors,
                              double max_imbalance, std::uint64_t seed) {
  FFP_CHECK(!vectors.empty() && vectors.size() <= 3,
            "sign_section takes 1..3 eigenvectors");
  const VertexId n = g.num_vertices();
  const int k = 1 << vectors.size();
  std::vector<int> cell(static_cast<std::size_t>(n), 0);
  for (std::size_t d = 0; d < vectors.size(); ++d) {
    FFP_CHECK(static_cast<VertexId>(vectors[d].size()) == n,
              "eigenvector size mismatch");
    // Split dimension d at its weighted median rather than at zero: the
    // median is what keeps cells balanced when an eigenvector is skewed.
    const auto split = median_split(g, vectors[d]);
    for (VertexId v = 0; v < n; ++v) {
      cell[static_cast<std::size_t>(v)] |=
          split[static_cast<std::size_t>(v)] << d;
    }
  }
  auto part = Partition::from_assignment(g, cell, k);
  Rng rng(seed);
  rebalance(part, k, max_imbalance, rng);
  return {part.assignment().begin(), part.assignment().end()};
}

namespace {

std::uint64_t splitmix64_mix(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t s = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

/// Recursively partitions the subgraph induced by `vertices` into k parts,
/// writing part ids offset..offset+k-1 into `out`.
void recurse(const Graph& parent, std::vector<VertexId> vertices, int k,
             int offset, const SpectralOptions& options, std::uint64_t seed,
             std::vector<int>& out) {
  if (k == 1 || vertices.size() <= 1) {
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      out[static_cast<std::size_t>(vertices[i])] =
          offset + static_cast<int>(i % static_cast<std::size_t>(k));
    }
    return;
  }
  const auto sub = induced_subgraph(parent, vertices);

  // Pick the widest section arity that divides k and fits the subgraph.
  int arity = std::min(static_cast<int>(options.arity), k);
  while (arity > 2 && (k % arity != 0 ||
                       sub.graph.num_vertices() < 2 * arity)) {
    arity /= 2;
  }
  if (sub.graph.num_vertices() < 2) arity = std::min(arity, 2);

  const int dims = arity == 8 ? 3 : arity == 4 ? 2 : 1;

  FiedlerOptions fopt;
  fopt.engine = options.engine;
  fopt.problem = options.problem;
  fopt.count = dims;
  fopt.tolerance = options.tolerance;
  fopt.seed = seed;
  const auto fres = fiedler_vectors(sub.graph, fopt);
  FFP_CHECK(static_cast<int>(fres.vectors.size()) >= 1,
            "spectral solve produced no eigenvector");

  // Fall back to plain bisection if the eigensolver produced fewer vectors
  // than the requested section needs.
  const int actual_dims =
      static_cast<int>(fres.vectors.size()) >= dims ? dims : 1;
  std::vector<int> local;
  if (actual_dims == 1) {
    local = median_split(sub.graph, fres.vectors[0]);
  } else {
    local = sign_section(
        sub.graph,
        std::span<const std::vector<double>>(
            fres.vectors.data(), static_cast<std::size_t>(actual_dims)),
        options.max_imbalance, seed ^ 0x5bd1e995);
  }
  const int actual = 1 << actual_dims;

  if (options.kl_refine) {
    kl_refine_kway(sub.graph, local, actual, options.max_imbalance,
                   seed ^ 0x9e3779b9);
  }

  // Gather each section's vertices (in parent ids) and recurse.
  const int per_section = k / actual;
  std::vector<std::vector<VertexId>> groups(static_cast<std::size_t>(actual));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    int s = local[i];
    if (s >= actual) s = actual - 1;  // rebalance may have used fewer cells
    groups[static_cast<std::size_t>(s)].push_back(vertices[i]);
  }
  for (int s = 0; s < actual; ++s) {
    recurse(parent, std::move(groups[static_cast<std::size_t>(s)]),
            per_section, offset + s * per_section, options,
            splitmix64_mix(seed, static_cast<std::uint64_t>(s)), out);
  }
}

}  // namespace

Partition spectral_partition(const Graph& g, int k,
                             const SpectralOptions& options) {
  FFP_CHECK(k >= 1, "k must be >= 1");
  FFP_CHECK((k & (k - 1)) == 0,
            "spectral partitioning requires k to be a power of two (got ", k,
            "); the paper notes it is not appropriate otherwise");
  FFP_CHECK(g.num_vertices() >= k, "graph has fewer vertices than parts");

  std::vector<int> assignment(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<VertexId> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), 0);
  recurse(g, std::move(all), k, 0, options, options.seed, assignment);
  auto p = Partition::from_assignment(g, assignment, k);
  // Degenerate subgraphs can starve a section of its part ids; repair.
  force_k_nonempty(p, k);
  return p;
}

}  // namespace ffp
