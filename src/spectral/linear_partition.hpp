// Chaco's "linear" scheme (the "Linear (…)" rows of Table 1): assign
// vertices to parts in natural index order, in contiguous blocks of
// near-equal vertex weight. Trivially fast, usually poor — the table's
// baseline floor.
#pragma once

#include "graph/graph.hpp"
#include "partition/partition.hpp"

namespace ffp {

Partition linear_partition(const Graph& g, int k);

}  // namespace ffp
