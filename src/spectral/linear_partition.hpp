// Chaco's "linear" scheme (the "Linear (…)" rows of Table 1): assign
// vertices to parts in natural index order, in contiguous blocks of
// near-equal vertex weight. Trivially fast, usually poor — the table's
// baseline floor.
//
// The optioned overload adds Chaco's recursive variant: divide the index
// range with arity 2 (Bi) or 8 (Oct) and run KL between the blocks of every
// division, which is what turns the floor row into the "Linear (…, KL)"
// rows of the table.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "partition/partition.hpp"

namespace ffp {

struct LinearOptions {
  int arity = 2;          ///< recursion arity: 2 (Bi) or 8 (Oct)
  bool kl_refine = false; ///< KL between blocks after every division
  std::uint64_t seed = 1; ///< KL tie-breaking only
};

Partition linear_partition(const Graph& g, int k);
Partition linear_partition(const Graph& g, int k, const LinearOptions& options);

}  // namespace ffp
