// Spectral partitioning (§2.1): bisection by the Fiedler vector's weighted
// median, quadrisection/octasection by the sign pattern of 2–3 eigenvectors
// ("to simultaneously cut the graph into 2^n sets, use the n top
// eigenvectors in the Fiedler order"), and a recursive driver that reaches
// any k = 2^a by mixing section arities, with optional KL refinement at
// every division — the Chaco-style method matrix of Table 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/partition.hpp"
#include "spectral/fiedler.hpp"

namespace ffp {

/// Splits vertices at the weighted median of `values`: the lower half goes
/// to side 0. Guarantees both sides non-empty for n >= 2 and near-equal
/// vertex weight.
std::vector<int> median_split(const Graph& g, std::span<const double> values);

/// 2^d-section by sign pattern of d eigenvectors (d in 1..3), followed by a
/// greedy rebalance since sign cells can be lopsided.
std::vector<int> sign_section(const Graph& g,
                              std::span<const std::vector<double>> vectors,
                              double max_imbalance, std::uint64_t seed);

enum class SectionArity { Bisection = 2, Quadrisection = 4, Octasection = 8 };

struct SpectralOptions {
  FiedlerEngine engine = FiedlerEngine::Lanczos;
  SpectralProblem problem = SpectralProblem::Combinatorial;
  SectionArity arity = SectionArity::Bisection;
  bool kl_refine = false;       ///< KL after every division (Table 1 "KL")
  double max_imbalance = 1.05;
  double tolerance = 1e-7;
  std::uint64_t seed = 7;
};

/// Recursive spectral partitioning into k parts (k >= 1). k must be a power
/// of two (the paper: "this method is not appropriate for partitioning into
/// k != 2^n sets"); arities greater than the remaining factor degrade to
/// smaller sections.
Partition spectral_partition(const Graph& g, int k,
                             const SpectralOptions& options);

}  // namespace ffp
