#include "spectral/fiedler.hpp"

#include <cmath>
#include <memory>

#include "linalg/lanczos.hpp"
#include "linalg/operators.hpp"
#include "linalg/rqi.hpp"
#include "multilevel/coarsen.hpp"
#include "spectral/laplacian.hpp"
#include "util/check.hpp"

namespace ffp {

namespace {

std::unique_ptr<SymmetricOperator> make_operator(const Graph& g,
                                                 SpectralProblem problem) {
  if (problem == SpectralProblem::Normalized) {
    return std::make_unique<NormalizedLaplacianOperator>(g);
  }
  return std::make_unique<LaplacianOperator>(g);
}

/// Smallest nontrivial eigenpairs via Lanczos with the trivial eigenvector
/// deflated.
FiedlerResult solve_lanczos(const Graph& g, const FiedlerOptions& options) {
  FiedlerResult out;
  const auto op = make_operator(g, options.problem);

  // With the trivial eigenvector deflated, the target pairs sit at the low
  // extreme of the spectrum, where Lanczos with full reorthogonalization
  // converges directly.
  std::vector<std::vector<double>> deflate;
  deflate.push_back(trivial_eigenvector(g, options.problem));

  LanczosOptions lopt;
  lopt.nev = options.count;
  lopt.tolerance = options.tolerance;
  lopt.max_iterations =
      std::max(100, std::min<int>(g.num_vertices(), 40 * options.count + 60));
  lopt.seed = options.seed;
  const auto lres = lanczos_smallest(*op, lopt, deflate);

  out.converged = lres.converged;
  for (const auto& pair : lres.pairs) {
    out.values.push_back(pair.value);
    out.vectors.push_back(pair.vector);
  }
  return out;
}

/// Multilevel RQI: Lanczos on the coarsest graph, prolong, RQI-polish at
/// each finer level.
FiedlerResult solve_multilevel_rqi(const Graph& g,
                                   const FiedlerOptions& options) {
  CoarsenOptions copt;
  copt.min_vertices = std::max(options.coarse_vertices, 4 * options.count + 8);
  copt.seed = options.seed;
  const auto chain = coarsen_chain(g, copt);
  const Graph& coarsest = chain.empty() ? g : chain.back().coarse;

  // Coarse solve (always with Lanczos on the small graph).
  FiedlerOptions base = options;
  base.engine = FiedlerEngine::Lanczos;
  FiedlerResult current = solve_lanczos(coarsest, base);
  if (chain.empty()) return current;

  // Walk back up the chain level by level, carrying all vectors together so
  // each can be deflated against the ones already refined at that level
  // (otherwise RQI would collapse every start vector onto the Fiedler pair).
  FiedlerResult out;
  out.converged = true;
  std::vector<std::vector<double>> vectors = std::move(current.vectors);
  for (std::size_t lvl = chain.size(); lvl-- > 0;) {
    const auto& map = chain[lvl].fine_to_coarse;
    const Graph& fine_graph = lvl == 0 ? g : chain[lvl - 1].coarse;
    const auto op = make_operator(fine_graph, options.problem);

    std::vector<std::vector<double>> deflate;
    deflate.push_back(trivial_eigenvector(fine_graph, options.problem));

    const bool finest = lvl == 0;
    for (std::size_t i = 0; i < vectors.size(); ++i) {
      // One-level piecewise-constant prolongation.
      std::vector<double> fine(map.size());
      for (std::size_t v = 0; v < map.size(); ++v) {
        fine[v] = vectors[i][static_cast<std::size_t>(map[v])];
      }
      RqiOptions ropt;
      ropt.tolerance = options.tolerance;
      ropt.solver_tolerance = std::max(options.tolerance * 0.1, 1e-9);
      auto refined = rqi_refine(*op, fine, ropt, deflate);
      if (finest) {
        out.values.push_back(refined.value);
        out.converged = out.converged && refined.converged;
      }
      deflate.push_back(refined.vector);
      vectors[i] = std::move(refined.vector);
    }
  }
  out.vectors = std::move(vectors);
  return out;
}

}  // namespace

FiedlerResult fiedler_vectors(const Graph& g, const FiedlerOptions& options) {
  FFP_CHECK(g.num_vertices() >= 2, "need at least two vertices");
  FFP_CHECK(options.count >= 1, "count must be >= 1");
  if (options.engine == FiedlerEngine::MultilevelRqi &&
      g.num_vertices() > options.coarse_vertices) {
    return solve_multilevel_rqi(g, options);
  }
  return solve_lanczos(g, options);
}

}  // namespace ffp
