// Combine/mutate operators for the evolutionary portfolio.
//
// Crossover follows the memetic-multilevel recipe: the OVERLAY of two
// parent partitions — vertices agree on a block iff they share a part in
// BOTH parents and are connected — is a common refinement of both. Fed to
// fusion-fission as a warm start, every overlay block is one starting
// atom, so the offspring search begins from structure both parents agree
// on and fuses its way back down to k. The never-worsen-the-better-parent
// contract does NOT come from the overlay (it has more than k blocks); it
// comes from the incumbent channel (SolverRequest::incumbent): the better
// parent seeds best-at-k directly, so the offspring result is
// min(search result, better parent) by construction.
//
// Mutation is a plain FF burst: warm-start from one elite (temperature
// restarts at tmax — a reheat) under the normal step budget; the FF
// warm-start contract already guarantees the result never reports worse
// than the elite it started from.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ffp::evolve {

/// The connected-overlay assignment of two parents: vertices u, v share a
/// block iff a[u]==a[v], b[u]==b[v], and they are connected inside that
/// agreement region. Block ids are compacted in discovery (vertex-id)
/// order, so the result is deterministic. Isolated vertices become their
/// own blocks. Throws when either assignment does not cover the graph.
std::vector<int> overlay_assignment(const Graph& g, std::span<const int> a,
                                    std::span<const int> b);

}  // namespace ffp::evolve
