#include "evolve/elite_archive.hpp"

#include <algorithm>
#include <sstream>

#include "persist/atomic_file.hpp"
#include "persist/checkpoint.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace ffp::evolve {

namespace {

/// On-disk population file format version (persist::read_records framing).
constexpr std::uint32_t kPopulationVersion = 1;

/// Vertices where two assignments disagree. Labels are compared raw: both
/// sides come out of the same solver family, which emits compacted
/// assignments, so a label permutation of the same partition is rare
/// enough that treating it as distinct only costs a little capacity.
std::size_t hamming(std::span<const int> a, std::span<const int> b) {
  std::size_t d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += a[i] != b[i] ? 1 : 0;
  return d;
}

std::string population_path(const std::string& dir,
                            const PopulationKey& key) {
  return persist::keyed_record_path(dir, "pop", key.digest, key.spec_text());
}

}  // namespace

std::string PopulationKey::spec_text() const {
  return "k=" + std::to_string(k) +
         "|obj=" + std::string(objective_token(objective));
}

EliteArchive::EliteArchive(ArchiveOptions options)
    : options_(std::move(options)) {
  if (!enabled()) return;
  if (!options_.dir.empty()) {
    persist::ensure_dir(options_.dir);
    load_persisted();
  }
}

bool EliteArchive::admit(const PopulationKey& key,
                         std::span<const int> assignment, double value) {
  if (!enabled() || assignment.empty()) return false;
  std::lock_guard lock(mu_);
  auto& population = populations_[key];

  // Exact duplicate: refresh its value down (ulp renderings differ across
  // runs; the archive keeps the best one) but never re-admit.
  for (Elite& e : population) {
    if (e.assignment->size() == assignment.size() &&
        std::equal(assignment.begin(), assignment.end(),
                   e.assignment->begin())) {
      if (value < e.value) {
        e.value = value;
        persist_population(key, population);
      }
      ++rejected_;
      return false;
    }
  }

  // Near-duplicate: only a strict improvement may enter, and it takes the
  // sibling's slot instead of crowding the population with one basin.
  const std::size_t near = std::max<std::size_t>(1, assignment.size() / 64);
  for (std::size_t i = 0; i < population.size(); ++i) {
    if (population[i].assignment->size() != assignment.size()) continue;
    if (hamming(assignment, *population[i].assignment) >= near) continue;
    if (value < population[i].value) {
      population[i] = Elite{std::make_shared<const std::vector<int>>(
                                assignment.begin(), assignment.end()),
                            value, next_stamp_++};
      ++evicted_;
      ++admitted_;
      persist_population(key, population);
      return true;
    }
    ++rejected_;
    return false;
  }

  if (population.size() < options_.capacity) {
    population.push_back(Elite{std::make_shared<const std::vector<int>>(
                                   assignment.begin(), assignment.end()),
                               value, next_stamp_++});
    ++admitted_;
    persist_population(key, population);
    return true;
  }

  // Full: displace the worst (highest value; the OLDEST among equals).
  std::size_t worst = 0;
  for (std::size_t i = 1; i < population.size(); ++i) {
    if (population[i].value > population[worst].value ||
        (population[i].value == population[worst].value &&
         population[i].stamp < population[worst].stamp)) {
      worst = i;
    }
  }
  if (value >= population[worst].value) {
    ++rejected_;
    return false;
  }
  population[worst] = Elite{std::make_shared<const std::vector<int>>(
                                assignment.begin(), assignment.end()),
                            value, next_stamp_++};
  ++evicted_;
  ++admitted_;
  persist_population(key, population);
  return true;
}

std::vector<Elite> EliteArchive::snapshot(const PopulationKey& key) {
  if (!enabled()) return {};
  std::lock_guard lock(mu_);
  ++lookups_;
  const auto it = populations_.find(key);
  if (it == populations_.end() || it->second.empty()) return {};
  ++hits_;
  std::vector<Elite> out = it->second;
  std::sort(out.begin(), out.end(), [](const Elite& a, const Elite& b) {
    return a.value != b.value ? a.value < b.value : a.stamp < b.stamp;
  });
  return out;
}

std::optional<double> EliteArchive::best_value(
    const PopulationKey& key) const {
  std::lock_guard lock(mu_);
  const auto it = populations_.find(key);
  if (it == populations_.end() || it->second.empty()) return std::nullopt;
  double best = it->second.front().value;
  for (const Elite& e : it->second) best = std::min(best, e.value);
  return best;
}

std::vector<std::pair<PopulationKey, Elite>> EliteArchive::best_elites()
    const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<PopulationKey, Elite>> out;
  out.reserve(populations_.size());
  for (const auto& [key, population] : populations_) {
    if (population.empty()) continue;
    std::size_t best = 0;
    for (std::size_t i = 1; i < population.size(); ++i) {
      if (population[i].value < population[best].value ||
          (population[i].value == population[best].value &&
           population[i].stamp < population[best].stamp)) {
        best = i;
      }
    }
    out.emplace_back(key, population[best]);
  }
  return out;
}

ArchiveCounters EliteArchive::counters() const {
  std::lock_guard lock(mu_);
  ArchiveCounters out;
  out.admitted = admitted_;
  out.rejected = rejected_;
  out.evicted = evicted_;
  out.lookups = lookups_;
  out.hits = hits_;
  for (const auto& [key, population] : populations_) {
    out.elites += static_cast<std::int64_t>(population.size());
  }
  out.populations = static_cast<std::int64_t>(populations_.size());
  out.capacity = static_cast<std::int64_t>(options_.capacity);
  return out;
}

/// Record 0 is the population header (the file name hash is one-way, so
/// the key must be recoverable from the content); records 1..N are one
/// elite each: value, stamp, then the assignment, one part per line.
void EliteArchive::persist_population(const PopulationKey& key,
                                      const std::vector<Elite>& population) {
  if (options_.dir.empty()) return;
  std::vector<std::string> records;
  records.reserve(population.size() + 1);
  records.push_back(
      format("digest %016llx\n", static_cast<unsigned long long>(key.digest)) +
      "k " + std::to_string(key.k) + "\nobjective " +
      std::string(objective_token(key.objective)) + "\n");
  for (const Elite& e : population) {
    std::string body = format("value %.17g\n", e.value);
    body += "stamp " + std::to_string(e.stamp) + "\n";
    for (const int p : *e.assignment) {
      body += std::to_string(p);
      body += '\n';
    }
    records.push_back(std::move(body));
  }
  // Best-effort, like checkpoints: a full disk must not fail the solve
  // whose result is being archived.
  try {
    persist::write_records_atomic(population_path(options_.dir, key),
                                  kPopulationVersion, records);
  } catch (const std::exception&) {
  }
}

void EliteArchive::load_persisted() {
  for (const std::string& name : persist::list_dir(options_.dir)) {
    if (name.rfind("pop-", 0) != 0) continue;
    const std::string path = options_.dir + "/" + name;
    try {
      load_population_file(path);
    } catch (const std::exception&) {
      persist::remove_file(path);  // crash-only: damage reads as absent
    }
  }
}

void EliteArchive::load_population_file(const std::string& path) {
  const auto read = persist::read_records(path, kPopulationVersion);
  FFP_CHECK(!read.records.empty() && !read.truncated,
            "damaged population file");

  std::istringstream head(read.records.front());
  std::string line;
  auto field = [&](std::istringstream& in, const char* prefix) {
    FFP_CHECK(std::getline(in, line) && line.rfind(prefix, 0) == 0,
              "population file missing '", prefix, "'");
    return line.substr(std::string_view(prefix).size());
  };
  PopulationKey key;
  key.digest = std::stoull(field(head, "digest "), nullptr, 16);
  key.k = std::stoi(field(head, "k "));
  const auto objective = objective_from_name(field(head, "objective "));
  FFP_CHECK(objective.has_value(), "unknown objective in population file");
  key.objective = *objective;
  FFP_CHECK(key.k >= 1, "bad k in population file");

  std::vector<Elite> population;
  for (std::size_t i = 1;
       i < read.records.size() && population.size() < options_.capacity;
       ++i) {
    std::istringstream in(read.records[i]);
    Elite e;
    e.value = std::stod(field(in, "value "));
    e.stamp = std::stoull(field(in, "stamp "));
    auto parts = std::make_shared<std::vector<int>>();
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const int p = std::stoi(line);
      FFP_CHECK(p >= 0, "negative part id in population file");
      parts->push_back(p);
    }
    FFP_CHECK(!parts->empty(), "empty elite in population file");
    e.assignment = std::move(parts);
    population.push_back(std::move(e));
  }
  FFP_CHECK(!population.empty(), "population file holds no elites");
  for (const Elite& e : population) {
    next_stamp_ = std::max(next_stamp_, e.stamp + 1);
  }
  populations_[key] = std::move(population);
}

}  // namespace ffp::evolve
