#include "evolve/operators.hpp"

#include "util/check.hpp"

namespace ffp::evolve {

std::vector<int> overlay_assignment(const Graph& g, std::span<const int> a,
                                    std::span<const int> b) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  FFP_CHECK(a.size() == n, "overlay parent A covers ", a.size(),
            " vertices, graph has ", n);
  FFP_CHECK(b.size() == n, "overlay parent B covers ", b.size(),
            " vertices, graph has ", n);

  std::vector<int> out(n, -1);
  std::vector<VertexId> stack;
  int blocks = 0;
  for (VertexId v = 0; v < static_cast<VertexId>(n); ++v) {
    if (out[static_cast<std::size_t>(v)] != -1) continue;
    const int label = blocks++;
    out[static_cast<std::size_t>(v)] = label;
    stack.push_back(v);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const VertexId w : g.neighbors(u)) {
        const auto wi = static_cast<std::size_t>(w);
        if (out[wi] == -1 && a[wi] == a[static_cast<std::size_t>(v)] &&
            b[wi] == b[static_cast<std::size_t>(v)]) {
          out[wi] = label;
          stack.push_back(w);
        }
      }
    }
  }
  return out;
}

}  // namespace ffp::evolve
