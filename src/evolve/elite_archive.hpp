// evolve::EliteArchive — the cross-job learning layer (KaFFPaE lever):
// a thread-safe, bounded population of the best partitions ever seen for
// each (graph digest, k, objective) population key. Every finished solve
// can feed its result back; evolve-mode portfolios draw their starting
// partitions from here (plan.hpp) so repeat traffic on the same graph
// keeps improving instead of re-solving from scratch.
//
// Admission policy (per population, capacity-bounded):
//   * exact duplicates are rejected (their recorded value is refreshed
//     down if the new rendering is lower — float summation order can
//     differ by an ulp between runs);
//   * near-duplicates at an equal-or-worse value are rejected: a
//     candidate whose assignment differs from an existing elite in fewer
//     than max(1, n/64) vertices only re-enters if it is strictly
//     better, in which case it REPLACES that elite — diversity is worth
//     more than a cluster of ulp-separated siblings (the memetic
//     crossover needs structurally distinct parents);
//   * below capacity, everything else is admitted;
//   * at capacity, the candidate must beat the worst elite (highest
//     value; ties broken by evicting the OLDEST stamp, the age-aware
//     half: a stale equal-value elite yields to fresh blood).
//
// Determinism: admission and the best-first snapshot order depend only on
// the sequence of admit() calls (values, assignments, arrival order via a
// monotone stamp), never on wall clock or thread scheduling. For a fixed
// archive state, everything downstream (plan_evolve's parent selection)
// is a pure function of the spec seed.
//
// Persistence (optional): with a directory set, each population is
// rewritten as one CRC-framed record file (persist::write_records_atomic)
// after every mutation and reloaded on construction — elites survive
// restarts exactly like PR 8's checkpoints. Damage is crash-only: an
// unreadable population file is deleted and forgotten, never trusted.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "partition/objectives.hpp"

namespace ffp::evolve {

/// What keys one elite population: same digest + k + objective means the
/// values are comparable and the assignments are interchangeable seeds.
struct PopulationKey {
  std::uint64_t digest = 0;
  int k = 0;
  ObjectiveKind objective = ObjectiveKind::MinMaxCut;

  /// Canonical "k=..|obj=.." spec half of the key (objective_token
  /// spelling, so it round-trips through durable files).
  std::string spec_text() const;

  friend bool operator<(const PopulationKey& a, const PopulationKey& b) {
    if (a.digest != b.digest) return a.digest < b.digest;
    if (a.k != b.k) return a.k < b.k;
    return static_cast<int>(a.objective) < static_cast<int>(b.objective);
  }
  friend bool operator==(const PopulationKey& a, const PopulationKey& b) {
    return a.digest == b.digest && a.k == b.k && a.objective == b.objective;
  }
};

/// One archived partition. The assignment is shared, never copied on
/// snapshot — a selected parent costs a refcount bump.
struct Elite {
  std::shared_ptr<const std::vector<int>> assignment;
  double value = 0.0;      ///< population objective evaluated on `assignment`
  std::uint64_t stamp = 0; ///< admission order (monotone across populations)
};

struct ArchiveCounters {
  std::int64_t admitted = 0;   ///< admit() calls that changed a population
  std::int64_t rejected = 0;   ///< duplicates / not better than the worst
  std::int64_t evicted = 0;    ///< elites displaced by capacity pressure
  std::int64_t lookups = 0;    ///< snapshot() calls
  std::int64_t hits = 0;       ///< snapshots that found a non-empty population
  std::int64_t elites = 0;     ///< current total across populations
  std::int64_t populations = 0;
  std::int64_t capacity = 0;   ///< per-population bound (0 = archive off)
};

struct ArchiveOptions {
  /// Elites kept per population; 0 disables the archive entirely (admit
  /// and snapshot become no-ops, the engine skips evolve seeding).
  std::size_t capacity = 8;
  /// Persistence directory; empty = in-memory only. Created on demand.
  std::string dir;
};

class EliteArchive {
 public:
  explicit EliteArchive(ArchiveOptions options = {});

  EliteArchive(const EliteArchive&) = delete;
  EliteArchive& operator=(const EliteArchive&) = delete;

  bool enabled() const { return options_.capacity > 0; }

  /// Offers one finished partition to the population under `key`. Returns
  /// true when the population changed (see the admission policy above).
  bool admit(const PopulationKey& key, std::span<const int> assignment,
             double value);

  /// Best-first (value, then stamp) copy of the population — the order
  /// plan_evolve indexes parents by, so it must be deterministic. Counts
  /// one lookup (and a hit when non-empty).
  std::vector<Elite> snapshot(const PopulationKey& key);

  /// Lowest archived value for `key`, if any. Pure observation: no
  /// lookup/hit accounting (status probes must not skew the hit rate).
  std::optional<double> best_value(const PopulationKey& key) const;

  /// The best elite (lowest value, oldest stamp among ties) of every
  /// non-empty population — what inter-shard migration ships. Pure
  /// observation, same accounting rules as best_value().
  std::vector<std::pair<PopulationKey, Elite>> best_elites() const;

  ArchiveCounters counters() const;

 private:
  void persist_population(const PopulationKey& key,
                          const std::vector<Elite>& population);
  void load_persisted();
  /// Throws on damage; the caller deletes the file.
  void load_population_file(const std::string& path);

  ArchiveOptions options_;
  mutable std::mutex mu_;
  std::map<PopulationKey, std::vector<Elite>> populations_;
  std::uint64_t next_stamp_ = 1;
  std::int64_t admitted_ = 0;
  std::int64_t rejected_ = 0;
  std::int64_t evicted_ = 0;
  std::int64_t lookups_ = 0;
  std::int64_t hits_ = 0;
};

}  // namespace ffp::evolve
