#include "evolve/plan.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "evolve/operators.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace ffp::evolve {

EvolvePlan plan_evolve(EliteArchive& archive, const PopulationKey& key,
                       int restarts, std::uint64_t seed, bool allow_crossover,
                       std::size_t num_vertices) {
  FFP_CHECK(restarts >= 1, "evolve plan needs at least one restart");
  EvolvePlan plan;
  for (Elite& e : archive.snapshot(key)) {
    if (e.assignment->size() == num_vertices) {
      plan.population.push_back(std::move(e));
    }
  }
  plan.restarts.resize(static_cast<std::size_t>(restarts));
  const auto pop = static_cast<std::uint64_t>(plan.population.size());
  if (pop == 0) return plan;  // never-seen graph: plain cold portfolio

  // A constant-offset stream of the spec seed, distinct from the
  // PortfolioRunner::seed_stream the same seed also feeds.
  std::uint64_t state = seed ^ 0xe7037ed1a0b428dbull;
  for (int i = 0; i < restarts; ++i) {
    RestartPlan& r = plan.restarts[static_cast<std::size_t>(i)];
    if (i == 0) {
      // The monotonicity anchor: the best elite, mutated.
      r.kind = RestartKind::Mutate;
      r.parent_a = 0;
    } else if (i % 3 == 1 && allow_crossover && pop >= 2) {
      r.kind = RestartKind::Crossover;
      const auto a = splitmix64(state) % pop;
      auto b = splitmix64(state) % (pop - 1);
      if (b >= a) ++b;
      // parent_a is the BETTER parent (population is best-first).
      r.parent_a = static_cast<int>(std::min(a, b));
      r.parent_b = static_cast<int>(std::max(a, b));
    } else if (i % 3 == 2) {
      r.kind = RestartKind::Cold;
    } else {
      r.kind = RestartKind::Mutate;
      r.parent_a = static_cast<int>(splitmix64(state) % pop);
    }
    if (r.kind != RestartKind::Cold) ++plan.seeded;
  }
  return plan;
}

void apply_restart_seed(const EvolvePlan& plan, const Graph& g, int restart,
                        SolverRequest& request) {
  FFP_CHECK(restart >= 0 &&
                restart < static_cast<int>(plan.restarts.size()),
            "restart ", restart, " outside the evolve plan");
  const RestartPlan& r = plan.restarts[static_cast<std::size_t>(restart)];
  switch (r.kind) {
    case RestartKind::Cold:
      return;
    case RestartKind::Mutate: {
      // FF burst from one elite: the warm-start contract (never report
      // worse than the partition resumed from) IS the mutation guarantee.
      const Elite& e = plan.population[static_cast<std::size_t>(r.parent_a)];
      request.warm_start = e.assignment;
      request.warm_start_value = e.value;
      return;
    }
    case RestartKind::Crossover: {
      const Elite& better =
          plan.population[static_cast<std::size_t>(r.parent_a)];
      const Elite& other =
          plan.population[static_cast<std::size_t>(r.parent_b)];
      // The overlay (each connected agreement block = one starting atom)
      // is the starting molecule; the better parent rides the incumbent
      // channel so the offspring can never evaluate worse than it.
      request.warm_start = std::make_shared<const std::vector<int>>(
          overlay_assignment(g, *better.assignment, *other.assignment));
      request.warm_start_value = std::numeric_limits<double>::infinity();
      request.incumbent = better.assignment;
      request.incumbent_value = better.value;
      return;
    }
  }
}

}  // namespace ffp::evolve
