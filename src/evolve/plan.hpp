// The evolve-mode portfolio plan: which of a job's `restarts` start cold,
// which mutate one elite, and which cross two — decided ONCE at submit
// time from an archive snapshot and a splitmix64 stream of the spec seed.
//
// Computing the whole plan up front (instead of letting restart workers
// draw parents as they go) is what keeps the determinism contract: the
// plan is a pure function of (archive state at submit, spec seed,
// restarts), and apply_restart_seed() is a pure function of (plan, graph,
// restart index) — so the portfolio stays byte-identical at any thread
// count, exactly like every prior parallel layer.
//
// Shape, for a population of p elites:
//   * restart 0 always MUTATES the best elite. This is the monotonicity
//     anchor: the FF/mlff warm-start contract guarantees that restart
//     never reports worse than the best archived value, so a sequence of
//     evolve submissions yields non-increasing best cuts.
//   * restart i (i >= 1) cycles CROSSOVER (i%3==1, two distinct parents,
//     needs p >= 2 and an FF-family solver), COLD (i%3==2 — fresh
//     singleton starts keep injecting diversity), MUTATE (i%3==0, a
//     seeded random elite).
//   * an empty population degrades every restart to COLD — evolve mode on
//     a never-seen graph is exactly a plain portfolio.
#pragma once

#include <cstdint>
#include <vector>

#include "evolve/elite_archive.hpp"
#include "graph/graph.hpp"
#include "solver/solver.hpp"

namespace ffp::evolve {

enum class RestartKind { Cold, Mutate, Crossover };

struct RestartPlan {
  RestartKind kind = RestartKind::Cold;
  /// Population indices (best-first order). Mutate uses parent_a;
  /// Crossover uses both, and parent_a is always the BETTER one (lower
  /// index) — the incumbent the offspring must not worsen.
  int parent_a = -1;
  int parent_b = -1;
};

struct EvolvePlan {
  std::vector<Elite> population;  ///< best-first archive snapshot at submit
  std::vector<RestartPlan> restarts;
  int seeded = 0;  ///< restarts that are not Cold
};

/// Builds the plan for one evolve submission. Takes one archive snapshot
/// (counted as a lookup); `allow_crossover` should be true only for
/// solvers whose warm start treats blocks as atoms (fusion_fission — mlff
/// coarsens the overlay away, so it only mutates). Elites whose
/// assignment does not cover `num_vertices` are dropped defensively.
EvolvePlan plan_evolve(EliteArchive& archive, const PopulationKey& key,
                       int restarts, std::uint64_t seed, bool allow_crossover,
                       std::size_t num_vertices);

/// Fills the warm-start/incumbent channels of `request` for one restart.
/// Thread-safe and pure: reads only the (immutable) plan and graph, so
/// portfolio workers may call it concurrently. Cold restarts leave the
/// request untouched.
void apply_restart_seed(const EvolvePlan& plan, const Graph& g, int restart,
                        SolverRequest& request);

}  // namespace ffp::evolve
