// Partition quality reporting: one call that gathers everything a user
// (or the tools/examples) wants to print about a partition.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "partition/partition.hpp"

namespace ffp {

struct PartReport {
  int part = 0;
  int size = 0;
  Weight vertex_weight = 0.0;
  Weight internal_weight = 0.0;  ///< undirected internal edge weight
  Weight cut_weight = 0.0;       ///< cut(A, V−A)
  double mcut_term = 0.0;        ///< cut / W (the paper's per-part ratio)
  int boundary_vertices = 0;     ///< members with at least one foreign edge
};

struct PartitionReport {
  int num_parts = 0;
  double cut = 0.0;          ///< paper convention: Σ_A cut(A)
  double edge_cut = 0.0;     ///< each cut edge once
  double ncut = 0.0;
  double mcut = 0.0;
  double ratio_cut = 0.0;
  double imbalance = 0.0;    ///< vs the non-empty part count
  std::vector<PartReport> parts;  ///< non-empty parts, ascending id

  /// Fixed-width text rendering (used by ffp_part and the examples).
  std::string to_string() const;
};

PartitionReport analyze(const Partition& p);

std::ostream& operator<<(std::ostream& os, const PartitionReport& report);

}  // namespace ffp
