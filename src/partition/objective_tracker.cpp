#include "partition/objective_tracker.hpp"

#include <cmath>

#include "partition/objective_terms.hpp"
#include "util/stats.hpp"

namespace ffp {

namespace {

/// Kahan-compensated accumulate: sum += delta with running error carry.
inline void compensated_add(double& sum, double& carry, double delta) {
  const double y = delta - carry;
  const double t = sum + y;
  carry = (t - sum) - y;
  sum = t;
}

/// Maps a built-in singleton back to its kind; nullopt for custom fns.
bool builtin_kind_of(const ObjectiveFn& fn, ObjectiveKind& out) {
  for (auto kind : {ObjectiveKind::Cut, ObjectiveKind::NormalizedCut,
                    ObjectiveKind::MinMaxCut, ObjectiveKind::RatioCut}) {
    if (&objective(kind) == &fn) {
      out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

ObjectiveTracker::ObjectiveTracker(Partition p, ObjectiveKind kind)
    : p_(std::move(p)),
      fn_(&objective(kind)),
      kind_(kind),
      term_based_(true) {
  resync();
}

ObjectiveTracker::ObjectiveTracker(Partition p, const ObjectiveFn& fn)
    : p_(std::move(p)), fn_(&fn) {
  term_based_ = builtin_kind_of(fn, kind_);
  resync();
}

double ObjectiveTracker::part_term(int q) const {
  return detail::objective_part_term(p_, kind_, q);
}

void ObjectiveTracker::move(VertexId v, int target) {
  const int from = p_.part_of(v);
  if (from == target) return;

  if (term_based_ && kind_ == ObjectiveKind::Cut && aux_ == nullptr) {
    // Cut is the Partition's own total_cut_pairs — adopt it directly; no
    // term arithmetic, no summation drift at all.
    p_.move(v, target);
    value_ = p_.total_cut_pairs();
    carry_ = 0.0;
    maybe_rescue_precision();
    return;
  }
  if (term_based_) {
    const double term_before = part_term(from) + part_term(target);
    const double aux_before =
        aux_ != nullptr ? aux_(p_, from) + aux_(p_, target) : 0.0;
    p_.move(v, target);
    compensated_add(value_, carry_,
                    part_term(from) + part_term(target) - term_before);
    if (aux_ != nullptr) {
      compensated_add(aux_sum_, aux_carry_,
                      aux_(p_, from) + aux_(p_, target) - aux_before);
    }
  } else {
    // Custom objective: its move_delta is the only incremental identity we
    // have; accumulate it around the move.
    const double delta = fn_->move_delta(p_, v, target);
    const double aux_before =
        aux_ != nullptr ? aux_(p_, from) + aux_(p_, target) : 0.0;
    p_.move(v, target);
    compensated_add(value_, carry_, delta);
    if (aux_ != nullptr) {
      compensated_add(aux_sum_, aux_carry_,
                      aux_(p_, from) + aux_(p_, target) - aux_before);
    }
  }
  maybe_rescue_precision();
}

void ObjectiveTracker::move(VertexId v, int target, double known_delta) {
  if (term_based_) {
    move(v, target);
    return;
  }
  const int from = p_.part_of(v);
  if (from == target) return;
  const double aux_before =
      aux_ != nullptr ? aux_(p_, from) + aux_(p_, target) : 0.0;
  p_.move(v, target);
  compensated_add(value_, carry_, known_delta);
  if (aux_ != nullptr) {
    compensated_add(aux_sum_, aux_carry_,
                    aux_(p_, from) + aux_(p_, target) - aux_before);
  }
  maybe_rescue_precision();
}

ObjectiveTracker::TrialMove ObjectiveTracker::trial_move(VertexId v,
                                                         int target) const {
  TrialMove trial;
  trial.v = v;
  trial.target = target;
  if (p_.part_of(v) == target) return trial;
  trial.profile = p_.move_profile(v, target);
  // The profile-based delta and ObjectiveFn::move_delta share identities
  // and operation order, so built-in criteria get the scan-free delta;
  // custom objectives keep their own (possibly scanning) move_delta.
  trial.delta = term_based_
                    ? detail::move_delta_from_profile(
                          p_, kind_, v, target, trial.profile.ext_from,
                          trial.profile.ext_to)
                    : fn_->move_delta(p_, v, target);
  return trial;
}

void ObjectiveTracker::move(const TrialMove& trial) {
  const VertexId v = trial.v;
  const int target = trial.target;
  const int from = p_.part_of(v);
  if (from == target) return;

  if (term_based_ && kind_ == ObjectiveKind::Cut && aux_ == nullptr) {
    p_.move(v, target, trial.profile);
    value_ = p_.total_cut_pairs();
    carry_ = 0.0;
    maybe_rescue_precision();
    return;
  }
  const double aux_before =
      aux_ != nullptr ? aux_(p_, from) + aux_(p_, target) : 0.0;
  if (term_based_) {
    const double term_before = part_term(from) + part_term(target);
    p_.move(v, target, trial.profile);
    compensated_add(value_, carry_,
                    part_term(from) + part_term(target) - term_before);
  } else {
    p_.move(v, target, trial.profile);
    compensated_add(value_, carry_, trial.delta);
  }
  if (aux_ != nullptr) {
    compensated_add(aux_sum_, aux_carry_,
                    aux_(p_, from) + aux_(p_, target) - aux_before);
  }
  maybe_rescue_precision();
}

void ObjectiveTracker::merge_parts(int src, int dst, Weight w_between) {
  if (term_based_) {
    const double term_before = part_term(src) + part_term(dst);
    const double aux_before =
        aux_ != nullptr ? aux_(p_, src) + aux_(p_, dst) : 0.0;
    p_.merge_into(src, dst, w_between);
    compensated_add(value_, carry_, part_term(dst) - term_before);
    if (aux_ != nullptr) {
      compensated_add(aux_sum_, aux_carry_, aux_(p_, dst) - aux_before);
    }
    maybe_rescue_precision();
    return;
  }
  // Custom objective: no term decomposition to lean on — merge and pay one
  // full evaluate (custom-fn callers don't sit in the fusion hot loop).
  p_.merge_into(src, dst, w_between);
  resync();
}

void ObjectiveTracker::split_part(int src, int fresh,
                                  std::span<const VertexId> moved) {
  if (term_based_) {
    const double term_before = part_term(src) + part_term(fresh);
    const double aux_before =
        aux_ != nullptr ? aux_(p_, src) + aux_(p_, fresh) : 0.0;
    p_.split_off(src, fresh, moved);
    compensated_add(value_, carry_,
                    part_term(src) + part_term(fresh) - term_before);
    if (aux_ != nullptr) {
      compensated_add(aux_sum_, aux_carry_,
                      aux_(p_, src) + aux_(p_, fresh) - aux_before);
    }
    maybe_rescue_precision();
    return;
  }
  p_.split_off(src, fresh, moved);
  resync();
}

void ObjectiveTracker::maybe_rescue_precision() {
  const double mag = std::abs(value_);
  if (mag > peak_) {
    peak_ = mag;
    return;
  }
  // The running sum carries absolute rounding residue proportional to the
  // largest magnitude it passed through (Mcut/RatioCut penalty spikes). Once
  // the value has descended six orders below that peak, re-evaluate from
  // scratch — rare (a few times per descent) and O(k).
  if (mag * 1e6 < peak_) resync();
}

void ObjectiveTracker::reset(Partition p) {
  p_ = std::move(p);
  resync();
}

void ObjectiveTracker::reset(Partition p, double known_value) {
  p_ = std::move(p);
  value_ = known_value;
  carry_ = 0.0;
  peak_ = std::abs(known_value);
  aux_resync();
}

double ObjectiveTracker::resync() {
  value_ = fn_->evaluate(p_);
  carry_ = 0.0;
  peak_ = std::abs(value_);
  aux_resync();
  return value_;
}

double ObjectiveTracker::aux_resync() {
  aux_sum_ = 0.0;
  aux_carry_ = 0.0;
  if (aux_ != nullptr) {
    for (int q : p_.nonempty_parts()) aux_sum_ += aux_(p_, q);
  }
  return aux_sum_;
}

void ObjectiveTracker::track_aux(PartTermFn term) {
  aux_ = term;
  aux_resync();
}

void ObjectiveTracker::validate(double tol) const {
  p_.validate();
  const double fresh = fn_->evaluate(p_);
  FFP_CHECK(close(fresh, value_, tol, tol), "tracked ", fn_->name(),
            " value drifted: running ", value_, " vs evaluate ", fresh);
  if (aux_ != nullptr) {
    double fresh_aux = 0.0;
    for (int q : p_.nonempty_parts()) fresh_aux += aux_(p_, q);
    FFP_CHECK(close(fresh_aux, aux_sum_, tol, tol),
              "tracked aux term sum drifted: running ", aux_sum_,
              " vs recompute ", fresh_aux);
  }
}

}  // namespace ffp
