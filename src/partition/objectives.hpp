// The paper's three partitioning criteria (§1), plus ratio cut as an
// extension point, behind one interface:
//
//   Cut(P)  = Σ_A cut(A, V−A)                     (counts each cut edge twice)
//   Ncut(P) = Σ_A cut(A, V−A) / assoc(A, V),  assoc(A,V) = cut(A,V−A) + W(A)
//   Mcut(P) = Σ_A cut(A, V−A) / W(A)
//
// W(A) sums ordered internal pairs (each internal edge twice), which makes
// assoc(A,V) equal vol(A) — see DESIGN.md §5.1. Empty parts contribute 0.
// A part with cut > 0 but W(A) = 0 (e.g. a singleton) would make Mcut
// infinite; we return a large finite penalty instead so that annealing-style
// acceptance rules keep working. All objectives are lower-is-better.
//
// Every objective provides an exact O(deg) move_delta used by the
// metaheuristics' hot loops; tests verify delta == evaluate(after) −
// evaluate(before) across random graphs, moves and seeds.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "partition/partition.hpp"

namespace ffp {

enum class ObjectiveKind { Cut, NormalizedCut, MinMaxCut, RatioCut };

std::string_view objective_name(ObjectiveKind kind);

/// The short CLI/protocol token (cut|ncut|mcut|rcut) — the exact spelling
/// objective_from_name accepts. Durable formats (journal payloads) must use
/// this, not the display name, so a write→recover round trip cannot drift.
std::string_view objective_token(ObjectiveKind kind);

/// Inverse for the short CLI/protocol names (cut|ncut|mcut|rcut, case
/// sensitive); nullopt on anything else. ffp_part, the service protocol and
/// the job journal share this single mapping.
std::optional<ObjectiveKind> objective_from_name(std::string_view name);

class ObjectiveFn {
 public:
  virtual ~ObjectiveFn() = default;

  virtual std::string_view name() const = 0;
  virtual double evaluate(const Partition& p) const = 0;

  /// Exact change in evaluate() if v moved to `target` (0 if already there).
  virtual double move_delta(const Partition& p, VertexId v, int target) const = 0;
};

/// Singleton evaluator for a built-in criterion.
const ObjectiveFn& objective(ObjectiveKind kind);

/// Penalty stand-in for a division by zero denominator in Mcut/RatioCut
/// terms: `cut * kZeroDenominatorPenalty`.
inline constexpr double kZeroDenominatorPenalty = 1e6;

/// Helper for custom objectives that cannot provide an analytic delta:
/// performs the move, evaluates, and moves back. O(deg + cost of evaluate).
double trial_move_delta(Partition& p, VertexId v, int target,
                        const ObjectiveFn& fn);

}  // namespace ffp
