// Per-part objective terms — the O(1) building blocks every built-in
// criterion decomposes into:
//
//   Cut      term(A) = cut(A, V−A)
//   Ncut     term(A) = cut(A, V−A) / assoc(A, V)
//   Mcut     term(A) = cut(A, V−A) / W(A)
//   RatioCut term(A) = cut(A, V−A) / weight(A)
//
// evaluate(P) = Σ_A term(A) over non-empty parts, and a single move only
// changes the terms of its two endpoint parts — the identity both
// objectives.cpp's move_delta and ObjectiveTracker's running value are
// built on. Shared here so the two stay one definition.
#pragma once

#include "partition/objectives.hpp"

namespace ffp::detail {

/// One part's contribution to Ncut: cut / (cut + internal).
inline double ncut_term(Weight cut, Weight internal) {
  const Weight assoc = cut + internal;
  if (assoc <= 0.0) return 0.0;  // isolated part with no incident edges
  return cut / assoc;
}

/// One part's contribution to Mcut, with the zero-denominator penalty.
inline double mcut_term(Weight cut, Weight internal) {
  if (cut <= 0.0) return 0.0;
  if (internal <= 0.0) return cut * kZeroDenominatorPenalty;
  return cut / internal;
}

/// One part's contribution to RatioCut: cut / vertex-weight.
inline double rcut_term(Weight cut, Weight vweight) {
  if (cut <= 0.0) return 0.0;
  if (vweight <= 0.0) return cut * kZeroDenominatorPenalty;
  return cut / vweight;
}

/// Part q's contribution to `kind` on p. O(1); empty parts contribute 0.
inline double objective_part_term(const Partition& p, ObjectiveKind kind,
                                  int q) {
  switch (kind) {
    case ObjectiveKind::Cut:
      return p.part_cut(q);
    case ObjectiveKind::NormalizedCut:
      return ncut_term(p.part_cut(q), p.part_internal(q));
    case ObjectiveKind::MinMaxCut:
      return mcut_term(p.part_cut(q), p.part_internal(q));
    case ObjectiveKind::RatioCut:
      return rcut_term(p.part_cut(q), p.part_vertex_weight(q));
  }
  throw Error("unknown ObjectiveKind");
}

/// Exact change in `kind` if v moved from its part to `target`, given the
/// two connection weights a neighbor scan already produced (ext_from: v to
/// its own part, ext_to: v to `target`). O(1) — lets callers that score
/// many candidate targets per vertex pay ONE scan for all of them instead
/// of one move_profile scan per target. Identical arithmetic to
/// ObjectiveFn::move_delta (same identities, same operation order).
inline double move_delta_from_profile(const Partition& p, ObjectiveKind kind,
                                      VertexId v, int target, Weight ext_from,
                                      Weight ext_to) {
  const int from = p.part_of(v);
  if (from == target) return 0.0;
  if (kind == ObjectiveKind::Cut) return 2.0 * (ext_from - ext_to);

  const Weight d = p.graph().weighted_degree(v);
  const Weight vw = p.graph().vertex_weight(v);
  Weight cut_from_new = p.part_cut(from) + 2.0 * ext_from - d;
  Weight int_from_new = p.part_internal(from) - 2.0 * ext_from;
  Weight vw_from_new = p.part_vertex_weight(from) - vw;
  const Weight cut_to_new = p.part_cut(target) + d - 2.0 * ext_to;
  const Weight int_to_new = p.part_internal(target) + 2.0 * ext_to;
  const Weight vw_to_new = p.part_vertex_weight(target) + vw;
  // Mirror Partition::move's dust rules (see objectives.cpp's effect_of):
  // an emptied source is exactly zero, and residual internal weight below
  // the smallest possible real contribution is cancellation dust.
  if (p.part_size(from) == 1) {
    cut_from_new = 0.0;
    int_from_new = 0.0;
    vw_from_new = 0.0;
  } else if (int_from_new < p.graph().min_edge_weight()) {
    int_from_new = 0.0;
  }
  switch (kind) {
    case ObjectiveKind::NormalizedCut: {
      const double before =
          ncut_term(p.part_cut(from), p.part_internal(from)) +
          ncut_term(p.part_cut(target), p.part_internal(target));
      const double after = ncut_term(cut_from_new, int_from_new) +
                           ncut_term(cut_to_new, int_to_new);
      return after - before;
    }
    case ObjectiveKind::MinMaxCut: {
      const double before =
          mcut_term(p.part_cut(from), p.part_internal(from)) +
          mcut_term(p.part_cut(target), p.part_internal(target));
      const double after = mcut_term(cut_from_new, int_from_new) +
                           mcut_term(cut_to_new, int_to_new);
      return after - before;
    }
    case ObjectiveKind::RatioCut: {
      const double before =
          rcut_term(p.part_cut(from), p.part_vertex_weight(from)) +
          rcut_term(p.part_cut(target), p.part_vertex_weight(target));
      const double after = rcut_term(cut_from_new, vw_from_new) +
                           rcut_term(cut_to_new, vw_to_new);
      return after - before;
    }
    case ObjectiveKind::Cut:
      break;  // handled above
  }
  throw Error("unknown ObjectiveKind");
}

}  // namespace ffp::detail
