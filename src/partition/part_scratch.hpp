// Epoch-stamped part-id scratch: O(1) "have I seen this part?" dedup with
// O(1) amortized reset — the trick Partition::connections has always used,
// factored out so every hot loop that collects the distinct parts adjacent
// to a vertex (fusion-fission ejection/absorption, annealing's connected
// targets, k-way FM candidate parts) shares one implementation instead of
// an O(num_parts) std::find per neighbor.
//
// begin() bumps the epoch instead of clearing, so a scratch reused across
// millions of calls never pays for parts it does not touch. An optional
// per-part weight accumulator rides on the same stamps for callers that
// aggregate connection weights (Partition::connections).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ffp {

class PartMarkScratch {
 public:
  /// Starts a new marking round over part ids in [0, num_parts).
  void begin(int num_parts) {
    grow(num_parts);
    if (++epoch_ == 0) {  // epoch wrapped: stale stamps could collide
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
    marked_.clear();
  }

  /// Extends the id range mid-round without ending it — for callers whose
  /// round outlives part creation (the fusion-fission batch commit marks
  /// parts dirty while fissions mint fresh part slots). New cells start
  /// unmarked (stamp 0 can never equal a live epoch).
  void grow(int num_parts) {
    const auto need = static_cast<std::size_t>(num_parts);
    if (stamp_.size() < need) {
      stamp_.resize(need, 0);
      acc_.resize(need, 0.0);
    }
  }

  /// Marks p; returns true iff p was not yet marked since begin().
  bool mark(int p) {
    auto& stamp = stamp_[static_cast<std::size_t>(p)];
    if (stamp == epoch_) return false;
    stamp = epoch_;
    marked_.push_back(p);
    return true;
  }

  bool seen(int p) const {
    return stamp_[static_cast<std::size_t>(p)] == epoch_;
  }

  /// Accumulates w onto p's weight cell (zeroed on first mark).
  void add_weight(int p, Weight w) {
    if (mark(p)) {
      acc_[static_cast<std::size_t>(p)] = w;
    } else {
      acc_[static_cast<std::size_t>(p)] += w;
    }
  }

  Weight weight(int p) const { return acc_[static_cast<std::size_t>(p)]; }

  /// Distinct parts marked since begin(), in first-marked order.
  std::span<const int> marked() const { return marked_; }

 private:
  std::vector<std::uint32_t> stamp_;
  std::vector<Weight> acc_;
  std::uint32_t epoch_ = 0;
  std::vector<int> marked_;
};

}  // namespace ffp
