#include "partition/objectives.hpp"

namespace ffp {

namespace {

/// One part's contribution to Ncut: cut / (cut + internal).
double ncut_term(Weight cut, Weight internal) {
  const Weight assoc = cut + internal;
  if (assoc <= 0.0) return 0.0;  // isolated part with no incident edges
  return cut / assoc;
}

/// One part's contribution to Mcut, with the zero-denominator penalty.
double mcut_term(Weight cut, Weight internal) {
  if (cut <= 0.0) return 0.0;
  if (internal <= 0.0) return cut * kZeroDenominatorPenalty;
  return cut / internal;
}

/// One part's contribution to RatioCut: cut / vertex-weight.
double rcut_term(Weight cut, Weight vweight) {
  if (cut <= 0.0) return 0.0;
  if (vweight <= 0.0) return cut * kZeroDenominatorPenalty;
  return cut / vweight;
}

/// Shared machinery: the new (cut, internal, vweight) values of the source
/// and target parts after moving v, straight from the move identities in
/// Partition::move.
struct MoveEffect {
  int from;
  Weight cut_from_new, int_from_new, vw_from_new;
  Weight cut_to_new, int_to_new, vw_to_new;
  bool trivial = false;  // target == current part
};

MoveEffect effect_of(const Partition& p, VertexId v, int target) {
  MoveEffect e{};
  e.from = p.part_of(v);
  if (e.from == target) {
    e.trivial = true;
    return e;
  }
  const auto prof = p.move_profile(v, target);
  const Weight d = p.graph().weighted_degree(v);
  const Weight vw = p.graph().vertex_weight(v);
  e.cut_from_new = p.part_cut(e.from) + 2.0 * prof.ext_from - d;
  e.int_from_new = p.part_internal(e.from) - 2.0 * prof.ext_from;
  e.vw_from_new = p.part_vertex_weight(e.from) - vw;
  e.cut_to_new = p.part_cut(target) + d - 2.0 * prof.ext_to;
  e.int_to_new = p.part_internal(target) + 2.0 * prof.ext_to;
  e.vw_to_new = p.part_vertex_weight(target) + vw;
  // If the source part empties, its stats are exactly zero; clamp fp dust so
  // ratio terms see a true empty part.
  if (p.part_size(e.from) == 1) {
    e.cut_from_new = 0.0;
    e.int_from_new = 0.0;
    e.vw_from_new = 0.0;
  }
  return e;
}

class CutObjective final : public ObjectiveFn {
 public:
  std::string_view name() const override { return "Cut"; }

  double evaluate(const Partition& p) const override {
    return p.total_cut_pairs();
  }

  double move_delta(const Partition& p, VertexId v, int target) const override {
    if (p.part_of(v) == target) return 0.0;
    const auto prof = p.move_profile(v, target);
    return 2.0 * (prof.ext_from - prof.ext_to);
  }
};

class NcutObjective final : public ObjectiveFn {
 public:
  std::string_view name() const override { return "Ncut"; }

  double evaluate(const Partition& p) const override {
    double total = 0.0;
    for (int q : p.nonempty_parts()) {
      total += ncut_term(p.part_cut(q), p.part_internal(q));
    }
    return total;
  }

  double move_delta(const Partition& p, VertexId v, int target) const override {
    const auto e = effect_of(p, v, target);
    if (e.trivial) return 0.0;
    const double before = ncut_term(p.part_cut(e.from), p.part_internal(e.from)) +
                          ncut_term(p.part_cut(target), p.part_internal(target));
    const double after = ncut_term(e.cut_from_new, e.int_from_new) +
                         ncut_term(e.cut_to_new, e.int_to_new);
    return after - before;
  }
};

class McutObjective final : public ObjectiveFn {
 public:
  std::string_view name() const override { return "Mcut"; }

  double evaluate(const Partition& p) const override {
    double total = 0.0;
    for (int q : p.nonempty_parts()) {
      total += mcut_term(p.part_cut(q), p.part_internal(q));
    }
    return total;
  }

  double move_delta(const Partition& p, VertexId v, int target) const override {
    const auto e = effect_of(p, v, target);
    if (e.trivial) return 0.0;
    const double before = mcut_term(p.part_cut(e.from), p.part_internal(e.from)) +
                          mcut_term(p.part_cut(target), p.part_internal(target));
    const double after = mcut_term(e.cut_from_new, e.int_from_new) +
                         mcut_term(e.cut_to_new, e.int_to_new);
    return after - before;
  }
};

class RatioCutObjective final : public ObjectiveFn {
 public:
  std::string_view name() const override { return "RatioCut"; }

  double evaluate(const Partition& p) const override {
    double total = 0.0;
    for (int q : p.nonempty_parts()) {
      total += rcut_term(p.part_cut(q), p.part_vertex_weight(q));
    }
    return total;
  }

  double move_delta(const Partition& p, VertexId v, int target) const override {
    const auto e = effect_of(p, v, target);
    if (e.trivial) return 0.0;
    const double before =
        rcut_term(p.part_cut(e.from), p.part_vertex_weight(e.from)) +
        rcut_term(p.part_cut(target), p.part_vertex_weight(target));
    const double after = rcut_term(e.cut_from_new, e.vw_from_new) +
                         rcut_term(e.cut_to_new, e.vw_to_new);
    return after - before;
  }
};

}  // namespace

std::string_view objective_name(ObjectiveKind kind) {
  return objective(kind).name();
}

const ObjectiveFn& objective(ObjectiveKind kind) {
  static const CutObjective cut;
  static const NcutObjective ncut;
  static const McutObjective mcut;
  static const RatioCutObjective rcut;
  switch (kind) {
    case ObjectiveKind::Cut: return cut;
    case ObjectiveKind::NormalizedCut: return ncut;
    case ObjectiveKind::MinMaxCut: return mcut;
    case ObjectiveKind::RatioCut: return rcut;
  }
  throw Error("unknown ObjectiveKind");
}

double trial_move_delta(Partition& p, VertexId v, int target,
                        const ObjectiveFn& fn) {
  const int from = p.part_of(v);
  if (from == target) return 0.0;
  const double before = fn.evaluate(p);
  p.move(v, target);
  const double after = fn.evaluate(p);
  p.move(v, from);
  return after - before;
}

}  // namespace ffp
