#include "partition/objectives.hpp"

#include "partition/objective_terms.hpp"

namespace ffp {

namespace {

// The delta identities live in exactly one place —
// detail::move_delta_from_profile — because hot loops that score many
// candidate targets per neighbor scan must produce bit-identical deltas to
// these virtual entry points.
double profiled_delta(const Partition& p, ObjectiveKind kind, VertexId v,
                      int target) {
  if (p.part_of(v) == target) return 0.0;
  const auto prof = p.move_profile(v, target);
  return detail::move_delta_from_profile(p, kind, v, target, prof.ext_from,
                                         prof.ext_to);
}

class CutObjective final : public ObjectiveFn {
 public:
  std::string_view name() const override { return "Cut"; }

  double evaluate(const Partition& p) const override {
    return p.total_cut_pairs();
  }

  double move_delta(const Partition& p, VertexId v, int target) const override {
    return profiled_delta(p, ObjectiveKind::Cut, v, target);
  }
};

class NcutObjective final : public ObjectiveFn {
 public:
  std::string_view name() const override { return "Ncut"; }

  double evaluate(const Partition& p) const override {
    double total = 0.0;
    for (int q : p.nonempty_parts()) {
      total += detail::ncut_term(p.part_cut(q), p.part_internal(q));
    }
    return total;
  }

  double move_delta(const Partition& p, VertexId v, int target) const override {
    return profiled_delta(p, ObjectiveKind::NormalizedCut, v, target);
  }
};

class McutObjective final : public ObjectiveFn {
 public:
  std::string_view name() const override { return "Mcut"; }

  double evaluate(const Partition& p) const override {
    double total = 0.0;
    for (int q : p.nonempty_parts()) {
      total += detail::mcut_term(p.part_cut(q), p.part_internal(q));
    }
    return total;
  }

  double move_delta(const Partition& p, VertexId v, int target) const override {
    return profiled_delta(p, ObjectiveKind::MinMaxCut, v, target);
  }
};

class RatioCutObjective final : public ObjectiveFn {
 public:
  std::string_view name() const override { return "RatioCut"; }

  double evaluate(const Partition& p) const override {
    double total = 0.0;
    for (int q : p.nonempty_parts()) {
      total += detail::rcut_term(p.part_cut(q), p.part_vertex_weight(q));
    }
    return total;
  }

  double move_delta(const Partition& p, VertexId v, int target) const override {
    return profiled_delta(p, ObjectiveKind::RatioCut, v, target);
  }
};

}  // namespace

std::string_view objective_name(ObjectiveKind kind) {
  return objective(kind).name();
}

std::string_view objective_token(ObjectiveKind kind) {
  switch (kind) {
    case ObjectiveKind::Cut: return "cut";
    case ObjectiveKind::NormalizedCut: return "ncut";
    case ObjectiveKind::MinMaxCut: return "mcut";
    case ObjectiveKind::RatioCut: return "rcut";
  }
  throw Error("unknown ObjectiveKind");
}

std::optional<ObjectiveKind> objective_from_name(std::string_view name) {
  if (name == "cut") return ObjectiveKind::Cut;
  if (name == "ncut") return ObjectiveKind::NormalizedCut;
  if (name == "mcut") return ObjectiveKind::MinMaxCut;
  if (name == "rcut") return ObjectiveKind::RatioCut;
  return std::nullopt;
}

const ObjectiveFn& objective(ObjectiveKind kind) {
  static const CutObjective cut;
  static const NcutObjective ncut;
  static const McutObjective mcut;
  static const RatioCutObjective rcut;
  switch (kind) {
    case ObjectiveKind::Cut: return cut;
    case ObjectiveKind::NormalizedCut: return ncut;
    case ObjectiveKind::MinMaxCut: return mcut;
    case ObjectiveKind::RatioCut: return rcut;
  }
  throw Error("unknown ObjectiveKind");
}

double trial_move_delta(Partition& p, VertexId v, int target,
                        const ObjectiveFn& fn) {
  const int from = p.part_of(v);
  if (from == target) return 0.0;
  const double before = fn.evaluate(p);
  p.move(v, target);
  const double after = fn.evaluate(p);
  p.move(v, from);
  return after - before;
}

}  // namespace ffp
