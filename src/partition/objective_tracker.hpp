// Incremental objective tracking: owns a Partition plus the criterion being
// optimized and maintains the criterion's running value across single-vertex
// moves in O(deg(v)) — the subsystem that removes every per-step O(k) full
// evaluate() from the metaheuristic hot loops (fusion-fission Algorithm 1/2,
// simulated annealing, k-way FM).
//
// For the built-in criteria (ObjectiveKind) a move only changes the O(1)
// per-part terms of its two endpoint parts (partition/objective_terms.hpp),
// so the tracker subtracts both terms, performs the move, and adds the two
// recomputed terms — tying the running value to the Partition's actual
// incremental statistics rather than to a chain of predicted deltas. Custom
// ObjectiveFn implementations fall back to move_delta accumulation.
// Kahan-compensated summation keeps drift over millions of moves far below
// the validate() tolerance.
//
// An optional auxiliary per-part term sum rides along under the same
// two-terms-per-move update (fusion-fission uses it to cache the
// choice_term_bias leak-ratio sum instead of rescanning all atoms each
// step).
//
// Precision: the running sum is only as precise as the largest magnitude it
// ever held — Mcut's zero-denominator penalties push transient values to
// ~1e9 during singleton-heavy phases, which would leave ~1e-7 absolute
// residue behind after the penalties cancel away. The tracker watches the
// peak |value| since the last from-scratch sync and re-evaluates once the
// value drops six orders of magnitude below it, bounding the relative drift
// at ~1e-9 with at most a handful of O(k) rescues per descent.
//
// Thread safety mirrors Partition's: const members (value, move_delta,
// trial_move, partition) are safe to call from any number of threads while
// no thread mutates the tracker; mutating members need exclusive access.
#pragma once

#include <utility>

#include "partition/objectives.hpp"

namespace ffp {

class ObjectiveTracker {
 public:
  /// Tracks a built-in criterion via per-part term updates.
  ObjectiveTracker(Partition p, ObjectiveKind kind);

  /// Tracks any ObjectiveFn. The four built-in singletons are recognized
  /// and get term-based updates; custom objectives use move_delta
  /// accumulation. `fn` must outlive the tracker.
  ObjectiveTracker(Partition p, const ObjectiveFn& fn);

  const Partition& partition() const { return p_; }
  const ObjectiveFn& objective_fn() const { return *fn_; }

  /// Running objective value — equals objective_fn().evaluate(partition())
  /// up to floating-point drift (see validate()).
  double value() const { return value_; }

  /// Exact change in value() if v moved to `target` (0 if already there).
  /// O(deg(v)); does not modify anything.
  double move_delta(VertexId v, int target) const {
    return fn_->move_delta(p_, v, target);
  }

  /// Moves v to `target`, updating the running value (and the auxiliary
  /// sum, if tracked) in O(deg(v)).
  void move(VertexId v, int target);

  /// As move(), for callers that already computed move_delta(v, target)
  /// for this exact state (acceptance tests in annealing/FM loops):
  /// custom-objective tracking reuses the known delta instead of paying a
  /// second move_delta; built-in criteria ignore it (their per-part term
  /// update is exact and no dearer).
  void move(VertexId v, int target, double known_delta);

  /// Accept-test fast path (the ROADMAP's "move_applying_delta"): one
  /// neighbor scan yields both the exact delta AND the connection profile
  /// needed to apply the move, so an accepted move costs a single scan
  /// instead of move_delta + move paying one each. Pattern:
  ///
  ///   const auto trial = tracker.trial_move(v, target);
  ///   if (accept(trial.delta)) tracker.move(trial);
  ///
  /// trial.delta is bit-identical to move_delta(v, target), and move(trial)
  /// leaves the tracker bit-identical to move(v, target) — the fast path
  /// changes cost, never results. A trial is only valid against the exact
  /// state it was computed from (checked in debug builds).
  struct TrialMove {
    VertexId v = -1;
    int target = -1;
    double delta = 0.0;
    Partition::MoveProfile profile;
  };
  TrialMove trial_move(VertexId v, int target) const;
  void move(const TrialMove& trial);

  /// Bulk fusion: merges part `src` into `dst` (Partition::merge_into) and
  /// updates the running value in O(1) on top of the O(|src|) relabel.
  /// `w_between` is the connection weight between the two parts.
  void merge_parts(int src, int dst, Weight w_between);

  /// Bulk fission: splits `moved` out of `src` into the empty part `fresh`
  /// (Partition::split_off) and updates the running value in O(1) on top
  /// of the single arc scan.
  void split_part(int src, int fresh, std::span<const VertexId> moved);

  /// Adds an empty part slot (contributes 0 to every criterion).
  int make_part() { return p_.make_part(); }

  /// Replaces the tracked partition (restart/reheat) and revalues it from
  /// scratch. O(k).
  void reset(Partition p);

  /// Replaces the tracked partition adopting a caller-known value (e.g. the
  /// recorded best when reheating), skipping the O(k) re-evaluate.
  void reset(Partition p, double known_value);

  /// Re-syncs the running value with a from-scratch evaluate; returns it.
  double resync();

  // Auxiliary per-part term sum, maintained incrementally alongside the
  // objective. Pass nullptr to stop tracking.
  using PartTermFn = double (*)(const Partition&, int part);
  void track_aux(PartTermFn term);
  /// Σ term(q) over non-empty parts q (0 when no aux term is tracked).
  double aux_sum() const { return aux_sum_; }

  /// Drift check: FFP_CHECKs value() against a from-scratch evaluate()
  /// within `tol` (absolute and relative) and re-validates the Partition's
  /// own incremental statistics. Test/debug hook; throws on divergence.
  void validate(double tol = 1e-7) const;

  /// Moves the owned partition out; the tracker must not be used after.
  Partition take() && { return std::move(p_); }

 private:
  double part_term(int q) const;
  double aux_resync();

  void maybe_rescue_precision();

  Partition p_;
  const ObjectiveFn* fn_;
  ObjectiveKind kind_ = ObjectiveKind::Cut;
  bool term_based_ = false;
  double value_ = 0.0;
  double carry_ = 0.0;  // Kahan compensation for value_
  double peak_ = 0.0;   // max |value_| since the last from-scratch sync
  PartTermFn aux_ = nullptr;
  double aux_sum_ = 0.0;
  double aux_carry_ = 0.0;
};

}  // namespace ffp
