#include "partition/balance.hpp"

#include <algorithm>
#include <limits>

#include "partition/objectives.hpp"

namespace ffp {

void force_k_nonempty(Partition& p, int k) {
  FFP_CHECK(k >= 1 && k <= p.num_parts(), "k exceeds available part slots");
  FFP_CHECK(k <= p.graph().num_vertices(), "k exceeds vertex count");
  while (p.num_nonempty_parts() < k) {
    int empty_slot = -1;
    for (int q = 0; q < p.num_parts(); ++q) {
      if (p.part_size(q) == 0) {
        empty_slot = q;
        break;
      }
    }
    int largest = -1;
    for (int q : p.nonempty_parts()) {
      if (largest == -1 || p.part_size(q) > p.part_size(largest)) largest = q;
    }
    FFP_CHECK(empty_slot != -1 && largest != -1 && p.part_size(largest) >= 2,
              "cannot reach k non-empty parts");
    const auto members = p.members(largest);
    std::vector<VertexId> to_move(members.begin(),
                                  members.begin() + members.size() / 2);
    for (VertexId v : to_move) p.move(v, empty_slot);
  }
}

double imbalance(const Partition& p) {
  return imbalance(p, p.num_nonempty_parts());
}

double imbalance(const Partition& p, int k) {
  FFP_CHECK(k >= 1, "imbalance needs k >= 1");
  const double avg = p.graph().total_vertex_weight() / k;
  if (avg <= 0.0) return 1.0;
  double max_w = 0.0;
  for (int q : p.nonempty_parts()) {
    max_w = std::max(max_w, p.part_vertex_weight(q));
  }
  return max_w / avg;
}

void rebalance(Partition& p, int k, double max_imbalance, Rng& rng) {
  FFP_CHECK(max_imbalance >= 1.0, "max_imbalance must be >= 1.0");
  const double avg = p.graph().total_vertex_weight() / k;
  const double cap = avg * max_imbalance;
  const auto& cut_fn = objective(ObjectiveKind::Cut);

  // Bounded number of repair rounds; each round fixes the heaviest part.
  const int max_rounds = 4 * p.graph().num_vertices();
  for (int round = 0; round < max_rounds; ++round) {
    int heavy = -1;
    double heavy_w = cap;
    for (int q : p.nonempty_parts()) {
      if (p.part_vertex_weight(q) > heavy_w) {
        heavy_w = p.part_vertex_weight(q);
        heavy = q;
      }
    }
    if (heavy == -1) return;  // everything under the cap

    // Best (vertex, target) pair: least cut damage, target must stay under
    // the cap after receiving the vertex. Prefer lighter targets on ties.
    VertexId best_v = -1;
    int best_t = -1;
    double best_delta = std::numeric_limits<double>::infinity();
    const auto members = p.members(heavy);
    // Scan in a random rotation so repeated calls don't always pick the same
    // vertex on equal deltas.
    const std::size_t offset =
        members.empty() ? 0 : rng.below(members.size());
    for (std::size_t i = 0; i < members.size(); ++i) {
      const VertexId v = members[(i + offset) % members.size()];
      const double vw = p.graph().vertex_weight(v);
      for (VertexId u : p.graph().neighbors(v)) {
        const int t = p.part_of(u);
        if (t == heavy) continue;
        if (p.part_vertex_weight(t) + vw > cap) continue;
        const double delta = cut_fn.move_delta(p, v, t);
        if (delta < best_delta) {
          best_delta = delta;
          best_v = v;
          best_t = t;
        }
      }
    }
    if (best_v == -1) {
      // No adjacent part can take anything: fall back to the globally
      // lightest part (may be disconnected from v; still fixes balance).
      int light = -1;
      double light_w = std::numeric_limits<double>::infinity();
      for (int q : p.nonempty_parts()) {
        if (q != heavy && p.part_vertex_weight(q) < light_w) {
          light_w = p.part_vertex_weight(q);
          light = q;
        }
      }
      if (light == -1 || members.empty()) return;
      best_v = members[rng.below(members.size())];
      best_t = light;
    }
    p.move(best_v, best_t);
  }
}

}  // namespace ffp
