// Balance measurement and enforcement.
//
// imbalance(P) = max_A vweight(A) / (total_vweight / p) over non-empty parts
// — 1.0 is perfect balance. Spectral/multilevel methods enforce a balance
// tolerance; the paper's metaheuristics do not ("connectivity between
// sectors is not forced" and neither is balance), so the harness reports
// imbalance alongside each objective.
#pragma once

#include <cstdint>

#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace ffp {

/// Max part weight over average part weight across non-empty parts.
double imbalance(const Partition& p);

/// Same but against an explicit target part count (empty parts count as 0).
double imbalance(const Partition& p, int k);

/// Greedy repair: repeatedly moves the boundary vertex with the smallest cut
/// damage from the heaviest part to the lightest adjacent part until
/// imbalance(p, k) <= max_imbalance or no move helps. Used to post-process
/// sign-based spectral splits.
void rebalance(Partition& p, int k, double max_imbalance, Rng& rng);

/// Guarantees exactly k non-empty parts (requires k <= num_parts() slots and
/// k <= vertex count): splits the largest part's member list in half into an
/// empty slot until the count is reached. Used by the recursive drivers,
/// whose section steps can starve a part id on degenerate subgraphs.
void force_k_nonempty(Partition& p, int k);

}  // namespace ffp
