#include "partition/report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "partition/balance.hpp"
#include "partition/objectives.hpp"
#include "util/strings.hpp"

namespace ffp {

PartitionReport analyze(const Partition& p) {
  PartitionReport report;
  report.num_parts = p.num_nonempty_parts();
  report.cut = p.total_cut_pairs();
  report.edge_cut = p.edge_cut();
  report.ncut = objective(ObjectiveKind::NormalizedCut).evaluate(p);
  report.mcut = objective(ObjectiveKind::MinMaxCut).evaluate(p);
  report.ratio_cut = objective(ObjectiveKind::RatioCut).evaluate(p);
  report.imbalance = imbalance(p);

  std::vector<int> parts(p.nonempty_parts().begin(), p.nonempty_parts().end());
  std::sort(parts.begin(), parts.end());
  const Graph& g = p.graph();
  for (int q : parts) {
    PartReport pr;
    pr.part = q;
    pr.size = p.part_size(q);
    pr.vertex_weight = p.part_vertex_weight(q);
    pr.internal_weight = p.part_internal(q) / 2.0;
    pr.cut_weight = p.part_cut(q);
    pr.mcut_term = p.part_internal(q) > 0.0
                       ? p.part_cut(q) / p.part_internal(q)
                       : (p.part_cut(q) > 0.0 ? kZeroDenominatorPenalty : 0.0);
    for (VertexId v : p.members(q)) {
      for (VertexId u : g.neighbors(v)) {
        if (p.part_of(u) != q) {
          ++pr.boundary_vertices;
          break;
        }
      }
    }
    report.parts.push_back(pr);
  }
  return report;
}

std::string PartitionReport::to_string() const {
  std::ostringstream os;
  os << format(
      "partition: %d parts  edge-cut %.1f  Ncut %.3f  Mcut %.3f  "
      "RatioCut %.3f  imbalance %.3f\n",
      num_parts, edge_cut, ncut, mcut, ratio_cut, imbalance);
  os << format("%6s %8s %10s %12s %10s %10s %9s\n", "part", "size", "vweight",
               "internal", "cut", "cut/W", "boundary");
  for (const auto& pr : parts) {
    os << format("%6d %8d %10.1f %12.1f %10.1f %10.4f %9d\n", pr.part,
                 pr.size, pr.vertex_weight, pr.internal_weight, pr.cut_weight,
                 pr.mcut_term, pr.boundary_vertices);
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const PartitionReport& report) {
  return os << report.to_string();
}

}  // namespace ffp
