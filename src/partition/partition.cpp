#include "partition/partition.hpp"

#include <algorithm>
#include <cmath>

#include "partition/part_scratch.hpp"
#include "util/stats.hpp"

namespace ffp {

Partition::Partition(const Graph& g, int num_parts) : g_(&g) {
  FFP_CHECK(num_parts >= 1, "need at least one part");
  const auto n = static_cast<std::size_t>(g.num_vertices());
  part_.assign(n, 0);
  pos_in_part_.assign(n, 0);
  members_.resize(static_cast<std::size_t>(num_parts));
  cut_.assign(static_cast<std::size_t>(num_parts), 0.0);
  internal_.assign(static_cast<std::size_t>(num_parts), 0.0);
  vweight_.assign(static_cast<std::size_t>(num_parts), 0.0);
  nonempty_pos_.assign(static_cast<std::size_t>(num_parts), -1);
  rebuild();
}

Partition Partition::from_assignment(const Graph& g, std::span<const int> parts,
                                     int num_parts) {
  FFP_CHECK(static_cast<VertexId>(parts.size()) == g.num_vertices(),
            "assignment size ", parts.size(), " != n ", g.num_vertices());
  int k = num_parts;
  if (k < 0) {
    k = 0;
    for (int p : parts) k = std::max(k, p + 1);
    k = std::max(k, 1);
  }
  for (int p : parts) {
    FFP_CHECK(p >= 0 && p < k, "part id ", p, " out of range [0,", k, ")");
  }
  Partition out(g, k);
  std::copy(parts.begin(), parts.end(), out.part_.begin());
  out.rebuild();
  return out;
}

Partition Partition::singletons(const Graph& g) {
  FFP_CHECK(g.num_vertices() >= 1, "empty graph");
  Partition out(g, g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out.part_[static_cast<std::size_t>(v)] = v;
  }
  out.rebuild();
  return out;
}

void Partition::rebuild() {
  const VertexId n = g_->num_vertices();
  for (auto& m : members_) m.clear();
  std::fill(cut_.begin(), cut_.end(), 0.0);
  std::fill(internal_.begin(), internal_.end(), 0.0);
  std::fill(vweight_.begin(), vweight_.end(), 0.0);
  std::fill(nonempty_pos_.begin(), nonempty_pos_.end(), -1);
  nonempty_.clear();
  total_cut_pairs_ = 0.0;

  for (VertexId v = 0; v < n; ++v) {
    const auto p = static_cast<std::size_t>(part_[static_cast<std::size_t>(v)]);
    FFP_CHECK(p < members_.size(), "assignment references missing part");
    pos_in_part_[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(members_[p].size());
    members_[p].push_back(v);
    vweight_[p] += g_->vertex_weight(v);
  }
  for (std::size_t p = 0; p < members_.size(); ++p) {
    if (!members_[p].empty()) {
      nonempty_pos_[p] = static_cast<std::int32_t>(nonempty_.size());
      nonempty_.push_back(static_cast<int>(p));
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    const int pv = part_[static_cast<std::size_t>(v)];
    const auto nbrs = g_->neighbors(v);
    const auto ws = g_->neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (part_[static_cast<std::size_t>(nbrs[i])] == pv) {
        internal_[static_cast<std::size_t>(pv)] += ws[i];  // ordered pairs
      } else {
        cut_[static_cast<std::size_t>(pv)] += ws[i];
        total_cut_pairs_ += ws[i];
      }
    }
  }
}

void Partition::move(VertexId v, int target) {
  FFP_DCHECK(v >= 0 && v < g_->num_vertices());
  if (part_[static_cast<std::size_t>(v)] == target) {
    check_part(target);
    return;
  }
  // One neighbor scan gives both connection weights.
  move(v, target, move_profile(v, target));
}

void Partition::move(VertexId v, int target, const MoveProfile& profile) {
  FFP_DCHECK(v >= 0 && v < g_->num_vertices());
  const auto t = check_part(target);
  const auto f = static_cast<std::size_t>(part_[static_cast<std::size_t>(v)]);
  if (f == t) return;
#ifndef NDEBUG
  {
    const MoveProfile fresh = move_profile(v, target);
    FFP_DCHECK(fresh.ext_from == profile.ext_from &&
                   fresh.ext_to == profile.ext_to,
               "profiled move given a stale profile for vertex ", v);
  }
#endif
  const Weight ext_from = profile.ext_from;
  const Weight ext_to = profile.ext_to;
  const Weight d = g_->weighted_degree(v);

  // cut(A,V−A) updates follow from counting which of v's edges flip between
  // internal and crossing; edges to third parts stay crossing for both ends.
  cut_[f] += 2.0 * ext_from - d;
  cut_[t] += d - 2.0 * ext_to;
  internal_[f] -= 2.0 * ext_from;
  internal_[t] += 2.0 * ext_to;
  total_cut_pairs_ += 2.0 * (ext_from - ext_to);

  const Weight vw = g_->vertex_weight(v);
  vweight_[f] -= vw;
  vweight_[t] += vw;

  // Swap-remove from old member list.
  auto& from_members = members_[f];
  const auto pos = static_cast<std::size_t>(pos_in_part_[static_cast<std::size_t>(v)]);
  const VertexId last = from_members.back();
  from_members[pos] = last;
  pos_in_part_[static_cast<std::size_t>(last)] = static_cast<std::int32_t>(pos);
  from_members.pop_back();
  if (from_members.empty()) {
    // Remove f from the non-empty list (swap-remove as well).
    const auto npos = static_cast<std::size_t>(nonempty_pos_[f]);
    const int moved = nonempty_.back();
    nonempty_[npos] = moved;
    nonempty_pos_[static_cast<std::size_t>(moved)] = static_cast<std::int32_t>(npos);
    nonempty_.pop_back();
    nonempty_pos_[f] = -1;
    cut_[f] = 0.0;       // clear any residual floating-point dust
    internal_[f] = 0.0;
    vweight_[f] = 0.0;
  } else if (from_members.size() == 1) {
    // A singleton part has exactly zero internal weight and a cut equal to
    // its vertex's weighted degree. Pin both: the ± dust that incremental
    // updates leave behind would otherwise land in ratio denominators
    // (Mcut's cut/W(A) on a true-zero W(A) becomes cut/1e-14 ≈ 1e15
    // instead of the intended penalty — garbage energies).
    cut_[f] = g_->weighted_degree(from_members[0]);
    internal_[f] = 0.0;
  } else if (internal_[f] < g_->min_edge_weight()) {
    // A true internal edge contributes at least 2× the minimum edge weight,
    // so anything below min_edge_weight is cancellation dust on an
    // internal-edge-free part (e.g. a scattered independent set) — the same
    // ratio-denominator hazard as the singleton case. Also covers negative
    // dust (internal weight is a sum of edge weights, hence >= 0).
    internal_[f] = 0.0;
  }

  if (members_[t].empty()) {
    nonempty_pos_[t] = static_cast<std::int32_t>(nonempty_.size());
    nonempty_.push_back(target);
  }
  pos_in_part_[static_cast<std::size_t>(v)] =
      static_cast<std::int32_t>(members_[t].size());
  members_[t].push_back(v);
  part_[static_cast<std::size_t>(v)] = target;
}

void Partition::merge_into(int src, int dst, Weight w_between) {
  const auto s = check_part(src);
  const auto d = check_part(dst);
  FFP_CHECK(s != d, "cannot merge a part into itself");
  FFP_CHECK(!members_[s].empty(), "cannot merge an empty part");
#ifndef NDEBUG
  {
    Weight fresh = 0.0;
    for (VertexId v : members_[s]) fresh += ext_degree(v, dst);
    FFP_DCHECK(std::abs(fresh - w_between) <=
                   1e-7 * std::max(1.0, std::abs(fresh)),
               "merge_into w_between ", w_between,
               " does not match recomputed ", fresh);
  }
#endif

  cut_[d] = cut_[s] + cut_[d] - 2.0 * w_between;
  internal_[d] = internal_[s] + internal_[d] + 2.0 * w_between;
  vweight_[d] += vweight_[s];
  total_cut_pairs_ -= 2.0 * w_between;

  auto& dst_members = members_[d];
  const bool dst_was_empty = dst_members.empty();
  for (VertexId v : members_[s]) {
    part_[static_cast<std::size_t>(v)] = dst;
    pos_in_part_[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(dst_members.size());
    dst_members.push_back(v);
  }
  members_[s].clear();
  cut_[s] = 0.0;
  internal_[s] = 0.0;
  vweight_[s] = 0.0;

  // Non-empty list maintenance, as in move().
  const auto npos = static_cast<std::size_t>(nonempty_pos_[s]);
  const int moved = nonempty_.back();
  nonempty_[npos] = moved;
  nonempty_pos_[static_cast<std::size_t>(moved)] = static_cast<std::int32_t>(npos);
  nonempty_.pop_back();
  nonempty_pos_[s] = -1;
  if (dst_was_empty) {
    nonempty_pos_[d] = static_cast<std::int32_t>(nonempty_.size());
    nonempty_.push_back(dst);
  }
}

void Partition::split_off(int src, int fresh, std::span<const VertexId> moved) {
  const auto si = check_part(src);
  const auto fi = check_part(fresh);
  FFP_CHECK(si != fi, "cannot split a part into itself");
  FFP_CHECK(members_[fi].empty(), "split target part must be empty");
  FFP_CHECK(!moved.empty() && moved.size() < members_[si].size(),
            "split must move a non-empty proper subset");

  // Relabel the moved vertices, then compact the source member list.
  auto& fresh_members = members_[fi];
  for (VertexId v : moved) {
    FFP_DCHECK(part_[static_cast<std::size_t>(v)] == src,
               "split vertex not in source part");
    part_[static_cast<std::size_t>(v)] = fresh;
    pos_in_part_[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(fresh_members.size());
    fresh_members.push_back(v);
  }
  auto& src_members = members_[si];
  std::size_t keep = 0;
  for (VertexId v : src_members) {
    if (part_[static_cast<std::size_t>(v)] == src) {
      src_members[keep] = v;
      pos_in_part_[static_cast<std::size_t>(v)] =
          static_cast<std::int32_t>(keep);
      ++keep;
    }
  }
  src_members.resize(keep);

  // One arc scan over the moved side gives its volume/internal weight and
  // its connection to the remainder; the split identities give the rest.
  Weight vol_moved = 0.0, int_moved = 0.0, w_between = 0.0, vw_moved = 0.0;
  for (VertexId v : moved) {
    vol_moved += g_->weighted_degree(v);
    vw_moved += g_->vertex_weight(v);
    const auto nbrs = g_->neighbors(v);
    const auto ws = g_->neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const int pu = part_[static_cast<std::size_t>(nbrs[i])];
      if (pu == fresh) int_moved += ws[i];
      else if (pu == src) w_between += ws[i];
    }
  }
  const Weight vol_src_old = cut_[si] + internal_[si];  // assoc == vol
  const Weight cut_src_old = cut_[si];
  Weight int_kept = internal_[si] - int_moved - 2.0 * w_between;
  // Subtraction dust below the smallest possible internal contribution
  // means the kept side holds no internal edge at all (see move()).
  if (int_kept < g_->min_edge_weight()) int_kept = 0.0;
  const Weight cut_moved = vol_moved - int_moved;
  const Weight cut_kept = (vol_src_old - vol_moved) - int_kept;

  cut_[si] = cut_kept;
  internal_[si] = int_kept;
  vweight_[si] -= vw_moved;
  cut_[fi] = cut_moved;
  internal_[fi] = int_moved;
  vweight_[fi] = vw_moved;
  total_cut_pairs_ += cut_kept + cut_moved - cut_src_old;

  // Exact singleton statistics, as in move().
  if (src_members.size() == 1) {
    cut_[si] = g_->weighted_degree(src_members[0]);
    internal_[si] = 0.0;
  }
  if (fresh_members.size() == 1) {
    cut_[fi] = g_->weighted_degree(fresh_members[0]);
    internal_[fi] = 0.0;
  }

  nonempty_pos_[fi] = static_cast<std::int32_t>(nonempty_.size());
  nonempty_.push_back(fresh);
}

int Partition::make_part() {
  members_.emplace_back();
  cut_.push_back(0.0);
  internal_.push_back(0.0);
  vweight_.push_back(0.0);
  nonempty_pos_.push_back(-1);
  return num_parts() - 1;
}

Weight Partition::ext_degree(VertexId v, int p) const {
  FFP_DCHECK(v >= 0 && v < g_->num_vertices());
  check_part(p);
  Weight total = 0.0;
  const auto nbrs = g_->neighbors(v);
  const auto ws = g_->neighbor_weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (part_[static_cast<std::size_t>(nbrs[i])] == p) total += ws[i];
  }
  return total;
}

Partition::MoveProfile Partition::move_profile(VertexId v, int target) const {
  FFP_DCHECK(v >= 0 && v < g_->num_vertices());
  check_part(target);
  const int from = part_of(v);
  MoveProfile prof;
  const auto nbrs = g_->neighbors(v);
  const auto ws = g_->neighbor_weights(v);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    const int pu = part_[static_cast<std::size_t>(nbrs[i])];
    if (pu == from) prof.ext_from += ws[i];
    else if (pu == target) prof.ext_to += ws[i];
  }
  return prof;
}

void Partition::connections(int p, std::vector<std::pair<int, Weight>>& out) const {
  check_part(p);
  // Epoch-stamped accumulation keeps this O(boundary), not O(num_parts).
  static thread_local PartMarkScratch scratch;
  scratch.begin(num_parts());
  for (VertexId v : members_[static_cast<std::size_t>(p)]) {
    const auto nbrs = g_->neighbors(v);
    const auto ws = g_->neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const int pu = part_[static_cast<std::size_t>(nbrs[i])];
      if (pu != p) scratch.add_weight(pu, ws[i]);
    }
  }
  for (int q : scratch.marked()) out.emplace_back(q, scratch.weight(q));
}

std::vector<int> Partition::compact() {
  std::vector<int> remap(static_cast<std::size_t>(num_parts()), -1);
  int next = 0;
  for (std::size_t p = 0; p < members_.size(); ++p) {
    if (!members_[p].empty()) remap[p] = next++;
  }
  for (auto& pv : part_) pv = remap[static_cast<std::size_t>(pv)];
  members_.resize(static_cast<std::size_t>(next));
  cut_.resize(static_cast<std::size_t>(next));
  internal_.resize(static_cast<std::size_t>(next));
  vweight_.resize(static_cast<std::size_t>(next));
  nonempty_pos_.resize(static_cast<std::size_t>(next));
  rebuild();
  return remap;
}

void Partition::validate() const {
  Partition fresh = Partition::from_assignment(*g_, part_, num_parts());
  FFP_CHECK(close(fresh.total_cut_pairs_, total_cut_pairs_, 1e-7, 1e-7),
            "total cut drifted: ", total_cut_pairs_, " vs ",
            fresh.total_cut_pairs_);
  FFP_CHECK(fresh.nonempty_.size() == nonempty_.size(),
            "non-empty count drifted");
  for (int p = 0; p < num_parts(); ++p) {
    const auto i = static_cast<std::size_t>(p);
    FFP_CHECK(close(fresh.cut_[i], cut_[i], 1e-7, 1e-7),
              "part ", p, " cut drifted: ", cut_[i], " vs ", fresh.cut_[i]);
    FFP_CHECK(close(fresh.internal_[i], internal_[i], 1e-7, 1e-7),
              "part ", p, " internal drifted");
    FFP_CHECK(close(fresh.vweight_[i], vweight_[i], 1e-7, 1e-7),
              "part ", p, " vertex weight drifted");
    FFP_CHECK(fresh.members_[i].size() == members_[i].size(),
              "part ", p, " size drifted");
  }
  for (VertexId v = 0; v < g_->num_vertices(); ++v) {
    const auto p = static_cast<std::size_t>(part_[static_cast<std::size_t>(v)]);
    const auto pos = static_cast<std::size_t>(pos_in_part_[static_cast<std::size_t>(v)]);
    FFP_CHECK(pos < members_[p].size() && members_[p][pos] == v,
              "member list inconsistent for vertex ", v);
  }
}

}  // namespace ffp
