// Partition of a graph's vertices into parts ("atoms" in fusion-fission
// terms), with O(deg) incremental bookkeeping under single-vertex moves.
//
// The part count is dynamic: parts can be created (make_part) and can become
// empty, which is exactly what the fusion-fission metaheuristic needs. All
// per-part statistics the paper's objectives use are maintained
// incrementally:
//   - cut(A, V−A): total weight of edges with exactly one endpoint in A,
//   - W(A): the paper's internal weight, summed over *ordered* pairs (each
//     internal undirected edge counts twice) so that
//     assoc(A,V) = cut(A,V−A) + W(A) equals vol(A),
//   - vertex count and vertex weight of A,
//   - member list of A (unordered, O(1) move via swap-remove).
//
// Thread safety: every const member function only reads state (the one
// internal scratch, in connections(), is thread_local), so any number of
// threads may read one Partition concurrently as long as no thread mutates
// it — the contract the fusion-fission batched engine relies on during its
// speculative phase, where worker threads score fusions and plan fissions
// against a frozen molecule through const references. Mutating members are
// not synchronized; mutation requires exclusive access.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ffp {

class Partition {
 public:
  /// All vertices in part 0, with `num_parts` part slots available.
  Partition(const Graph& g, int num_parts);

  /// Adopts an explicit assignment. Part ids must be in [0, num_parts);
  /// pass num_parts = -1 to deduce it as max(id)+1.
  static Partition from_assignment(const Graph& g, std::span<const int> parts,
                                   int num_parts = -1);

  /// Every vertex alone in its own part (fusion-fission Algorithm 2 start).
  static Partition singletons(const Graph& g);

  const Graph& graph() const { return *g_; }

  /// Number of part slots (some may be empty).
  int num_parts() const { return static_cast<int>(cut_.size()); }
  int num_nonempty_parts() const { return static_cast<int>(nonempty_.size()); }
  /// Ids of the non-empty parts (unordered, stable under non-move calls).
  std::span<const int> nonempty_parts() const { return nonempty_; }

  int part_of(VertexId v) const {
    FFP_DCHECK(v >= 0 && v < graph().num_vertices());
    return part_[static_cast<std::size_t>(v)];
  }

  /// Moves v to part `target` and updates all statistics in O(deg(v)).
  void move(VertexId v, int target);

  /// Merges every vertex of `src` into `dst` in O(|src|) — no neighbor
  /// scans. `w_between` must be the total connection weight between the two
  /// parts (Σ w(e) over edges with one endpoint in each, each edge once),
  /// which fusion callers already hold from connections(); it closes the
  /// merge identities cut(S∪D) = cut(S) + cut(D) − 2w and
  /// W(S∪D) = W(S) + W(D) + 2w. Checked against a fresh recompute in debug
  /// builds. src must be non-empty and distinct from dst.
  void merge_into(int src, int dst, Weight w_between);

  /// Bulk fission: moves every vertex of `moved` (a non-empty proper subset
  /// of part `src`'s members) into the empty part `fresh`, rebuilding both
  /// parts' statistics from one scan over the moved vertices' arcs — the
  /// split identities W(S) = W(A) + W(B) + 2w(A,B) and
  /// cut(X) = vol(X) − W(X) close the rest. O(|src| + Σ deg(moved)),
  /// versus per-vertex move() paying heavy bookkeeping per call.
  void split_off(int src, int fresh, std::span<const VertexId> moved);

  /// Adds an empty part slot and returns its id.
  int make_part();

  // Per-part statistics. Empty parts report zeros.
  Weight part_cut(int p) const { return cut_[check_part(p)]; }
  Weight part_internal(int p) const { return internal_[check_part(p)]; }
  Weight part_vertex_weight(int p) const { return vweight_[check_part(p)]; }
  int part_size(int p) const {
    return static_cast<int>(members_[check_part(p)].size());
  }
  std::span<const VertexId> members(int p) const {
    return members_[check_part(p)];
  }

  /// Σ_A cut(A, V−A) over all parts — the paper's Cut(P) numerator family.
  /// Equals 2× the conventional edge cut.
  Weight total_cut_pairs() const { return total_cut_pairs_; }
  /// Conventional edge cut (each cut edge once).
  Weight edge_cut() const { return total_cut_pairs_ / 2.0; }

  /// Σ of w(v,u) over neighbors u of v lying in part p. O(deg(v)).
  Weight ext_degree(VertexId v, int p) const;

  /// Both ext_degree values needed to evaluate a move, in one scan.
  struct MoveProfile {
    Weight ext_from = 0.0;  ///< connection of v to its current part
    Weight ext_to = 0.0;    ///< connection of v to the target part
  };
  MoveProfile move_profile(VertexId v, int target) const;

  /// As move(v, target), reusing a profile the caller already computed for
  /// THIS exact state (via move_profile) — skips the neighbor scan, making
  /// the apply O(1) beyond member bookkeeping. The accept-test loops
  /// (simulated annealing via ObjectiveTracker::trial_move) pay one scan
  /// per step instead of two. Checked against a fresh scan in debug builds.
  void move(VertexId v, int target, const MoveProfile& profile);

  /// Total connection weight from part p to every other part it touches.
  /// Appends (part, weight) pairs; weight > 0. O(Σ deg over members).
  void connections(int p, std::vector<std::pair<int, Weight>>& out) const;

  /// Raw assignment view (for I/O and interop).
  std::span<const int> assignment() const { return part_; }

  /// Renumbers parts so the non-empty ones are 0..p-1; returns old->new map
  /// (-1 for dropped empty slots).
  std::vector<int> compact();

  /// Recomputes every statistic from scratch and FFP_CHECKs it against the
  /// incremental state. Test/debug hook; throws on divergence.
  void validate() const;

 private:
  std::size_t check_part(int p) const {
    FFP_DCHECK(p >= 0 && p < num_parts(), "part id out of range");
    return static_cast<std::size_t>(p);
  }
  void rebuild();  // full recompute of stats from part_

  const Graph* g_ = nullptr;
  std::vector<int> part_;                        // per vertex
  std::vector<std::vector<VertexId>> members_;   // per part
  std::vector<std::int32_t> pos_in_part_;        // per vertex
  std::vector<Weight> cut_;                      // per part: cut(A, V−A)
  std::vector<Weight> internal_;                 // per part: W(A), ordered pairs
  std::vector<Weight> vweight_;                  // per part
  std::vector<int> nonempty_;                    // ids of non-empty parts
  std::vector<std::int32_t> nonempty_pos_;       // per part: index in nonempty_, -1 if empty
  Weight total_cut_pairs_ = 0.0;
};

}  // namespace ffp
