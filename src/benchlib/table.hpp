// Fixed-width ASCII table output for the bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ffp {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "%.1f"-style helpers used by the table benches.
std::string fmt1(double v);
std::string fmt2(double v);
std::string fmt3(double v);

}  // namespace ffp
