#include "benchlib/table.hpp"

#include <algorithm>
#include <ostream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace ffp {

AsciiTable::AsciiTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  FFP_CHECK(cells.size() == headers_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void AsciiTable::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_sep = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      out << '+' << std::string(width[c] + 2, '-');
    }
    out << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "| " << cells[c]
          << std::string(width[c] - cells[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string fmt1(double v) { return format("%.1f", v); }
std::string fmt2(double v) { return format("%.2f", v); }
std::string fmt3(double v) { return format("%.3f", v); }

}  // namespace ffp
