#include "benchlib/methods.hpp"

#include "ffp/api.hpp"
#include "solver/registry.hpp"
#include "util/check.hpp"

namespace ffp {

namespace {

/// Row label → registry spec, in the paper's order. The single source of
/// truth for how each Table-1 row is configured.
const std::vector<std::pair<std::string, std::string>>& table1_specs() {
  static const std::vector<std::pair<std::string, std::string>> rows = {
      {"Linear (Bi)", "linear:arity=2"},
      {"Linear (Bi, KL)", "linear:arity=2,kl=true"},
      {"Linear (Oct, KL)", "linear:arity=8,kl=true"},
      {"Spectral (Lanc, Bi)", "spectral:engine=lanczos,arity=bi"},
      {"Spectral (Lanc, Bi, KL)", "spectral:engine=lanczos,arity=bi,kl=true"},
      {"Spectral (Lanc, Oct)", "spectral:engine=lanczos,arity=oct"},
      {"Spectral (Lanc, Oct, KL)", "spectral:engine=lanczos,arity=oct,kl=true"},
      {"Spectral (RQI, Bi)", "spectral:engine=rqi,arity=bi"},
      {"Spectral (RQI, Bi, KL)", "spectral:engine=rqi,arity=bi,kl=true"},
      {"Spectral (RQI, Oct)", "spectral:engine=rqi,arity=oct"},
      {"Spectral (RQI, Oct, KL)", "spectral:engine=rqi,arity=oct,kl=true"},
      {"Multilevel (Bi)", "multilevel:arity=bi"},
      {"Multilevel (Oct)", "multilevel:arity=oct"},
      {"Percolation", "percolation"},
      {"Simulated annealing", "annealing"},
      {"Ant colony", "ant_colony"},
      {"Fusion Fission", "fusion_fission"},
  };
  return rows;
}

}  // namespace

Partition MethodSpec::run(const Graph& g, const MethodContext& ctx) const {
  // Every Table-1 row is one facade solve: the benches exercise the exact
  // pipeline the CLI and the daemon serve.
  api::SolveSpec spec;
  spec.method = solver_spec;
  spec.k = ctx.k;
  spec.objective = ctx.objective;
  spec.budget_ms = ctx.budget_ms;
  spec.seed = ctx.seed;
  api::ImprovementFn stream;
  if (ctx.recorder != nullptr) {
    ctx.recorder->start();
    stream = [recorder = ctx.recorder](double, double value) {
      recorder->record(value);
    };
  }
  return api::Engine::shared()
      .solve(api::Problem::viewing(g), spec, std::move(stream))
      .best;
}

std::vector<MethodSpec> table1_methods() {
  std::vector<MethodSpec> methods;
  methods.reserve(table1_specs().size());
  for (const auto& [name, spec] : table1_specs()) {
    SolverPtr solver = make_solver(spec);
    const bool meta = solver->is_metaheuristic();
    methods.push_back({name, spec, meta, std::move(solver)});
  }
  return methods;
}

const MethodSpec& method_by_name(const std::vector<MethodSpec>& methods,
                                 const std::string& name) {
  for (const auto& m : methods) {
    if (m.name == name) return m;
  }
  throw Error("unknown method: " + name);
}

std::string table1_spec(const std::string& name) {
  for (const auto& [label, spec] : table1_specs()) {
    if (label == name) return spec;
  }
  throw Error("unknown method: " + name);
}

}  // namespace ffp
