#include "benchlib/methods.hpp"

#include <numeric>

#include "core/fusion_fission.hpp"
#include "graph/connectivity.hpp"
#include "metaheuristics/annealing.hpp"
#include "metaheuristics/ant_colony.hpp"
#include "metaheuristics/percolation.hpp"
#include "multilevel/multilevel.hpp"
#include "refine/kl_bisection.hpp"
#include "refine/kway_fm.hpp"
#include "spectral/linear_partition.hpp"
#include "spectral/spectral_partition.hpp"
#include "util/check.hpp"

namespace ffp {

namespace {

/// Chaco REFINE_PARTITION analog: final greedy k-way Cut refinement.
Partition final_refine(Partition p, std::uint64_t seed) {
  Rng rng(seed);
  KwayFmOptions opt;
  opt.max_imbalance = 1.10;
  kway_fm_refine(p, objective(ObjectiveKind::Cut), opt, rng);
  return p;
}

/// "Linear" rows: recursive division of the vertex-id range (Chaco's
/// linear global method), with optional KL refinement after every division
/// — arity 2 (Bi) or 8 (Oct).
void linear_recurse(const Graph& g, const std::vector<VertexId>& vertices,
                    int k, int offset, int arity, bool kl, std::uint64_t seed,
                    std::vector<int>& out) {
  if (k == 1 || vertices.size() <= 1) {
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      out[static_cast<std::size_t>(vertices[i])] =
          offset + static_cast<int>(i % static_cast<std::size_t>(std::max(k, 1)));
    }
    return;
  }
  int ways = std::min(arity, k);
  while (ways > 2 && k % ways != 0) ways /= 2;
  ways = std::min<int>(ways, static_cast<int>(vertices.size()));

  // Contiguous chunks of near-equal vertex weight (ids are already sorted).
  double total = 0.0;
  for (VertexId v : vertices) total += g.vertex_weight(v);
  std::vector<std::vector<VertexId>> chunks(static_cast<std::size_t>(ways));
  double acc = 0.0;
  int chunk = 0;
  std::size_t remaining = vertices.size();
  for (VertexId v : vertices) {
    const int needed_after = ways - chunk - 1;
    if ((acc >= total * (chunk + 1) / ways && chunk + 1 < ways) ||
        (static_cast<std::size_t>(needed_after) >= remaining && chunk + 1 < ways)) {
      ++chunk;
    }
    chunks[static_cast<std::size_t>(chunk)].push_back(v);
    acc += g.vertex_weight(v);
    --remaining;
  }

  if (kl) {
    // KL between the chunks, on the induced subgraph of this range.
    std::vector<int> local(vertices.size());
    std::vector<VertexId> to_local(
        static_cast<std::size_t>(g.num_vertices()), -1);
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      to_local[static_cast<std::size_t>(vertices[i])] =
          static_cast<VertexId>(i);
    }
    for (int c = 0; c < ways; ++c) {
      for (VertexId v : chunks[static_cast<std::size_t>(c)]) {
        local[static_cast<std::size_t>(
            to_local[static_cast<std::size_t>(v)])] = c;
      }
    }
    const auto sub = induced_subgraph(g, vertices);
    kl_refine_kway(sub.graph, local, ways, 1.05, seed);
    for (auto& c : chunks) c.clear();
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      chunks[static_cast<std::size_t>(local[i])].push_back(vertices[i]);
    }
  }

  const int per = k / ways;
  int off = offset;
  for (int c = 0; c < ways; ++c) {
    // Chunk vertex lists stay sorted (KL preserves membership, not order),
    // so re-sort for the next level's "linear" semantics.
    auto& chunk_vertices = chunks[static_cast<std::size_t>(c)];
    std::sort(chunk_vertices.begin(), chunk_vertices.end());
    linear_recurse(g, chunk_vertices, per, off, arity, kl,
                   seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(c),
                   out);
    off += per;
  }
}

Partition run_linear(const Graph& g, int k, int arity, bool kl,
                     std::uint64_t seed) {
  if (!kl) return linear_partition(g, k);
  std::vector<int> out(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<VertexId> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), 0);
  linear_recurse(g, all, k, 0, arity, kl, seed, out);
  return Partition::from_assignment(g, out, k);
}

MethodSpec spectral_row(std::string name, FiedlerEngine engine,
                        SectionArity arity, bool kl) {
  return {std::move(name), false,
          [engine, arity, kl](const Graph& g, const MethodContext& ctx) {
            SpectralOptions opt;
            opt.engine = engine;
            opt.arity = arity;
            opt.kl_refine = kl;
            opt.seed = ctx.seed;
            return final_refine(spectral_partition(g, ctx.k, opt),
                                ctx.seed ^ 0xfeed);
          }};
}

MethodSpec multilevel_row(std::string name, SectionArity arity) {
  return {std::move(name), false,
          [arity](const Graph& g, const MethodContext& ctx) {
            MultilevelOptions opt;
            opt.arity = arity;
            opt.seed = ctx.seed;
            opt.final_kway_refine = true;  // REFINE_PARTITION analog
            return multilevel_partition(g, ctx.k, opt);
          }};
}

}  // namespace

std::vector<MethodSpec> table1_methods() {
  std::vector<MethodSpec> methods;

  methods.push_back({"Linear (Bi)", false,
                     [](const Graph& g, const MethodContext& ctx) {
                       return run_linear(g, ctx.k, 2, false, ctx.seed);
                     }});
  methods.push_back({"Linear (Bi, KL)", false,
                     [](const Graph& g, const MethodContext& ctx) {
                       return run_linear(g, ctx.k, 2, true, ctx.seed);
                     }});
  methods.push_back({"Linear (Oct, KL)", false,
                     [](const Graph& g, const MethodContext& ctx) {
                       return run_linear(g, ctx.k, 8, true, ctx.seed);
                     }});

  methods.push_back(spectral_row("Spectral (Lanc, Bi)", FiedlerEngine::Lanczos,
                                 SectionArity::Bisection, false));
  methods.push_back(spectral_row("Spectral (Lanc, Bi, KL)",
                                 FiedlerEngine::Lanczos,
                                 SectionArity::Bisection, true));
  methods.push_back(spectral_row("Spectral (Lanc, Oct)", FiedlerEngine::Lanczos,
                                 SectionArity::Octasection, false));
  methods.push_back(spectral_row("Spectral (Lanc, Oct, KL)",
                                 FiedlerEngine::Lanczos,
                                 SectionArity::Octasection, true));
  methods.push_back(spectral_row("Spectral (RQI, Bi)",
                                 FiedlerEngine::MultilevelRqi,
                                 SectionArity::Bisection, false));
  methods.push_back(spectral_row("Spectral (RQI, Bi, KL)",
                                 FiedlerEngine::MultilevelRqi,
                                 SectionArity::Bisection, true));
  methods.push_back(spectral_row("Spectral (RQI, Oct)",
                                 FiedlerEngine::MultilevelRqi,
                                 SectionArity::Octasection, false));
  methods.push_back(spectral_row("Spectral (RQI, Oct, KL)",
                                 FiedlerEngine::MultilevelRqi,
                                 SectionArity::Octasection, true));

  methods.push_back(multilevel_row("Multilevel (Bi)", SectionArity::Bisection));
  methods.push_back(
      multilevel_row("Multilevel (Oct)", SectionArity::Octasection));

  methods.push_back({"Percolation", false,
                     [](const Graph& g, const MethodContext& ctx) {
                       PercolationOptions opt;
                       opt.seed = ctx.seed;
                       return percolation_partition(g, ctx.k, opt);
                     }});

  methods.push_back(
      {"Simulated annealing", true,
       [](const Graph& g, const MethodContext& ctx) {
         PercolationOptions popt;
         popt.seed = ctx.seed;
         auto init = percolation_partition(g, ctx.k, popt);
         AnnealingOptions opt;
         opt.objective = ctx.objective;
         opt.seed = ctx.seed;
         SimulatedAnnealing sa(g, ctx.k, opt);
         if (ctx.recorder != nullptr) ctx.recorder->start();
         auto res = sa.run(init, StopCondition::after_millis(ctx.budget_ms),
                           ctx.recorder);
         return std::move(res.best);
       }});

  methods.push_back(
      {"Ant colony", true,
       [](const Graph& g, const MethodContext& ctx) {
         PercolationOptions popt;
         popt.seed = ctx.seed;
         auto init = percolation_partition(g, ctx.k, popt);
         AntColonyOptions opt;
         opt.objective = ctx.objective;
         opt.seed = ctx.seed;
         AntColony aco(g, ctx.k, opt);
         if (ctx.recorder != nullptr) ctx.recorder->start();
         auto res = aco.run(init, StopCondition::after_millis(ctx.budget_ms),
                            ctx.recorder);
         return std::move(res.best);
       }});

  methods.push_back(
      {"Fusion Fission", true,
       [](const Graph& g, const MethodContext& ctx) {
         FusionFissionOptions opt;
         opt.objective = ctx.objective;
         opt.seed = ctx.seed;
         FusionFission ff(g, ctx.k, opt);
         auto res = ff.run(StopCondition::after_millis(ctx.budget_ms),
                           ctx.recorder);
         return std::move(res.best);
       }});

  return methods;
}

const MethodSpec& method_by_name(const std::vector<MethodSpec>& methods,
                                 const std::string& name) {
  for (const auto& m : methods) {
    if (m.name == name) return m;
  }
  throw Error("unknown method: " + name);
}

}  // namespace ffp
