// Wall-clock budgets for the bench binaries.
//
// Defaults are sized so the whole bench directory runs in a few minutes on
// one core. Override with:
//   FFP_BENCH_BUDGET_MS  — per-metaheuristic-run budget (table benches)
//   FFP_FIG1_BUDGET_MS   — total trajectory length for the Figure-1 bench
// The paper ran minutes-to-an-hour on a 2006 Pentium 4; see EXPERIMENTS.md
// for the scaling discussion.
#pragma once

#include <cstdint>

namespace ffp {

double table_budget_ms();  ///< default 6000 ms
double fig1_budget_ms();   ///< default 8000 ms

/// Common bench seed (FFP_BENCH_SEED, default 2006).
std::uint64_t bench_seed();

}  // namespace ffp
