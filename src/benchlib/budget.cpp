#include "benchlib/budget.hpp"

#include "util/env.hpp"

namespace ffp {

double table_budget_ms() {
  return env_or("FFP_BENCH_BUDGET_MS", 6000.0);
}

double fig1_budget_ms() {
  return env_or("FFP_FIG1_BUDGET_MS", 8000.0);
}

std::uint64_t bench_seed() {
  return static_cast<std::uint64_t>(
      env_or("FFP_BENCH_SEED", static_cast<std::int64_t>(2006)));
}

}  // namespace ffp
