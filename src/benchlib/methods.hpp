// The Table-1 method registry: every row of the paper's comparison, as a
// uniform callable. Chaco-family rows (linear / spectral / multilevel /
// percolation) are deterministic Cut minimizers evaluated under all three
// criteria; metaheuristic rows take a time budget and optimize the
// requested criterion directly (DESIGN.md §5.2).
//
// Every row is built from the solver registry (solver/registry.hpp): a row
// is a paper label plus a registry spec string, so the construction logic
// lives in exactly one place and `ffp_part --method <row>` and the benches
// run the identical solver. Spectral/multilevel rows carry the final k-way
// greedy refinement — the analog of Chaco's REFINE_PARTITION, which the
// paper enables ("we use the REFINE PARTITION parameter which increases
// considerably the quality of results"); "KL" rows additionally refine
// inside the recursion.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "metaheuristics/anytime.hpp"
#include "partition/objectives.hpp"
#include "partition/partition.hpp"
#include "solver/solver.hpp"

namespace ffp {

struct MethodContext {
  int k = 32;
  ObjectiveKind objective = ObjectiveKind::MinMaxCut;  ///< metaheuristics only
  double budget_ms = 1500.0;                           ///< metaheuristics only
  std::uint64_t seed = 1;
  AnytimeRecorder* recorder = nullptr;                 ///< optional
};

struct MethodSpec {
  std::string name;           ///< the paper's row label
  std::string solver_spec;    ///< registry spec this row is built from
  bool is_metaheuristic;      ///< true: budgeted + objective-aware
  SolverPtr solver;           ///< the constructed solver

  /// Runs the row's solver under the context's budget/objective/seed.
  Partition run(const Graph& g, const MethodContext& ctx) const;
};

/// All 17 rows of Table 1, in the paper's order.
std::vector<MethodSpec> table1_methods();

/// Look up a single row by its label (throws if unknown).
const MethodSpec& method_by_name(const std::vector<MethodSpec>& methods,
                                 const std::string& name);

/// The registry spec behind a Table-1 row label (throws if unknown) — lets
/// tools accept either paper labels or raw registry specs.
std::string table1_spec(const std::string& name);

}  // namespace ffp
