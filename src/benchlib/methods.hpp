// The Table-1 method registry: every row of the paper's comparison, as a
// uniform callable. Chaco-family rows (linear / spectral / multilevel /
// percolation) are deterministic Cut minimizers evaluated under all three
// criteria; metaheuristic rows take a time budget and optimize the
// requested criterion directly (DESIGN.md §5.2).
//
// All spectral/multilevel rows get a final k-way greedy refinement pass —
// the analog of Chaco's REFINE_PARTITION, which the paper enables ("we use
// the REFINE PARTITION parameter which increases considerably the quality
// of results"). "KL" rows additionally refine inside the recursion.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "metaheuristics/anytime.hpp"
#include "partition/objectives.hpp"
#include "partition/partition.hpp"

namespace ffp {

struct MethodContext {
  int k = 32;
  ObjectiveKind objective = ObjectiveKind::MinMaxCut;  ///< metaheuristics only
  double budget_ms = 1500.0;                           ///< metaheuristics only
  std::uint64_t seed = 1;
  AnytimeRecorder* recorder = nullptr;                 ///< optional
};

struct MethodSpec {
  std::string name;           ///< the paper's row label
  bool is_metaheuristic;      ///< true: budgeted + objective-aware
  std::function<Partition(const Graph&, const MethodContext&)> run;
};

/// All 17 rows of Table 1, in the paper's order.
std::vector<MethodSpec> table1_methods();

/// Look up a single row by its label (throws if unknown).
const MethodSpec& method_by_name(const std::vector<MethodSpec>& methods,
                                 const std::string& name);

}  // namespace ffp
