// EventLoopServer — the epoll serving front end: one thread multiplexing
// thousands of connections onto the shared ServiceHost engine, side by
// side with the thread-per-connection TcpServer (ffp_serve --event-loop
// picks this one). Same wire protocol, same policies, byte-identical
// results at identical seeds — the transports differ only in how many
// threads a connection costs (here: zero; the process runs the loop
// thread plus the engine's runners, nothing per client).
//
// Shape:
//   * Non-blocking accept (level-triggered epoll on the listener), with
//     TcpServer's overload shedding verbatim: a connection beyond
//     `max_clients` is told code "overloaded" (+ retry-after hint) and
//     closed immediately, never queued.
//   * Per-connection read state machine: incremental recv into a line
//     buffer with LineReader's framing semantics (newline-delimited,
//     bounded line length, a final unterminated line still counts), each
//     complete line fed to the connection's ServiceSession.
//   * Per-connection write state machine: responses append to an
//     outbound buffer under a lock — engine runner threads deliver
//     completions there via the session's async terminal callbacks — and
//     an eventfd wakeup tells the loop to flush. EPOLLOUT handles the
//     slow-reader tail; a peer that stops reading for `write_timeout_ms`
//     is dropped (the write-deadline policy, loop edition).
//   * Idle reaping: no request for `idle_timeout_ms` → structured
//     "timeout" error, close — a silent client cannot hold a slot.
//   * Clean client EOF keeps the connection until its jobs finish and
//     every claimed result has flushed (piped-batch semantics), without
//     blocking the loop.
//   * FFP_FAULT points fire here exactly like in net.cpp: short_read,
//     torn_write, conn_drop, accept_fail, delay_response — the chaos
//     suite runs against both transports.
//   * request_stop() is async-signal-safe (eventfd write); the drain
//     mirrors TcpServer: stop accepting, tear sessions down (cancelling
//     their jobs), then shut the scheduler down.
#pragma once

#include <memory>

#include "service/net.hpp"
#include "service/service.hpp"

namespace ffp {

struct EventLoopOptions {
  int port = 0;                ///< 127.0.0.1 port; 0 picks ephemeral
  unsigned max_clients = 1024; ///< live connections; beyond this, shed
  /// A connection idle this long is reaped (structured `timeout` error,
  /// then close). <= 0 disables reaping.
  double idle_timeout_ms = 30000;
  /// How long a connection may sit with unflushed response bytes before
  /// it is dropped as a dead reader. <= 0 waits forever.
  double write_timeout_ms = 10000;
  /// The retry-after hint shed connections are sent.
  double overload_retry_after_ms = 250;
  /// Per-connection policy. async_results is forced on and the teardown
  /// wait forced negative (no-wait) — the loop thread never blocks.
  SessionPolicy session;
};

class EventLoopServer {
 public:
  /// Binds the listener (throws ffp::Error when the port is taken). The
  /// host must outlive the server.
  EventLoopServer(ServiceHost& host, EventLoopOptions options);
  ~EventLoopServer();

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  int port() const { return port_; }

  /// Serves until a stop: request_stop(), or an allowed client shutdown
  /// op. Drains before returning. Call once, from the thread that owns
  /// the loop.
  void run();

  /// Async-signal-safe stop request (eventfd write); idempotent.
  void request_stop() noexcept;

 private:
  struct Conn;
  struct LoopState;

  ServiceHost& host_;
  EventLoopOptions options_;
  FdHandle listener_;
  int port_ = 0;
  FdHandle epoll_;
  FdHandle wake_;  ///< completion wakeup (runner threads write)
  FdHandle stop_;  ///< stop request (signal handlers write)
  std::shared_ptr<LoopState> state_;
};

}  // namespace ffp
