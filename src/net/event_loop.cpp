#include "net/event_loop.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <map>
#include <vector>

#include "util/fault.hpp"
#include "util/timer.hpp"

namespace ffp {

namespace {

/// LineReader's framing bound, loop edition: a peer streaming an
/// unbounded line is a protocol error, not an allocation.
constexpr std::size_t kMaxLineBytes = 1u << 26;

/// recv() chunk per iteration; level-triggered epoll re-notifies, so the
/// size only trades syscalls against loop fairness.
constexpr std::size_t kReadChunk = 1u << 14;

/// Read iterations per readiness event before yielding back to the loop —
/// one firehose connection must not starve the other thousands.
constexpr int kMaxReadsPerEvent = 64;

void make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  FFP_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
            "fcntl(O_NONBLOCK) failed: errno ", errno);
}

FdHandle make_eventfd() {
  const int fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  FFP_CHECK(fd >= 0, "eventfd creation failed: errno ", errno);
  return FdHandle(fd);
}

void drain_eventfd(int fd) {
  std::uint64_t count = 0;
  [[maybe_unused]] const ssize_t n = ::read(fd, &count, sizeof(count));
}

/// Signals an eventfd. write(2) is async-signal-safe; EAGAIN means a
/// wakeup is already pending — exactly as good.
void signal_eventfd(int fd) noexcept {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof(one));
}

}  // namespace

/// One connection's state machines. The loop thread owns everything
/// except the outbound buffer, which engine runner threads append to
/// through the session's emit closure (guarded by out_mu + the dead
/// flag); `session` is created and destroyed on the loop thread only.
struct EventLoopServer::Conn {
  FdHandle fd;
  int raw_fd = -1;  ///< survives fd.reset() for map bookkeeping

  // Read side (loop thread only).
  std::string inbuf;
  std::size_t inpos = 0;  ///< start of the first unconsumed byte
  bool read_closed = false;
  double last_activity_ms = 0;

  // Write side (shared with emit closures).
  std::mutex out_mu;
  std::string outbuf;
  std::size_t outpos = 0;
  bool dead = false;  ///< set under out_mu; emits become drops
  double write_stall_since_ms = -1;  ///< -1: not stalled
  bool want_write = false;  ///< current EPOLLOUT interest

  std::unique_ptr<ServiceSession> session;
};

/// What the emit closures share with the loop: the dirty list (which
/// connections grew response bytes) and the wakeup fd. Held by
/// shared_ptr so a straggler closure on a runner thread outlives run().
struct EventLoopServer::LoopState {
  std::mutex mu;
  std::vector<std::weak_ptr<Conn>> dirty;
  int wake_fd = -1;

  void mark_dirty(const std::weak_ptr<Conn>& conn) {
    {
      std::lock_guard lock(mu);
      dirty.push_back(conn);
    }
    signal_eventfd(wake_fd);
  }

  std::vector<std::weak_ptr<Conn>> take_dirty() {
    std::lock_guard lock(mu);
    return std::exchange(dirty, {});
  }
};

EventLoopServer::EventLoopServer(ServiceHost& host, EventLoopOptions options)
    : host_(host), options_(options) {
  FFP_CHECK(options_.max_clients >= 1,
            "EventLoopServer needs max_clients >= 1");
  // The loop's transports never block and never wait: sessions deliver
  // results through the async terminal callbacks, and teardown abandons
  // cancelled jobs immediately (the final scheduler shutdown bounds them).
  options_.session.async_results = true;
  options_.session.teardown_wait_ms = -1;
  listener_ = tcp_listen(options_.port, &port_);
  make_nonblocking(listener_.get());
  epoll_ = FdHandle(::epoll_create1(EPOLL_CLOEXEC));
  FFP_CHECK(epoll_.valid(), "epoll_create1 failed: errno ", errno);
  wake_ = make_eventfd();
  stop_ = make_eventfd();
  state_ = std::make_shared<LoopState>();
  state_->wake_fd = wake_.get();
}

EventLoopServer::~EventLoopServer() = default;

void EventLoopServer::request_stop() noexcept { signal_eventfd(stop_.get()); }

void EventLoopServer::run() {
  std::map<int, std::shared_ptr<Conn>> conns;
  const WallTimer clock;
  ServeStats& stats = host_.serve_stats();
  bool stopping = false;

  auto epoll_add = [&](int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    FFP_CHECK(::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) == 0,
              "epoll_ctl(ADD) failed: errno ", errno);
  };
  epoll_add(listener_.get(), EPOLLIN);
  epoll_add(wake_.get(), EPOLLIN);
  epoll_add(stop_.get(), EPOLLIN);

  auto set_write_interest = [&](Conn& c, bool want) {
    if (c.want_write == want || !c.fd.valid()) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.fd = c.raw_fd;
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, c.raw_fd, &ev) == 0) {
      c.want_write = want;
    }
  };

  /// Tears one connection down on the loop thread: emits go dead, the
  /// session cancels its jobs (no-wait), the fd leaves the epoll set and
  /// closes. The Conn shell may outlive this (an emit closure can hold
  /// the last reference briefly); everything left in it is inert.
  auto drop = [&](const std::shared_ptr<Conn>& c) {
    {
      std::lock_guard lock(c->out_mu);
      if (c->dead) return;
      c->dead = true;
    }
    (void)::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, c->raw_fd, nullptr);
    c->session.reset();
    c->fd.reset();
    conns.erase(c->raw_fd);
    stats.connections_open.fetch_sub(1, std::memory_order_relaxed);
  };

  /// Flushes what it can without blocking. Returns false when the
  /// connection must be dropped (peer gone, or an injected tear).
  auto flush = [&](const std::shared_ptr<Conn>& c) -> bool {
    std::lock_guard lock(c->out_mu);
    if (c->dead || !c->fd.valid()) return true;
    while (c->outpos < c->outbuf.size()) {
      if (fault::fire(fault::Point::ConnDrop)) return false;
      std::size_t chunk = c->outbuf.size() - c->outpos;
      const bool torn = fault::fire(fault::Point::TornWrite);
      if (torn) chunk = std::max<std::size_t>(1, chunk / 2);
      const ssize_t n =
          ::send(c->fd.get(), c->outbuf.data() + c->outpos, chunk,
                 MSG_NOSIGNAL | MSG_DONTWAIT);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          if (c->write_stall_since_ms < 0) {
            c->write_stall_since_ms = clock.elapsed_millis();
          }
          return true;  // EPOLLOUT resumes us
        }
        return false;  // peer vanished
      }
      c->outpos += static_cast<std::size_t>(n);
      if (torn) return false;  // the tear drops the connection
    }
    c->outbuf.clear();
    c->outpos = 0;
    c->write_stall_since_ms = -1;
    return true;
  };

  /// After a flush: adjust EPOLLOUT interest (outside out_mu is fine —
  /// only the loop thread touches interest).
  auto settle_write_interest = [&](const std::shared_ptr<Conn>& c) {
    bool pending = false;
    {
      std::lock_guard lock(c->out_mu);
      pending = c->outpos < c->outbuf.size();
    }
    set_write_interest(*c, pending);
  };

  /// Clean-EOF reap: a read-closed connection with no unfinished jobs, no
  /// unclaimed results and an empty outbound buffer has nothing left to
  /// say — the loop edition of TcpServer's drain-then-close.
  auto reap_if_finished = [&](const std::shared_ptr<Conn>& c) {
    if (!c->read_closed || c->session == nullptr) return;
    if (c->session->pending_work() > 0) return;
    bool pending = false;
    {
      std::lock_guard lock(c->out_mu);
      pending = c->outpos < c->outbuf.size();
    }
    if (!pending) drop(c);
  };

  /// Consumes every complete line in the inbuf (plus, at EOF, a final
  /// unterminated one — LineReader's rule). Returns false when the
  /// connection must be dropped.
  auto process_lines = [&](const std::shared_ptr<Conn>& c) -> bool {
    for (;;) {
      const auto nl = c->inbuf.find('\n', c->inpos);
      if (nl == std::string::npos) {
        if (c->inbuf.size() - c->inpos > kMaxLineBytes) {
          std::lock_guard lock(c->out_mu);
          c->outbuf += format_error("", "request line exceeds the size limit",
                                    ErrCode::BadRequest);
          c->outbuf += '\n';
          return false;
        }
        if (c->read_closed && c->inpos < c->inbuf.size()) {
          // Final unterminated line.
          const std::string line = c->inbuf.substr(c->inpos);
          c->inbuf.clear();
          c->inpos = 0;
          fault::maybe_delay();
          if (!c->session->handle_line(line)) {
            stopping = true;
            return false;
          }
        }
        break;
      }
      const std::string line = c->inbuf.substr(c->inpos, nl - c->inpos);
      c->inpos = nl + 1;
      fault::maybe_delay();
      if (!c->session->handle_line(line)) {
        // An allowed shutdown op: the bye is in the outbuf; flush it
        // best-effort, then stop the whole server (one stop path).
        stopping = true;
        return false;
      }
    }
    if (c->inpos > 0 && c->inpos == c->inbuf.size()) {
      c->inbuf.clear();
      c->inpos = 0;
    } else if (c->inpos > kReadChunk) {
      c->inbuf.erase(0, c->inpos);
      c->inpos = 0;
    }
    return true;
  };

  auto on_readable = [&](const std::shared_ptr<Conn>& c) {
    for (int i = 0; i < kMaxReadsPerEvent; ++i) {
      if (fault::fire(fault::Point::ConnDrop)) {
        drop(c);
        return;
      }
      char buf[kReadChunk];
      const std::size_t want =
          fault::fire(fault::Point::ShortRead) ? 1 : sizeof(buf);
      const ssize_t n = ::recv(c->fd.get(), buf, want, 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        drop(c);  // reset / torn peer
        return;
      }
      if (n == 0) {
        c->read_closed = true;
        break;
      }
      c->inbuf.append(buf, static_cast<std::size_t>(n));
      c->last_activity_ms = clock.elapsed_millis();
    }
    if (!process_lines(c) || !flush(c)) {
      (void)flush(c);  // best-effort goodbye (shutdown bye, error line)
      drop(c);
      return;
    }
    settle_write_interest(c);
    reap_if_finished(c);
  };

  auto accept_new = [&] {
    for (;;) {
      const int raw = ::accept4(listener_.get(), nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (raw < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        std::fprintf(stderr, "ffp_serve: accept error: errno %d\n", errno);
        return;
      }
      FdHandle fd(raw);
      if (fault::fire(fault::Point::AcceptFail)) continue;  // injected drop
      if (conns.size() >= options_.max_clients) {
        // Overload shedding, TcpServer policy: immediate structured
        // rejection, never a queue slot. Best-effort single send.
        stats.sheds.fetch_add(1, std::memory_order_relaxed);
        const std::string line =
            format_error("",
                         "server at capacity (" +
                             std::to_string(options_.max_clients) +
                             " clients); retry after backoff",
                         ErrCode::Overloaded,
                         options_.overload_retry_after_ms) +
            "\n";
        (void)::send(raw, line.data(), line.size(),
                     MSG_NOSIGNAL | MSG_DONTWAIT);
        continue;
      }

      auto conn = std::make_shared<Conn>();
      conn->raw_fd = raw;
      conn->fd = std::move(fd);
      conn->last_activity_ms = clock.elapsed_millis();
      // The emit closure runs on engine runner threads (async results,
      // progress streams) and on the loop thread itself (acks): append
      // under the lock, then wake the loop. The weak_ptr keeps a torn
      // connection from pinning its buffers forever.
      conn->session = std::make_unique<ServiceSession>(
          host_,
          [state = state_, wconn = std::weak_ptr<Conn>(conn)](
              const std::string& line) {
            const auto c = wconn.lock();
            if (c == nullptr) return;
            {
              std::lock_guard lock(c->out_mu);
              if (c->dead) return;
              c->outbuf += line;
              c->outbuf += '\n';
            }
            state->mark_dirty(wconn);
          },
          options_.session);
      conns.emplace(raw, conn);
      stats.connections_total.fetch_add(1, std::memory_order_relaxed);
      stats.connections_open.fetch_add(1, std::memory_order_relaxed);
      epoll_add(raw, EPOLLIN);
    }
  };

  std::vector<epoll_event> events(256);
  while (!stopping) {
    const int rc = ::epoll_wait(epoll_.get(), events.data(),
                                static_cast<int>(events.size()),
                                conns.empty() ? -1 : 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "ffp_serve: epoll error: errno %d\n", errno);
      break;
    }
    stats.loop_wakeups.fetch_add(1, std::memory_order_relaxed);

    for (int i = 0; i < rc && !stopping; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t ev = events[static_cast<std::size_t>(i)].events;
      if (fd == stop_.get()) {
        stopping = true;
        break;
      }
      if (fd == wake_.get()) {
        drain_eventfd(fd);
        for (const auto& wconn : state_->take_dirty()) {
          const auto c = wconn.lock();
          if (c == nullptr || c->dead) continue;
          if (!flush(c)) {
            drop(c);
            continue;
          }
          settle_write_interest(c);
          reap_if_finished(c);
        }
        continue;
      }
      if (fd == listener_.get()) {
        accept_new();
        continue;
      }
      const auto it = conns.find(fd);
      if (it == conns.end()) continue;
      const std::shared_ptr<Conn> c = it->second;
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0 && (ev & EPOLLIN) == 0) {
        drop(c);
        continue;
      }
      if ((ev & EPOLLOUT) != 0) {
        if (!flush(c)) {
          drop(c);
          continue;
        }
        settle_write_interest(c);
        reap_if_finished(c);
        if (c->dead) continue;
      }
      if ((ev & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) on_readable(c);
    }
    if (stopping) break;

    // Deadline tick: idle reap and write-stall drops. A 100 ms sweep over
    // every connection is noise next to epoll at these scales.
    const double now = clock.elapsed_millis();
    std::vector<std::shared_ptr<Conn>> snapshot;
    snapshot.reserve(conns.size());
    for (const auto& [fd, c] : conns) {
      (void)fd;
      snapshot.push_back(c);
    }
    std::vector<std::shared_ptr<Conn>> doomed;
    std::vector<std::shared_ptr<Conn>> idle;
    for (const auto& c : snapshot) {
      if (options_.write_timeout_ms > 0) {
        std::lock_guard lock(c->out_mu);
        if (c->write_stall_since_ms >= 0 &&
            now - c->write_stall_since_ms > options_.write_timeout_ms) {
          doomed.push_back(c);
          continue;
        }
      }
      if (options_.idle_timeout_ms > 0 && !c->read_closed &&
          now - c->last_activity_ms > options_.idle_timeout_ms) {
        idle.push_back(c);
        continue;
      }
      reap_if_finished(c);
    }
    for (const auto& c : doomed) drop(c);
    for (const auto& c : idle) {
      // The idle reaper's structured goodbye, best-effort.
      {
        std::lock_guard lock(c->out_mu);
        if (!c->dead) {
          c->outbuf += format_error(
              "", "idle timeout: no request within the deadline",
              ErrCode::Timeout);
          c->outbuf += '\n';
        }
      }
      (void)flush(c);
      drop(c);
    }
  }

  // Drain, TcpServer's shape: no new connections, flush what we can,
  // tear every session down (cancelling its jobs; no waiting on the
  // loop thread), then let the scheduler finish the running remainder.
  shutdown_both(listener_);
  std::vector<std::shared_ptr<Conn>> live;
  live.reserve(conns.size());
  for (const auto& [fd, c] : conns) {
    (void)fd;
    live.push_back(c);
  }
  for (const auto& c : live) {
    (void)flush(c);
    drop(c);
  }
  host_.engine().scheduler().shutdown();
}

}  // namespace ffp
