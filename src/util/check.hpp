// Invariant checking and the library-wide error type.
//
// FFP_CHECK is always on and is used at API boundaries (bad input is a user
// error and must surface as ffp::Error, never UB). FFP_DCHECK compiles out in
// release builds and guards internal invariants in hot loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ffp {

/// Exception thrown by all ffp components on invalid input or broken
/// invariants. Carries a human-readable message with source location.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Folds any streamable operands into one message string.
template <typename... Ts>
std::string check_message(const Ts&... parts) {
  std::ostringstream os;
  (os << ... << parts);
  return os.str();
}

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "FFP_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace ffp

#define FFP_CHECK(cond, ...)                                       \
  do {                                                             \
    if (!(cond)) [[unlikely]] {                                    \
      ::ffp::detail::check_failed(                                 \
          #cond, __FILE__, __LINE__,                               \
          ::ffp::detail::check_message("" __VA_ARGS__));           \
    }                                                              \
  } while (false)

#ifdef NDEBUG
// Release builds: provably zero-cost. The condition is still parsed (so a
// DCHECK can't silently bit-rot against an API change) but sits behind
// `if (false)` — the compiler folds the branch away and emits no code, and
// no operand is ever evaluated at runtime. This is what keeps the
// bounds_check on every Graph::neighbors / neighbor_weights call free in
// the metaheuristic hot loops. Message operands are discarded entirely.
#define FFP_DCHECK(cond, ...)   \
  do {                          \
    if (false) {                \
      static_cast<void>(cond);  \
    }                           \
  } while (false)
#else
#define FFP_DCHECK(cond, ...) FFP_CHECK(cond, __VA_ARGS__)
#endif
