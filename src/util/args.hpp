// Minimal command-line argument parser for the ffp tools: --flag value
// pairs, --switch booleans, and positional arguments, with typed access and
// a generated usage string. No external dependencies, deliberately small.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace ffp {

class ArgParser {
 public:
  /// Registers an option before parse(). `fallback` empty string means the
  /// option is a boolean switch.
  ArgParser& flag(const std::string& name, const std::string& fallback,
                  const std::string& help) {
    FFP_CHECK(!specs_.count(name), "duplicate flag --", name);
    specs_[name] = {fallback, help, false};
    return *this;
  }
  ArgParser& toggle(const std::string& name, const std::string& help) {
    FFP_CHECK(!specs_.count(name), "duplicate flag --", name);
    specs_[name] = {"false", help, true};
    return *this;
  }

  /// Parses argv. Throws ffp::Error on unknown flags or missing values.
  void parse(int argc, const char* const* argv) {
    program_ = argc > 0 ? argv[0] : "ffp";
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (starts_with(arg, "--")) {
        const std::string name(arg.substr(2));
        const auto it = specs_.find(name);
        FFP_CHECK(it != specs_.end(), "unknown flag --", name, "\n", usage());
        if (it->second.is_toggle) {
          values_[name] = "true";
        } else {
          FFP_CHECK(i + 1 < argc, "missing value for --", name);
          values_[name] = argv[++i];
        }
      } else {
        positional_.emplace_back(arg);
      }
    }
  }

  std::string get(const std::string& name) const {
    const auto spec = specs_.find(name);
    FFP_CHECK(spec != specs_.end(), "flag --", name, " was never registered");
    const auto it = values_.find(name);
    return it != values_.end() ? it->second : spec->second.fallback;
  }

  std::int64_t get_int(const std::string& name) const {
    const auto v = parse_int(get(name));
    FFP_CHECK(v.has_value(), "--", name, " expects an integer, got '",
              get(name), "'");
    return *v;
  }

  double get_double(const std::string& name) const {
    const auto v = parse_double(get(name));
    FFP_CHECK(v.has_value(), "--", name, " expects a number, got '",
              get(name), "'");
    return *v;
  }

  bool get_bool(const std::string& name) const { return get(name) == "true"; }

  bool was_set(const std::string& name) const { return values_.count(name) > 0; }

  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const {
    std::string out = "usage: " + program_ + " [flags] [args]\n";
    for (const auto& [name, spec] : specs_) {
      out += "  --" + name;
      if (!spec.is_toggle) out += " <" + (spec.fallback.empty() ? std::string("value") : spec.fallback) + ">";
      out += "  " + spec.help + "\n";
    }
    return out;
  }

 private:
  struct Spec {
    std::string fallback;
    std::string help;
    bool is_toggle = false;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string program_ = "ffp";
};

}  // namespace ffp
