// Small statistics accumulators used by tests and the bench harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace ffp {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile of a sample (copies and sorts; fine for bench-sized data).
inline double quantile(std::vector<double> xs, double q) {
  FFP_CHECK(!xs.empty(), "quantile of empty sample");
  FFP_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/// |a-b| <= atol + rtol*max(|a|,|b|), the comparison tests use throughout.
inline bool close(double a, double b, double rtol = 1e-9, double atol = 1e-12) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace ffp
