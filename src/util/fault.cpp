#include "util/fault.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace ffp::fault {

namespace {

struct Injector {
  std::atomic<bool> enabled{false};
  std::mutex mu;  ///< guards everything below
  double probability[kNumPoints] = {};
  double delay_ms = 100.0;
  std::int64_t max_fires = 0;  ///< 0 = unlimited
  std::int64_t fired = 0;
  Rng rng{1};
};

Injector& injector() {
  static Injector instance;
  return instance;
}

int point_index(std::string_view key) {
  if (key == "short_read") return static_cast<int>(Point::ShortRead);
  if (key == "torn_write") return static_cast<int>(Point::TornWrite);
  if (key == "delay_response") return static_cast<int>(Point::DelayResponse);
  if (key == "conn_drop") return static_cast<int>(Point::ConnDrop);
  if (key == "accept_fail") return static_cast<int>(Point::AcceptFail);
  if (key == "crash_after_append") {
    return static_cast<int>(Point::CrashAfterAppend);
  }
  if (key == "torn_checkpoint") return static_cast<int>(Point::TornCheckpoint);
  return -1;
}

void apply_spec(Injector& inj, const std::string& spec) {
  // Reset first so configure("") and a re-configure both start clean.
  for (double& p : inj.probability) p = 0.0;
  inj.delay_ms = 100.0;
  inj.max_fires = 0;
  inj.fired = 0;
  std::uint64_t seed = 1;

  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view pair =
        trim(semi == std::string_view::npos ? rest : rest.substr(0, semi));
    rest = semi == std::string_view::npos ? std::string_view()
                                          : rest.substr(semi + 1);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    FFP_CHECK(eq != std::string_view::npos,
              "FFP_FAULT: expected key=value, got '", std::string(pair), "'");
    const std::string_view key = trim(pair.substr(0, eq));
    const std::string_view value = trim(pair.substr(eq + 1));
    if (const int point = point_index(key); point >= 0) {
      const auto p = parse_double(value);
      FFP_CHECK(p.has_value() && *p >= 0.0 && *p <= 1.0, "FFP_FAULT: '",
                std::string(key), "' must be a probability in [0, 1]");
      inj.probability[point] = *p;
    } else if (key == "delay_ms") {
      const auto ms = parse_double(value);
      FFP_CHECK(ms.has_value() && *ms >= 0.0,
                "FFP_FAULT: 'delay_ms' must be >= 0");
      inj.delay_ms = *ms;
    } else if (key == "seed") {
      const auto s = parse_int(value);
      FFP_CHECK(s.has_value() && *s >= 0, "FFP_FAULT: 'seed' must be >= 0");
      seed = static_cast<std::uint64_t>(*s);
    } else if (key == "max_fires") {
      const auto n = parse_int(value);
      FFP_CHECK(n.has_value() && *n >= 0,
                "FFP_FAULT: 'max_fires' must be >= 0");
      inj.max_fires = *n;
    } else {
      FFP_CHECK(false, "FFP_FAULT: unknown key '", std::string(key),
                "' (short_read|torn_write|delay_response|conn_drop|"
                "accept_fail|crash_after_append|torn_checkpoint|"
                "delay_ms|seed|max_fires)");
    }
  }
  inj.rng.reseed(seed);

  bool any = false;
  for (const double p : inj.probability) any = any || p > 0.0;
  inj.enabled.store(any, std::memory_order_release);
}

/// One-time environment pickup: the first fire()/enabled() call loads
/// FFP_FAULT, so tools get chaos behavior with zero wiring.
void ensure_env_loaded() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* spec = std::getenv("FFP_FAULT");
    if (spec != nullptr && *spec != '\0') {
      Injector& inj = injector();
      std::lock_guard lock(inj.mu);
      apply_spec(inj, spec);
    }
  });
}

}  // namespace

bool enabled() {
  ensure_env_loaded();
  return injector().enabled.load(std::memory_order_acquire);
}

bool fire(Point point) {
  ensure_env_loaded();
  Injector& inj = injector();
  if (!inj.enabled.load(std::memory_order_acquire)) return false;
  std::lock_guard lock(inj.mu);
  const double p = inj.probability[static_cast<int>(point)];
  if (p <= 0.0) return false;
  if (inj.rng.uniform() >= p) return false;
  if (inj.max_fires > 0 && inj.fired >= inj.max_fires) {
    // Budget spent: the injector goes quiet so chaos runs converge.
    inj.enabled.store(false, std::memory_order_release);
    return false;
  }
  ++inj.fired;
  return true;
}

double delay_ms() {
  Injector& inj = injector();
  std::lock_guard lock(inj.mu);
  return inj.delay_ms;
}

void maybe_delay() {
  if (!fire(Point::DelayResponse)) return;
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(delay_ms()));
}

std::int64_t fires() {
  Injector& inj = injector();
  std::lock_guard lock(inj.mu);
  return inj.fired;
}

void configure(const std::string& spec) {
  ensure_env_loaded();  // settle the env race before tests take over
  Injector& inj = injector();
  std::lock_guard lock(inj.mu);
  apply_spec(inj, spec);
}

}  // namespace ffp::fault
