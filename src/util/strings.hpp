// Small string helpers used by the I/O layer and bench formatting.
#pragma once

#include <charconv>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ffp {

inline std::string_view trim(std::string_view s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string_view::npos) return {};
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

/// Whitespace-split into non-empty tokens.
inline std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r')) ++i;
    std::size_t j = i;
    while (j < s.size() && s[j] != ' ' && s[j] != '\t' && s[j] != '\r') ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

inline std::optional<std::int64_t> parse_int(std::string_view s) {
  std::int64_t v = 0;
  const auto* end = s.data() + s.size();
  auto [p, ec] = std::from_chars(s.data(), end, v);
  if (ec != std::errc() || p != end) return std::nullopt;
  return v;
}

inline std::optional<double> parse_double(std::string_view s) {
  double v = 0.0;
  const auto* end = s.data() + s.size();
  auto [p, ec] = std::from_chars(s.data(), end, v);
  if (ec != std::errc() || p != end) return std::nullopt;
  return v;
}

inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

/// printf-style formatting into std::string (bench tables).
template <typename... Args>
std::string format(const char* fmt, Args... args) {
  const int n = std::snprintf(nullptr, 0, fmt, args...);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}

}  // namespace ffp
