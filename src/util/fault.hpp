// Seeded fault injection for chaos-testing the service stack.
//
// The transport layer (service/net.cpp) and the protocol layer
// (service/protocol.cpp) carry named injection points; each call to
// fire() rolls a seeded RNG against that point's configured probability
// and tells the caller whether to inject. With no configuration every
// point is off and fire() is a single relaxed atomic load — the serving
// hot path pays nothing.
//
// Configuration comes from the FFP_FAULT environment variable (read once,
// at first use) or from fault::configure() in tests. The spec is
// ';'-separated key=value pairs; unknown keys fail loudly:
//
//   FFP_FAULT="conn_drop=0.1;short_read=0.5;seed=7;max_fires=4"
//
//   short_read=P      recv() returns at most 1 byte (exercises framing)
//   torn_write=P      send() writes a prefix, then drops the connection
//   delay_response=P  sleep delay_ms before the protocol action
//   conn_drop=P       the connection is dropped before the I/O
//   accept_fail=P     an accepted connection is destroyed immediately
//   crash_after_append=P  _exit(137) right after a journal record is made
//                     durable (persist/journal.cpp) — the kill -9-at-the-
//                     worst-moment drill for crash recovery
//   torn_checkpoint=P persist::atomic_write_file writes a truncated
//                     prefix straight to the final path, no rename — the
//                     legacy torn write the CRC framing must reject
//   delay_ms=N        sleep per delay_response fire (default 100)
//   seed=N            RNG seed (default 1)
//   max_fires=N       total faults across all points; once spent the
//                     injector goes quiet (default 0 = unlimited). This is
//                     what makes chaos tests convergent: probability 1.0
//                     with a fires budget injects exactly N faults, then
//                     the run completes cleanly.
//
// Each point's roll consumes from one global seeded stream, so a fixed
// seed gives a reproducible fault sequence for a fixed call order
// (thread interleavings permitting — chaos tests assert recovery, not a
// specific schedule).
#pragma once

#include <cstdint>
#include <string>

namespace ffp::fault {

enum class Point : int {
  ShortRead = 0,
  TornWrite,
  DelayResponse,
  ConnDrop,
  AcceptFail,
  CrashAfterAppend,
  TornCheckpoint,
};
inline constexpr int kNumPoints = 7;

/// True when any point has positive probability (and the fires budget is
/// not yet spent). Cheap: one relaxed atomic load.
bool enabled();

/// Rolls for `point`; true = the caller must inject the fault now. Lazily
/// reads FFP_FAULT on the first call ever (throws ffp::Error on a
/// malformed spec, so a typo'd variable fails loudly, not silently).
bool fire(Point point);

/// The configured sleep for DelayResponse fires, in milliseconds.
double delay_ms();

/// Sleeps delay_ms() when fire(DelayResponse) — the common inline form.
void maybe_delay();

/// Total faults injected since the last (re)configure.
std::int64_t fires();

/// (Re)configures from a spec string; "" turns every point off. Meant for
/// tests — production configuration is the FFP_FAULT environment variable.
void configure(const std::string& spec);

}  // namespace ffp::fault
