// Minimal thread pool for coarse-grained parallel work: independent
// portfolio restarts, parameter sweeps, and the fusion-fission batched
// engine's speculative phase (core/fusion_fission). Every parallel consumer
// in the repo is structured so results never depend on scheduling — tasks
// write to disjoint slots and all cross-task ordering happens on the
// submitting thread.
//
// Pools can be shared between independent clients (solver/worker_pool.hpp
// hands out process-wide pools); clients that share a pool must wait
// through a TaskGroup, which tracks only its own submissions, and must
// never block on the pool from inside one of its tasks.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace ffp {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0) {
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task. Use wait_idle() to join on completion of all tasks.
  void submit(std::function<void()> task) {
    {
      std::lock_guard lock(mu_);
      FFP_CHECK(!stopping_, "submit on stopped ThreadPool");
      tasks_.push(std::move(task));
      ++outstanding_;
    }
    cv_.notify_one();
  }

  /// Block until every submitted task has finished. Exceptions from tasks
  /// are rethrown here (first one wins).
  void wait_idle() {
    std::unique_lock lock(mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
    if (first_error_) {
      auto e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      try {
        task();
      } catch (...) {
        std::lock_guard lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::lock_guard lock(mu_);
        if (--outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::int64_t outstanding_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Run fn(i) for i in [0, n) across the pool's threads; blocks until done.
/// Only for pools with a single client — wait_idle() joins on EVERY
/// outstanding task; on a shared pool use a TaskGroup instead.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::int64_t n, Fn&& fn) {
  for (std::int64_t i = 0; i < n; ++i) {
    pool.submit([i, &fn] { fn(i); });
  }
  pool.wait_idle();
}

/// A completion scope over a subset of a pool's tasks: submit() wraps each
/// task with the group's own counter, so wait() joins exactly this group's
/// work even when other clients keep the same pool busy — what lets one
/// ThreadPool be shared by concurrent portfolio restarts that each run a
/// batched fusion-fission engine inside.
///
/// The first exception thrown by a task in the group is rethrown from
/// wait(). Tasks must not wait on the pool themselves (deadlock).
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool)
      : pool_(&pool), state_(std::make_shared<State>()) {}

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Waits for stragglers so the shared state never outlives its tasks'
  /// captured references. Prefer calling wait() explicitly (the destructor
  /// swallows task exceptions).
  ~TaskGroup() {
    std::unique_lock lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->outstanding == 0; });
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard lock(state_->mu);
      ++state_->outstanding;
    }
    pool_->submit([state = state_, task = std::move(task)] {
      try {
        task();
      } catch (...) {
        std::lock_guard lock(state->mu);
        if (!state->first_error) state->first_error = std::current_exception();
      }
      std::lock_guard lock(state->mu);
      if (--state->outstanding == 0) state->cv.notify_all();
    });
  }

  /// Blocks until every task submitted through THIS group has finished;
  /// rethrows the first task exception (once).
  void wait() {
    std::unique_lock lock(state_->mu);
    state_->cv.wait(lock, [this] { return state_->outstanding == 0; });
    if (state_->first_error) {
      auto e = state_->first_error;
      state_->first_error = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::int64_t outstanding = 0;
    std::exception_ptr first_error;
  };

  ThreadPool* pool_;
  std::shared_ptr<State> state_;
};

}  // namespace ffp
