// Minimal thread pool for embarrassingly parallel bench/test work
// (independent restarts, parameter sweeps). The partitioning algorithms
// themselves are deterministic and single-threaded; parallelism lives in the
// harness so results never depend on scheduling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/check.hpp"

namespace ffp {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0) {
    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueue a task. Use wait_idle() to join on completion of all tasks.
  void submit(std::function<void()> task) {
    {
      std::lock_guard lock(mu_);
      FFP_CHECK(!stopping_, "submit on stopped ThreadPool");
      tasks_.push(std::move(task));
      ++outstanding_;
    }
    cv_.notify_one();
  }

  /// Block until every submitted task has finished. Exceptions from tasks
  /// are rethrown here (first one wins).
  void wait_idle() {
    std::unique_lock lock(mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
    if (first_error_) {
      auto e = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      try {
        task();
      } catch (...) {
        std::lock_guard lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      {
        std::lock_guard lock(mu_);
        if (--outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::int64_t outstanding_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

/// Run fn(i) for i in [0, n) across the pool's threads; blocks until done.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::int64_t n, Fn&& fn) {
  for (std::int64_t i = 0; i < n; ++i) {
    pool.submit([i, &fn] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace ffp
