// Deterministic, portable random number generation.
//
// std::mt19937 + std::uniform_*_distribution are not bit-reproducible across
// standard libraries, so every stochastic component in ffp uses this
// xoshiro256** engine with our own distributions. Results are identical on
// every platform for a given seed.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace ffp {

/// splitmix64: used to expand a single 64-bit seed into engine state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0. Lemire's unbiased method.
  std::uint64_t below(std::uint64_t n) {
    FFP_DCHECK(n > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    FFP_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    have_spare_ = true;
    return u * f;
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }
  template <typename T>
  void shuffle(std::vector<T>& items) {
    shuffle(std::span<T>(items));
  }

  /// Uniformly pick an element.
  template <typename T>
  const T& pick(std::span<const T> items) {
    FFP_DCHECK(!items.empty());
    return items[below(items.size())];
  }
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>(items));
  }

  /// Sample an index from non-negative weights (linear scan roulette wheel).
  /// Returns weights.size() if total weight is zero.
  std::size_t weighted_pick(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) {
      FFP_DCHECK(w >= 0.0);
      total += w;
    }
    if (total <= 0.0) return weights.size();
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0.0) return i;
    }
    return weights.size() - 1;  // numeric fallthrough
  }

  /// Derive an independent child generator (for parallel work / subsystems).
  Rng split() { return Rng((*this)() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace ffp
