// Environment-variable configuration knobs for the bench harness.
#pragma once

#include <cstdlib>
#include <string>

#include "util/strings.hpp"

namespace ffp {

inline std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

inline double env_or(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const auto parsed = parse_double(v);
  return parsed ? *parsed : fallback;
}

inline std::int64_t env_or(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const auto parsed = parse_int(v);
  return parsed ? *parsed : fallback;
}

}  // namespace ffp
