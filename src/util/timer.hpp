// Wall-clock timing and time/step budget control for anytime algorithms.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace ffp {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_millis() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Runs `f()` and returns its wall-clock duration in seconds. The single
/// timing path for benches and examples: everything that reports a duration
/// (bench JSON, ASCII tables, example printouts) goes through WallTimer's
/// monotonic clock so the numbers agree with each other.
template <typename F>
double timed_seconds(F&& f) {
  WallTimer timer;
  static_cast<F&&>(f)();
  return timer.elapsed_seconds();
}

/// Stop condition shared by all anytime metaheuristics: whichever of the
/// wall-clock and step budgets runs out first ends the search. Either budget
/// may be unlimited.
class StopCondition {
 public:
  StopCondition() = default;

  static StopCondition after_millis(double ms) {
    StopCondition s;
    s.max_millis_ = ms;
    return s;
  }
  static StopCondition after_steps(std::int64_t steps) {
    StopCondition s;
    s.max_steps_ = steps;
    return s;
  }
  static StopCondition either(double ms, std::int64_t steps) {
    StopCondition s;
    s.max_millis_ = ms;
    s.max_steps_ = steps;
    return s;
  }

  /// Attaches an external cancellation flag (owned by the caller, must
  /// outlive every run using this condition). The service JobScheduler
  /// flips it to interrupt a running job; the solver then returns its
  /// best-so-far exactly as if the budget had run out.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_ = flag; }

  /// Arms the wall-clock. Algorithms call this once at the top of run().
  void start() { timer_.reset(); }

  bool done(std::int64_t steps_taken) const {
    if (steps_taken >= max_steps_) return true;
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return true;
    }
    // Checking the clock is ~20ns; amortize it in callers' hot loops by
    // testing only every few hundred steps if profiling ever shows it.
    return timer_.elapsed_millis() >= max_millis_;
  }

  double max_millis() const { return max_millis_; }
  std::int64_t max_steps() const { return max_steps_; }
  double elapsed_millis() const { return timer_.elapsed_millis(); }

 private:
  double max_millis_ = std::numeric_limits<double>::infinity();
  std::int64_t max_steps_ = std::numeric_limits<std::int64_t>::max();
  const std::atomic<bool>* cancel_ = nullptr;
  WallTimer timer_;
};

}  // namespace ffp
