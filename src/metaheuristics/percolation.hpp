// Percolation partitioning (§4.4): k colored liquids start from k seed
// vertices and drip through the graph; vertex v joins the color with the
// strongest bond, where
//
//   bond(v, Pi) = Σ_{e on the path from c_i to v} w(e) / 2^d,
//
// d being the number of vertices between e and c_i (edges decay
// geometrically with depth). Bonds over all colors are relaxed to a fixed
// point (the paper: "all bonds are recomputed at each step … the algorithm
// stops when no vertex moves to another partition").
//
// Used three ways, exactly as the paper does: standalone (Table 1 row),
// as the initializer for simulated annealing and ant colony, and as the
// fission cutter inside fusion-fission.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace ffp {

struct PercolationOptions {
  int max_rounds = 64;       ///< bond relaxation rounds (converges much sooner)
  std::uint64_t seed = 31;   ///< seed-vertex selection
};

/// Spread k seed vertices far apart (greedy farthest-point by BFS hops).
std::vector<VertexId> spread_seeds(const Graph& g, int k, Rng& rng);

/// Percolate from explicit seeds; returns the assignment (seed i -> part i).
/// Vertices unreachable from every seed join the nearest part by round-robin.
std::vector<int> percolate(const Graph& g, std::span<const VertexId> seeds,
                           const PercolationOptions& options = {});

/// Standalone percolation partition into k parts.
Partition percolation_partition(const Graph& g, int k,
                                const PercolationOptions& options = {});

/// Cuts the subgraph induced by `vertices` in two by percolation from a
/// far-apart seed pair; returns 0/1 labels aligned with `vertices`.
/// Disconnected subsets are split by components (balanced by weight).
std::vector<int> percolation_bisect(const Graph& g,
                                    std::span<const VertexId> vertices,
                                    Rng& rng);

/// Allocation-free variant for hot loops: labels land in `side` (resized to
/// vertices.size()). The fusion-fission fission path calls this once per
/// split with a reused buffer.
///
/// Reentrant worker entry point: all scratch is thread_local, the graph is
/// only read, and the result depends solely on (g, vertices, rng state) —
/// so any number of pool workers may bisect disjoint atom sets of the same
/// graph concurrently, each with its own Rng, and produce the same labels
/// they would have produced serially. The batched fusion-fission engine's
/// speculative phase leans on exactly this contract. When the parent
/// graph's edge weights are uniform the local CSR skips materializing its
/// weight lane entirely (the kernels substitute the constant), which cuts
/// the per-bisect memory traffic roughly in half on dense-neighborhood
/// families.
void percolation_bisect_into(const Graph& g,
                             std::span<const VertexId> vertices, Rng& rng,
                             std::vector<int>& side);

}  // namespace ffp
