#include "metaheuristics/percolation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "graph/connectivity.hpp"
#include "util/check.hpp"

namespace ffp {

namespace {

/// Multi-source Dijkstra with flow-aware edge lengths 1/(1+w): heavy flows
/// make regions "close", so farthest-point seeding puts more seeds where
/// traffic is dense — which is what balances the liquids' catchment areas.
std::vector<double> flow_distances(const Graph& g,
                                   std::span<const VertexId> sources) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (VertexId s : sources) {
    dist[static_cast<std::size_t>(s)] = 0.0;
    pq.push({0.0, s});
  }
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double nd = d + 1.0 / (1.0 + ws[i]);
      if (nd < dist[static_cast<std::size_t>(nbrs[i])]) {
        dist[static_cast<std::size_t>(nbrs[i])] = nd;
        pq.push({nd, nbrs[i]});
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<VertexId> spread_seeds(const Graph& g, int k, Rng& rng) {
  const VertexId n = g.num_vertices();
  FFP_CHECK(k >= 1 && k <= n, "seed count out of range");
  std::vector<VertexId> seeds;
  seeds.reserve(static_cast<std::size_t>(k));
  seeds.push_back(static_cast<VertexId>(rng.below(static_cast<std::uint64_t>(n))));

  // Greedy farthest point in flow distance; unreachable vertices (infinite
  // distance) are the farthest of all.
  for (int i = 1; i < k; ++i) {
    const auto dist = flow_distances(g, seeds);
    VertexId best = -1;
    double best_d = -1.0;
    for (VertexId v = 0; v < n; ++v) {
      if (std::find(seeds.begin(), seeds.end(), v) != seeds.end()) continue;
      const double d = dist[static_cast<std::size_t>(v)];
      if (d > best_d) {
        best_d = d;
        best = v;
      }
    }
    FFP_CHECK(best != -1, "not enough distinct vertices for seeds");
    seeds.push_back(best);
  }
  return seeds;
}

std::vector<int> percolate(const Graph& g, std::span<const VertexId> seeds,
                           const PercolationOptions& options) {
  const VertexId n = g.num_vertices();
  const int k = static_cast<int>(seeds.size());
  FFP_CHECK(k >= 1, "need at least one seed");

  // Phase 1 — synchronized dripping: all liquids advance one hop per round
  // ("the liquid starts on a place, and then drips gradually"). A liquid
  // only flows through territory it owns; a vertex reached by several
  // liquids in the same round goes to the strongest bond, where the bond
  // accumulates w(e)/2^d along the claiming path (§4.4's formula).
  std::vector<int> owner(static_cast<std::size_t>(n), -1);
  std::vector<double> bond(static_cast<std::size_t>(n), 0.0);
  std::vector<std::int32_t> depth(static_cast<std::size_t>(n), -1);

  std::vector<VertexId> frontier;
  for (int c = 0; c < k; ++c) {
    const VertexId s = seeds[static_cast<std::size_t>(c)];
    FFP_CHECK(s >= 0 && s < n, "seed out of range");
    FFP_CHECK(owner[static_cast<std::size_t>(s)] == -1, "duplicate seed");
    owner[static_cast<std::size_t>(s)] = c;
    bond[static_cast<std::size_t>(s)] = 0.0;  // path sum starts empty
    depth[static_cast<std::size_t>(s)] = 0;
    frontier.push_back(s);
  }

  std::vector<double> cand_bond(static_cast<std::size_t>(n), -1.0);
  std::vector<int> cand_owner(static_cast<std::size_t>(n), -1);
  std::vector<VertexId> touched;
  while (!frontier.empty()) {
    touched.clear();
    for (VertexId u : frontier) {
      const auto su = static_cast<std::size_t>(u);
      const double decay = std::ldexp(1.0, -std::min(depth[su], 50));
      const auto nbrs = g.neighbors(u);
      const auto ws = g.neighbor_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const auto sv = static_cast<std::size_t>(nbrs[i]);
        if (owner[sv] != -1) continue;  // already claimed
        const double b = bond[su] + ws[i] * decay;
        if (b > cand_bond[sv]) {
          if (cand_bond[sv] < 0.0) touched.push_back(nbrs[i]);
          cand_bond[sv] = b;
          cand_owner[sv] = owner[su];
        }
      }
    }
    frontier.clear();
    for (VertexId v : touched) {
      const auto sv = static_cast<std::size_t>(v);
      owner[sv] = cand_owner[sv];
      bond[sv] = cand_bond[sv];
      // Depth of the new vertex: one past the round it was claimed in —
      // approximate via the claiming neighbor's depth. Track max depth seen.
      std::int32_t d = 0;
      for (VertexId u : g.neighbors(v)) {
        const auto su = static_cast<std::size_t>(u);
        if (owner[su] == owner[sv] && depth[su] >= 0) {
          d = std::max(d, depth[su]);
        }
      }
      depth[sv] = d + 1;
      cand_bond[sv] = -1.0;
      cand_owner[sv] = -1;
      frontier.push_back(v);
    }
  }

  // Unreached vertices (disconnected from every seed): round-robin.
  int rr = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (owner[static_cast<std::size_t>(v)] == -1) owner[static_cast<std::size_t>(v)] = rr++ % k;
  }

  // Phase 2 — fixed point ("all bonds are recomputed at each step … stops
  // when no vertex moves"): boundary vertices re-attach to the neighboring
  // liquid that binds them hardest (direct attachment weight), seeds stay.
  std::vector<char> is_seed(static_cast<std::size_t>(n), 0);
  for (VertexId s : seeds) is_seed[static_cast<std::size_t>(s)] = 1;
  std::vector<int> part_size(static_cast<std::size_t>(k), 0);
  for (VertexId v = 0; v < n; ++v) ++part_size[static_cast<std::size_t>(owner[static_cast<std::size_t>(v)])];
  std::vector<double> attach(static_cast<std::size_t>(k), 0.0);
  for (int round = 0; round < options.max_rounds; ++round) {
    bool moved = false;
    for (VertexId v = 0; v < n; ++v) {
      const auto sv = static_cast<std::size_t>(v);
      if (is_seed[sv]) continue;
      const int own = owner[sv];
      if (part_size[static_cast<std::size_t>(own)] <= 1) continue;
      const auto nbrs = g.neighbors(v);
      const auto ws = g.neighbor_weights(v);
      static thread_local std::vector<int> colors;
      colors.clear();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const int c = owner[static_cast<std::size_t>(nbrs[i])];
        if (attach[static_cast<std::size_t>(c)] == 0.0) colors.push_back(c);
        attach[static_cast<std::size_t>(c)] += ws[i];
      }
      int best_c = own;
      double best_a = attach[static_cast<std::size_t>(own)];
      for (int c : colors) {
        if (attach[static_cast<std::size_t>(c)] > best_a + 1e-12) {
          best_a = attach[static_cast<std::size_t>(c)];
          best_c = c;
        }
      }
      for (int c : colors) attach[static_cast<std::size_t>(c)] = 0.0;
      attach[static_cast<std::size_t>(own)] = 0.0;
      if (best_c != own) {
        owner[sv] = best_c;
        --part_size[static_cast<std::size_t>(own)];
        ++part_size[static_cast<std::size_t>(best_c)];
        moved = true;
      }
    }
    if (!moved) break;
  }
  return owner;
}

Partition percolation_partition(const Graph& g, int k,
                                const PercolationOptions& options) {
  FFP_CHECK(k >= 1 && k <= g.num_vertices(), "k out of range");
  Rng rng(options.seed);
  const auto seeds = spread_seeds(g, k, rng);
  const auto assign = percolate(g, seeds, options);
  auto part = Partition::from_assignment(g, assign, k);

  // A liquid can end up holding only its seed (no internal edge at all),
  // which the ratio criteria treat as degenerate. Feed such starved parts
  // the most-attached neighboring vertex from a well-fed part.
  for (int round = 0; round < k; ++round) {
    int starving = -1;
    for (int q : part.nonempty_parts()) {
      if (part.part_internal(q) <= 0.0) {
        starving = q;
        break;
      }
    }
    if (starving == -1) break;
    VertexId best_v = -1;
    Weight best_w = -1.0;
    for (VertexId v : part.members(starving)) {
      const auto nbrs = g.neighbors(v);
      const auto ws = g.neighbor_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const int q = part.part_of(nbrs[i]);
        if (q == starving || part.part_size(q) < 3) continue;
        if (ws[i] > best_w) {
          best_w = ws[i];
          best_v = nbrs[i];
        }
      }
    }
    if (best_v == -1) break;  // isolated seed: nothing reasonable to feed it
    part.move(best_v, starving);
  }
  return part;
}

std::vector<int> percolation_bisect(const Graph& g,
                                    std::span<const VertexId> vertices,
                                    Rng& rng) {
  FFP_CHECK(vertices.size() >= 2, "cannot bisect fewer than two vertices");
  const auto sub = induced_subgraph(g, vertices);

  const auto comps = connected_components(sub.graph);
  if (comps.count > 1) {
    // Assign whole components to sides, heaviest first, lighter side first —
    // a balanced split that never cuts an edge.
    auto groups = comps.groups();
    std::sort(groups.begin(), groups.end(),
              [](const auto& a, const auto& b) { return a.size() > b.size(); });
    std::vector<int> side(vertices.size(), 0);
    double w0 = 0.0, w1 = 0.0;
    for (const auto& grp : groups) {
      double gw = 0.0;
      for (VertexId v : grp) gw += sub.graph.vertex_weight(v);
      const int s = w0 <= w1 ? 0 : 1;
      (s == 0 ? w0 : w1) += gw;
      for (VertexId v : grp) side[static_cast<std::size_t>(v)] = s;
    }
    // Both sides must be non-empty (single component impossible here).
    return side;
  }

  // Connected: percolate from a flow-far-apart pair (two farthest-point
  // sweeps in flow distance, so the cut falls along weak-flow boundaries).
  VertexId a = static_cast<VertexId>(
      rng.below(static_cast<std::uint64_t>(sub.graph.num_vertices())));
  for (int sweep = 0; sweep < 2; ++sweep) {
    const VertexId src[1] = {a};
    const auto dist = flow_distances(sub.graph, src);
    VertexId far = a;
    double far_d = -1.0;
    for (VertexId v = 0; v < sub.graph.num_vertices(); ++v) {
      const double d = dist[static_cast<std::size_t>(v)];
      if (std::isfinite(d) && d > far_d) {
        far_d = d;
        far = v;
      }
    }
    if (sweep == 0) a = far;  // second sweep finds the partner
    else if (far != a) {
      const VertexId seeds2[2] = {a, far};
      auto side2 = percolate(sub.graph,
                             std::span<const VertexId>(seeds2, 2), {});
      if (std::count(side2.begin(), side2.end(), 0) == 0)
        side2[static_cast<std::size_t>(a)] = 0;
      if (std::count(side2.begin(), side2.end(), 1) == 0)
        side2[static_cast<std::size_t>(far)] = 1;
      return side2;
    }
  }
  const VertexId seeds[2] = {a, a == 0 ? VertexId{1} : VertexId{0}};
  PercolationOptions popt;
  auto side = percolate(sub.graph, std::span<const VertexId>(seeds, 2), popt);
  // Guarantee non-empty sides.
  if (std::count(side.begin(), side.end(), 0) == 0) side[static_cast<std::size_t>(seeds[0])] = 0;
  if (std::count(side.begin(), side.end(), 1) == 0) side[static_cast<std::size_t>(seeds[1])] = 1;
  return side;
}

}  // namespace ffp
