#include "metaheuristics/percolation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "graph/connectivity.hpp"
#include "util/check.hpp"

namespace ffp {

namespace {

/// Multi-source Dijkstra with flow-aware edge lengths 1/(1+w): heavy flows
/// make regions "close", so farthest-point seeding puts more seeds where
/// traffic is dense — which is what balances the liquids' catchment areas.
std::vector<double> flow_distances(const Graph& g,
                                   std::span<const VertexId> sources) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (VertexId s : sources) {
    dist[static_cast<std::size_t>(s)] = 0.0;
    pq.push({0.0, s});
  }
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(v)]) continue;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double nd = d + 1.0 / (1.0 + ws[i]);
      if (nd < dist[static_cast<std::size_t>(nbrs[i])]) {
        dist[static_cast<std::size_t>(nbrs[i])] = nd;
        pq.push({nd, nbrs[i]});
      }
    }
  }
  return dist;
}

}  // namespace

std::vector<VertexId> spread_seeds(const Graph& g, int k, Rng& rng) {
  const VertexId n = g.num_vertices();
  FFP_CHECK(k >= 1 && k <= n, "seed count out of range");
  std::vector<VertexId> seeds;
  seeds.reserve(static_cast<std::size_t>(k));
  seeds.push_back(static_cast<VertexId>(rng.below(static_cast<std::uint64_t>(n))));

  // Greedy farthest point in flow distance; unreachable vertices (infinite
  // distance) are the farthest of all.
  for (int i = 1; i < k; ++i) {
    const auto dist = flow_distances(g, seeds);
    VertexId best = -1;
    double best_d = -1.0;
    for (VertexId v = 0; v < n; ++v) {
      if (std::find(seeds.begin(), seeds.end(), v) != seeds.end()) continue;
      const double d = dist[static_cast<std::size_t>(v)];
      if (d > best_d) {
        best_d = d;
        best = v;
      }
    }
    FFP_CHECK(best != -1, "not enough distinct vertices for seeds");
    seeds.push_back(best);
  }
  return seeds;
}

std::vector<int> percolate(const Graph& g, std::span<const VertexId> seeds,
                           const PercolationOptions& options) {
  const VertexId n = g.num_vertices();
  const int k = static_cast<int>(seeds.size());
  FFP_CHECK(k >= 1, "need at least one seed");

  // Phase 1 — synchronized dripping: all liquids advance one hop per round
  // ("the liquid starts on a place, and then drips gradually"). A liquid
  // only flows through territory it owns; a vertex reached by several
  // liquids in the same round goes to the strongest bond, where the bond
  // accumulates w(e)/2^d along the claiming path (§4.4's formula).
  std::vector<int> owner(static_cast<std::size_t>(n), -1);
  std::vector<double> bond(static_cast<std::size_t>(n), 0.0);
  std::vector<std::int32_t> depth(static_cast<std::size_t>(n), -1);

  std::vector<VertexId> frontier;
  for (int c = 0; c < k; ++c) {
    const VertexId s = seeds[static_cast<std::size_t>(c)];
    FFP_CHECK(s >= 0 && s < n, "seed out of range");
    FFP_CHECK(owner[static_cast<std::size_t>(s)] == -1, "duplicate seed");
    owner[static_cast<std::size_t>(s)] = c;
    bond[static_cast<std::size_t>(s)] = 0.0;  // path sum starts empty
    depth[static_cast<std::size_t>(s)] = 0;
    frontier.push_back(s);
  }

  std::vector<double> cand_bond(static_cast<std::size_t>(n), -1.0);
  std::vector<int> cand_owner(static_cast<std::size_t>(n), -1);
  std::vector<VertexId> touched;
  while (!frontier.empty()) {
    touched.clear();
    for (VertexId u : frontier) {
      const auto su = static_cast<std::size_t>(u);
      const double decay = std::ldexp(1.0, -std::min(depth[su], 50));
      const auto nbrs = g.neighbors(u);
      const auto ws = g.neighbor_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const auto sv = static_cast<std::size_t>(nbrs[i]);
        if (owner[sv] != -1) continue;  // already claimed
        const double b = bond[su] + ws[i] * decay;
        if (b > cand_bond[sv]) {
          if (cand_bond[sv] < 0.0) touched.push_back(nbrs[i]);
          cand_bond[sv] = b;
          cand_owner[sv] = owner[su];
        }
      }
    }
    frontier.clear();
    for (VertexId v : touched) {
      const auto sv = static_cast<std::size_t>(v);
      owner[sv] = cand_owner[sv];
      bond[sv] = cand_bond[sv];
      // Depth of the new vertex: one past the round it was claimed in —
      // approximate via the claiming neighbor's depth. Track max depth seen.
      std::int32_t d = 0;
      for (VertexId u : g.neighbors(v)) {
        const auto su = static_cast<std::size_t>(u);
        if (owner[su] == owner[sv] && depth[su] >= 0) {
          d = std::max(d, depth[su]);
        }
      }
      depth[sv] = d + 1;
      cand_bond[sv] = -1.0;
      cand_owner[sv] = -1;
      frontier.push_back(v);
    }
  }

  // Unreached vertices (disconnected from every seed): round-robin.
  int rr = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (owner[static_cast<std::size_t>(v)] == -1) owner[static_cast<std::size_t>(v)] = rr++ % k;
  }

  // Phase 2 — fixed point ("all bonds are recomputed at each step … stops
  // when no vertex moves"): boundary vertices re-attach to the neighboring
  // liquid that binds them hardest (direct attachment weight), seeds stay.
  std::vector<char> is_seed(static_cast<std::size_t>(n), 0);
  for (VertexId s : seeds) is_seed[static_cast<std::size_t>(s)] = 1;
  std::vector<int> part_size(static_cast<std::size_t>(k), 0);
  for (VertexId v = 0; v < n; ++v) ++part_size[static_cast<std::size_t>(owner[static_cast<std::size_t>(v)])];
  std::vector<double> attach(static_cast<std::size_t>(k), 0.0);
  for (int round = 0; round < options.max_rounds; ++round) {
    bool moved = false;
    for (VertexId v = 0; v < n; ++v) {
      const auto sv = static_cast<std::size_t>(v);
      if (is_seed[sv]) continue;
      const int own = owner[sv];
      if (part_size[static_cast<std::size_t>(own)] <= 1) continue;
      const auto nbrs = g.neighbors(v);
      const auto ws = g.neighbor_weights(v);
      static thread_local std::vector<int> colors;
      colors.clear();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const int c = owner[static_cast<std::size_t>(nbrs[i])];
        if (attach[static_cast<std::size_t>(c)] == 0.0) colors.push_back(c);
        attach[static_cast<std::size_t>(c)] += ws[i];
      }
      int best_c = own;
      double best_a = attach[static_cast<std::size_t>(own)];
      for (int c : colors) {
        if (attach[static_cast<std::size_t>(c)] > best_a + 1e-12) {
          best_a = attach[static_cast<std::size_t>(c)];
          best_c = c;
        }
      }
      for (int c : colors) attach[static_cast<std::size_t>(c)] = 0.0;
      attach[static_cast<std::size_t>(own)] = 0.0;
      if (best_c != own) {
        owner[sv] = best_c;
        --part_size[static_cast<std::size_t>(own)];
        ++part_size[static_cast<std::size_t>(best_c)];
        moved = true;
      }
    }
    if (!moved) break;
  }
  return owner;
}

Partition percolation_partition(const Graph& g, int k,
                                const PercolationOptions& options) {
  FFP_CHECK(k >= 1 && k <= g.num_vertices(), "k out of range");
  Rng rng(options.seed);
  const auto seeds = spread_seeds(g, k, rng);
  const auto assign = percolate(g, seeds, options);
  auto part = Partition::from_assignment(g, assign, k);

  // A liquid can end up holding only its seed (no internal edge at all),
  // which the ratio criteria treat as degenerate. Feed such starved parts
  // the most-attached neighboring vertex from a well-fed part.
  for (int round = 0; round < k; ++round) {
    int starving = -1;
    for (int q : part.nonempty_parts()) {
      if (part.part_internal(q) <= 0.0) {
        starving = q;
        break;
      }
    }
    if (starving == -1) break;
    VertexId best_v = -1;
    Weight best_w = -1.0;
    for (VertexId v : part.members(starving)) {
      const auto nbrs = g.neighbors(v);
      const auto ws = g.neighbor_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const int q = part.part_of(nbrs[i]);
        if (q == starving || part.part_size(q) < 3) continue;
        if (ws[i] > best_w) {
          best_w = ws[i];
          best_v = nbrs[i];
        }
      }
    }
    if (best_v == -1) break;  // isolated seed: nothing reasonable to feed it
    part.move(best_v, starving);
  }
  return part;
}

namespace {

/// Scratch for the in-place bisection the fusion-fission fission hot path
/// runs on every split. The member set is compacted into a tiny local CSR
/// once per call (one unsorted pass, buffers reused across calls), so the
/// component check, the two farthest-point sweeps, and both percolation
/// phases iterate dense 0..|set| arrays instead of chasing parent-graph ids
/// through membership stamps — the set's arcs are touched several times per
/// bisect, and the compact layout makes each touch a near-free cache hit.
/// Profiling drove this shape: the original induced_subgraph + Graph
/// construction per fission dominated the entire Algorithm 1 step.
struct BisectScratch {
  // Parent-indexed, epoch-stamped membership map (O(set) per call).
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;
  std::vector<std::int32_t> local;  // parent id -> local id while stamped

  // Local CSR over the set; local id == index into `vertices`. When the
  // parent graph's edge weights are uniform the weight lane stays
  // unmaterialized (empty) and the kernels substitute the constant — on
  // dense-neighborhood families (geometric) the lane was half the
  // compaction traffic for arcs whose value never varies.
  int n = 0;
  std::vector<std::int32_t> xadj;
  std::vector<std::int32_t> adj;
  std::vector<Weight> wgt;

  // Local working arrays (size n).
  std::vector<int> owner;  // -1 unclaimed, else 0/1 (or component id)
  std::vector<double> bond;
  std::vector<double> cand_bond;
  std::vector<int> cand_owner;
  std::vector<double> dist;
  std::vector<std::pair<double, int>> heap;  // Dijkstra min-heap
  std::vector<int> frontier, touched;

  void build(const Graph& g, std::span<const VertexId> vertices,
             bool uniform) {
    n = static_cast<int>(vertices.size());
    const auto gn = static_cast<std::size_t>(g.num_vertices());
    if (stamp.size() < gn) {
      stamp.resize(gn, 0);
      local.resize(gn);
    }
    if (++epoch == 0) {  // wrapped: stale stamps could collide
      std::fill(stamp.begin(), stamp.end(), 0);
      epoch = 1;
    }
    for (int i = 0; i < n; ++i) {
      const auto v = static_cast<std::size_t>(vertices[static_cast<std::size_t>(i)]);
      stamp[v] = epoch;
      local[v] = i;
    }
    const auto un = static_cast<std::size_t>(n);
    xadj.resize(un + 1);
    owner.assign(un, -1);
    cand_bond.assign(un, -1.0);
    cand_owner.assign(un, -1);
    bond.resize(un);
    dist.resize(un);
    adj.clear();
    wgt.clear();
    xadj[0] = 0;
    if (uniform) {
      for (int i = 0; i < n; ++i) {
        const VertexId v = vertices[static_cast<std::size_t>(i)];
        for (const VertexId nb : g.neighbors(v)) {
          const auto u = static_cast<std::size_t>(nb);
          if (stamp[u] == epoch) adj.push_back(local[u]);
        }
        xadj[static_cast<std::size_t>(i) + 1] =
            static_cast<std::int32_t>(adj.size());
      }
      return;
    }
    for (int i = 0; i < n; ++i) {
      const VertexId v = vertices[static_cast<std::size_t>(i)];
      const auto nbrs = g.neighbors(v);
      const auto ws = g.neighbor_weights(v);
      for (std::size_t j = 0; j < nbrs.size(); ++j) {
        const auto u = static_cast<std::size_t>(nbrs[j]);
        if (stamp[u] == epoch) {
          adj.push_back(local[u]);
          wgt.push_back(ws[j]);
        }
      }
      xadj[static_cast<std::size_t>(i) + 1] = static_cast<std::int32_t>(adj.size());
    }
  }
};

/// BFS/Dijkstra sweep in flow length 1/(1+w) over the local CSR; returns
/// the farthest reachable local vertex (== source when nothing else is)
/// and the number of reached vertices (the first sweep doubles as the
/// connectivity probe). Uniform edge weights make every flow length equal,
/// so the sweep degrades to plain BFS — no heap at all.
int farthest_local(BisectScratch& s, bool uniform, int source, int& reached) {
  reached = 1;
  if (uniform) {
    std::fill(s.dist.begin(), s.dist.begin() + s.n, -1.0);
    s.dist[static_cast<std::size_t>(source)] = 0.0;
    s.frontier.assign(1, source);
    int far = source;
    while (!s.frontier.empty()) {
      s.touched.clear();
      for (int v : s.frontier) {
        const double d = s.dist[static_cast<std::size_t>(v)];
        for (auto a = s.xadj[static_cast<std::size_t>(v)];
             a < s.xadj[static_cast<std::size_t>(v) + 1]; ++a) {
          const int u = s.adj[static_cast<std::size_t>(a)];
          if (s.dist[static_cast<std::size_t>(u)] < 0.0) {
            s.dist[static_cast<std::size_t>(u)] = d + 1.0;
            s.touched.push_back(u);
            ++reached;
          }
        }
      }
      if (!s.touched.empty()) far = s.touched.back();
      s.frontier.swap(s.touched);
    }
    return far;
  }

  std::fill(s.dist.begin(), s.dist.begin() + s.n,
            std::numeric_limits<double>::infinity());
  s.dist[static_cast<std::size_t>(source)] = 0.0;
  s.heap.clear();
  s.heap.push_back({0.0, source});
  int far = source;
  double far_d = 0.0;
  while (!s.heap.empty()) {
    std::pop_heap(s.heap.begin(), s.heap.end(), std::greater<>());
    const auto [d, v] = s.heap.back();
    s.heap.pop_back();
    if (d > s.dist[static_cast<std::size_t>(v)]) continue;
    if (d > far_d) {
      far_d = d;
      far = v;
    }
    for (auto a = s.xadj[static_cast<std::size_t>(v)];
         a < s.xadj[static_cast<std::size_t>(v) + 1]; ++a) {
      const int u = s.adj[static_cast<std::size_t>(a)];
      const double nd = d + 1.0 / (1.0 + s.wgt[static_cast<std::size_t>(a)]);
      if (nd < s.dist[static_cast<std::size_t>(u)]) {
        if (s.dist[static_cast<std::size_t>(u)] ==
            std::numeric_limits<double>::infinity()) {
          ++reached;
        }
        s.dist[static_cast<std::size_t>(u)] = nd;
        s.heap.push_back({nd, u});
        std::push_heap(s.heap.begin(), s.heap.end(), std::greater<>());
      }
    }
  }
  return far;
}

/// The two-liquid percolation of percolate() on the local CSR (phase 1
/// synchronized dripping, phase 2 bond fixed point). Owners land in
/// s.owner; both sides are guaranteed non-empty on return. The kUniform
/// instantiation substitutes the constant edge weight `uw` for the
/// unmaterialized weight lane — identical arithmetic (every load would have
/// produced uw), none of the memory traffic.
template <bool kUniform>
void percolate_pair_local(BisectScratch& s, int seed0, int seed1,
                          int max_rounds, Weight uw) {
  const auto arc_weight = [&s, uw](std::int32_t a) {
    return kUniform ? uw : s.wgt[static_cast<std::size_t>(a)];
  };
  s.frontier.clear();
  for (int c = 0; c < 2; ++c) {
    const auto seed = static_cast<std::size_t>(c == 0 ? seed0 : seed1);
    s.owner[seed] = c;
    s.bond[seed] = 0.0;  // path sum starts empty
    s.frontier.push_back(c == 0 ? seed0 : seed1);
  }

  // Every frontier vertex of round r sits exactly r hops from its seed, so
  // the paper's 2^-d decay is a per-round constant — no per-vertex depth.
  for (int round = 0; !s.frontier.empty(); ++round) {
    const double decay = std::ldexp(1.0, -std::min(round, 50));
    s.touched.clear();
    for (int u : s.frontier) {
      const auto su = static_cast<std::size_t>(u);
      for (auto a = s.xadj[su]; a < s.xadj[su + 1]; ++a) {
        const auto sv = static_cast<std::size_t>(s.adj[static_cast<std::size_t>(a)]);
        if (s.owner[sv] != -1) continue;  // already claimed
        const double b = s.bond[su] + arc_weight(a) * decay;
        if (b > s.cand_bond[sv]) {
          if (s.cand_bond[sv] < 0.0) s.touched.push_back(static_cast<int>(sv));
          s.cand_bond[sv] = b;
          s.cand_owner[sv] = s.owner[su];
        }
      }
    }
    s.frontier.clear();
    for (int v : s.touched) {
      const auto sv = static_cast<std::size_t>(v);
      s.owner[sv] = s.cand_owner[sv];
      s.bond[sv] = s.cand_bond[sv];
      s.cand_bond[sv] = -1.0;
      s.cand_owner[sv] = -1;
      s.frontier.push_back(v);
    }
  }

  // Members unreachable from both seeds (the set need not be connected
  // here when percolation stalls): round-robin, as percolate() does.
  int rr = 0;
  int size[2] = {0, 0};
  for (int v = 0; v < s.n; ++v) {
    auto& o = s.owner[static_cast<std::size_t>(v)];
    if (o == -1) o = rr++ % 2;
    ++size[o];
  }

  // Phase 2 — bond fixed point on direct attachment weight; seeds stay.
  // Work-list driven: a vertex is re-examined only after a neighbor changed
  // sides, so convergence costs O(flips * deg) instead of full sweeps of
  // the set per round; max_rounds becomes a relaxation budget against
  // pathological oscillation. cand_bond doubles as the queued flag (it is
  // -1 for every member after phase 1).
  auto& queue = s.touched;
  queue.clear();
  for (int v = 0; v < s.n; ++v) {
    if (v == seed0 || v == seed1) continue;
    const auto sv = static_cast<std::size_t>(v);
    bool boundary = false;
    for (auto a = s.xadj[sv]; a < s.xadj[sv + 1] && !boundary; ++a) {
      boundary = s.owner[static_cast<std::size_t>(
                     s.adj[static_cast<std::size_t>(a)])] != s.owner[sv];
    }
    if (!boundary) continue;  // interior: nothing to re-attach to
    s.cand_bond[sv] = 1.0;  // queued
    queue.push_back(v);
  }
  std::int64_t budget = static_cast<std::int64_t>(max_rounds) * s.n;
  for (std::size_t head = 0; head < queue.size() && budget > 0; --budget) {
    const int v = queue[head++];
    const auto sv = static_cast<std::size_t>(v);
    s.cand_bond[sv] = -1.0;  // dequeued
    const int own = s.owner[sv];
    if (size[own] <= 1) continue;
    double attach[2] = {0.0, 0.0};
    for (auto a = s.xadj[sv]; a < s.xadj[sv + 1]; ++a) {
      attach[s.owner[static_cast<std::size_t>(s.adj[static_cast<std::size_t>(a)])]] +=
          arc_weight(a);
    }
    const int other = 1 - own;
    if (attach[other] > attach[own] + 1e-12) {
      s.owner[sv] = other;
      --size[own];
      ++size[other];
      for (auto a = s.xadj[sv]; a < s.xadj[sv + 1]; ++a) {
        const auto su = static_cast<std::size_t>(s.adj[static_cast<std::size_t>(a)]);
        if (static_cast<int>(su) != seed0 && static_cast<int>(su) != seed1 &&
            s.cand_bond[su] < 0.0) {
          s.cand_bond[su] = 1.0;
          queue.push_back(static_cast<int>(su));
        }
      }
    }
  }
  // Leave cand_bond clean (-1) in case the scratch is reused before build().
  std::fill(s.cand_bond.begin(), s.cand_bond.begin() + s.n, -1.0);

  // Guarantee non-empty sides.
  if (size[0] == 0) {
    s.owner[static_cast<std::size_t>(seed0)] = 0;
  } else if (size[1] == 0) {
    s.owner[static_cast<std::size_t>(seed1)] = 1;
  }
}

}  // namespace

void percolation_bisect_into(const Graph& g,
                             std::span<const VertexId> vertices, Rng& rng,
                             std::vector<int>& side) {
  FFP_CHECK(vertices.size() >= 2, "cannot bisect fewer than two vertices");
  const bool uniform = g.has_uniform_edge_weights();
  static thread_local BisectScratch s;
  s.build(g, vertices, uniform);

  int a = static_cast<int>(rng.below(vertices.size()));
  int reached = 0;
  a = farthest_local(s, uniform, a, reached);  // doubles as connectivity probe

  if (reached < s.n) {
    // Disconnected set. Label components (owner doubles as the label)…
    int comp_count = 0;
    auto& stack = s.frontier;
    for (int root = 0; root < s.n; ++root) {
      if (s.owner[static_cast<std::size_t>(root)] != -1) continue;
      const int id = comp_count++;
      s.owner[static_cast<std::size_t>(root)] = id;
      stack.assign(1, root);
      while (!stack.empty()) {
        const auto sv = static_cast<std::size_t>(stack.back());
        stack.pop_back();
        for (auto a2 = s.xadj[sv]; a2 < s.xadj[sv + 1]; ++a2) {
          const int u = s.adj[static_cast<std::size_t>(a2)];
          if (s.owner[static_cast<std::size_t>(u)] == -1) {
            s.owner[static_cast<std::size_t>(u)] = id;
            stack.push_back(u);
          }
        }
      }
    }
    // …then assign whole components to sides, largest first, lighter side
    // first — a balanced split that never cuts an edge. The group buffers
    // persist across calls (clear keeps capacity) so repeated disconnected
    // splits stop churning inner-vector allocations.
    static thread_local std::vector<std::vector<int>> groups;
    if (groups.size() < static_cast<std::size_t>(comp_count)) {
      groups.resize(static_cast<std::size_t>(comp_count));
    }
    for (int c = 0; c < comp_count; ++c) {
      groups[static_cast<std::size_t>(c)].clear();
    }
    for (int v = 0; v < s.n; ++v) {
      groups[static_cast<std::size_t>(s.owner[static_cast<std::size_t>(v)])]
          .push_back(v);
    }
    const auto live = groups.begin() + comp_count;
    std::sort(groups.begin(), live,
              [](const auto& a, const auto& b) { return a.size() > b.size(); });
    side.assign(vertices.size(), 0);
    double w0 = 0.0, w1 = 0.0;
    for (auto it = groups.begin(); it != live; ++it) {
      const auto& grp = *it;
      double gw = 0.0;
      for (int v : grp) {
        gw += g.vertex_weight(vertices[static_cast<std::size_t>(v)]);
      }
      const int sd = w0 <= w1 ? 0 : 1;
      (sd == 0 ? w0 : w1) += gw;
      for (int v : grp) side[static_cast<std::size_t>(v)] = sd;
    }
    // Both sides must be non-empty (single component impossible here).
    return;
  }

  // Connected: cut from a flow-far-apart pair (two farthest-point sweeps in
  // flow distance, so the cut falls along weak-flow boundaries); the first
  // sweep above already moved `a` to a far point.
  const int partner_sweep = farthest_local(s, uniform, a, reached);
  const int partner = partner_sweep != a ? partner_sweep : (a == 0 ? 1 : 0);
  if (uniform) {
    percolate_pair_local<true>(s, a, partner, PercolationOptions{}.max_rounds,
                               g.min_edge_weight());
  } else {
    percolate_pair_local<false>(s, a, partner, PercolationOptions{}.max_rounds,
                                0.0);
  }

  side.assign(s.owner.begin(), s.owner.begin() + s.n);
}

std::vector<int> percolation_bisect(const Graph& g,
                                    std::span<const VertexId> vertices,
                                    Rng& rng) {
  std::vector<int> side;
  percolation_bisect_into(g, vertices, rng, side);
  return side;
}

}  // namespace ffp
