// Anytime trajectory recording: every metaheuristic reports its best
// objective value over wall-clock time so the Figure-1 bench can print the
// same curves the paper plots.
#pragma once

#include <vector>

#include "util/timer.hpp"

namespace ffp {

class AnytimeRecorder {
 public:
  struct Point {
    double seconds;
    double best_value;
  };

  virtual ~AnytimeRecorder() = default;

  // start() and record() are virtual so harnesses can interpose: the
  // portfolio runner shares one recorder between concurrent restarts by
  // overriding them with a locked, monotone merge (solver/portfolio.cpp).
  virtual void start() {
    timer_.reset();
    points_.clear();
  }

  /// Record an improvement (callers pass the new best value).
  virtual void record(double best_value) {
    points_.push_back({timer_.elapsed_seconds(), best_value});
  }

  const std::vector<Point>& points() const { return points_; }

  /// Best value achieved at or before `seconds` (NaN if none yet).
  double value_at(double seconds) const {
    double best = std::numeric_limits<double>::quiet_NaN();
    for (const auto& pt : points_) {
      if (pt.seconds <= seconds) best = pt.best_value;
      else break;
    }
    return best;
  }

 private:
  WallTimer timer_;
  std::vector<Point> points_;
};

}  // namespace ffp
