// Ant colony k-partitioning with competing colonies (§3.2): k colonies —
// one per part — each with its own pheromone field on the arcs. Ants walk
// stochastically (pheromone^alpha · weight^beta, with a bonus on arcs their
// colony has never marked — the paper's "local heuristic forces ants to
// explore edges which have no pheromone"), deposit on the arcs they used
// (reinforced when the resulting partition improved — the backward update),
// and trails evaporate each iteration. A vertex belongs to the colony with
// the largest pheromone mass on its incident arcs. Ants from different
// colonies may stand on the same vertex; neither connectivity nor balance
// is forced — all per the paper.
//
// The colony internals the paper leaves to its French-journal companion [2]
// are filled with standard ACO choices (see DESIGN.md §2): four parameters,
// matching the paper's "ant colony has four parameters".
#pragma once

#include <cstdint>

#include "metaheuristics/anytime.hpp"
#include "partition/objectives.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ffp {

struct AntColonyOptions {
  ObjectiveKind objective = ObjectiveKind::MinMaxCut;
  // The four tunables (§6: "Ant colony has four parameters"):
  int ants_per_colony = 6;
  double evaporation = 0.08;     ///< per-iteration trail decay
  double deposit = 1.0;          ///< pheromone laid per visited arc
  double explore_bonus = 2.0;    ///< multiplier on arcs with no own pheromone
  // Fixed internals:
  double alpha = 1.0;            ///< pheromone exponent
  double beta = 1.0;             ///< edge-weight exponent
  int walk_length = 24;
  std::uint64_t seed = 11;
};

struct AntColonyResult {
  Partition best;
  double best_value = 0.0;
  std::int64_t iterations = 0;
};

class AntColony {
 public:
  AntColony(const Graph& g, int k, AntColonyOptions options);

  /// Runs from `initial` (the paper seeds it with percolation): initial
  /// ownership lays down the starting pheromone field.
  AntColonyResult run(const Partition& initial, const StopCondition& stop,
                      AnytimeRecorder* recorder = nullptr);

 private:
  const Graph* g_;
  int k_;
  AntColonyOptions options_;
};

}  // namespace ffp
