#include "metaheuristics/ant_colony.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ffp {

AntColony::AntColony(const Graph& g, int k, AntColonyOptions options)
    : g_(&g), k_(k), options_(options) {
  FFP_CHECK(k >= 2, "k must be >= 2");
  FFP_CHECK(g.num_vertices() >= k, "graph has fewer vertices than parts");
  FFP_CHECK(options.evaporation > 0.0 && options.evaporation < 1.0,
            "evaporation must be in (0,1)");
  FFP_CHECK(options.ants_per_colony >= 1, "need at least one ant per colony");
}

AntColonyResult AntColony::run(const Partition& initial,
                               const StopCondition& stop,
                               AnytimeRecorder* recorder) {
  FFP_CHECK(&initial.graph() == g_, "initial partition is for another graph");
  const ObjectiveFn& fn = objective(options_.objective);
  const Graph& g = *g_;
  Rng rng(options_.seed);

  const auto n = static_cast<std::size_t>(g.num_vertices());
  const auto arcs = static_cast<std::size_t>(g.num_arcs());
  const auto kk = static_cast<std::size_t>(k_);

  // tau[c * arcs + a]: pheromone of colony c on arc a. Seeded from the
  // initial ownership: arcs internal to part c carry trail for colony c.
  std::vector<double> tau(kk * arcs, 0.05);
  {
    const auto xadj = g.xadj();
    const auto adj = g.adj();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const int c = initial.part_of(v);
      for (ArcId a = xadj[static_cast<std::size_t>(v)];
           a < xadj[static_cast<std::size_t>(v) + 1]; ++a) {
        if (initial.part_of(adj[static_cast<std::size_t>(a)]) == c) {
          tau[static_cast<std::size_t>(c) * arcs + static_cast<std::size_t>(a)] = 1.0;
        }
      }
    }
  }

  Partition ownership = initial;
  double current_value = fn.evaluate(ownership);
  AntColonyResult result{ownership, current_value, 0};
  if (recorder != nullptr) recorder->record(result.best_value);

  std::vector<std::vector<ArcId>> colony_walks(kk);
  std::vector<double> probs;           // per-arc choice weights
  std::vector<double> mass(kk);        // per-colony pheromone mass at a vertex

  while (!stop.done(result.iterations)) {
    ++result.iterations;

    // --- 1. Motion of ants (forward trail is laid immediately — "ants
    //        always update the pheromone trails they are using").
    for (std::size_t c = 0; c < kk; ++c) {
      colony_walks[c].clear();
      auto members = ownership.members(static_cast<int>(c));
      for (int ant = 0; ant < options_.ants_per_colony; ++ant) {
        // Start on an owned vertex (or anywhere if the colony lost all).
        VertexId at =
            !members.empty()
                ? members[rng.below(members.size())]
                : static_cast<VertexId>(rng.below(static_cast<std::uint64_t>(n)));
        for (int step = 0; step < options_.walk_length; ++step) {
          const auto xadj = g.xadj();
          const ArcId first = xadj[static_cast<std::size_t>(at)];
          const ArcId last = xadj[static_cast<std::size_t>(at) + 1];
          if (first == last) break;  // isolated vertex
          probs.clear();
          for (ArcId a = first; a < last; ++a) {
            const double t = tau[c * arcs + static_cast<std::size_t>(a)];
            const double w =
                g.arc_weights()[static_cast<std::size_t>(a)];
            double score = std::pow(t + 1e-6, options_.alpha) *
                           std::pow(w + 1e-9, options_.beta);
            if (t <= 0.05) score *= options_.explore_bonus;  // unexplored arc
            probs.push_back(score);
          }
          const auto pick = rng.weighted_pick(probs);
          if (pick >= probs.size()) break;
          const ArcId arc = first + static_cast<ArcId>(pick);
          colony_walks[c].push_back(arc);
          tau[c * arcs + static_cast<std::size_t>(arc)] += options_.deposit * 0.2;
          at = g.adj()[static_cast<std::size_t>(arc)];
        }
      }
    }

    // --- 2. Ownership update: vertex belongs to the colony with the most
    //        pheromone on its incident arcs.
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto xadj = g.xadj();
      std::fill(mass.begin(), mass.end(), 0.0);
      for (ArcId a = xadj[static_cast<std::size_t>(v)];
           a < xadj[static_cast<std::size_t>(v) + 1]; ++a) {
        for (std::size_t c = 0; c < kk; ++c) {
          mass[c] += tau[c * arcs + static_cast<std::size_t>(a)];
        }
      }
      int best_c = ownership.part_of(v);
      double best_m = mass[static_cast<std::size_t>(best_c)];
      for (std::size_t c = 0; c < kk; ++c) {
        if (mass[c] > best_m) {
          best_m = mass[c];
          best_c = static_cast<int>(c);
        }
      }
      // Never empty a colony entirely (keeps k parts alive, as the
      // objective is defined for k parts).
      if (best_c != ownership.part_of(v) &&
          ownership.part_size(ownership.part_of(v)) > 1) {
        ownership.move(v, best_c);
      }
    }

    // --- 3. Evaluation + backward update ("if a path leads to food, the
    //        ant can update backward the path it used"): colonies reinforce
    //        their walks when the global partition improved.
    const double value = fn.evaluate(ownership);
    const bool improved = value < current_value;
    current_value = value;
    if (value < result.best_value) {
      result.best_value = value;
      result.best = ownership;
      if (recorder != nullptr) recorder->record(result.best_value);
    }
    const double reinforce =
        improved ? options_.deposit : options_.deposit * 0.15;
    for (std::size_t c = 0; c < kk; ++c) {
      for (ArcId a : colony_walks[c]) {
        tau[c * arcs + static_cast<std::size_t>(a)] += reinforce;
      }
    }

    // Trail evaporation ("pheromone trail intensity decreases over time").
    const double keep = 1.0 - options_.evaporation;
    for (auto& t : tau) t *= keep;
  }
  return result;
}

}  // namespace ffp
