// Simulated annealing adapted to k-partitioning, following §3.1 of the
// paper: the perturbation picks a random vertex and moves it — at high
// temperature to the part with the lowest internal weight ("the lowest
// partition regarding the sum of edges weight which are entirely inside
// partitions"), otherwise to a random *connected* part. Equilibrium is a
// fixed number of consecutive rejections; then the temperature drops.
// Connectivity of parts is not forced, exactly as the paper stresses.
//
// Interpretation notes (documented in DESIGN.md §2/§5): the paper's cooling
// formula D(T) = T·(tmax−tmin)/tmax is degenerate for its own tmin = 0
// setting (no decrease), so the ratio is used as a geometric cooling factor;
// tmax auto-calibrates to the move-delta scale when not set, since Cut and
// Mcut live on very different numeric ranges.
#pragma once

#include <cstdint>
#include <optional>

#include "metaheuristics/anytime.hpp"
#include "partition/objectives.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ffp {

struct AnnealingOptions {
  ObjectiveKind objective = ObjectiveKind::MinMaxCut;
  /// tmax <= 0 auto-calibrates from the median |Δ| of sampled random moves
  /// (the paper's single tuned parameter).
  double tmax = 0.0;
  // Schedule defaults are sized for millions of steps per second on modern
  // hardware: a fast schedule (small equilibrium / aggressive cooling)
  // freezes in milliseconds and plateaus far above what the slow schedule
  // reaches.
  double tmin_fraction = 1e-3;        ///< tmin = tmax · fraction
  double cooling = 0.99;              ///< geometric factor (see header note)
  int equilibrium_rejections = 1024;  ///< refusals per temperature plateau
  double high_temp_fraction = 0.5;    ///< T > frac·tmax => "high temperature"
  std::uint64_t seed = 5;
};

struct AnnealingResult {
  Partition best;
  double best_value = 0.0;
  std::int64_t steps = 0;
  std::int64_t accepted = 0;
  int coolings = 0;
};

class SimulatedAnnealing {
 public:
  SimulatedAnnealing(const Graph& g, int k, AnnealingOptions options);

  /// Runs from `initial` (the paper starts SA from percolation's output).
  AnnealingResult run(const Partition& initial, const StopCondition& stop,
                      AnytimeRecorder* recorder = nullptr);

 private:
  const Graph* g_;
  int k_;
  AnnealingOptions options_;
};

}  // namespace ffp
