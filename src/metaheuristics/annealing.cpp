#include "metaheuristics/annealing.hpp"

#include <algorithm>
#include <cmath>

#include "partition/objective_tracker.hpp"
#include "partition/part_scratch.hpp"
#include "util/check.hpp"

namespace ffp {

SimulatedAnnealing::SimulatedAnnealing(const Graph& g, int k,
                                       AnnealingOptions options)
    : g_(&g), k_(k), options_(options) {
  FFP_CHECK(k >= 2, "k must be >= 2");
  FFP_CHECK(g.num_vertices() >= k, "graph has fewer vertices than parts");
  FFP_CHECK(options.cooling > 0.0 && options.cooling < 1.0,
            "cooling factor must be in (0,1)");
}

AnnealingResult SimulatedAnnealing::run(const Partition& initial,
                                        const StopCondition& stop,
                                        AnytimeRecorder* recorder) {
  FFP_CHECK(&initial.graph() == g_, "initial partition is for another graph");
  Rng rng(options_.seed);

  // The tracker maintains the running objective in O(deg) per accepted
  // move — no hand-rolled sum, no periodic full-evaluate drift guard.
  ObjectiveTracker tracker(initial, options_.objective);

  AnnealingResult result{tracker.partition(), tracker.value(), 0, 0, 0};

  // Auto-calibration: tmax such that the typical uphill move is accepted
  // with ~60% probability at the start (classic rule of thumb). The median
  // of sampled |Δ| is used rather than the mean — zero-denominator penalty
  // terms (Mcut on singleton parts) would otherwise blow the scale up.
  double tmax = options_.tmax;
  if (tmax <= 0.0) {
    std::vector<double> samples;
    samples.reserve(256);
    for (int i = 0; i < 256; ++i) {
      const auto v = static_cast<VertexId>(
          rng.below(static_cast<std::uint64_t>(g_->num_vertices())));
      const int target = static_cast<int>(rng.below(static_cast<std::uint64_t>(k_)));
      if (target == tracker.partition().part_of(v)) continue;
      const double d = std::abs(tracker.move_delta(v, target));
      if (d > 0.0) samples.push_back(d);
    }
    std::sort(samples.begin(), samples.end());
    const double median =
        samples.empty() ? 1.0 : samples[samples.size() / 2];
    tmax = std::max(median, 1e-9) / std::log(1.0 / 0.6);
  }
  const double tmin = tmax * options_.tmin_fraction;
  double temperature = tmax;

  auto part_with_lowest_internal = [&]() {
    int best = -1;
    double best_w = std::numeric_limits<double>::infinity();
    for (int q : tracker.partition().nonempty_parts()) {
      if (tracker.partition().part_internal(q) < best_w) {
        best_w = tracker.partition().part_internal(q);
        best = q;
      }
    }
    return best;
  };

  if (recorder != nullptr) recorder->record(result.best_value);

  int rejections = 0;
  PartMarkScratch connected;  // scratch: parts adjacent to a vertex
  while (!stop.done(result.steps)) {
    ++result.steps;
    const Partition& current = tracker.partition();

    // Perturbation (§3.1): random vertex; target depends on temperature.
    const auto v = static_cast<VertexId>(
        rng.below(static_cast<std::uint64_t>(g_->num_vertices())));
    const int from = current.part_of(v);
    if (current.part_size(from) <= 1) continue;  // keep k parts alive

    int target = -1;
    if (temperature > options_.high_temp_fraction * tmax) {
      target = part_with_lowest_internal();
    } else {
      connected.begin(current.num_parts());
      for (VertexId u : g_->neighbors(v)) {
        const int q = current.part_of(u);
        if (q != from) connected.mark(q);
      }
      if (!connected.marked().empty()) {
        target = connected.marked()[rng.below(connected.marked().size())];
      }
    }
    if (target == -1 || target == from) continue;

    // trial_move's single neighbor scan covers both the acceptance test and
    // the apply — an accepted move no longer pays a second scan.
    const auto trial = tracker.trial_move(v, target);
    const double delta = trial.delta;
    const bool accept =
        delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature);
    if (accept) {
      tracker.move(trial);
      ++result.accepted;
      // Epsilon guard: dust-level "improvements" between equal-quality
      // states would otherwise trigger O(n) best copies and meaningless
      // recorder points on late plateaus.
      if (tracker.value() < result.best_value - 1e-12) {
        result.best_value = tracker.value();
        result.best = tracker.partition();
        if (recorder != nullptr) recorder->record(result.best_value);
      }
    } else {
      ++rejections;
      // Equilibrium: a fixed number of refused solutions since the last
      // cooling (§3.1) — cumulative, not consecutive: at high temperature
      // refusals are rare and a consecutive count would never trip.
      if (rejections >= options_.equilibrium_rejections) {
        rejections = 0;
        temperature *= options_.cooling;
        ++result.coolings;
        if (temperature <= tmin) {
          // Freezing point: restart the schedule from the best solution.
          temperature = tmax;
          tracker.reset(result.best, result.best_value);
        }
      }
    }
  }
  return result;
}

}  // namespace ffp
