#include "multilevel/mlff.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "partition/objective_terms.hpp"
#include "partition/objective_tracker.hpp"
#include "partition/part_scratch.hpp"
#include "util/check.hpp"

namespace ffp {

namespace {

/// Boundary-localized refinement burst: strictly improving single-vertex
/// moves only, seeded from the current cut boundary and re-queueing the
/// neighborhood of every applied move. One "attempt" examines one queued
/// vertex with a single O(deg) neighbor scan; all candidate targets are
/// then scored O(1) each via the shared move identity. Moves that would
/// empty a part are skipped, so exactly k parts survive the burst.
struct BurstStats {
  std::int64_t attempts = 0;
  std::int64_t moves = 0;
};

BurstStats boundary_refine(const Graph& g, ObjectiveTracker& tracker,
                           ObjectiveKind kind, std::int64_t budget,
                           std::uint64_t seed) {
  BurstStats stats;
  if (budget <= 0) return stats;
  const Partition& cur = tracker.partition();
  const auto n = static_cast<std::size_t>(g.num_vertices());

  std::vector<VertexId> queue;
  std::vector<char> queued(n, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const int part = cur.part_of(v);
    for (VertexId u : g.neighbors(v)) {
      if (cur.part_of(u) != part) {
        queue.push_back(v);
        queued[static_cast<std::size_t>(v)] = 1;
        break;
      }
    }
  }
  // Deterministic visit order, independent of how the boundary was listed.
  Rng rng(seed);
  rng.shuffle(queue);

  PartMarkScratch adjacent;
  std::size_t head = 0;
  while (head < queue.size() && stats.attempts < budget) {
    const VertexId v = queue[head++];
    queued[static_cast<std::size_t>(v)] = 0;
    ++stats.attempts;

    const int from = cur.part_of(v);
    if (cur.part_size(from) <= 1) continue;  // never empty a part

    adjacent.begin(cur.num_parts());
    Weight internal = 0.0;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const int q = cur.part_of(nbrs[i]);
      if (q == from) {
        internal += ws[i];
      } else {
        adjacent.add_weight(q, ws[i]);
      }
    }

    int best = -1;
    // Strictly improving with a small margin: the running value decreases
    // monotonically, so the burst can never cycle however vertices requeue.
    double best_delta = -1e-9;
    for (int q : adjacent.marked()) {
      const double delta = detail::move_delta_from_profile(
          cur, kind, v, q, internal, adjacent.weight(q));
      if (delta < best_delta) {
        best_delta = delta;
        best = q;
      }
    }
    if (best == -1) continue;

    tracker.move(v, best, best_delta);
    ++stats.moves;
    for (VertexId u : nbrs) {
      if (!queued[static_cast<std::size_t>(u)]) {
        queued[static_cast<std::size_t>(u)] = 1;
        queue.push_back(u);
      }
    }
  }
  return stats;
}

}  // namespace

MlffResult mlff_partition(const Graph& g, int k, const MlffOptions& options,
                          const StopCondition& stop,
                          AnytimeRecorder* recorder) {
  FFP_CHECK(k >= 2, "mlff needs k >= 2");
  FFP_CHECK(g.num_vertices() >= k, "graph has fewer vertices than parts");
  FFP_CHECK(options.coarse_n >= 0, "coarse_n must be >= 0");
  FFP_CHECK(options.refine_steps >= 0, "refine_steps must be >= 0");
  if (recorder != nullptr) recorder->start();

  // Derived sub-seeds: each stage owns one draw of the stream, so no stage's
  // consumption can shift another's and restarts stay independent.
  std::uint64_t stream = options.seed ^ 0x6d1cff00d5eedULL;
  const std::uint64_t coarsen_seed = splitmix64(stream);
  const std::uint64_t ff_seed = splitmix64(stream);

  // 1. Coarsen. min_vertices >= 2k guarantees the coarsest graph (which a
  // pairwise matching can at most halve past the threshold) still holds k
  // atoms.
  const std::int64_t derived =
      std::max<std::int64_t>(static_cast<std::int64_t>(k) * 64,
                             static_cast<std::int64_t>(g.num_vertices()) / 64);
  std::int64_t target = options.coarse_n > 0 ? options.coarse_n : derived;
  target = std::max<std::int64_t>(target, 2LL * k);
  CoarsenOptions copt;
  copt.min_vertices = static_cast<int>(
      std::min<std::int64_t>(target, g.num_vertices()));
  copt.matching = options.matching;
  copt.seed = coarsen_seed;
  const std::vector<CoarseLevel> chain = coarsen_chain(g, copt);
  const Graph& coarse = chain.empty() ? g : chain.back().coarse;

  // Projects a coarsest-level assignment up the whole chain to an
  // input-graph assignment (no refinement — checkpoints trade polish for
  // immediacy; the refined version lands with the final emit).
  const auto project_to_fine = [&chain](const std::vector<int>& at_coarse) {
    std::vector<int> cur = at_coarse;
    for (std::size_t l = chain.size(); l-- > 0;) {
      const auto& map = chain[l].fine_to_coarse;
      std::vector<int> fine(map.size());
      for (std::size_t v = 0; v < map.size(); ++v) {
        fine[v] = cur[static_cast<std::size_t>(map[v])];
      }
      cur = std::move(fine);
    }
    return cur;
  };

  // Warm start: project the restored input-graph assignment DOWN the
  // chain — each coarse vertex takes the part of its first (lowest-id)
  // fine constituent, which is deterministic and cheap. Parts can merge
  // away in the descent; the final keep-better guard below is what makes
  // the monotonicity contract hold regardless.
  double warm_value = std::numeric_limits<double>::infinity();
  std::shared_ptr<const std::vector<int>> coarse_warm;
  if (options.warm_start != nullptr) {
    FFP_CHECK(static_cast<VertexId>(options.warm_start->size()) ==
                  g.num_vertices(),
              "warm_start assignment covers ", options.warm_start->size(),
              " vertices, graph has ", g.num_vertices());
    // min of the re-evaluation and the checkpoint's stored rendering of
    // the same value — summation order can differ by an ulp, and the
    // monotonicity contract is against what the checkpoint reported.
    warm_value = std::min(
        objective(options.objective)
            .evaluate(Partition::from_assignment(g, *options.warm_start)),
        options.warm_start_value);
    std::vector<int> cur = *options.warm_start;
    for (const CoarseLevel& level : chain) {
      const auto& map = level.fine_to_coarse;
      std::vector<int> down(
          static_cast<std::size_t>(level.coarse.num_vertices()), -1);
      for (std::size_t v = 0; v < map.size(); ++v) {
        auto& slot = down[static_cast<std::size_t>(map[v])];
        if (slot == -1) slot = cur[v];
      }
      cur = std::move(down);
    }
    coarse_warm = std::make_shared<const std::vector<int>>(std::move(cur));
  }

  // Checkpoint plumbing: wrap the caller's sink so it always receives
  // input-graph assignments with input-graph objective values, and only
  // improvements over what it has already seen (a projected coarse best
  // is not guaranteed to improve at the fine level even when the coarse
  // value does).
  double emitted_best = warm_value;
  std::function<void(const std::vector<int>&, double)> coarse_sink;
  if (options.checkpoint_sink != nullptr && options.checkpoint_every_ms > 0) {
    coarse_sink = [&](const std::vector<int>& at_coarse, double) {
      const std::vector<int> fine = project_to_fine(at_coarse);
      const double fine_value =
          objective(options.objective)
              .evaluate(Partition::from_assignment(g, fine, k));
      if (fine_value >= emitted_best) return;
      emitted_best = fine_value;
      options.checkpoint_sink(fine, fine_value);
    };
  }

  // 2. Full fusion-fission on the coarsest graph, under the caller's stop.
  FusionFissionOptions ffopt;
  ffopt.objective = options.objective;
  ffopt.threads = options.threads;
  ffopt.batch = options.batch;
  ffopt.pool = options.pool;
  ffopt.budget = options.budget;
  ffopt.seed = ff_seed;
  ffopt.warm_start = coarse_warm;
  ffopt.checkpoint_every_ms = options.checkpoint_every_ms;
  ffopt.checkpoint_sink = coarse_sink;
  FusionFission ff(coarse, k, ffopt);
  FusionFissionResult coarse_res = ff.run(stop, nullptr);

  MlffResult out{Partition(g, 1), 0.0};
  out.levels = static_cast<int>(chain.size());
  out.coarse_vertices = coarse.num_vertices();
  out.coarse_value = coarse_res.best_value;
  out.coarse_steps = coarse_res.steps;
  out.fusions = coarse_res.fusions;
  out.fissions = coarse_res.fissions;
  out.reheats = coarse_res.reheats;
  out.batches = coarse_res.batches;

  // 3. Project level by level; after each projection run the boundary
  // burst on that level's graph, with the budget halving toward the fine
  // levels (coarse moves are cheap and shape everything below them).
  std::vector<int> parts(coarse_res.best.assignment().begin(),
                         coarse_res.best.assignment().end());
  std::int64_t level_budget = options.refine_steps;
  for (std::size_t l = chain.size(); l-- > 0;) {
    const Graph& fine_g = l == 0 ? g : chain[l - 1].coarse;
    const auto& map = chain[l].fine_to_coarse;
    std::vector<int> fine(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) {
      fine[v] = parts[static_cast<std::size_t>(map[v])];
    }
    parts = std::move(fine);

    const std::uint64_t level_seed = splitmix64(stream);
    if (level_budget > 0) {
      ObjectiveTracker tracker(
          Partition::from_assignment(fine_g, parts, k), options.objective);
      const BurstStats burst = boundary_refine(
          fine_g, tracker, options.objective, level_budget, level_seed);
      out.refine_attempts += burst.attempts;
      out.refine_moves += burst.moves;
      if (burst.moves > 0) {
        const auto refined = std::move(tracker).take();
        parts.assign(refined.assignment().begin(),
                     refined.assignment().end());
      }
    }
    level_budget /= 2;
  }

  out.best = chain.empty() ? std::move(coarse_res.best)
                           : Partition::from_assignment(g, parts, k);
  out.best.compact();
  out.best_value = objective(options.objective).evaluate(out.best);

  // Keep-better guard (the memetic never-worsen rule): a resumed run must
  // not report worse than the partition it restored, even when the
  // down-projection merged parts away and the coarse phase lost ground.
  if (options.warm_start != nullptr && warm_value < out.best_value) {
    out.best = Partition::from_assignment(g, *options.warm_start);
    out.best.compact();
    out.best_value = warm_value;
  }
  // Final checkpoint: the refined result, so a future resume starts from
  // exactly what this run reported.
  if (options.checkpoint_sink != nullptr && options.checkpoint_every_ms > 0 &&
      out.best_value < emitted_best) {
    const auto span = out.best.assignment();
    options.checkpoint_sink(std::vector<int>(span.begin(), span.end()),
                            out.best_value);
  }
  if (recorder != nullptr) recorder->record(out.best_value);
  return out;
}

}  // namespace ffp
