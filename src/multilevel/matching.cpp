#include "multilevel/matching.hpp"

#include <numeric>

namespace ffp {

namespace {

std::vector<VertexId> shuffled_order(VertexId n, Rng& rng) {
  std::vector<VertexId> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  return order;
}

}  // namespace

std::vector<VertexId> heavy_edge_matching(const Graph& g, Rng& rng) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> match(static_cast<std::size_t>(n), -1);
  for (VertexId v : shuffled_order(n, rng)) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    VertexId best = v;  // stay unmatched if no free neighbor
    Weight best_w = -1.0;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (match[static_cast<std::size_t>(nbrs[i])] == -1 && ws[i] > best_w) {
        best_w = ws[i];
        best = nbrs[i];
      }
    }
    match[static_cast<std::size_t>(v)] = best;
    match[static_cast<std::size_t>(best)] = v;
  }
  return match;
}

std::vector<VertexId> random_matching(const Graph& g, Rng& rng) {
  const VertexId n = g.num_vertices();
  std::vector<VertexId> match(static_cast<std::size_t>(n), -1);
  for (VertexId v : shuffled_order(n, rng)) {
    if (match[static_cast<std::size_t>(v)] != -1) continue;
    // Collect free neighbors, pick one uniformly.
    VertexId chosen = v;
    std::int64_t free_count = 0;
    for (VertexId u : g.neighbors(v)) {
      if (match[static_cast<std::size_t>(u)] == -1) {
        ++free_count;
        if (rng.below(static_cast<std::uint64_t>(free_count)) == 0) chosen = u;
      }
    }
    match[static_cast<std::size_t>(v)] = chosen;
    if (chosen != v) match[static_cast<std::size_t>(chosen)] = v;
  }
  return match;
}

}  // namespace ffp
