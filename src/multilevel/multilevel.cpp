#include "multilevel/multilevel.hpp"

#include <algorithm>
#include <numeric>

#include "graph/connectivity.hpp"
#include "partition/balance.hpp"
#include "refine/fm_bisection.hpp"
#include "refine/kway_fm.hpp"
#include "spectral/fiedler.hpp"
#include "util/check.hpp"

namespace ffp {

namespace {

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t s = seed ^ (salt * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

/// Greedy growing: BFS from a pseudo-peripheral vertex until side 0 holds
/// `target_fraction` of the vertex weight.
std::vector<int> greedy_grow_bisection(const Graph& g, double target_fraction,
                                       Rng& rng) {
  const VertexId n = g.num_vertices();
  std::vector<int> side(static_cast<std::size_t>(n), 1);
  const double target = g.total_vertex_weight() * target_fraction;
  const VertexId start =
      pseudo_peripheral_pair(g, static_cast<VertexId>(rng.below(
                                    static_cast<std::uint64_t>(n))))
          .first;
  std::vector<VertexId> frontier{start};
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  seen[static_cast<std::size_t>(start)] = 1;
  double acc = 0.0;
  std::size_t head = 0;
  while (acc < target && head < frontier.size()) {
    const VertexId v = frontier[head++];
    if (acc + g.vertex_weight(v) > target && acc > 0.0) continue;
    side[static_cast<std::size_t>(v)] = 0;
    acc += g.vertex_weight(v);
    for (VertexId u : g.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        frontier.push_back(u);
      }
    }
  }
  // Disconnected leftovers: fill side 0 from unvisited vertices if needed.
  for (VertexId v = 0; acc < target && v < n; ++v) {
    if (side[static_cast<std::size_t>(v)] == 1 &&
        !seen[static_cast<std::size_t>(v)]) {
      side[static_cast<std::size_t>(v)] = 0;
      acc += g.vertex_weight(v);
    }
  }
  // Guarantee both sides non-empty.
  const auto count0 = std::count(side.begin(), side.end(), 0);
  if (count0 == 0) side[0] = 0;
  if (count0 == n) side[static_cast<std::size_t>(n - 1)] = 1;
  return side;
}

std::vector<int> initial_bisection(const Graph& g, double target_fraction,
                                   const MultilevelOptions& options,
                                   std::uint64_t seed) {
  if (g.num_vertices() < 2) {
    return std::vector<int>(static_cast<std::size_t>(g.num_vertices()), 0);
  }
  if (options.initial == InitialPartitioner::SpectralBisection) {
    FiedlerOptions fopt;
    fopt.engine = FiedlerEngine::Lanczos;
    fopt.count = 1;
    fopt.seed = seed;
    const auto fres = fiedler_vectors(g, fopt);
    if (!fres.vectors.empty()) {
      // Weighted split at the target fraction along the Fiedler order.
      std::vector<VertexId> order(static_cast<std::size_t>(g.num_vertices()));
      std::iota(order.begin(), order.end(), 0);
      const auto& f = fres.vectors[0];
      std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        const double va = f[static_cast<std::size_t>(a)];
        const double vb = f[static_cast<std::size_t>(b)];
        return va != vb ? va < vb : a < b;
      });
      std::vector<int> side(static_cast<std::size_t>(g.num_vertices()), 1);
      const double target = g.total_vertex_weight() * target_fraction;
      double acc = 0.0;
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (i > 0 && acc >= target) break;
        acc += g.vertex_weight(order[i]);
        side[static_cast<std::size_t>(order[i])] = 0;
      }
      if (std::count(side.begin(), side.end(), 1) == 0) {
        side[static_cast<std::size_t>(order.back())] = 1;
      }
      return side;
    }
  }
  Rng rng(seed);
  return greedy_grow_bisection(g, target_fraction, rng);
}

}  // namespace

std::vector<int> multilevel_bisect(const Graph& g, double target_fraction,
                                   const MultilevelOptions& options,
                                   std::uint64_t seed) {
  FFP_CHECK(target_fraction > 0.0 && target_fraction < 1.0,
            "target fraction must be in (0,1)");
  if (g.num_vertices() < 2) {
    return std::vector<int>(static_cast<std::size_t>(g.num_vertices()), 0);
  }

  CoarsenOptions copt;
  copt.min_vertices = options.coarsest_vertices;
  copt.seed = seed;
  const auto chain = coarsen_chain(g, copt);
  const Graph& coarsest = chain.empty() ? g : chain.back().coarse;

  std::vector<int> side =
      initial_bisection(coarsest, target_fraction, options, mix_seed(seed, 1));

  FmOptions fm;
  // Side 0 is grown to target_fraction by the initial partitioners; FM's
  // per-side caps then hold both sides to their shares (± the user slack)
  // through every level's refinement, instead of letting the cut chase
  // wander anywhere a symmetric band twice the majority share would allow.
  fm.max_imbalance = options.max_imbalance;
  fm.target_fraction_a = target_fraction;

  {  // refine the coarsest level too
    auto p = Partition::from_assignment(coarsest, side, 2);
    fm_refine_bisection(p, 0, 1, fm);
    std::copy(p.assignment().begin(), p.assignment().end(), side.begin());
  }

  // Project through the chain with per-level FM refinement.
  for (std::size_t lvl = chain.size(); lvl-- > 0;) {
    const auto& map = chain[lvl].fine_to_coarse;
    std::vector<int> fine(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) {
      fine[v] = side[static_cast<std::size_t>(map[v])];
    }
    const Graph& fine_graph = lvl == 0 ? g : chain[lvl - 1].coarse;
    auto p = Partition::from_assignment(fine_graph, fine, 2);
    fm_refine_bisection(p, 0, 1, fm);
    side.assign(p.assignment().begin(), p.assignment().end());
  }
  return side;
}

namespace {

/// Recursive division into k parts with weight-proportional targets.
void divide(const Graph& parent, std::vector<VertexId> vertices, int k,
            int offset, const MultilevelOptions& options, std::uint64_t seed,
            std::vector<int>& out) {
  if (k == 1) {
    for (VertexId v : vertices) out[static_cast<std::size_t>(v)] = offset;
    return;
  }
  const auto sub = induced_subgraph(parent, vertices);

  // Octasection rows divide by 8 while possible (then 4/2); bisection rows
  // always divide by 2. Division counts must divide k's factor tree only
  // loosely — we split k into near halves (or eighths) weight-proportionally.
  int ways = 2;
  if (options.arity == SectionArity::Octasection && k >= 8 &&
      sub.graph.num_vertices() >= 16) {
    ways = 8;
  } else if (static_cast<int>(options.arity) >= 4 && k >= 4 &&
             sub.graph.num_vertices() >= 8) {
    ways = 4;
  }

  if (ways == 2) {
    const int k0 = k / 2;
    const double frac = static_cast<double>(k0) / k;
    const auto side =
        multilevel_bisect(sub.graph, frac, options, mix_seed(seed, 2));
    std::vector<VertexId> left, right;
    for (std::size_t i = 0; i < vertices.size(); ++i) {
      (side[i] == 0 ? left : right).push_back(vertices[i]);
    }
    divide(parent, std::move(left), k0, offset, options, mix_seed(seed, 3), out);
    divide(parent, std::move(right), k - k0, offset + k0, options,
           mix_seed(seed, 4), out);
    return;
  }

  // 4/8-way step: spectral section on the coarsened subgraph, then recurse
  // into each cell with k split as evenly as possible.
  CoarsenOptions copt;
  copt.min_vertices = std::max(options.coarsest_vertices, 6 * ways);
  copt.seed = mix_seed(seed, 5);
  const auto chain = coarsen_chain(sub.graph, copt);
  const Graph& coarsest = chain.empty() ? sub.graph : chain.back().coarse;

  FiedlerOptions fopt;
  fopt.count = ways == 8 ? 3 : 2;
  fopt.seed = mix_seed(seed, 6);
  const auto fres = fiedler_vectors(coarsest, fopt);

  std::vector<int> cells;
  if (static_cast<int>(fres.vectors.size()) >= fopt.count) {
    cells = sign_section(
        coarsest,
        std::span<const std::vector<double>>(
            fres.vectors.data(), static_cast<std::size_t>(fopt.count)),
        options.max_imbalance, mix_seed(seed, 7));
  } else {
    cells.assign(static_cast<std::size_t>(coarsest.num_vertices()), 0);
  }

  // Project cells to the subgraph's finest level with k-way FM per level.
  Rng rng(mix_seed(seed, 8));
  {
    auto p = Partition::from_assignment(coarsest, cells, ways);
    KwayFmOptions kopt;
    kopt.max_imbalance = options.max_imbalance;
    kway_fm_refine(p, objective(ObjectiveKind::Cut), kopt, rng);
    cells.assign(p.assignment().begin(), p.assignment().end());
  }
  std::vector<int> current = std::move(cells);
  for (std::size_t lvl = chain.size(); lvl-- > 0;) {
    const auto& map = chain[lvl].fine_to_coarse;
    std::vector<int> fine(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) {
      fine[v] = current[static_cast<std::size_t>(map[v])];
    }
    const Graph& fine_graph = lvl == 0 ? sub.graph : chain[lvl - 1].coarse;
    auto p = Partition::from_assignment(fine_graph, fine, ways);
    KwayFmOptions kopt;
    kopt.max_imbalance = options.max_imbalance;
    kway_fm_refine(p, objective(ObjectiveKind::Cut), kopt, rng);
    current.assign(p.assignment().begin(), p.assignment().end());
  }

  // Distribute k across the cells and recurse.
  std::vector<std::vector<VertexId>> groups(static_cast<std::size_t>(ways));
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    groups[static_cast<std::size_t>(current[i])].push_back(vertices[i]);
  }
  int remaining_k = k;
  int used_offset = offset;
  for (int c = 0; c < ways; ++c) {
    const int cells_left = ways - c;
    int kc = (remaining_k + cells_left - 1) / cells_left;  // ceil split
    kc = std::max(1, std::min(kc, remaining_k - (cells_left - 1)));
    auto& grp = groups[static_cast<std::size_t>(c)];
    if (grp.empty()) {
      // Empty cell: its share folds into the remaining cells.
      continue;
    }
    kc = std::min(kc, static_cast<int>(grp.size()));
    divide(parent, std::move(grp), kc, used_offset, options,
           mix_seed(seed, 100 + static_cast<std::uint64_t>(c)), out);
    used_offset += kc;
    remaining_k -= kc;
  }
  FFP_CHECK(remaining_k >= 0, "k distribution underflow");
}

}  // namespace

Partition multilevel_partition(const Graph& g, int k,
                               const MultilevelOptions& options) {
  FFP_CHECK(k >= 1, "k must be >= 1");
  FFP_CHECK(g.num_vertices() >= k, "graph has fewer vertices than parts");

  std::vector<int> assignment(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<VertexId> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), 0);
  divide(g, std::move(all), k, 0, options, options.seed, assignment);

  auto p = Partition::from_assignment(g, assignment, k);

  // Degenerate-case fixup: the 4/8-way division can leave part ids unused
  // when cells come out empty on tiny subgraphs.
  force_k_nonempty(p, k);

  if (options.final_kway_refine) {
    Rng rng(mix_seed(options.seed, 999));
    KwayFmOptions kopt;
    kopt.max_imbalance = options.max_imbalance * 1.05;
    kway_fm_refine(p, objective(ObjectiveKind::Cut), kopt, rng);
  }
  return p;
}

}  // namespace ffp
