// Multilevel partitioning driver (§2.2): coarsen with heavy-edge matching,
// partition the coarse graph (spectral bisection/octasection or greedy graph
// growing), then uncoarsen with FM refinement at every level — the
// Hendrickson–Leland / Karypis–Kumar scheme behind the "Multilevel (…)"
// rows of Table 1. Arbitrary k is reached by recursive division with
// weight-proportional targets; a final k-way FM pass plays the role of
// Chaco's REFINE_PARTITION.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "multilevel/coarsen.hpp"
#include "partition/partition.hpp"
#include "spectral/spectral_partition.hpp"

namespace ffp {

enum class InitialPartitioner {
  SpectralBisection,  ///< Lanczos on the coarsest graph (Chaco's choice)
  GreedyGrowing,      ///< BFS region growing from a peripheral vertex
};

struct MultilevelOptions {
  SectionArity arity = SectionArity::Bisection;  ///< Bi vs Oct rows
  InitialPartitioner initial = InitialPartitioner::SpectralBisection;
  int coarsest_vertices = 48;   ///< per bisection subproblem
  double max_imbalance = 1.05;
  bool final_kway_refine = true;
  std::uint64_t seed = 99;
};

Partition multilevel_partition(const Graph& g, int k,
                               const MultilevelOptions& options);

/// Single multilevel bisection of `g` (exposed for tests and as a building
/// block): returns a 0/1 assignment with the given target weight fraction
/// for side 0 (0.5 = balanced).
std::vector<int> multilevel_bisect(const Graph& g, double target_fraction,
                                   const MultilevelOptions& options,
                                   std::uint64_t seed);

}  // namespace ffp
