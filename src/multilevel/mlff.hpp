// Multilevel × fusion-fission hybrid (`mlff`) — the scale path. The paper's
// Algorithm 1 starts from singleton atoms on the full graph, which is
// hopeless at n ≫ 10⁵; the memetic-multilevel recipe runs the expensive
// metaheuristic where it is cheap and keeps the fine levels for local
// repair:
//
//   1. coarsen_chain (multilevel/coarsen.hpp) shrinks the graph to
//      ~coarse_n vertices (default max(k·64, n/64));
//   2. full fusion-fission (core/fusion_fission.hpp) partitions the
//      coarsest graph under the caller's stop condition — threads/batch
//      select the batched parallel engine, byte-identical across thread
//      counts for a fixed batch;
//   3. project_partition maps the atoms back level by level; after each
//      projection a boundary-localized refinement burst (strictly
//      improving single-vertex moves under the ObjectiveTracker) repairs
//      the cut, with a step budget that starts at refine_steps on the
//      coarsest projection and halves toward the fine levels.
//
// Every stage draws from seeds derived off one splitmix64 stream of
// MlffOptions::seed and runs serially except the coarse FF speculation
// phase — so the result is a pure function of (graph, k, options, step
// budget), independent of thread count.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "core/fusion_fission.hpp"
#include "multilevel/coarsen.hpp"

namespace ffp {

struct MlffOptions {
  ObjectiveKind objective = ObjectiveKind::MinMaxCut;

  /// Coarsen until the graph has at most this many vertices. 0 derives
  /// max(k*64, n/64), clamped to at least 2k so the coarsest graph can
  /// always hold k atoms.
  int coarse_n = 0;
  /// Refinement attempt budget for the burst after the FIRST (coarsest)
  /// projection; each finer level gets half the previous budget. One
  /// attempt = one boundary vertex examined (O(deg) scan).
  std::int64_t refine_steps = 32768;
  MatchingKind matching = MatchingKind::HeavyEdge;

  /// Coarse-phase fusion-fission engine (see FusionFissionOptions):
  /// threads == 0 runs the serial loop; threads >= 1 or batch >= 1 runs
  /// the batched engine, byte-identical across all threads >= 1.
  int threads = 0;
  int batch = 0;
  std::shared_ptr<ThreadPool> pool;
  ThreadBudget* budget = nullptr;

  std::uint64_t seed = 2006;

  // Durable-solve hooks, mirroring FusionFissionOptions. The warm
  // assignment lives on the INPUT graph; mlff projects it down the
  // coarsening chain (each coarse vertex takes its first fine
  // constituent's part) to seed the coarse FF phase, and guarantees the
  // final result is never worse than the restored partition's objective.
  // Checkpoints flow the other way: the coarse phase's best-at-k is
  // projected up the chain, evaluated on the input graph, and emitted
  // only when that fine-level value improves — so the sink always sees
  // input-graph assignments with comparable values.
  std::shared_ptr<const std::vector<int>> warm_start;
  /// Checkpointed objective of `warm_start` on the INPUT graph (see
  /// SolverRequest::warm_start_value); the keep-better guard compares
  /// against min(re-evaluation, this). Infinity = unknown.
  double warm_start_value = std::numeric_limits<double>::infinity();
  std::int64_t checkpoint_every_ms = 0;
  std::function<void(const std::vector<int>& assignment, double value)>
      checkpoint_sink;
};

struct MlffResult {
  Partition best;           ///< exactly k parts on the input graph
  double best_value = 0.0;  ///< objective evaluated on `best`
  int levels = 0;           ///< coarsening levels actually used
  int coarse_vertices = 0;  ///< vertex count of the graph FF ran on
  double coarse_value = 0.0;  ///< FF's best objective on the coarse graph
  std::int64_t coarse_steps = 0;
  std::int64_t fusions = 0;
  std::int64_t fissions = 0;
  int reheats = 0;
  std::int64_t batches = 0;  ///< batched-engine accounting (0 when serial)
  std::int64_t refine_attempts = 0;  ///< boundary vertices examined
  std::int64_t refine_moves = 0;     ///< strictly improving moves applied
};

/// Runs the coarsen → fusion-fission → project+refine pipeline. The stop
/// condition governs the coarse FF phase only; refinement adds bounded
/// extra work capped by refine_steps. The recorder (when given) is started
/// here and receives the final value — coarse-level objective values are
/// not comparable to fine-level ones for the ratio criteria, so the coarse
/// phase does not stream into it.
MlffResult mlff_partition(const Graph& g, int k, const MlffOptions& options,
                          const StopCondition& stop,
                          AnytimeRecorder* recorder = nullptr);

}  // namespace ffp
