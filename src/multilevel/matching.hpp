// Edge matchings for multilevel coarsening (§2.2): heavy-edge matching
// (Karypis–Kumar HEM — match each vertex to its heaviest unmatched
// neighbor) and random matching, both visiting vertices in random order.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ffp {

/// match[v] = partner vertex, or v itself if unmatched. Symmetric:
/// match[match[v]] == v.
std::vector<VertexId> heavy_edge_matching(const Graph& g, Rng& rng);
std::vector<VertexId> random_matching(const Graph& g, Rng& rng);

}  // namespace ffp
