#include "multilevel/coarsen.hpp"

#include <unordered_map>

namespace ffp {

CoarseLevel contract_matching(const Graph& g, std::span<const VertexId> match) {
  const VertexId n = g.num_vertices();
  FFP_CHECK(static_cast<VertexId>(match.size()) == n, "match size mismatch");

  CoarseLevel level;
  level.fine_to_coarse.assign(static_cast<std::size_t>(n), -1);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId m = match[static_cast<std::size_t>(v)];
    FFP_CHECK(m >= 0 && m < n && match[static_cast<std::size_t>(m)] == v,
              "matching is not symmetric at vertex ", v);
    if (level.fine_to_coarse[static_cast<std::size_t>(v)] != -1) continue;
    level.fine_to_coarse[static_cast<std::size_t>(v)] = next;
    if (m != v) level.fine_to_coarse[static_cast<std::size_t>(m)] = next;
    ++next;
  }

  std::vector<Weight> cvw(static_cast<std::size_t>(next), 0.0);
  for (VertexId v = 0; v < n; ++v) {
    cvw[static_cast<std::size_t>(level.fine_to_coarse[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  }

  // Combine fine edges into coarse edges, summing weights of parallels.
  std::unordered_map<std::int64_t, Weight> acc;
  acc.reserve(static_cast<std::size_t>(g.num_edges()));
  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = level.fine_to_coarse[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto ws = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId cu = level.fine_to_coarse[static_cast<std::size_t>(nbrs[i])];
      if (cu == cv || nbrs[i] < v) continue;  // self-loop or already counted
      const std::int64_t key =
          static_cast<std::int64_t>(std::min(cv, cu)) * next + std::max(cv, cu);
      acc[key] += ws[i];
    }
  }
  std::vector<WeightedEdge> edges;
  edges.reserve(acc.size());
  for (const auto& [key, w] : acc) {
    edges.push_back({static_cast<VertexId>(key / next),
                     static_cast<VertexId>(key % next), w});
  }
  level.coarse = Graph::from_edges(next, edges, std::move(cvw));
  return level;
}

std::vector<CoarseLevel> coarsen_chain(const Graph& g,
                                       const CoarsenOptions& options) {
  FFP_CHECK(options.min_vertices >= 2, "min_vertices must be >= 2");
  Rng rng(options.seed);
  std::vector<CoarseLevel> chain;
  const Graph* current = &g;
  for (int lvl = 0; lvl < options.max_levels; ++lvl) {
    if (current->num_vertices() <= options.min_vertices) break;
    const auto match = options.matching == MatchingKind::HeavyEdge
                           ? heavy_edge_matching(*current, rng)
                           : random_matching(*current, rng);
    CoarseLevel level = contract_matching(*current, match);
    const double shrink = static_cast<double>(level.coarse.num_vertices()) /
                          current->num_vertices();
    if (shrink > options.min_shrink) break;  // matching stalled (e.g. star)
    chain.push_back(std::move(level));
    current = &chain.back().coarse;
  }
  return chain;
}

std::vector<double> prolong_to_finest(const std::vector<CoarseLevel>& chain,
                                      std::size_t levels,
                                      std::span<const double> coarse_values) {
  FFP_CHECK(levels <= chain.size(), "levels out of range");
  std::vector<double> values(coarse_values.begin(), coarse_values.end());
  for (std::size_t l = levels; l-- > 0;) {
    const auto& map = chain[l].fine_to_coarse;
    std::vector<double> fine(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) {
      fine[v] = values[static_cast<std::size_t>(map[v])];
    }
    values = std::move(fine);
  }
  return values;
}

}  // namespace ffp
