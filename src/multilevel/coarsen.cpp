#include "multilevel/coarsen.hpp"

#include <unordered_map>

namespace ffp {

CoarseLevel contract_matching(const Graph& g, std::span<const VertexId> match) {
  const VertexId n = g.num_vertices();
  FFP_CHECK(static_cast<VertexId>(match.size()) == n, "match size mismatch");

  CoarseLevel level;
  level.fine_to_coarse.assign(static_cast<std::size_t>(n), -1);
  VertexId next = 0;
  for (VertexId v = 0; v < n; ++v) {
    const VertexId m = match[static_cast<std::size_t>(v)];
    FFP_CHECK(m >= 0 && m < n && match[static_cast<std::size_t>(m)] == v,
              "matching is not symmetric at vertex ", v);
    if (level.fine_to_coarse[static_cast<std::size_t>(v)] != -1) continue;
    level.fine_to_coarse[static_cast<std::size_t>(v)] = next;
    if (m != v) level.fine_to_coarse[static_cast<std::size_t>(m)] = next;
    ++next;
  }

  std::vector<Weight> cvw(static_cast<std::size_t>(next), 0.0);
  for (VertexId v = 0; v < n; ++v) {
    cvw[static_cast<std::size_t>(level.fine_to_coarse[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  }

  // Combine fine edges into coarse edges, summing weights of parallels.
  std::unordered_map<std::int64_t, Weight> acc;
  acc.reserve(static_cast<std::size_t>(g.num_edges()));
  for (VertexId v = 0; v < n; ++v) {
    const VertexId cv = level.fine_to_coarse[static_cast<std::size_t>(v)];
    const auto nbrs = g.neighbors(v);
    const auto ws = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId cu = level.fine_to_coarse[static_cast<std::size_t>(nbrs[i])];
      if (cu == cv || nbrs[i] < v) continue;  // self-loop or already counted
      const std::int64_t key =
          static_cast<std::int64_t>(std::min(cv, cu)) * next + std::max(cv, cu);
      acc[key] += ws[i];
    }
  }
  std::vector<WeightedEdge> edges;
  edges.reserve(acc.size());
  for (const auto& [key, w] : acc) {
    edges.push_back({static_cast<VertexId>(key / next),
                     static_cast<VertexId>(key % next), w});
  }
  level.coarse = Graph::from_edges(next, edges, std::move(cvw));
  return level;
}

std::vector<CoarseLevel> coarsen_chain(const Graph& g,
                                       const CoarsenOptions& options) {
  FFP_CHECK(options.min_vertices >= 2, "min_vertices must be >= 2");
  FFP_CHECK(options.min_shrink > 0.0 && options.min_shrink < 1.0,
            "min_shrink must be in (0, 1) — a level that does not shrink "
            "must terminate the chain");
  FFP_CHECK(options.max_levels >= 1, "max_levels must be >= 1");
  // Per-level seeds come from one splitmix64 stream (the idiom every other
  // subsystem uses to derive child streams), not from one Rng threaded
  // through the levels: level i's matching then depends only on (seed, i),
  // never on how many draws earlier levels consumed.
  std::uint64_t stream = options.seed ^ 0x9e3779b97f4a7c15ULL;
  std::vector<CoarseLevel> chain;
  const Graph* current = &g;
  for (int lvl = 0; lvl < options.max_levels; ++lvl) {
    if (current->num_vertices() <= options.min_vertices) break;
    Rng rng(splitmix64(stream));
    const auto match = options.matching == MatchingKind::HeavyEdge
                           ? heavy_edge_matching(*current, rng)
                           : random_matching(*current, rng);
    CoarseLevel level = contract_matching(*current, match);
    const double shrink = static_cast<double>(level.coarse.num_vertices()) /
                          current->num_vertices();
    if (shrink > options.min_shrink) break;  // matching stalled (e.g. star)
    FFP_CHECK(level.coarse.num_vertices() < current->num_vertices(),
              "coarsening level made no progress");
    chain.push_back(std::move(level));
    current = &chain.back().coarse;
  }
  return chain;
}

std::vector<int> project_partition(const std::vector<CoarseLevel>& chain,
                                   std::size_t levels,
                                   std::span<const int> coarse_parts) {
  FFP_CHECK(levels <= chain.size(), "levels out of range");
  std::vector<int> parts(coarse_parts.begin(), coarse_parts.end());
  for (std::size_t l = levels; l-- > 0;) {
    const auto& map = chain[l].fine_to_coarse;
    FFP_CHECK(parts.size() ==
                  static_cast<std::size_t>(chain[l].coarse.num_vertices()),
              "coarse_parts size does not match level ", l);
    std::vector<int> fine(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) {
      fine[v] = parts[static_cast<std::size_t>(map[v])];
    }
    parts = std::move(fine);
  }
  return parts;
}

std::vector<double> prolong_to_finest(const std::vector<CoarseLevel>& chain,
                                      std::size_t levels,
                                      std::span<const double> coarse_values) {
  FFP_CHECK(levels <= chain.size(), "levels out of range");
  std::vector<double> values(coarse_values.begin(), coarse_values.end());
  for (std::size_t l = levels; l-- > 0;) {
    const auto& map = chain[l].fine_to_coarse;
    std::vector<double> fine(map.size());
    for (std::size_t v = 0; v < map.size(); ++v) {
      fine[v] = values[static_cast<std::size_t>(map[v])];
    }
    values = std::move(fine);
  }
  return values;
}

}  // namespace ffp
