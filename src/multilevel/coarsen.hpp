// Graph coarsening (§2.2, Hendrickson–Leland / Karypis–Kumar style):
// contract a matching — the merged vertex weight is the sum of the pair's
// weights, and edges to common neighbors combine by summing weights, exactly
// as the paper describes the Chaco contraction step.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "multilevel/matching.hpp"

namespace ffp {

/// One coarsening level: the coarse graph plus the fine→coarse map.
struct CoarseLevel {
  Graph coarse;
  std::vector<VertexId> fine_to_coarse;  ///< indexed by fine vertex id
};

/// Contract the given matching of g.
CoarseLevel contract_matching(const Graph& g, std::span<const VertexId> match);

enum class MatchingKind { HeavyEdge, Random };

struct CoarsenOptions {
  int min_vertices = 64;        ///< stop when the coarse graph is this small
  double min_shrink = 0.95;     ///< stop if a level shrinks less than this factor
  int max_levels = 60;
  MatchingKind matching = MatchingKind::HeavyEdge;
  std::uint64_t seed = 1;
};

/// Coarsening chain: levels[0] contracts the input graph, levels[i]
/// contracts levels[i-1].coarse. May be empty if g is already small.
std::vector<CoarseLevel> coarsen_chain(const Graph& g,
                                       const CoarsenOptions& options);

/// Projects a per-coarse-vertex part assignment back to the finest level
/// through a chain prefix [0, levels): every fine vertex inherits the part
/// of its coarse image. Identity when levels == 0. Because contraction sums
/// pair weights and combines parallel edges, the projected partition has
/// the same part vertex-weights and the same cut weight as the coarse one.
std::vector<int> project_partition(const std::vector<CoarseLevel>& chain,
                                   std::size_t levels,
                                   std::span<const int> coarse_parts);

/// Projects a per-coarse-vertex value vector back to the finest level
/// through a chain prefix [0, levels): piecewise-constant interpolation.
std::vector<double> prolong_to_finest(const std::vector<CoarseLevel>& chain,
                                      std::size_t levels,
                                      std::span<const double> coarse_values);

}  // namespace ffp
