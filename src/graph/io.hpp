// Graph and partition file I/O.
//
// Supported formats:
//  - Chaco / METIS graph format (they share the same layout): a header line
//    "n m [fmt]" followed by one line per vertex listing its neighbors
//    (1-indexed), optionally interleaved with vertex/edge weights depending
//    on fmt (0, 1, 10, 11, 100, 110, 111 — leading digit enables vertex
//    sizes, which we accept and ignore). '%' or '#' start comment lines.
//    This is the format of the Walshaw benchmark archive.
//  - Plain edge list: "u v [w]" per line, 0-indexed.
//  - Partition files: one part id per line, as written by Chaco/METIS.
//
// All readers throw ffp::Error with a line number on malformed input.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ffp {

Graph read_chaco(std::istream& in);
Graph read_chaco_file(const std::string& path);
void write_chaco(const Graph& g, std::ostream& out);
void write_chaco_file(const Graph& g, const std::string& path);

Graph read_edge_list(std::istream& in);
Graph read_edge_list_file(const std::string& path);
void write_edge_list(const Graph& g, std::ostream& out);

std::vector<int> read_partition(std::istream& in);
std::vector<int> read_partition_file(const std::string& path);
void write_partition(std::span<const int> parts, std::ostream& out);
void write_partition_file(std::span<const int> parts, const std::string& path);

}  // namespace ffp
