// Graph and partition file I/O.
//
// Supported formats:
//  - Chaco / METIS graph format (they share the same layout): a header line
//    "n m [fmt]" followed by one line per vertex listing its neighbors
//    (1-indexed), optionally interleaved with vertex/edge weights depending
//    on fmt (0, 1, 10, 11, 100, 110, 111 — leading digit enables vertex
//    sizes, which we accept and ignore). '%' or '#' start comment lines.
//    This is the format of the Walshaw benchmark archive.
//  - Plain edge list: "u v [w]" per line, 0-indexed.
//  - Partition files: one part id per line, as written by Chaco/METIS.
//
// All readers throw ffp::Error with a line number on malformed input —
// they are hardened for UNTRUSTED files (the ffp_serve daemon parses
// whatever a client names): header counts are range-checked before any
// allocation, weights must be finite and positive where required,
// duplicate neighbor entries and self loops are rejected with the
// offending vertex named, and `IoLimits` lets a service cap instance size
// so a hostile header cannot trigger a giant allocation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ffp {

/// Ceilings enforced while parsing, BEFORE anything is allocated to the
/// declared size. Defaults accept anything the in-memory Graph can hold;
/// services parsing untrusted input pass tighter caps.
struct IoLimits {
  std::int64_t max_vertices = 0;  ///< 0 → VertexId range
  std::int64_t max_edges = 0;     ///< 0 → unlimited
  /// The effective caps with the 0-defaults resolved — the one place the
  /// "0 means VertexId-range / unlimited" rule lives (file readers and the
  /// service protocol's inline graphs share it).
  std::int64_t vertex_cap() const;
  std::int64_t edge_cap() const;
};

Graph read_chaco(std::istream& in, const IoLimits& limits = {});
Graph read_chaco_file(const std::string& path, const IoLimits& limits = {});
void write_chaco(const Graph& g, std::ostream& out);
void write_chaco_file(const Graph& g, const std::string& path);

Graph read_edge_list(std::istream& in, const IoLimits& limits = {});
Graph read_edge_list_file(const std::string& path,
                          const IoLimits& limits = {});
void write_edge_list(const Graph& g, std::ostream& out);

std::vector<int> read_partition(std::istream& in);
std::vector<int> read_partition_file(const std::string& path);
void write_partition(std::span<const int> parts, std::ostream& out);
void write_partition_file(std::span<const int> parts, const std::string& path);

}  // namespace ffp
