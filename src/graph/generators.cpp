#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ffp {

namespace {
VertexId grid_id(int r, int c, int cols) { return r * cols + c; }
}  // namespace

Graph make_grid2d(int rows, int cols, Weight edge_weight) {
  FFP_CHECK(rows > 0 && cols > 0, "grid dimensions must be positive");
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(rows) * cols * 2);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols)
        edges.push_back({grid_id(r, c, cols), grid_id(r, c + 1, cols), edge_weight});
      if (r + 1 < rows)
        edges.push_back({grid_id(r, c, cols), grid_id(r + 1, c, cols), edge_weight});
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph make_grid3d(int nx, int ny, int nz, Weight edge_weight) {
  FFP_CHECK(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
  auto id = [&](int x, int y, int z) {
    return static_cast<VertexId>((z * ny + y) * nx + x);
  };
  std::vector<WeightedEdge> edges;
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        if (x + 1 < nx) edges.push_back({id(x, y, z), id(x + 1, y, z), edge_weight});
        if (y + 1 < ny) edges.push_back({id(x, y, z), id(x, y + 1, z), edge_weight});
        if (z + 1 < nz) edges.push_back({id(x, y, z), id(x, y, z + 1), edge_weight});
      }
    }
  }
  return Graph::from_edges(nx * ny * nz, edges);
}

Graph make_torus(int rows, int cols, Weight edge_weight) {
  FFP_CHECK(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
  std::vector<WeightedEdge> edges;
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      edges.push_back(
          {grid_id(r, c, cols), grid_id(r, (c + 1) % cols, cols), edge_weight});
      edges.push_back(
          {grid_id(r, c, cols), grid_id((r + 1) % rows, c, cols), edge_weight});
    }
  }
  return Graph::from_edges(rows * cols, edges);
}

Graph make_path(int n, Weight edge_weight) {
  FFP_CHECK(n > 0, "path needs n > 0");
  std::vector<WeightedEdge> edges;
  for (int i = 0; i + 1 < n; ++i) {
    edges.push_back({i, i + 1, edge_weight});
  }
  return Graph::from_edges(n, edges);
}

Graph make_cycle(int n, Weight edge_weight) {
  FFP_CHECK(n >= 3, "cycle needs n >= 3");
  std::vector<WeightedEdge> edges;
  for (int i = 0; i < n; ++i) {
    edges.push_back({i, (i + 1) % n, edge_weight});
  }
  return Graph::from_edges(n, edges);
}

Graph make_complete(int n, Weight edge_weight) {
  FFP_CHECK(n > 0, "complete graph needs n > 0");
  std::vector<WeightedEdge> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      edges.push_back({i, j, edge_weight});
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_star(int leaves, Weight edge_weight) {
  FFP_CHECK(leaves >= 1, "star needs >= 1 leaf");
  std::vector<WeightedEdge> edges;
  for (int i = 1; i <= leaves; ++i) edges.push_back({0, i, edge_weight});
  return Graph::from_edges(leaves + 1, edges);
}

Graph make_barbell(int clique, int bridge) {
  FFP_CHECK(clique >= 2 && bridge >= 0, "barbell needs clique >= 2");
  std::vector<WeightedEdge> edges;
  const int n = 2 * clique + bridge;
  auto add_clique = [&](int base) {
    for (int i = 0; i < clique; ++i) {
      for (int j = i + 1; j < clique; ++j) {
        edges.push_back({base + i, base + j, 1.0});
      }
    }
  };
  add_clique(0);
  add_clique(clique + bridge);
  // Bridge path from the last vertex of clique A to the first of clique B.
  int prev = clique - 1;
  for (int b = 0; b < bridge; ++b) {
    edges.push_back({prev, clique + b, 1.0});
    prev = clique + b;
  }
  edges.push_back({prev, clique + bridge, 1.0});
  return Graph::from_edges(n, edges);
}

Graph make_random_geometric(int n, double radius, std::uint64_t seed) {
  FFP_CHECK(n > 0 && radius > 0.0, "bad geometric graph parameters");
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n)), y(x.size());
  for (int i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = rng.uniform();
    y[static_cast<std::size_t>(i)] = rng.uniform();
  }
  // Uniform grid bucketing keeps this O(n) for fixed expected degree.
  const int cells = std::max(1, static_cast<int>(1.0 / radius));
  std::vector<std::vector<VertexId>> grid(
      static_cast<std::size_t>(cells) * cells);
  auto cell_of = [&](int i) {
    const int cx = std::min(cells - 1, static_cast<int>(x[static_cast<std::size_t>(i)] * cells));
    const int cy = std::min(cells - 1, static_cast<int>(y[static_cast<std::size_t>(i)] * cells));
    return cy * cells + cx;
  };
  for (int i = 0; i < n; ++i) {
    grid[static_cast<std::size_t>(cell_of(i))].push_back(i);
  }
  const double r2 = radius * radius;
  std::vector<WeightedEdge> edges;
  std::vector<char> has_edge(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    const int cx = std::min(cells - 1, static_cast<int>(x[static_cast<std::size_t>(i)] * cells));
    const int cy = std::min(cells - 1, static_cast<int>(y[static_cast<std::size_t>(i)] * cells));
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = cx + dx, ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        for (VertexId j : grid[static_cast<std::size_t>(ny * cells + nx)]) {
          if (j <= i) continue;
          const double ddx = x[static_cast<std::size_t>(i)] - x[static_cast<std::size_t>(j)];
          const double ddy = y[static_cast<std::size_t>(i)] - y[static_cast<std::size_t>(j)];
          if (ddx * ddx + ddy * ddy <= r2) {
            edges.push_back({i, j, 1.0});
            has_edge[static_cast<std::size_t>(i)] = 1;
            has_edge[static_cast<std::size_t>(j)] = 1;
          }
        }
      }
    }
  }
  // Attach isolated vertices to their nearest neighbor.
  for (int i = 0; i < n; ++i) {
    if (has_edge[static_cast<std::size_t>(i)] || n == 1) continue;
    int best = -1;
    double best_d = 0.0;
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      const double ddx = x[static_cast<std::size_t>(i)] - x[static_cast<std::size_t>(j)];
      const double ddy = y[static_cast<std::size_t>(i)] - y[static_cast<std::size_t>(j)];
      const double d = ddx * ddx + ddy * ddy;
      if (best == -1 || d < best_d) {
        best = j;
        best_d = d;
      }
    }
    edges.push_back({i, best, 1.0});
    has_edge[static_cast<std::size_t>(i)] = 1;
  }
  return Graph::from_edges(n, edges);
}

Graph make_power_law(int n, double avg_deg, double gamma, std::uint64_t seed) {
  FFP_CHECK(n > 1 && avg_deg > 0 && gamma > 2.0, "bad power-law parameters");
  Rng rng(seed);
  // Chung–Lu: P(edge ij) ~ w_i w_j / W with w_i = c * (i+1)^(-1/(gamma-1)).
  std::vector<double> w(static_cast<std::size_t>(n));
  const double exponent = -1.0 / (gamma - 1.0);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i)] = std::pow(static_cast<double>(i + 1), exponent);
    total += w[static_cast<std::size_t>(i)];
  }
  const double scale = avg_deg * n / total;
  for (auto& wi : w) wi *= scale;
  const double wsum = avg_deg * n;

  std::vector<WeightedEdge> edges;
  // Efficient Chung-Lu sampling (Miller & Hagberg): walk j with skips.
  for (int i = 0; i < n - 1; ++i) {
    int j = i + 1;
    double p = std::min(1.0, w[static_cast<std::size_t>(i)] * w[static_cast<std::size_t>(j)] / wsum);
    while (j < n && p > 0) {
      if (p != 1.0) {
        const double r = std::max(rng.uniform(), 1e-300);
        j += static_cast<int>(std::floor(std::log(r) / std::log(1.0 - p)));
      }
      if (j < n) {
        const double q = std::min(
            1.0, w[static_cast<std::size_t>(i)] * w[static_cast<std::size_t>(j)] / wsum);
        if (rng.uniform() < q / p) {
          edges.push_back({i, j, 1.0});
        }
        p = q;
        ++j;
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph make_random_graph(int n, std::int64_t m, std::uint64_t seed) {
  FFP_CHECK(n > 1, "random graph needs n > 1");
  const std::int64_t max_m = static_cast<std::int64_t>(n) * (n - 1) / 2;
  FFP_CHECK(m >= 0 && m <= max_m, "edge count out of range");
  Rng rng(seed);
  std::unordered_set<std::int64_t> seen;
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  while (static_cast<std::int64_t>(edges.size()) < m) {
    const auto u = static_cast<VertexId>(rng.below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<VertexId>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    const std::int64_t key =
        static_cast<std::int64_t>(std::min(u, v)) * n + std::max(u, v);
    if (seen.insert(key).second) edges.push_back({u, v, 1.0});
  }
  return Graph::from_edges(n, edges);
}

Graph make_caterpillar(int spine, int legs) {
  FFP_CHECK(spine >= 1 && legs >= 0, "bad caterpillar parameters");
  std::vector<WeightedEdge> edges;
  const int n = spine + spine * legs;
  for (int i = 0; i + 1 < spine; ++i) edges.push_back({i, i + 1, 1.0});
  int next = spine;
  for (int i = 0; i < spine; ++i) {
    for (int l = 0; l < legs; ++l) edges.push_back({i, next++, 1.0});
  }
  return Graph::from_edges(n, edges);
}

Graph with_random_weights(const Graph& g, double lo, double hi,
                          std::uint64_t seed) {
  FFP_CHECK(lo >= 0.0 && hi > lo, "bad weight range");
  Rng rng(seed);
  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(g.num_edges()));
  std::vector<Weight> vw(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    vw[static_cast<std::size_t>(v)] = g.vertex_weight(v);
    for (VertexId u : g.neighbors(v)) {
      if (u > v) edges.push_back({v, u, rng.uniform(lo, hi)});
    }
  }
  return Graph::from_edges(g.num_vertices(), edges, std::move(vw));
}

}  // namespace ffp
