#include "graph/io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "persist/atomic_file.hpp"
#include "util/strings.hpp"

namespace ffp {

namespace {

[[noreturn]] void fail(std::int64_t line_no, const std::string& msg) {
  std::ostringstream os;
  os << "graph I/O error at line " << line_no << ": " << msg;
  throw Error(os.str());
}

bool is_comment(std::string_view line) {
  const auto t = trim(line);
  return !t.empty() && (t[0] == '%' || t[0] == '#');
}

/// Reads the next non-comment line; returns false at EOF.
bool next_line(std::istream& in, std::string& line, std::int64_t& line_no) {
  while (std::getline(in, line)) {
    ++line_no;
    if (!is_comment(line)) return true;
  }
  return false;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  FFP_CHECK(in.good(), "cannot open for reading: ", path);
  return in;
}

/// Reservations trust the declared size only up to this many elements — a
/// lying header must not be able to allocate gigabytes before the parser
/// discovers the file is ten lines long.
constexpr std::int64_t kTrustedReserve = 1 << 22;

}  // namespace

// The hard ceiling a header's vertex count must fit regardless of limits:
// VertexId is 32-bit, and a silently truncating cast used to be the
// overflow hole the service hardening closed.
std::int64_t IoLimits::vertex_cap() const {
  constexpr std::int64_t id_max = std::numeric_limits<VertexId>::max();
  return max_vertices > 0 ? std::min(max_vertices, id_max) : id_max;
}

std::int64_t IoLimits::edge_cap() const {
  return max_edges > 0 ? max_edges : std::numeric_limits<std::int64_t>::max();
}

Graph read_chaco(std::istream& in, const IoLimits& limits) {
  std::string line;
  std::int64_t line_no = 0;
  if (!next_line(in, line, line_no)) fail(line_no, "missing header line");

  const auto header = split_ws(line);
  if (header.size() < 2 || header.size() > 4) {
    fail(line_no, "header must be 'n m [fmt [ncon]]'");
  }
  const auto n_opt = parse_int(header[0]);
  const auto m_opt = parse_int(header[1]);
  if (!n_opt || !m_opt || *n_opt < 0 || *m_opt < 0) {
    fail(line_no, "invalid n or m in header");
  }
  if (*n_opt > limits.vertex_cap()) {
    fail(line_no, "header declares " + std::to_string(*n_opt) +
                      " vertices, limit is " +
                      std::to_string(limits.vertex_cap()));
  }
  if (*m_opt > limits.edge_cap()) {
    fail(line_no, "header declares " + std::to_string(*m_opt) +
                      " edges, limit is " + std::to_string(limits.edge_cap()));
  }
  const auto n = static_cast<VertexId>(*n_opt);
  const std::int64_t m = *m_opt;

  int fmt = 0;
  if (header.size() >= 3) {
    const auto f = parse_int(header[2]);
    if (!f || *f < 0 || *f > 111 || (*f % 10) > 1 || (*f / 10 % 10) > 1 ||
        (*f / 100) > 1) {
      fail(line_no, "invalid fmt field (expected digits from {0,1}: 0, 1, "
                    "10, 11, 100, 101, 110, 111)");
    }
    fmt = static_cast<int>(*f);
  }
  const bool has_vertex_sizes = (fmt / 100) % 10 != 0;
  const bool has_vertex_weights = (fmt / 10) % 10 != 0;
  const bool has_edge_weights = fmt % 10 != 0;
  int ncon = has_vertex_weights ? 1 : 0;
  if (header.size() == 4) {
    const auto c = parse_int(header[3]);
    if (!c || *c < 0 || *c > 64) fail(line_no, "invalid ncon field");
    ncon = static_cast<int>(*c);
  }

  std::vector<WeightedEdge> edges;
  edges.reserve(static_cast<std::size_t>(std::min(m, kTrustedReserve)));
  std::vector<Weight> vweights;
  if (has_vertex_weights) {
    vweights.reserve(static_cast<std::size_t>(
        std::min<std::int64_t>(n, kTrustedReserve)));
  }
  // Epoch stamps for duplicate-neighbor detection: seen[u] == v means u
  // already appeared on v's line. O(1) per neighbor, one array overall.
  // Grown on demand (doubling, bounded by n) rather than allocated to the
  // declared n up front, so a lying header alone cannot trigger a giant
  // allocation — growth is driven by ids the file actually contains.
  std::vector<VertexId> seen;
  const auto seen_slot = [&seen, n](VertexId id) -> VertexId& {
    const auto needed = static_cast<std::size_t>(id) + 1;
    if (seen.size() < needed) {
      auto grown = std::max(needed, seen.size() * 2);
      grown = std::min(grown, static_cast<std::size_t>(n));
      seen.resize(grown, -1);
    }
    return seen[static_cast<std::size_t>(id)];
  };

  for (VertexId v = 0; v < n; ++v) {
    if (!next_line(in, line, line_no)) {
      fail(line_no, "unexpected EOF: expected " + std::to_string(n) +
                        " vertex lines, got " + std::to_string(v));
    }
    const auto tok = split_ws(line);
    std::size_t i = 0;
    if (has_vertex_sizes) ++i;  // accept and ignore vertex size
    if (has_vertex_weights) {
      if (i + static_cast<std::size_t>(ncon) > tok.size()) {
        fail(line_no, "missing vertex weight(s)");
      }
      // Multi-constraint files: use the first weight (ffp is single
      // constraint; documented in the header).
      const auto w = parse_double(tok[i]);
      if (!w || !std::isfinite(*w) || *w <= 0) {
        fail(line_no, "invalid vertex weight (must be finite and > 0)");
      }
      vweights.push_back(*w);
      i += static_cast<std::size_t>(ncon);
    }
    while (i < tok.size()) {
      const auto u = parse_int(tok[i++]);
      if (!u || *u < 1 || *u > n) {
        fail(line_no, "neighbor id out of range (ids are 1-based)");
      }
      Weight w = 1.0;
      if (has_edge_weights) {
        if (i >= tok.size()) fail(line_no, "missing edge weight");
        const auto we = parse_double(tok[i++]);
        if (!we || !std::isfinite(*we) || *we < 0) {
          fail(line_no, "invalid edge weight (must be finite and >= 0)");
        }
        w = *we;
      }
      const auto nb = static_cast<VertexId>(*u - 1);
      if (nb == v) {
        fail(line_no, "self loop on vertex " + std::to_string(v + 1) +
                          " (1-based)");
      }
      VertexId& stamp = seen_slot(nb);
      if (stamp == v) {
        fail(line_no, "duplicate edge: neighbor " + std::to_string(*u) +
                          " listed twice for vertex " + std::to_string(v + 1) +
                          " (1-based)");
      }
      stamp = v;
      if (nb > v) {  // each edge appears twice; store the forward copy
        if (static_cast<std::int64_t>(edges.size()) >= limits.edge_cap()) {
          fail(line_no, "edge limit " + std::to_string(limits.edge_cap()) +
                            " exceeded");
        }
        edges.push_back({v, nb, w});
      }
    }
  }

  if (static_cast<std::int64_t>(edges.size()) != m) {
    fail(line_no, "header declared " + std::to_string(m) + " edges, found " +
                      std::to_string(edges.size()));
  }
  return Graph::from_edges(n, edges, std::move(vweights));
}

Graph read_chaco_file(const std::string& path, const IoLimits& limits) {
  auto in = open_in(path);
  return read_chaco(in, limits);
}

void write_chaco(const Graph& g, std::ostream& out) {
  // Decide the fmt field: emit weights only when non-trivial.
  bool vw = false;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.vertex_weight(v) != 1.0) {
      vw = true;
      break;
    }
  }
  bool ew = false;
  for (Weight w : g.arc_weights()) {
    if (w != 1.0) {
      ew = true;
      break;
    }
  }
  const int fmt = (vw ? 10 : 0) + (ew ? 1 : 0);
  out << std::setprecision(17);  // round-trip doubles exactly
  out << g.num_vertices() << ' ' << g.num_edges();
  if (fmt != 0) out << ' ' << (fmt < 10 ? "0" : "") << fmt;
  out << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    if (vw) {
      out << g.vertex_weight(v);
      first = false;
    }
    const auto nbrs = g.neighbors(v);
    const auto ws = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (!first) out << ' ';
      first = false;
      out << (nbrs[i] + 1);
      if (ew) out << ' ' << ws[i];
    }
    out << '\n';
  }
}

void write_chaco_file(const Graph& g, const std::string& path) {
  // Atomic replace (persist/atomic_file.hpp): a crash or full disk mid-
  // write leaves the previous file, never a torn one.
  std::ostringstream out;
  write_chaco(g, out);
  persist::atomic_write_file(path, out.str());
}

Graph read_edge_list(std::istream& in, const IoLimits& limits) {
  std::string line;
  std::int64_t line_no = 0;
  std::vector<WeightedEdge> edges;
  VertexId max_v = -1;
  while (next_line(in, line, line_no)) {
    const auto tok = split_ws(line);
    if (tok.empty()) continue;
    if (tok.size() != 2 && tok.size() != 3) {
      fail(line_no, "expected 'u v [w]'");
    }
    const auto u = parse_int(tok[0]);
    const auto v = parse_int(tok[1]);
    if (!u || !v || *u < 0 || *v < 0) fail(line_no, "invalid endpoint");
    // Endpoints imply the vertex count (max id + 1): range-check them so a
    // single bogus line cannot make from_edges allocate by a huge id.
    if (*u >= limits.vertex_cap() || *v >= limits.vertex_cap()) {
      fail(line_no, "endpoint exceeds vertex limit " +
                        std::to_string(limits.vertex_cap()));
    }
    if (*u == *v) {
      fail(line_no, "self loop on vertex " + std::to_string(*u));
    }
    Weight w = 1.0;
    if (tok.size() == 3) {
      const auto wd = parse_double(tok[2]);
      if (!wd || !std::isfinite(*wd) || *wd < 0) {
        fail(line_no, "invalid weight (must be finite and >= 0)");
      }
      w = *wd;
    }
    if (static_cast<std::int64_t>(edges.size()) >= limits.edge_cap()) {
      fail(line_no,
           "edge limit " + std::to_string(limits.edge_cap()) + " exceeded");
    }
    edges.push_back(
        {static_cast<VertexId>(*u), static_cast<VertexId>(*v), w});
    max_v = std::max(max_v, std::max(static_cast<VertexId>(*u),
                                     static_cast<VertexId>(*v)));
  }
  return Graph::from_edges(max_v + 1, edges);
}

Graph read_edge_list_file(const std::string& path, const IoLimits& limits) {
  auto in = open_in(path);
  return read_edge_list(in, limits);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << std::setprecision(17);  // round-trip doubles exactly
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.neighbor_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > v) out << v << ' ' << nbrs[i] << ' ' << ws[i] << '\n';
    }
  }
}

std::vector<int> read_partition(std::istream& in) {
  std::string line;
  std::int64_t line_no = 0;
  std::vector<int> parts;
  while (next_line(in, line, line_no)) {
    const auto t = trim(line);
    if (t.empty()) continue;
    const auto p = parse_int(t);
    if (!p || *p < 0 || *p > std::numeric_limits<int>::max()) {
      fail(line_no, "invalid part id");
    }
    parts.push_back(static_cast<int>(*p));
  }
  return parts;
}

std::vector<int> read_partition_file(const std::string& path) {
  auto in = open_in(path);
  return read_partition(in);
}

void write_partition(std::span<const int> parts, std::ostream& out) {
  for (int p : parts) out << p << '\n';
}

void write_partition_file(std::span<const int> parts,
                          const std::string& path) {
  // Atomic replace, same contract as write_chaco_file: downstream tooling
  // reading a .part mid-rewrite sees the old partition or the new one.
  std::ostringstream out;
  write_partition(parts, out);
  persist::atomic_write_file(path, out.str());
}

}  // namespace ffp
