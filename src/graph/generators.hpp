// Deterministic graph generators.
//
// These stand in for the Walshaw benchmark archive (public but not available
// offline): the same structural families — finite-element-style meshes, tori,
// geometric graphs, power-law graphs — at laptop scale. All generators are
// deterministic for a given seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ffp {

/// rows x cols 4-neighbor mesh (the classic FE-mesh shape).
Graph make_grid2d(int rows, int cols, Weight edge_weight = 1.0);

/// nx x ny x nz 6-neighbor mesh.
Graph make_grid3d(int nx, int ny, int nz, Weight edge_weight = 1.0);

/// rows x cols mesh with wraparound in both dimensions.
Graph make_torus(int rows, int cols, Weight edge_weight = 1.0);

Graph make_path(int n, Weight edge_weight = 1.0);
Graph make_cycle(int n, Weight edge_weight = 1.0);
Graph make_complete(int n, Weight edge_weight = 1.0);
Graph make_star(int leaves, Weight edge_weight = 1.0);

/// Two cliques of size `clique` joined by a path of `bridge` vertices — a
/// graph with an obvious optimal bisection, used heavily in tests.
Graph make_barbell(int clique, int bridge = 1);

/// n points uniform in the unit square, edges between pairs closer than
/// `radius`. Isolated vertices are connected to their nearest neighbor so
/// the result is usable (not necessarily connected overall).
Graph make_random_geometric(int n, double radius, std::uint64_t seed);

/// Chung–Lu style power-law graph: expected degrees ~ (i+1)^(-1/(gamma-1))
/// scaled to average degree `avg_deg`.
Graph make_power_law(int n, double avg_deg, double gamma, std::uint64_t seed);

/// Erdos–Renyi G(n, m): exactly m distinct random edges.
Graph make_random_graph(int n, std::int64_t m, std::uint64_t seed);

/// Caterpillar: a spine path of `spine` vertices with `legs` pendant
/// vertices each — a worst case for naive growing heuristics.
Graph make_caterpillar(int spine, int legs);

/// Replace all edge weights with uniform values in [lo, hi) (deterministic).
Graph with_random_weights(const Graph& g, double lo, double hi,
                          std::uint64_t seed);

}  // namespace ffp
