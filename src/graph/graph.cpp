#include "graph/graph.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

namespace ffp {

Graph Graph::from_edges(VertexId n, std::span<const WeightedEdge> edges,
                        std::vector<Weight> vertex_weights) {
  FFP_CHECK(n >= 0, "negative vertex count");
  Graph g;
  g.n_ = n;

  if (vertex_weights.empty()) {
    g.vwgt_.assign(static_cast<std::size_t>(n), 1.0);
  } else {
    FFP_CHECK(static_cast<VertexId>(vertex_weights.size()) == n,
              "vertex_weights size ", vertex_weights.size(), " != n ", n);
    for (Weight w : vertex_weights) FFP_CHECK(w > 0.0, "vertex weight must be > 0");
    g.vwgt_ = std::move(vertex_weights);
  }
  g.total_vwgt_ = 0.0;
  for (Weight w : g.vwgt_) g.total_vwgt_ += w;

  // Count arcs per vertex (validating as we go).
  std::vector<ArcId> count(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& e : edges) {
    FFP_CHECK(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n,
              "edge endpoint out of range: (", e.u, ",", e.v, ") with n=", n);
    FFP_CHECK(e.u != e.v, "self loop on vertex ", e.u);
    FFP_CHECK(e.w >= 0.0, "negative edge weight on (", e.u, ",", e.v, ")");
    ++count[static_cast<std::size_t>(e.u) + 1];
    ++count[static_cast<std::size_t>(e.v) + 1];
  }
  for (VertexId v = 0; v < n; ++v) count[v + 1] += count[v];

  std::vector<VertexId> adj(static_cast<std::size_t>(count[n]));
  std::vector<Weight> wgt(adj.size());
  std::vector<ArcId> cursor(count.begin(), count.end() - 1);
  for (const auto& e : edges) {
    adj[static_cast<std::size_t>(cursor[e.u])] = e.v;
    wgt[static_cast<std::size_t>(cursor[e.u]++)] = e.w;
    adj[static_cast<std::size_t>(cursor[e.v])] = e.u;
    wgt[static_cast<std::size_t>(cursor[e.v]++)] = e.w;
  }

  // Sort each neighbor list and merge duplicates (parallel edges).
  g.xadj_.assign(static_cast<std::size_t>(n) + 1, 0);
  g.adj_.reserve(adj.size());
  g.wgt_.reserve(wgt.size());
  std::vector<std::pair<VertexId, Weight>> row;
  for (VertexId v = 0; v < n; ++v) {
    row.clear();
    for (ArcId a = count[v]; a < cursor[v]; ++a) {
      row.emplace_back(adj[static_cast<std::size_t>(a)],
                       wgt[static_cast<std::size_t>(a)]);
    }
    std::sort(row.begin(), row.end());
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (!g.adj_.empty() &&
          static_cast<ArcId>(g.adj_.size()) > g.xadj_[v] &&
          g.adj_.back() == row[i].first) {
        g.wgt_.back() += row[i].second;  // merge parallel edge
      } else {
        g.adj_.push_back(row[i].first);
        g.wgt_.push_back(row[i].second);
      }
    }
    g.xadj_[v + 1] = static_cast<ArcId>(g.adj_.size());
  }

  g.wdeg_.assign(static_cast<std::size_t>(n), 0.0);
  g.total_ewgt_ = 0.0;
  g.max_ewgt_ = 0.0;
  g.min_ewgt_ = g.adj_.empty() ? 0.0 : std::numeric_limits<Weight>::infinity();
  for (VertexId v = 0; v < n; ++v) {
    for (ArcId a = g.xadj_[v]; a < g.xadj_[v + 1]; ++a) {
      const Weight w = g.wgt_[static_cast<std::size_t>(a)];
      g.wdeg_[v] += w;
      g.max_ewgt_ = std::max(g.max_ewgt_, w);
      g.min_ewgt_ = std::min(g.min_ewgt_, w);
      if (g.adj_[static_cast<std::size_t>(a)] > v) g.total_ewgt_ += w;
    }
  }
  return g;
}

Weight Graph::edge_weight(VertexId u, VertexId v) const {
  bounds_check(u);
  bounds_check(v);
  const auto nbrs = neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return 0.0;
  return neighbor_weights(u)[static_cast<std::size_t>(it - nbrs.begin())];
}

std::string Graph::summary() const {
  std::ostringstream os;
  os << "Graph(n=" << n_ << ", m=" << num_edges()
     << ", total_edge_weight=" << total_ewgt_ << ")";
  return os.str();
}

}  // namespace ffp
