#include "graph/connectivity.hpp"

#include <algorithm>
#include <queue>

namespace ffp {

std::vector<std::vector<VertexId>> Components::groups() const {
  std::vector<std::vector<VertexId>> out(static_cast<std::size_t>(count));
  for (VertexId v = 0; v < static_cast<VertexId>(label.size()); ++v) {
    out[static_cast<std::size_t>(label[v])].push_back(v);
  }
  return out;
}

Components connected_components(const Graph& g) {
  Components c;
  c.label.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<VertexId> stack;
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    if (c.label[s] != -1) continue;
    const int id = c.count++;
    c.label[s] = id;
    stack.push_back(s);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (VertexId u : g.neighbors(v)) {
        if (c.label[u] == -1) {
          c.label[u] = id;
          stack.push_back(u);
        }
      }
    }
  }
  return c;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).count == 1;
}

std::vector<int> bfs_distances(const Graph& g, VertexId source) {
  const VertexId sources[1] = {source};
  return bfs_distances(g, std::span<const VertexId>(sources));
}

std::vector<int> bfs_distances(const Graph& g,
                               std::span<const VertexId> sources) {
  std::vector<int> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<VertexId> q;
  for (VertexId s : sources) {
    FFP_CHECK(s >= 0 && s < g.num_vertices(), "BFS source out of range");
    if (dist[s] == -1) {
      dist[s] = 0;
      q.push(s);
    }
  }
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (VertexId u : g.neighbors(v)) {
      if (dist[u] == -1) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

std::pair<VertexId, VertexId> pseudo_peripheral_pair(const Graph& g,
                                                     VertexId start) {
  FFP_CHECK(g.num_vertices() > 0, "empty graph");
  FFP_CHECK(start >= 0 && start < g.num_vertices(), "start out of range");
  VertexId a = start;
  VertexId b = start;
  int best = -1;
  // Two BFS sweeps reach a good approximation of the diameter endpoints.
  for (int sweep = 0; sweep < 2; ++sweep) {
    const auto dist = bfs_distances(g, a);
    VertexId far = a;
    int far_d = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (dist[v] > far_d) {
        far_d = dist[v];
        far = v;
      }
    }
    if (far_d > best) {
      best = far_d;
      b = a;
      a = far;
    } else {
      break;
    }
  }
  return {a, b == a && g.num_vertices() > 1 ? (a == 0 ? 1 : 0) : b};
}

Subgraph induced_subgraph(const Graph& g, std::span<const VertexId> vertices) {
  Subgraph out;
  out.to_parent.assign(vertices.begin(), vertices.end());
  std::vector<VertexId> to_local(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    FFP_CHECK(v >= 0 && v < g.num_vertices(), "subgraph vertex out of range");
    FFP_CHECK(to_local[v] == -1, "duplicate vertex ", v, " in subgraph set");
    to_local[v] = static_cast<VertexId>(i);
  }
  std::vector<WeightedEdge> edges;
  std::vector<Weight> vw(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const VertexId v = vertices[i];
    vw[i] = g.vertex_weight(v);
    const auto nbrs = g.neighbors(v);
    const auto ws = g.neighbor_weights(v);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const VertexId lu = to_local[nbrs[j]];
      if (lu != -1 && lu > static_cast<VertexId>(i)) {
        edges.push_back({static_cast<VertexId>(i), lu, ws[j]});
      }
    }
  }
  out.graph = Graph::from_edges(static_cast<VertexId>(vertices.size()), edges,
                                std::move(vw));
  return out;
}

}  // namespace ffp
