// Connectivity utilities: components, BFS, peripheral vertices, and induced
// subgraph extraction (with the mapping back to parent vertices).
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace ffp {

struct Components {
  std::vector<int> label;  ///< component id per vertex, in [0, count)
  int count = 0;

  /// Vertices of each component, grouped.
  std::vector<std::vector<VertexId>> groups() const;
};

Components connected_components(const Graph& g);
bool is_connected(const Graph& g);

/// Unweighted BFS hop distances from source (-1 where unreachable).
std::vector<int> bfs_distances(const Graph& g, VertexId source);

/// Unweighted BFS distances from a set of sources.
std::vector<int> bfs_distances(const Graph& g, std::span<const VertexId> sources);

/// A pair of far-apart vertices found by repeated BFS sweeps from `start`
/// (the classic pseudo-peripheral heuristic). Used to seed bisections.
std::pair<VertexId, VertexId> pseudo_peripheral_pair(const Graph& g,
                                                     VertexId start = 0);

/// Result of extracting the subgraph induced by a vertex subset.
struct Subgraph {
  Graph graph;
  std::vector<VertexId> to_parent;  ///< local id -> parent id
};

/// Induced subgraph over `vertices` (need not be connected; order defines
/// local ids). Edges internal to the set are kept with their weights.
Subgraph induced_subgraph(const Graph& g, std::span<const VertexId> vertices);

}  // namespace ffp
