// Core graph type: an immutable, undirected, weighted graph in CSR
// (compressed sparse row) layout. Every edge is stored twice (one arc per
// direction); neighbor lists and weights are exposed as spans.
//
// Vertex weights default to 1 and become meaningful under multilevel
// coarsening, where a coarse vertex carries the total weight of the fine
// vertices it merged.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace ffp {

using VertexId = std::int32_t;
using ArcId = std::int64_t;  ///< index into the CSR arc arrays
using Weight = double;

/// One undirected edge for graph construction.
struct WeightedEdge {
  VertexId u = 0;
  VertexId v = 0;
  Weight w = 1.0;
};

class Graph {
 public:
  Graph() = default;

  /// Builds a graph from an undirected edge list.
  /// - Self loops are rejected (FFP_CHECK).
  /// - Parallel edges are merged by summing their weights.
  /// - Edge weights must be >= 0.
  /// - vertex_weights may be empty (all 1) or exactly n entries, all > 0.
  static Graph from_edges(VertexId n, std::span<const WeightedEdge> edges,
                          std::vector<Weight> vertex_weights = {});

  VertexId num_vertices() const { return n_; }
  /// Number of undirected edges (each counted once).
  std::int64_t num_edges() const { return static_cast<std::int64_t>(adj_.size()) / 2; }
  std::int64_t num_arcs() const { return static_cast<std::int64_t>(adj_.size()); }

  /// Neighbor vertex ids of v (deterministic order: ascending).
  std::span<const VertexId> neighbors(VertexId v) const {
    bounds_check(v);
    return {adj_.data() + xadj_[v], adj_.data() + xadj_[v + 1]};
  }
  /// Weights aligned with neighbors(v).
  std::span<const Weight> neighbor_weights(VertexId v) const {
    bounds_check(v);
    return {wgt_.data() + xadj_[v], wgt_.data() + xadj_[v + 1]};
  }

  std::int64_t degree(VertexId v) const {
    bounds_check(v);
    return xadj_[v + 1] - xadj_[v];
  }
  /// d(v) = sum of incident edge weights (the paper's d(u)).
  Weight weighted_degree(VertexId v) const {
    bounds_check(v);
    return wdeg_[v];
  }

  Weight vertex_weight(VertexId v) const {
    bounds_check(v);
    return vwgt_[v];
  }
  Weight total_vertex_weight() const { return total_vwgt_; }
  /// Sum of undirected edge weights (each edge once).
  Weight total_edge_weight() const { return total_ewgt_; }
  Weight max_edge_weight() const { return max_ewgt_; }
  Weight min_edge_weight() const { return min_ewgt_; }
  /// True when every edge carries the same weight — flow distances reduce
  /// to hop counts, letting Dijkstra-based kernels fall back to plain BFS.
  bool has_uniform_edge_weights() const {
    return num_edges() == 0 || min_ewgt_ == max_ewgt_;
  }

  /// Weight of edge (u,v); 0 if absent. O(log deg(u)) binary search.
  Weight edge_weight(VertexId u, VertexId v) const;
  bool has_edge(VertexId u, VertexId v) const { return edge_weight(u, v) > 0.0; }

  /// CSR raw views for linear algebra kernels.
  std::span<const ArcId> xadj() const { return xadj_; }
  std::span<const VertexId> adj() const { return adj_; }
  std::span<const Weight> arc_weights() const { return wgt_; }

  /// One-line human-readable summary.
  std::string summary() const;

 private:
  void bounds_check([[maybe_unused]] VertexId v) const {
    FFP_DCHECK(v >= 0 && v < n_, "vertex id out of range");
  }

  VertexId n_ = 0;
  std::vector<ArcId> xadj_;     // size n+1
  std::vector<VertexId> adj_;   // size 2m
  std::vector<Weight> wgt_;     // size 2m
  std::vector<Weight> vwgt_;    // size n
  std::vector<Weight> wdeg_;    // size n, cached weighted degrees
  Weight total_vwgt_ = 0.0;
  Weight total_ewgt_ = 0.0;
  Weight max_ewgt_ = 0.0;
  Weight min_ewgt_ = 0.0;
};

}  // namespace ffp
