#include "linalg/operators.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace ffp {

void LaplacianOperator::apply(std::span<const double> x,
                              std::span<double> y) const {
  const VertexId n = g_->num_vertices();
  FFP_DCHECK(static_cast<VertexId>(x.size()) == n &&
             static_cast<VertexId>(y.size()) == n);
  const auto xadj = g_->xadj();
  const auto adj = g_->adj();
  const auto wgt = g_->arc_weights();
  for (VertexId v = 0; v < n; ++v) {
    double acc = g_->weighted_degree(v) * x[static_cast<std::size_t>(v)];
    for (ArcId a = xadj[static_cast<std::size_t>(v)];
         a < xadj[static_cast<std::size_t>(v) + 1]; ++a) {
      acc -= wgt[static_cast<std::size_t>(a)] *
             x[static_cast<std::size_t>(adj[static_cast<std::size_t>(a)])];
    }
    y[static_cast<std::size_t>(v)] = acc;
  }
}

double LaplacianOperator::eigenvalue_upper_bound() const {
  double max_deg = 0.0;
  for (VertexId v = 0; v < g_->num_vertices(); ++v) {
    max_deg = std::max(max_deg, g_->weighted_degree(v));
  }
  return 2.0 * max_deg;
}

NormalizedLaplacianOperator::NormalizedLaplacianOperator(const Graph& g)
    : g_(&g) {
  inv_sqrt_deg_.resize(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const double d = g.weighted_degree(v);
    inv_sqrt_deg_[static_cast<std::size_t>(v)] = d > 0.0 ? 1.0 / std::sqrt(d) : 0.0;
  }
}

void NormalizedLaplacianOperator::apply(std::span<const double> x,
                                        std::span<double> y) const {
  const VertexId n = g_->num_vertices();
  FFP_DCHECK(static_cast<VertexId>(x.size()) == n &&
             static_cast<VertexId>(y.size()) == n);
  const auto xadj = g_->xadj();
  const auto adj = g_->adj();
  const auto wgt = g_->arc_weights();
  for (VertexId v = 0; v < n; ++v) {
    const auto sv = static_cast<std::size_t>(v);
    double acc = 0.0;
    for (ArcId a = xadj[sv]; a < xadj[sv + 1]; ++a) {
      const auto su = static_cast<std::size_t>(adj[static_cast<std::size_t>(a)]);
      acc += wgt[static_cast<std::size_t>(a)] * inv_sqrt_deg_[su] * x[su];
    }
    y[sv] = x[sv] - inv_sqrt_deg_[sv] * acc;
  }
}

double dot(std::span<const double> a, std::span<const double> b) {
  FFP_DCHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  FFP_DCHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (auto& xi : x) xi *= alpha;
}

double normalize(std::span<double> x) {
  const double n = norm2(x);
  if (n > 0.0) scale(x, 1.0 / n);
  return n;
}

void orthogonalize_against(std::span<double> x,
                           std::span<const std::vector<double>> basis) {
  for (const auto& b : basis) {
    FFP_DCHECK(b.size() == x.size());
    const double c = dot(x, b);
    axpy(-c, b, x);
  }
}

}  // namespace ffp
