#include "linalg/symmlq.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace ffp {

// MINRES recurrences after the reference minres.m of Paige & Saunders
// (C. C. Paige and M. A. Saunders, "Solution of sparse indefinite systems
// of linear equations", SINUM 12(4), 1975), unpreconditioned.
SymmlqResult symmlq_solve(const SymmetricOperator& op,
                          std::span<const double> b,
                          const SymmlqOptions& options) {
  const auto n = static_cast<std::size_t>(op.dim());
  FFP_CHECK(b.size() == n, "rhs size mismatch (", b.size(), " vs ", n, ")");

  SymmlqResult result;
  result.x.assign(n, 0.0);

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    result.converged = true;
    return result;
  }
  const int max_iter = options.max_iterations > 0
                           ? options.max_iterations
                           : static_cast<int>(4 * n) + 10;

  auto apply_shifted = [&](std::span<const double> x, std::span<double> out) {
    op.apply(x, out);
    if (options.shift != 0.0) axpy(-options.shift, x, out);
  };

  std::vector<double> y(b.begin(), b.end());
  std::vector<double> r1(b.begin(), b.end());
  std::vector<double> r2(b.begin(), b.end());
  std::vector<double> v(n), w(n, 0.0), w1(n, 0.0), w2(n, 0.0);

  double beta1 = bnorm;
  double oldb = 0.0;
  double beta = beta1;
  double dbar = 0.0;
  double epsln = 0.0;
  double phibar = beta1;
  double cs = -1.0;
  double sn = 0.0;
  double tnorm2 = 0.0;

  int itn = 0;
  while (itn < max_iter) {
    ++itn;
    const double s = 1.0 / beta;
    for (std::size_t i = 0; i < n; ++i) v[i] = s * y[i];

    apply_shifted(v, y);
    if (itn >= 2) axpy(-beta / oldb, r1, y);
    const double alfa = dot(v, y);
    axpy(-alfa / beta, r2, y);
    r1 = r2;
    r2 = y;
    oldb = beta;
    beta = norm2(y);
    tnorm2 += alfa * alfa + oldb * oldb + beta * beta;

    // Apply previous rotation; compute and apply the new one.
    const double oldeps = epsln;
    const double delta = cs * dbar + sn * alfa;
    double gbar = sn * dbar - cs * alfa;
    epsln = sn * beta;
    dbar = -cs * beta;

    double gamma = std::hypot(gbar, beta);
    gamma = std::max(gamma, 1e-300);
    cs = gbar / gamma;
    sn = beta / gamma;
    const double phi = cs * phibar;
    phibar = sn * phibar;

    // Update solution.
    const double denom = 1.0 / gamma;
    w1 = w2;
    w2 = w;
    for (std::size_t i = 0; i < n; ++i) {
      w[i] = (v[i] - oldeps * w1[i] - delta * w2[i]) * denom;
      result.x[i] += phi * w[i];
    }

    // Convergence: estimated residual against scaled norms.
    const double anorm = std::sqrt(tnorm2);
    const double xnorm = norm2(result.x);
    const double qrnorm = phibar;
    if (qrnorm <= options.tolerance * (anorm * xnorm + bnorm)) break;
    if (beta <= 1e-15 * anorm) break;  // invariant subspace — exact solve
  }

  // Recompute the true residual so callers get an honest number.
  std::vector<double> res(n);
  apply_shifted(result.x, res);
  for (std::size_t i = 0; i < n; ++i) res[i] = b[i] - res[i];
  result.relative_residual = norm2(res) / bnorm;
  result.iterations = itn;
  result.converged =
      result.relative_residual <= std::max(options.tolerance * 100, 1e-8);
  return result;
}

}  // namespace ffp
