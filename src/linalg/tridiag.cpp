#include "linalg/tridiag.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace ffp {

TridiagEigen tridiag_eigen(std::span<const double> diag,
                           std::span<const double> offdiag) {
  const std::size_t m = diag.size();
  FFP_CHECK(m >= 1, "empty tridiagonal matrix");
  FFP_CHECK(offdiag.size() + 1 == m, "offdiag must have m-1 entries");

  std::vector<double> d(diag.begin(), diag.end());
  std::vector<double> e(offdiag.begin(), offdiag.end());
  e.push_back(0.0);

  // z: eigenvector matrix accumulated from identity, row-major z[i][j] is
  // component i of eigenvector j.
  std::vector<std::vector<double>> z(m, std::vector<double>(m, 0.0));
  for (std::size_t i = 0; i < m; ++i) z[i][i] = 1.0;

  for (std::size_t l = 0; l < m; ++l) {
    int iter = 0;
    std::size_t mm;
    do {
      // Find a small subdiagonal element to split the problem.
      for (mm = l; mm + 1 < m; ++mm) {
        const double dd = std::abs(d[mm]) + std::abs(d[mm + 1]);
        if (std::abs(e[mm]) <= 1e-15 * dd) break;
      }
      if (mm != l) {
        FFP_CHECK(iter++ < 64, "tridiag_eigen failed to converge");
        // Wilkinson shift.
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[mm] - d[l] + e[l] / (g + (g >= 0 ? std::abs(r) : -std::abs(r)));
        double s = 1.0, c = 1.0, p = 0.0;
        for (std::size_t i = mm; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[mm] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < m; ++k) {
            f = z[k][i + 1];
            z[k][i + 1] = s * z[k][i] + c * f;
            z[k][i] = c * z[k][i] - s * f;
          }
        }
        if (r == 0.0 && mm - 1 >= l + 1) continue;
        d[l] -= p;
        e[l] = g;
        e[mm] = 0.0;
      }
    } while (mm != l);
  }

  // Sort ascending, carrying eigenvectors along.
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return d[a] < d[b]; });

  TridiagEigen out;
  out.values.resize(m);
  out.vectors.assign(m, std::vector<double>(m));
  for (std::size_t j = 0; j < m; ++j) {
    out.values[j] = d[order[j]];
    for (std::size_t i = 0; i < m; ++i) out.vectors[j][i] = z[i][order[j]];
  }
  return out;
}

}  // namespace ffp
