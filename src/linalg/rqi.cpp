#include "linalg/rqi.hpp"

#include <cmath>

#include "util/check.hpp"

namespace ffp {

RqiResult rqi_refine(const SymmetricOperator& op, std::span<const double> x0,
                     const RqiOptions& options,
                     std::span<const std::vector<double>> deflate) {
  const auto n = static_cast<std::size_t>(op.dim());
  FFP_CHECK(x0.size() == n, "x0 size mismatch");

  RqiResult result;
  result.vector.assign(x0.begin(), x0.end());
  const double input_norm = norm2(result.vector);
  orthogonalize_against(result.vector, deflate);
  // A start vector (numerically) inside the deflation span carries no
  // information — refining rounding dust would converge to an arbitrary
  // eigenpair.
  if (normalize(result.vector) <= 1e-10 * input_norm) {
    result.vector.assign(n, 0.0);
    return result;
  }

  std::vector<double> ax(n);
  for (int it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    op.apply(result.vector, ax);
    const double mu = dot(result.vector, ax);
    result.value = mu;

    // Residual ‖Ax − μx‖.
    double res2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = ax[i] - mu * result.vector[i];
      res2 += r * r;
    }
    if (std::sqrt(res2) <= options.tolerance * (std::abs(mu) + 1e-12)) {
      result.converged = true;
      return result;
    }

    SymmlqOptions sopt;
    sopt.shift = mu;
    sopt.tolerance = options.solver_tolerance;
    sopt.max_iterations = options.solver_max_iterations;
    auto solve = symmlq_solve(op, result.vector, sopt);
    // Near convergence (A − μI) is nearly singular and the solve blows up
    // along the eigendirection — which is exactly what we want: the
    // normalized solution is the improved eigenvector.
    orthogonalize_against(solve.x, deflate);
    if (normalize(solve.x) == 0.0) {
      return result;  // solver returned something entirely in deflate span
    }
    result.vector = std::move(solve.x);
  }

  // Final Rayleigh quotient for the returned vector.
  op.apply(result.vector, ax);
  result.value = dot(result.vector, ax);
  double res2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = ax[i] - result.value * result.vector[i];
    res2 += r * r;
  }
  result.converged =
      std::sqrt(res2) <= options.tolerance * (std::abs(result.value) + 1e-12);
  return result;
}

}  // namespace ffp
