// Rayleigh quotient iteration: refines an approximate eigenvector of a
// symmetric operator to high accuracy, with cubic local convergence. Each
// step solves the (indefinite) system (A − μI) y = x via symmlq_solve.
//
// This is the "RQI/Symmlq" engine of Chaco: a coarse-grid Fiedler vector is
// interpolated to the fine grid and RQI polishes it (see spectral/fiedler).
#pragma once

#include <vector>

#include "linalg/operators.hpp"
#include "linalg/symmlq.hpp"

namespace ffp {

struct RqiOptions {
  int max_iterations = 30;
  double tolerance = 1e-8;       ///< stop when ‖Ax − μx‖ ≤ tol·|μ|+tiny
  double solver_tolerance = 1e-6;
  int solver_max_iterations = 0; ///< 0 = solver default
};

struct RqiResult {
  double value = 0.0;
  std::vector<double> vector;
  int iterations = 0;
  bool converged = false;
};

/// Refines `x0` toward the eigenpair of `op` nearest its Rayleigh quotient,
/// keeping the iterate orthogonal to `deflate` (orthonormal set) throughout.
RqiResult rqi_refine(const SymmetricOperator& op, std::span<const double> x0,
                     const RqiOptions& options,
                     std::span<const std::vector<double>> deflate = {});

}  // namespace ffp
