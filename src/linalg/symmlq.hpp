// Krylov solver for symmetric — possibly indefinite — systems
// (A − shift·I) x = b, from the Paige–Saunders Lanczos family.
//
// CG breaks down on indefinite systems, and RQI solves (L − μI) y = x with
// μ inside L's spectrum — exactly the indefinite case. This is why Chaco
// (and the paper's "RQI/Symmlq" rows) pair RQI with a Paige–Saunders
// solver. We implement the MINRES member of that family: it shares SYMMLQ's
// Lanczos machinery and solves the same class of systems, with simpler
// recurrences and a monotone residual. The public API keeps the paper's
// SYMMLQ terminology; the substitution is recorded in DESIGN.md §2.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/operators.hpp"

namespace ffp {

struct SymmlqOptions {
  double shift = 0.0;        ///< solves (A − shift I) x = b
  double tolerance = 1e-10;  ///< relative residual target
  int max_iterations = 0;    ///< 0 = 4·n
};

struct SymmlqResult {
  std::vector<double> x;
  int iterations = 0;
  bool converged = false;
  double relative_residual = 0.0;  ///< true ‖b−(A−σI)x‖ / ‖b‖, recomputed
};

SymmlqResult symmlq_solve(const SymmetricOperator& op,
                          std::span<const double> b,
                          const SymmlqOptions& options);

}  // namespace ffp
