// Lanczos eigensolver with full reorthogonalization (§2.1 of the paper:
// "the Lanczos method is probably the most known method to solve it").
//
// Computes the `nev` algebraically smallest eigenpairs of a symmetric
// operator, optionally deflating a known invariant subspace (for graph
// Laplacians: the constant vector). Full reorthogonalization keeps the
// Krylov basis numerically orthogonal, which is affordable at the problem
// sizes the paper uses (hundreds to tens of thousands of vertices).
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/operators.hpp"
#include "util/rng.hpp"

namespace ffp {

struct LanczosOptions {
  int nev = 1;                 ///< number of smallest eigenpairs wanted
  int max_iterations = 300;    ///< Krylov dimension cap
  double tolerance = 1e-8;     ///< residual tolerance ‖Ax−λx‖ ≤ tol·‖A‖ estimate
  std::uint64_t seed = 12345;  ///< start vector seed
};

struct Eigenpair {
  double value = 0.0;
  std::vector<double> vector;
};

struct LanczosResult {
  std::vector<Eigenpair> pairs;  ///< ascending by eigenvalue
  int iterations = 0;
  bool converged = false;
};

/// Smallest eigenpairs of `op`, orthogonal to all vectors in `deflate`
/// (which must be orthonormal). The deflation subspace is removed from the
/// start vector and re-projected out every iteration.
LanczosResult lanczos_smallest(const SymmetricOperator& op,
                               const LanczosOptions& options,
                               std::span<const std::vector<double>> deflate = {});

}  // namespace ffp
