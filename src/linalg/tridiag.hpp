// Symmetric tridiagonal eigensolver (implicit QL with Wilkinson shifts, the
// classic EISPACK tql2 routine). Used to diagonalize the small tridiagonal
// matrix the Lanczos process produces.
#pragma once

#include <span>
#include <vector>

namespace ffp {

struct TridiagEigen {
  std::vector<double> values;               ///< ascending
  std::vector<std::vector<double>> vectors; ///< vectors[i] pairs with values[i]
};

/// diag has m entries, offdiag has m-1 (offdiag[i] couples i and i+1).
/// Always returns eigenvectors (m is small in our use: Lanczos steps).
TridiagEigen tridiag_eigen(std::span<const double> diag,
                           std::span<const double> offdiag);

}  // namespace ffp
