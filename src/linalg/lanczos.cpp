#include "linalg/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/tridiag.hpp"
#include "util/check.hpp"

namespace ffp {

LanczosResult lanczos_smallest(const SymmetricOperator& op,
                               const LanczosOptions& options,
                               std::span<const std::vector<double>> deflate) {
  const auto n = static_cast<std::size_t>(op.dim());
  FFP_CHECK(op.dim() >= 1, "operator dimension must be >= 1");
  FFP_CHECK(options.nev >= 1, "nev must be >= 1");

  const int usable_dim = op.dim() - static_cast<int>(deflate.size());
  const int nev = std::min(options.nev, std::max(1, usable_dim));
  const int max_iter =
      std::min<int>(options.max_iterations, std::max(1, usable_dim));

  LanczosResult result;

  // Random start vector orthogonal to the deflation space.
  Rng rng(options.seed);
  std::vector<std::vector<double>> basis;  // Lanczos vectors q_1..q_j
  basis.emplace_back(n);
  for (auto& x : basis[0]) x = rng.uniform(-1.0, 1.0);
  orthogonalize_against(basis[0], deflate);
  if (normalize(basis[0]) == 0.0) {
    // Deflation space spans everything useful; return a zero pair.
    result.pairs.push_back({0.0, std::vector<double>(n, 0.0)});
    result.converged = true;
    return result;
  }

  std::vector<double> alpha;  // tridiagonal diagonal
  std::vector<double> beta;   // tridiagonal off-diagonal
  std::vector<double> w(n);

  double op_scale = 1.0;  // running estimate of ‖A‖ for the tolerance
  TridiagEigen te;

  for (int j = 0; j < max_iter; ++j) {
    const auto& q = basis.back();
    op.apply(q, w);
    const double a = dot(w, q);
    alpha.push_back(a);
    op_scale = std::max({op_scale, std::abs(a), j > 0 ? beta.back() : 0.0});

    // w ← w − a q − β q_{j−1}, then full reorthogonalization against the
    // whole basis and the deflation space (twice is enough — Kahan).
    axpy(-a, q, w);
    if (j > 0) axpy(-beta.back(), basis[static_cast<std::size_t>(j) - 1], w);
    for (int pass = 0; pass < 2; ++pass) {
      orthogonalize_against(w, deflate);
      orthogonalize_against(w, basis);
    }
    const double b = norm2(w);

    // Convergence check every few steps once we have enough directions.
    const bool last = (j + 1 == max_iter) || b <= 1e-14 * op_scale;
    if (static_cast<int>(alpha.size()) >= nev && (last || (j % 5 == 4))) {
      te = tridiag_eigen(alpha, beta);
      // Residual of Ritz pair i is |beta_j * s_{ji}| (last component).
      bool all_converged = true;
      for (int i = 0; i < nev; ++i) {
        const double res =
            b * std::abs(te.vectors[static_cast<std::size_t>(i)].back());
        if (res > options.tolerance * op_scale) {
          all_converged = false;
          break;
        }
      }
      if (all_converged || last) {
        result.converged = all_converged || b <= 1e-14 * op_scale;
        result.iterations = j + 1;
        break;
      }
    }
    if (b <= 1e-14 * op_scale) {
      // Invariant subspace found; restart direction is not needed because
      // usable_dim bounds max_iter.
      te = tridiag_eigen(alpha, beta);
      result.converged = true;
      result.iterations = j + 1;
      break;
    }
    beta.push_back(b);
    basis.emplace_back(w);
    scale(basis.back(), 1.0 / b);
  }
  if (te.values.empty()) te = tridiag_eigen(alpha, beta);
  if (result.iterations == 0) result.iterations = static_cast<int>(alpha.size());

  // Assemble Ritz vectors x_i = Σ_j s_{ji} q_j.
  const int available = static_cast<int>(te.values.size());
  for (int i = 0; i < std::min(nev, available); ++i) {
    Eigenpair pair;
    pair.value = te.values[static_cast<std::size_t>(i)];
    pair.vector.assign(n, 0.0);
    const auto& s = te.vectors[static_cast<std::size_t>(i)];
    for (std::size_t jj = 0; jj < basis.size() && jj < s.size(); ++jj) {
      axpy(s[jj], basis[jj], pair.vector);
    }
    normalize(pair.vector);
    result.pairs.push_back(std::move(pair));
  }
  return result;
}

}  // namespace ffp
