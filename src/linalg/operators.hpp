// Matrix-free symmetric linear operators over graphs, plus small dense
// vector kernels. The eigensolvers (Lanczos, RQI) and SYMMLQ only touch
// operators through apply(), so the graph Laplacian never needs to be
// materialized.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace ffp {

/// Abstract symmetric operator y = A x on R^n.
class SymmetricOperator {
 public:
  virtual ~SymmetricOperator() = default;
  virtual VertexId dim() const = 0;
  virtual void apply(std::span<const double> x, std::span<double> y) const = 0;
};

/// Combinatorial graph Laplacian L = D − W:
///   (Lx)_v = d(v) x_v − Σ_u w(u,v) x_u.
class LaplacianOperator final : public SymmetricOperator {
 public:
  explicit LaplacianOperator(const Graph& g) : g_(&g) {}
  VertexId dim() const override { return g_->num_vertices(); }
  void apply(std::span<const double> x, std::span<double> y) const override;

  /// Gershgorin upper bound on the largest eigenvalue: max_v 2 d(v).
  double eigenvalue_upper_bound() const;

  const Graph& graph() const { return *g_; }

 private:
  const Graph* g_;
};

/// Normalized Laplacian Lsym = I − D^{-1/2} W D^{-1/2}. Eigenvectors map to
/// the generalized problem (D − W)x = λ D x via x = D^{-1/2} y; the same
/// problem also covers the Mcut relaxation (D−W)x = λ W x, because the two
/// are related by the monotone transform λ → λ/(1+λ). Vertices with zero
/// degree act as isolated (row of the identity).
class NormalizedLaplacianOperator final : public SymmetricOperator {
 public:
  explicit NormalizedLaplacianOperator(const Graph& g);
  VertexId dim() const override { return g_->num_vertices(); }
  void apply(std::span<const double> x, std::span<double> y) const override;

  /// 1/sqrt(d(v)) per vertex (0 for isolated vertices).
  std::span<const double> inv_sqrt_degree() const { return inv_sqrt_deg_; }

 private:
  const Graph* g_;
  std::vector<double> inv_sqrt_deg_;
};

/// y = (sigma I − A) x — turns "smallest eigenvalues of A" into "largest of
/// the shifted operator", which is where Lanczos converges fastest.
class ShiftedNegatedOperator final : public SymmetricOperator {
 public:
  ShiftedNegatedOperator(const SymmetricOperator& inner, double sigma)
      : inner_(&inner), sigma_(sigma) {}
  VertexId dim() const override { return inner_->dim(); }
  void apply(std::span<const double> x, std::span<double> y) const override {
    inner_->apply(x, y);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = sigma_ * x[i] - y[i];
  }

 private:
  const SymmetricOperator* inner_;
  double sigma_;
};

// ---- dense vector kernels ----

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
void axpy(double alpha, std::span<const double> x, std::span<double> y);
void scale(std::span<double> x, double alpha);
/// x <- x / ||x||; returns the prior norm (0 leaves x unchanged).
double normalize(std::span<double> x);
/// Removes the components of x along each (assumed orthonormal) basis vector.
void orthogonalize_against(std::span<double> x,
                           std::span<const std::vector<double>> basis);

}  // namespace ffp
