#include "refine/kway_fm.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace ffp {

KwayFmResult kway_fm_refine(Partition& p, const ObjectiveFn& objective,
                            const KwayFmOptions& options, Rng& rng) {
  const Graph& g = p.graph();
  KwayFmResult result;
  result.initial_objective = objective.evaluate(p);

  const int k = std::max(1, p.num_nonempty_parts());
  const double cap =
      g.total_vertex_weight() / k * options.max_imbalance;

  std::vector<VertexId> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), 0);

  std::vector<int> tried_parts;  // scratch: adjacent parts of a vertex
  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++result.passes;
    rng.shuffle(order);
    double pass_gain = 0.0;
    for (VertexId v : order) {
      const int from = p.part_of(v);
      if (p.part_size(from) <= 1) continue;  // never empty a part

      // Candidate targets: parts adjacent to v.
      tried_parts.clear();
      for (VertexId u : g.neighbors(v)) {
        const int t = p.part_of(u);
        if (t != from &&
            std::find(tried_parts.begin(), tried_parts.end(), t) ==
                tried_parts.end()) {
          tried_parts.push_back(t);
        }
      }
      int best_t = -1;
      double best_delta = -1e-13;  // strict improvement only
      for (int t : tried_parts) {
        if (options.enforce_balance &&
            p.part_vertex_weight(t) + g.vertex_weight(v) > cap) {
          continue;
        }
        const double delta = objective.move_delta(p, v, t);
        if (delta < best_delta) {
          best_delta = delta;
          best_t = t;
        }
      }
      if (best_t != -1) {
        p.move(v, best_t);
        pass_gain -= best_delta;  // delta is negative
        ++result.moves;
      }
    }
    if (pass_gain <= options.min_gain_per_pass) break;
  }

  result.final_objective = objective.evaluate(p);
  return result;
}

}  // namespace ffp
