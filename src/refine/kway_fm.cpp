#include "refine/kway_fm.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "partition/objective_tracker.hpp"
#include "partition/part_scratch.hpp"

namespace ffp {

KwayFmResult kway_fm_refine(Partition& p, const ObjectiveFn& objective,
                            const KwayFmOptions& options, Rng& rng) {
  // The tracker owns the partition for the duration of the refinement and
  // maintains the running objective across moves; the built-in criteria
  // update in O(deg) per move, so initial/final values cost nothing extra.
  // The caller's partition is handed back even if the objective throws —
  // `p` must never be left moved-from: evaluate once while p is still
  // intact (a throwing custom objective fails here, before the move), so
  // the tracker's own resync on the identical state cannot throw, and the
  // guard below covers everything after.
  KwayFmResult result;
  result.initial_objective = objective.evaluate(p);
  ObjectiveTracker tracker(std::move(p), objective);
  struct ReturnPartition {
    Partition& p;
    ObjectiveTracker& tracker;
    ~ReturnPartition() { p = std::move(tracker).take(); }
  } return_partition{p, tracker};
  const Graph& g = tracker.partition().graph();

  const int k = std::max(1, tracker.partition().num_nonempty_parts());
  const double cap =
      g.total_vertex_weight() / k * options.max_imbalance;

  std::vector<VertexId> order(static_cast<std::size_t>(g.num_vertices()));
  std::iota(order.begin(), order.end(), 0);

  PartMarkScratch tried_parts;  // scratch: adjacent parts of a vertex
  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++result.passes;
    rng.shuffle(order);
    double pass_gain = 0.0;
    for (VertexId v : order) {
      const Partition& cur = tracker.partition();
      const int from = cur.part_of(v);
      if (cur.part_size(from) <= 1) continue;  // never empty a part

      // Candidate targets: parts adjacent to v.
      tried_parts.begin(cur.num_parts());
      for (VertexId u : g.neighbors(v)) {
        const int t = cur.part_of(u);
        if (t != from) tried_parts.mark(t);
      }
      int best_t = -1;
      double best_delta = -1e-13;  // strict improvement only
      for (int t : tried_parts.marked()) {
        if (options.enforce_balance &&
            cur.part_vertex_weight(t) + g.vertex_weight(v) > cap) {
          continue;
        }
        const double delta = tracker.move_delta(v, t);
        if (delta < best_delta) {
          best_delta = delta;
          best_t = t;
        }
      }
      if (best_t != -1) {
        tracker.move(v, best_t, best_delta);
        pass_gain -= best_delta;  // delta is negative
        ++result.moves;
      }
    }
    if (pass_gain <= options.min_gain_per_pass) break;
  }

  result.final_objective = tracker.value();
  return result;
}

}  // namespace ffp
