#include "refine/fm_bisection.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.hpp"

namespace ffp {

namespace {

/// Lazy max-heap entry: stamped so stale gains pop harmlessly.
struct HeapEntry {
  double gain;
  std::int64_t stamp;
  VertexId v;
  bool operator<(const HeapEntry& o) const { return gain < o.gain; }
};

}  // namespace

FmResult fm_refine_bisection(Partition& p, int side_a, int side_b,
                             const FmOptions& options) {
  FFP_CHECK(side_a != side_b, "sides must differ");
  FFP_CHECK(side_a >= 0 && side_a < p.num_parts(), "side_a out of range");
  FFP_CHECK(side_b >= 0 && side_b < p.num_parts(), "side_b out of range");
  const Graph& g = p.graph();

  FmResult result;
  result.initial_cut = p.edge_cut();

  // Vertices on the two sides (fixed set per call; moves only swap sides).
  std::vector<VertexId> scope;
  for (VertexId v : p.members(side_a)) scope.push_back(v);
  for (VertexId v : p.members(side_b)) scope.push_back(v);
  if (scope.size() < 2) {
    result.final_cut = result.initial_cut;
    return result;
  }

  const double scope_weight = [&] {
    double w = 0.0;
    for (VertexId v : scope) w += g.vertex_weight(v);
    return w;
  }();
  double max_vertex_weight = 0.0;
  for (VertexId v : scope) {
    max_vertex_weight = std::max(max_vertex_weight, g.vertex_weight(v));
  }
  // Strict caps define which states count as balanced (best-prefix
  // eligibility); the move cap adds one vertex of slack so a perfectly
  // balanced start is not deadlocked — the classic FM formulation lets the
  // sequence pass through mildly unbalanced states and the rollback keeps
  // only balanced prefixes. Caps are per side: each side may hold its
  // target share of the scope weight times the imbalance slack, so an
  // uneven target_fraction_a is enforced, not merely permitted.
  FFP_CHECK(options.target_fraction_a > 0.0 && options.target_fraction_a < 1.0,
            "target_fraction_a must be in (0,1)");
  const double cap_a =
      scope_weight * options.target_fraction_a * options.max_imbalance;
  const double cap_b =
      scope_weight * (1.0 - options.target_fraction_a) * options.max_imbalance;
  auto cap_of = [&](int side) { return side == side_a ? cap_a : cap_b; };
  auto move_cap_of = [&](int side) { return cap_of(side) + max_vertex_weight; };

  std::vector<double> gain(static_cast<std::size_t>(g.num_vertices()), 0.0);
  std::vector<std::int64_t> stamp(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<char> locked(static_cast<std::size_t>(g.num_vertices()), 0);
  std::int64_t epoch = 0;

  auto other = [&](int side) { return side == side_a ? side_b : side_a; };
  auto compute_gain = [&](VertexId v) {
    // Gain of moving v across: cut decreases by ext-to-other minus
    // connection kept inside (standard FM gain with weights).
    const int from = p.part_of(v);
    const auto prof = p.move_profile(v, other(from));
    return prof.ext_to - prof.ext_from;
  };

  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++result.passes;
    std::priority_queue<HeapEntry> heap;
    ++epoch;
    for (VertexId v : scope) {
      locked[static_cast<std::size_t>(v)] = 0;
      gain[static_cast<std::size_t>(v)] = compute_gain(v);
      stamp[static_cast<std::size_t>(v)] = epoch;
      heap.push({gain[static_cast<std::size_t>(v)], epoch, v});
    }

    // Tentative move sequence with best-prefix rollback. An unbalanced
    // starting state makes any balanced prefix preferable, whatever its
    // gain; otherwise only strict improvements are kept.
    std::vector<VertexId> sequence;
    sequence.reserve(scope.size());
    const bool start_balanced = p.part_vertex_weight(side_a) <= cap_a &&
                                p.part_vertex_weight(side_b) <= cap_b;
    double cumulative = 0.0;
    double best_cumulative =
        start_balanced ? 0.0 : -std::numeric_limits<double>::infinity();
    std::size_t best_prefix = 0;

    while (!heap.empty()) {
      const auto top = heap.top();
      heap.pop();
      const auto sv = static_cast<std::size_t>(top.v);
      if (locked[sv] || top.stamp != stamp[sv] || top.gain != gain[sv]) {
        continue;  // stale
      }
      const int from = p.part_of(top.v);
      const int to = other(from);
      if (p.part_vertex_weight(to) + g.vertex_weight(top.v) > move_cap_of(to) ||
          p.part_size(from) == 1) {  // never overload or empty a side
        locked[sv] = 1;
        continue;
      }

      p.move(top.v, to);
      locked[sv] = 1;
      cumulative += top.gain;
      sequence.push_back(top.v);
      const bool balanced = p.part_vertex_weight(side_a) <= cap_a &&
                            p.part_vertex_weight(side_b) <= cap_b;
      if (balanced && cumulative > best_cumulative + 1e-15) {
        best_cumulative = cumulative;
        best_prefix = sequence.size();
      }
      // Update neighbor gains.
      for (VertexId u : g.neighbors(top.v)) {
        const auto su = static_cast<std::size_t>(u);
        if (locked[su] || stamp[su] != epoch) continue;
        const int pu = p.part_of(u);
        if (pu != side_a && pu != side_b) continue;
        gain[su] = compute_gain(u);
        heap.push({gain[su], epoch, u});
      }
    }

    // Roll back past the best prefix.
    for (std::size_t i = sequence.size(); i-- > best_prefix;) {
      const VertexId v = sequence[i];
      p.move(v, other(p.part_of(v)));
    }
    result.moves += static_cast<std::int64_t>(best_prefix);
    if (best_cumulative <= options.min_gain_per_pass && start_balanced) break;
    if (best_prefix == 0 && !start_balanced) break;  // cannot repair balance
  }

  result.final_cut = p.edge_cut();
  return result;
}

FmResult fm_refine_bisection(const Graph& g, std::vector<int>& assignment,
                             const FmOptions& options) {
  auto p = Partition::from_assignment(g, assignment, 2);
  const auto result = fm_refine_bisection(p, 0, 1, options);
  std::copy(p.assignment().begin(), p.assignment().end(), assignment.begin());
  return result;
}

}  // namespace ffp
