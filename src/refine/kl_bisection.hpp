// Kernighan–Lin refinement (§2.3, [20] in the paper): pairwise swaps
// between two sides with best-prefix rollback. The classic O(n³) pair
// selection is tamed by restricting candidates to the top-T vertices by D
// value on each side (a standard speedup that preserves behaviour on the
// graphs KL is good at).
//
// kl_refine_kway applies KL to every adjacent pair of parts in a k-way
// partition until no pair improves — the role Chaco's KL option plays for
// octasections and what REFINE_PARTITION does across the final partition.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/partition.hpp"

namespace ffp {

struct KlOptions {
  int max_passes = 8;
  int candidate_window = 24;  ///< top-T by D value considered per side
  double min_gain_per_pass = 1e-12;
};

struct KlResult {
  double initial_cut = 0.0;
  double final_cut = 0.0;
  int passes = 0;
  std::int64_t swaps = 0;
};

/// Refines the two given sides of a partition in place by KL swaps.
/// Swaps preserve side sizes exactly (KL's invariant).
KlResult kl_refine_bisection(Partition& p, int side_a, int side_b,
                             const KlOptions& options = {});

/// Sweeps KL over every connected pair of parts until a sweep yields no
/// improvement (bounded rounds). Returns total cut improvement.
double kl_refine_kway(const Graph& g, std::vector<int>& assignment, int k,
                      double max_imbalance, std::uint64_t seed,
                      const KlOptions& options = {});

}  // namespace ffp
