// Greedy k-way boundary refinement (the METIS-style generalization of FM
// that Chaco's REFINE_PARTITION option corresponds to): sweep boundary
// vertices, moving each to the adjacent part with the best objective delta
// when the move improves the objective and respects the balance cap.
// Works for any ObjectiveFn, so the bench can also refine Ncut/Mcut
// partitions directly.
#pragma once

#include <cstdint>

#include "partition/objectives.hpp"
#include "partition/partition.hpp"
#include "util/rng.hpp"

namespace ffp {

struct KwayFmOptions {
  double max_imbalance = 1.10;
  int max_passes = 12;
  double min_gain_per_pass = 1e-12;
  bool enforce_balance = true;  ///< metaheuristic post-passes turn this off
};

struct KwayFmResult {
  double initial_objective = 0.0;
  double final_objective = 0.0;
  int passes = 0;
  std::int64_t moves = 0;
};

KwayFmResult kway_fm_refine(Partition& p, const ObjectiveFn& objective,
                            const KwayFmOptions& options, Rng& rng);

}  // namespace ffp
