// Fiduccia–Mattheyses bisection refinement (§2.3, [9] in the paper): the
// linear-time single-vertex-move formulation of Kernighan–Lin. Each pass
// tentatively moves every vertex once in best-gain order under a balance
// constraint, then rolls back to the best prefix; passes repeat until no
// improvement. Gains are real-valued (flow weights), so a lazy max-heap
// replaces the classic integer bucket array — same behaviour, O(m log n).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "partition/partition.hpp"

namespace ffp {

struct FmOptions {
  double max_imbalance = 1.05;  ///< per-side cap: weight / (target share)
  /// Weight share side_a is meant to hold (side_b gets the complement).
  /// Each side's cap is scope_weight · share · max_imbalance, so an uneven
  /// target is actively enforced — a sequence only counts as balanced when
  /// BOTH sides are inside their caps, and an out-of-cap start makes any
  /// balanced prefix preferable (balance repair). 0.5 is the classic
  /// symmetric bisection.
  double target_fraction_a = 0.5;
  int max_passes = 16;
  double min_gain_per_pass = 1e-12;  ///< stop when a pass improves less
};

struct FmResult {
  double initial_cut = 0.0;   ///< conventional edge cut before
  double final_cut = 0.0;     ///< and after
  int passes = 0;
  std::int64_t moves = 0;     ///< committed moves
};

/// Refines a 2-part partition in place. Part ids other than {side_a, side_b}
/// are untouched (lets the k-way recursive drivers refine pairs).
FmResult fm_refine_bisection(Partition& p, int side_a, int side_b,
                             const FmOptions& options);

/// Convenience for a whole 2-part assignment vector.
FmResult fm_refine_bisection(const Graph& g, std::vector<int>& assignment,
                             const FmOptions& options);

}  // namespace ffp
