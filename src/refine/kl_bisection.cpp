#include "refine/kl_bisection.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace ffp {

namespace {

/// D(v) = external − internal connection for v w.r.t. the two sides.
double d_value(const Partition& p, VertexId v, int own, int other) {
  const auto prof = p.move_profile(v, other);
  (void)own;
  return prof.ext_to - prof.ext_from;
}

/// Collect the `window` highest-D unlocked vertices of `side`.
void top_candidates(const Partition& p, int side, int other,
                    const std::vector<char>& locked, int window,
                    std::vector<std::pair<double, VertexId>>& out) {
  out.clear();
  for (VertexId v : p.members(side)) {
    if (locked[static_cast<std::size_t>(v)]) continue;
    out.emplace_back(d_value(p, v, side, other), v);
  }
  const auto cut_at = std::min<std::size_t>(static_cast<std::size_t>(window),
                                            out.size());
  std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(cut_at),
                    out.end(), std::greater<>());
  out.resize(cut_at);
}

}  // namespace

KlResult kl_refine_bisection(Partition& p, int side_a, int side_b,
                             const KlOptions& options) {
  FFP_CHECK(side_a != side_b, "sides must differ");
  const Graph& g = p.graph();
  KlResult result;
  result.initial_cut = p.edge_cut();

  std::vector<char> locked(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<std::pair<double, VertexId>> cand_a, cand_b;

  for (int pass = 0; pass < options.max_passes; ++pass) {
    ++result.passes;
    for (VertexId v : p.members(side_a)) locked[static_cast<std::size_t>(v)] = 0;
    for (VertexId v : p.members(side_b)) locked[static_cast<std::size_t>(v)] = 0;

    const std::size_t max_swaps =
        std::min(p.members(side_a).size(), p.members(side_b).size());
    std::vector<std::pair<VertexId, VertexId>> sequence;
    sequence.reserve(max_swaps);
    double cumulative = 0.0;
    double best_cumulative = 0.0;
    std::size_t best_prefix = 0;

    for (std::size_t s = 0; s < max_swaps; ++s) {
      top_candidates(p, side_a, side_b, locked, options.candidate_window, cand_a);
      top_candidates(p, side_b, side_a, locked, options.candidate_window, cand_b);
      if (cand_a.empty() || cand_b.empty()) break;

      // Best pair: gain = D(a) + D(b) − 2 w(a,b).
      double best_gain = -std::numeric_limits<double>::infinity();
      VertexId best_va = -1, best_vb = -1;
      for (const auto& [da, va] : cand_a) {
        for (const auto& [db, vb] : cand_b) {
          const double gain = da + db - 2.0 * g.edge_weight(va, vb);
          if (gain > best_gain) {
            best_gain = gain;
            best_va = va;
            best_vb = vb;
          }
        }
      }
      // Tentatively swap.
      p.move(best_va, side_b);
      p.move(best_vb, side_a);
      locked[static_cast<std::size_t>(best_va)] = 1;
      locked[static_cast<std::size_t>(best_vb)] = 1;
      sequence.emplace_back(best_va, best_vb);
      cumulative += best_gain;
      if (cumulative > best_cumulative + 1e-15) {
        best_cumulative = cumulative;
        best_prefix = sequence.size();
      }
    }

    // Roll back beyond the best prefix.
    for (std::size_t i = sequence.size(); i-- > best_prefix;) {
      p.move(sequence[i].first, side_a);
      p.move(sequence[i].second, side_b);
    }
    result.swaps += static_cast<std::int64_t>(best_prefix);
    if (best_cumulative <= options.min_gain_per_pass) break;
  }

  result.final_cut = p.edge_cut();
  return result;
}

double kl_refine_kway(const Graph& g, std::vector<int>& assignment, int k,
                      double max_imbalance, std::uint64_t seed,
                      const KlOptions& options) {
  (void)max_imbalance;  // KL swaps preserve sizes; balance is left intact.
  FFP_CHECK(k >= 2, "k must be >= 2");
  auto p = Partition::from_assignment(g, assignment, k);
  const double before = p.edge_cut();

  Rng rng(seed);
  std::vector<std::pair<int, Weight>> conns;
  const int max_rounds = 4;
  for (int round = 0; round < max_rounds; ++round) {
    double round_gain = 0.0;
    // Sweep connected part pairs in a deterministic shuffled order.
    std::vector<std::pair<int, int>> pairs;
    for (int a : p.nonempty_parts()) {
      conns.clear();
      p.connections(a, conns);
      for (const auto& [b, w] : conns) {
        if (b > a) pairs.emplace_back(a, b);
      }
    }
    std::sort(pairs.begin(), pairs.end());
    rng.shuffle(pairs);
    for (const auto& [a, b] : pairs) {
      if (p.part_size(a) == 0 || p.part_size(b) == 0) continue;
      const auto res = kl_refine_bisection(p, a, b, options);
      round_gain += res.initial_cut - res.final_cut;
    }
    if (round_gain <= options.min_gain_per_pass) break;
  }

  std::copy(p.assignment().begin(), p.assignment().end(), assignment.begin());
  return before - p.edge_cut();
}

}  // namespace ffp
