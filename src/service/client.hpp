// ServiceClient — the resilient client side of the service protocol, as a
// library (ffp_client's graph mode is a thin wrapper; the chaos tests
// drive it in-process against a TcpServer). It owns the retry loop the
// protocol's error taxonomy exists for:
//
//   * Fatal error events (bad_request, job_failed, ...) fail the one job
//     they name, permanently.
//   * Retryable error events (overloaded, queue_expired, shutting_down)
//     put the job back in the pending set for the next attempt, honoring
//     any server-supplied retry_after_ms hint.
//   * Connection-level failures (conn_lost, timeout, refused connects,
//     garbage lines) end the attempt: every non-terminal job goes back to
//     pending, the client backs off and reconnects.
//
// Resubmission is safe BY CONSTRUCTION, not by protocol bookkeeping: a
// deterministic spec resubmitted under the same id is answered from the
// server's result cache (same graph digest, same canonical spec — see
// api::SolveSpec::cache_key), so a retry after a torn connection costs a
// lookup, never a duplicate solve, and always yields byte-identical
// results. This is what lets the retry loop be aggressive.
//
// Backoff is deterministic: full jitter in [cap/2, cap] with
// cap = min(max_ms, base_ms * 2^(attempt-1)), drawn from
// splitmix64(seed ^ attempt) — so a given (--retry-seed, attempt) pair
// always waits the same time, and tests replay schedules exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "service/errors.hpp"

namespace ffp {

struct RetryPolicy {
  int max_attempts = 5;   ///< total connection attempts (1 = no retry)
  double base_ms = 100;   ///< first-retry backoff cap
  double max_ms = 5000;   ///< backoff cap ceiling
  std::uint64_t seed = 1; ///< jitter seed (deterministic schedules)

  /// The wait before attempt `attempt + 1` (attempt >= 1): full jitter in
  /// [cap/2, cap], deterministic in (seed, attempt).
  double backoff_ms(int attempt) const;
};

/// One job the client runs to completion: the client-chosen id plus the
/// full submit request line (which must carry the same id).
struct ClientJob {
  std::string id;
  std::string submit_line;
};

/// Terminal outcome of one job after all retries.
struct ClientResult {
  std::string id;
  bool ok = false;
  std::string result_line;  ///< raw `result` event JSON (ok only)
  ErrCode code = ErrCode::None;  ///< failure class (!ok only)
  std::string error;             ///< failure message (!ok only)
};

struct ServiceClientOptions {
  int port = 0;  ///< ffp_serve port on 127.0.0.1
  RetryPolicy retry;
  /// Per-read deadline while awaiting a response line; <= 0 blocks
  /// forever. Expiry counts as a connection failure (retry).
  double io_timeout_ms = 0;
  /// Ceiling on one response line (result events carry the partition).
  std::size_t max_line_bytes = 1u << 30;
  /// Observation hooks (both optional): every received line, and every
  /// backoff the retry loop takes (ffp_client logs; tests assert).
  std::function<void(const std::string& line)> on_line;
  std::function<void(int attempt, double wait_ms, const std::string& why)>
      on_backoff;
};

class ServiceClient {
 public:
  explicit ServiceClient(ServiceClientOptions options)
      : options_(std::move(options)) {}

  /// Runs every job to a terminal outcome — reconnecting, backing off and
  /// resubmitting through retryable failures — and returns one result per
  /// job, in input order. Only throws on caller misuse (duplicate ids);
  /// server and network failures are returned, not thrown.
  std::vector<ClientResult> run(const std::vector<ClientJob>& jobs);

 private:
  ServiceClientOptions options_;
};

}  // namespace ffp
