#include "service/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ffp {

/// The accept loop's shared view of every live connection: the slot gate
/// (`max_clients`) plus the fd registry the stop path uses to kick
/// blocked readers loose.
class TcpServer::ConnectionSet {
 public:
  explicit ConnectionSet(unsigned max_clients) : max_clients_(max_clients) {}

  /// Claims a slot for `conn` without blocking — shedding happens at the
  /// caller, not by queueing. Returns the connection index, or -1 when
  /// the server is full or stopping (the caller distinguishes via
  /// stopping()).
  int try_claim(std::shared_ptr<FdHandle> conn) {
    std::lock_guard lock(mu_);
    if (stopping_ || live_.size() >= max_clients_) return -1;
    const int index = next_index_++;
    live_.emplace(index, std::move(conn));
    return index;
  }

  /// Called by a session thread as its last act: frees the slot and
  /// queues the index for the accept loop to join — finished threads are
  /// reaped continuously instead of accumulating until shutdown.
  void release(int index) {
    std::lock_guard lock(mu_);
    live_.erase(index);
    finished_.push_back(index);
  }

  /// Drains the reap queue (accept loop only).
  std::vector<int> take_finished() {
    std::lock_guard lock(mu_);
    return std::exchange(finished_, {});
  }

  /// Flips the stop flag and full-closes every live connection so their
  /// session threads fall out of blocking reads.
  void stop_all() {
    std::lock_guard lock(mu_);
    stopping_ = true;
    for (const auto& [index, conn] : live_) {
      (void)index;
      shutdown_both(*conn);
    }
  }

  bool stopping() const {
    std::lock_guard lock(mu_);
    return stopping_;
  }

 private:
  const std::size_t max_clients_;
  mutable std::mutex mu_;
  std::map<int, std::shared_ptr<FdHandle>> live_;
  std::vector<int> finished_;  ///< released, awaiting join by the acceptor
  int next_index_ = 0;
  bool stopping_ = false;
};

TcpServer::TcpServer(ServiceHost& host, TcpServerOptions options)
    : host_(host), options_(std::move(options)) {
  FFP_CHECK(options_.max_clients >= 1, "TcpServer needs max_clients >= 1");
  listener_ = tcp_listen(options_.port, &port_);
  int fds[2] = {-1, -1};
  FFP_CHECK(::pipe(fds) == 0, "self-pipe creation failed: errno ", errno);
  stop_read_ = FdHandle(fds[0]);
  stop_write_ = FdHandle(fds[1]);
  // The write end must never block (request_stop runs in signal
  // handlers); a full pipe just means a stop is already pending.
  ::fcntl(stop_write_.get(), F_SETFL, O_NONBLOCK);
  ::fcntl(stop_read_.get(), F_SETFD, FD_CLOEXEC);
  ::fcntl(stop_write_.get(), F_SETFD, FD_CLOEXEC);
  connections_ = std::make_unique<ConnectionSet>(options_.max_clients);
}

TcpServer::~TcpServer() = default;

void TcpServer::request_stop() noexcept {
  // write(2) is async-signal-safe; one byte wakes the poll. EAGAIN means
  // a stop is already queued — exactly as good.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(stop_write_.get(), &byte, 1);
}

void TcpServer::run() {
  std::map<int, std::thread> workers;
  const auto reap = [&] {
    for (const int done : connections_->take_finished()) {
      const auto it = workers.find(done);
      if (it == workers.end()) continue;
      it->second.join();  // already past release(): joins immediately
      workers.erase(it);
    }
  };

  for (;;) {
    struct pollfd fds[2];
    fds[0] = {listener_.get(), POLLIN, 0};
    fds[1] = {stop_read_.get(), POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "ffp_serve: poll error: errno %d\n", errno);
      break;
    }
    if ((fds[1].revents & POLLIN) != 0 || connections_->stopping()) break;
    if ((fds[0].revents & (POLLIN | POLLERR | POLLHUP)) == 0) continue;

    std::shared_ptr<FdHandle> conn;
    try {
      conn = std::make_shared<FdHandle>(tcp_accept(listener_));
    } catch (const Error& e) {
      // Transient accept failures (including injected ones) must never
      // take the server down — log and keep serving.
      if (connections_->stopping()) break;
      std::fprintf(stderr, "ffp_serve: accept error: %s\n", e.what());
      continue;
    }
    reap();  // bounded thread table: join everything that finished

    const int index = connections_->try_claim(conn);
    if (index < 0) {
      if (connections_->stopping()) break;
      // Overload shedding: an immediate structured rejection instead of
      // queueing behind live clients. Best-effort — a peer that vanished
      // before reading its rejection costs nothing.
      host_.serve_stats().sheds.fetch_add(1, std::memory_order_relaxed);
      try {
        write_line(*conn,
                   format_error("",
                                "server at capacity (" +
                                    std::to_string(options_.max_clients) +
                                    " clients); retry after backoff",
                                ErrCode::Overloaded,
                                options_.overload_retry_after_ms),
                   options_.write_timeout_ms);
      } catch (const std::exception&) {
      }
      continue;  // conn closes as the shared_ptr dies
    }

    workers.emplace(index, std::thread([this, index, conn] {
      serve_connection(index, conn);
    }));
  }

  // Drain: no new connections (loop exited), kick every live reader
  // loose, then join. Session destructors cancel their jobs bounded by
  // the teardown deadline.
  connections_->stop_all();
  shutdown_both(listener_);
  for (auto& [index, worker] : workers) {
    (void)index;
    if (worker.joinable()) worker.join();
  }
  // Queued jobs are cancelled, running jobs finish (early, with
  // best-so-far, if a session teardown flagged them).
  host_.engine().scheduler().shutdown();
}

void TcpServer::serve_connection(int index, std::shared_ptr<FdHandle> conn) {
  host_.serve_stats().connections_total.fetch_add(1,
                                                  std::memory_order_relaxed);
  host_.serve_stats().connections_open.fetch_add(1,
                                                 std::memory_order_relaxed);
  {
    ServiceSession session(
        host_,
        [this, conn](const std::string& line) {
          write_line(*conn, line, options_.write_timeout_ms);
        },
        options_.session);
    LineReader reader(*conn);
    reader.set_timeout_ms(options_.idle_timeout_ms);
    std::string line;
    bool shutdown_requested = false;
    try {
      while (reader.next(line)) {
        if (!session.handle_line(line)) {
          shutdown_requested = true;
          break;
        }
      }
      // Clean client EOF: let its jobs finish (piped-batch semantics).
      // EOF forced by a server stop is different — draining would hold
      // the stop hostage to arbitrarily long jobs; the session destructor
      // cancels them instead (bounded, best-so-far).
      if (!shutdown_requested && !connections_->stopping()) session.drain();
    } catch (const ServiceError& e) {
      if (e.code() == ErrCode::Timeout) {
        // Idle reaper: a silent client loses its slot with a structured
        // goodbye (best-effort — it may be gone already).
        try {
          write_line(*conn,
                     format_error("", std::string("idle timeout: ") + e.what(),
                                  ErrCode::Timeout),
                     options_.write_timeout_ms);
        } catch (const std::exception&) {
        }
        std::fprintf(stderr, "ffp_serve: reaped idle connection: %s\n",
                     e.what());
      } else {
        // ConnLost and friends: the peer vanished mid-line. The session
        // destructor cancels its leftovers; keep serving everyone else.
        std::fprintf(stderr, "ffp_serve: connection error: %s\n", e.what());
      }
    } catch (const Error& e) {
      std::fprintf(stderr, "ffp_serve: connection error: %s\n", e.what());
    }
    if (shutdown_requested) request_stop();
  }
  host_.serve_stats().connections_open.fetch_sub(1,
                                                 std::memory_order_relaxed);
  connections_->release(index);
}

}  // namespace ffp
