// Minimal strict JSON for the service protocol (service/protocol.hpp).
//
// The parser is written for UNTRUSTED input: hard depth and size limits,
// duplicate object keys rejected, trailing garbage rejected, every error an
// ffp::Error with a byte offset — never an FFP_CHECK-style invariant trip
// and never unbounded recursion or allocation driven by the attacker.
// Numbers are parsed as doubles with the exact-int64 case preserved
// (partition ids, vertex counts); strings handle the standard escapes
// including \uXXXX (encoded back to UTF-8).
//
// Deliberately small: objects, arrays, strings, numbers, bools, null —
// exactly what line-delimited request/response messages need. Not a
// general-purpose DOM; documents are a few KB of control data (graphs
// travel by file path or as flat edge arrays).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace ffp {

struct JsonLimits {
  std::size_t max_bytes = 1u << 26;   ///< 64 MiB document ceiling
  int max_depth = 32;                 ///< nesting ceiling
  std::size_t max_elements = 1u << 24;  ///< total values in the document
};

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };
  using Member = std::pair<std::string, JsonValue>;

  /// Parses exactly one JSON document (trailing whitespace allowed, any
  /// other trailing bytes rejected). Throws ffp::Error with a byte offset.
  static JsonValue parse(std::string_view text, const JsonLimits& limits = {});

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const;
  double as_number() const;
  /// The number as an exact int64; throws if the value is not a number
  /// that was written as an integer within int64 range.
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::vector<Member>& as_object() const;

  /// Object member by key, or nullptr when absent (throws on non-objects).
  const JsonValue* find(std::string_view key) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t int_ = 0;
  bool is_int_ = false;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<Member> members_;

  friend class JsonParser;
};

/// Appends `s` JSON-escaped (quotes included) to `out`.
void json_append_quoted(std::string& out, std::string_view s);

}  // namespace ffp
