#include "service/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace ffp {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

FdHandle& FdHandle::operator=(FdHandle&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void FdHandle::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

FdHandle tcp_listen(int port, int* bound_port) {
  FFP_CHECK(port >= 0 && port <= 65535, "port out of range: ", port);
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    fail_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd.get(), 8) != 0) fail_errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) !=
        0) {
      fail_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

FdHandle tcp_accept(const FdHandle& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return FdHandle(fd);
    if (errno == EINTR) continue;
    fail_errno("accept");
  }
}

FdHandle tcp_connect(int port) {
  FFP_CHECK(port > 0 && port <= 65535, "port out of range: ", port);
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail_errno("connect 127.0.0.1:" + std::to_string(port));
  }
  return fd;
}

void write_line(const FdHandle& fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n =
        ::send(fd.get(), framed.data() + sent, framed.size() - sent,
               MSG_NOSIGNAL);  // EPIPE as an error, not a process signal
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void shutdown_write(const FdHandle& fd) {
  if (::shutdown(fd.get(), SHUT_WR) != 0) fail_errno("shutdown(SHUT_WR)");
}

void shutdown_both(const FdHandle& fd) {
  // Best-effort: used to kick a peer loose during server shutdown, where
  // the fd may already be dead — that is success, not an error.
  if (fd.valid()) ::shutdown(fd.get(), SHUT_RDWR);
}

bool LineReader::next(std::string& line, std::size_t max_line_bytes) {
  for (;;) {
    const std::size_t eol = buffer_.find('\n', pos_);
    if (eol != std::string::npos) {
      line.assign(buffer_, pos_, eol - pos_);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      pos_ = eol + 1;
      // Compact once the consumed prefix dominates the buffer.
      if (pos_ > (1u << 16) && pos_ * 2 > buffer_.size()) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      return true;
    }
    if (buffer_.size() - pos_ > max_line_bytes) {
      throw Error("line exceeds " + std::to_string(max_line_bytes) +
                  " bytes without a newline");
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_->get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("recv");
    }
    if (n == 0) {
      // Orderly EOF: a final unterminated line still counts.
      if (pos_ < buffer_.size()) {
        line.assign(buffer_, pos_, buffer_.size() - pos_);
        buffer_.clear();
        pos_ = 0;
        return true;
      }
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace ffp
