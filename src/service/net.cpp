#include "service/net.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/fault.hpp"
#include "util/timer.hpp"

namespace ffp {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  const int saved = errno;
  // A vanished peer is a retryable transport fact, not a generic error:
  // give it the taxonomy code so clients can reconnect-and-resubmit.
  if (saved == ECONNRESET || saved == EPIPE || saved == ECONNABORTED ||
      saved == ENOTCONN) {
    throw ServiceError(ErrCode::ConnLost,
                       what + ": " + std::strerror(saved));
  }
  throw Error(what + ": " + std::strerror(saved));
}

/// Waits for `events` on fd against a deadline started at `timer`.
/// timeout_ms <= 0 blocks forever. Throws ServiceError(Timeout) on expiry;
/// loops on EINTR (re-deriving the remaining budget from the timer, so
/// signals cannot extend the deadline).
void poll_or_timeout(int fd, short events, double timeout_ms,
                     const WallTimer& timer, const char* what) {
  for (;;) {
    int wait_ms = -1;
    if (timeout_ms > 0) {
      const double remaining = timeout_ms - timer.elapsed_millis();
      if (remaining <= 0) {
        throw ServiceError(ErrCode::Timeout,
                           std::string(what) + " timed out after " +
                               std::to_string(timeout_ms) + " ms");
      }
      // Round up so a sub-millisecond remainder still waits, not spins.
      wait_ms = static_cast<int>(remaining) + 1;
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc > 0) return;  // ready (or error/hup — the I/O call reports it)
    if (rc == 0) {
      throw ServiceError(ErrCode::Timeout,
                         std::string(what) + " timed out after " +
                             std::to_string(timeout_ms) + " ms");
    }
    if (errno == EINTR) continue;
    fail_errno(std::string(what) + " poll");
  }
}

[[noreturn]] void inject_conn_drop(const FdHandle& fd, const char* where) {
  shutdown_both(fd);
  throw ServiceError(ErrCode::ConnLost,
                     std::string("injected fault: connection dropped in ") +
                         where);
}

}  // namespace

FdHandle& FdHandle::operator=(FdHandle&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void FdHandle::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

FdHandle tcp_listen(int port, int* bound_port) {
  FFP_CHECK(port >= 0 && port <= 65535, "port out of range: ", port);
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    fail_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  // A deep backlog: the event-loop server absorbs thousand-connection
  // bursts, and a full backlog turns into SYN-retransmit stalls (seconds
  // per connect) on the client side, not a clean refusal.
  if (::listen(fd.get(), SOMAXCONN) != 0) fail_errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &len) !=
        0) {
      fail_errno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

FdHandle tcp_accept(const FdHandle& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) {
      FdHandle conn(fd);
      if (fault::fire(fault::Point::AcceptFail)) {
        // Simulates accept-side resource exhaustion (EMFILE and friends):
        // the connection dies on arrival; the peer sees a reset. Accept
        // loops must log and keep serving.
        throw ServiceError(ErrCode::ConnLost,
                           "injected fault: accepted connection destroyed");
      }
      return conn;
    }
    if (errno == EINTR) continue;
    fail_errno("accept");
  }
}

FdHandle tcp_connect(int port) {
  FFP_CHECK(port > 0 && port <= 65535, "port out of range: ", port);
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    fail_errno("connect 127.0.0.1:" + std::to_string(port));
  }
  return fd;
}

void write_line(const FdHandle& fd, const std::string& line,
                double timeout_ms) {
  fault::maybe_delay();
  if (fault::fire(fault::Point::ConnDrop)) inject_conn_drop(fd, "send");
  std::string framed = line;
  framed.push_back('\n');
  std::size_t limit = framed.size();
  const bool torn = fault::fire(fault::Point::TornWrite);
  if (torn) limit = framed.size() / 2;  // always cuts before the '\n'
  const WallTimer deadline;  // one budget across ALL partial sends
  std::size_t sent = 0;
  while (sent < limit) {
    // With a deadline the send itself must not block either: a blocking
    // send() of a large buffer sleeps INSIDE the kernel until everything
    // is queued, ignoring any poll we did first. MSG_DONTWAIT makes it
    // return what fit; EAGAIN loops back into the bounded poll.
    int flags = MSG_NOSIGNAL;  // EPIPE as an error, not a process signal
    if (timeout_ms > 0) {
      poll_or_timeout(fd.get(), POLLOUT, timeout_ms, deadline, "send");
      flags |= MSG_DONTWAIT;
    }
    const ssize_t n =
        ::send(fd.get(), framed.data() + sent, limit - sent, flags);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  if (torn) {
    // The remainder is gone and the peer must find out: drop the
    // connection so its reader sees a truncated line + EOF, never a
    // silently missing suffix.
    inject_conn_drop(fd, "send (torn write)");
  }
}

void shutdown_write(const FdHandle& fd) {
  if (::shutdown(fd.get(), SHUT_WR) != 0) fail_errno("shutdown(SHUT_WR)");
}

void shutdown_both(const FdHandle& fd) {
  // Best-effort: used to kick a peer loose during server shutdown, where
  // the fd may already be dead — that is success, not an error.
  if (fd.valid()) ::shutdown(fd.get(), SHUT_RDWR);
}

bool LineReader::next(std::string& line, std::size_t max_line_bytes) {
  const WallTimer deadline;  // per-call: one line within timeout_ms_
  for (;;) {
    const std::size_t eol = buffer_.find('\n', pos_);
    if (eol != std::string::npos) {
      line.assign(buffer_, pos_, eol - pos_);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      pos_ = eol + 1;
      // Compact once the consumed prefix dominates the buffer.
      if (pos_ > (1u << 16) && pos_ * 2 > buffer_.size()) {
        buffer_.erase(0, pos_);
        pos_ = 0;
      }
      return true;
    }
    if (buffer_.size() - pos_ > max_line_bytes) {
      throw Error("line exceeds " + std::to_string(max_line_bytes) +
                  " bytes without a newline");
    }
    if (fault::fire(fault::Point::ConnDrop)) inject_conn_drop(*fd_, "recv");
    if (timeout_ms_ > 0) {
      poll_or_timeout(fd_->get(), POLLIN, timeout_ms_, deadline, "recv");
    }
    char chunk[4096];
    // Injected short reads deliver one byte at a time — the framing above
    // must reassemble lines from arbitrary fragmentation.
    const std::size_t want =
        fault::fire(fault::Point::ShortRead) ? 1 : sizeof(chunk);
    const ssize_t n = ::recv(fd_->get(), chunk, want, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail_errno("recv");
    }
    if (n == 0) {
      // Orderly EOF: a final unterminated line still counts.
      if (pos_ < buffer_.size()) {
        line.assign(buffer_, pos_, buffer_.size() - pos_);
        buffer_.clear();
        pos_ = 0;
        return true;
      }
      return false;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace ffp
