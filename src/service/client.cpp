#include "service/client.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>
#include <utility>

#include "service/json.hpp"
#include "service/net.hpp"
#include "util/rng.hpp"

namespace ffp {

double RetryPolicy::backoff_ms(int attempt) const {
  FFP_CHECK(attempt >= 1, "backoff_ms needs attempt >= 1");
  double cap = base_ms;
  for (int i = 1; i < attempt && cap < max_ms; ++i) cap *= 2;
  cap = std::min(cap, max_ms);
  // Full jitter over the top half of the cap, deterministic in
  // (seed, attempt): herds retry spread out, tests replay exactly.
  std::uint64_t state =
      seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(attempt));
  const double u =
      static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
  return cap * 0.5 + u * cap * 0.5;
}

namespace {

/// Result lines carry one array element per vertex, so the client parses
/// far bigger documents than the server accepts as requests.
JsonLimits client_json_limits() {
  JsonLimits limits;
  limits.max_bytes = 1u << 30;
  limits.max_elements = 1u << 30;
  return limits;
}

/// One parsed response line — just the routing fields; the raw line is
/// what callers keep.
struct Event {
  std::string event;
  std::string id;
  ErrCode code = ErrCode::None;
  double retry_after_ms = -1;
  std::string message;
};

/// Parses a response line. A peer speaking something other than the
/// protocol is indistinguishable from a torn connection — both throw
/// ServiceError(ConnLost) and end the attempt.
Event parse_event(const std::string& line) {
  JsonValue root;
  try {
    root = JsonValue::parse(line, client_json_limits());
  } catch (const Error& e) {
    throw ServiceError(ErrCode::ConnLost,
                       std::string("unparseable response line: ") + e.what());
  }
  const JsonValue* ev = root.is_object() ? root.find("event") : nullptr;
  if (ev == nullptr || !ev->is_string()) {
    throw ServiceError(ErrCode::ConnLost, "response line has no 'event'");
  }
  Event out;
  out.event = ev->as_string();
  if (const JsonValue* id = root.find("id"); id != nullptr && id->is_string()) {
    out.id = id->as_string();
  }
  if (const JsonValue* c = root.find("code"); c != nullptr && c->is_string()) {
    out.code = err_from_name(c->as_string());
  }
  if (const JsonValue* r = root.find("retry_after_ms");
      r != nullptr && r->is_number()) {
    out.retry_after_ms = r->as_number();
  }
  if (const JsonValue* m = root.find("message");
      m != nullptr && m->is_string()) {
    out.message = m->as_string();
  }
  return out;
}

/// Per-job progress through the retry loop.
struct JobProgress {
  const ClientJob* job = nullptr;
  bool terminal = false;
  bool acked = false;  ///< within the current attempt only
  ClientResult result;
};

struct AttemptAborted {
  ErrCode code;
  double retry_after_ms;
  std::string why;
};

}  // namespace

std::vector<ClientResult> ServiceClient::run(
    const std::vector<ClientJob>& jobs) {
  {
    std::set<std::string> ids;
    for (const ClientJob& job : jobs) {
      FFP_CHECK(!job.id.empty(), "client job needs a non-empty id");
      FFP_CHECK(ids.insert(job.id).second, "duplicate client job id '",
                job.id, "'");
    }
  }

  std::vector<JobProgress> states(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    states[i].job = &jobs[i];
    states[i].result.id = jobs[i].id;
  }

  const RetryPolicy& policy = options_.retry;
  FFP_CHECK(policy.max_attempts >= 1, "RetryPolicy needs max_attempts >= 1");

  // Reads lines (echoing through on_line) until the named job's next
  // ack/error/result event; connection-level error events (empty id) and
  // torn/garbled/expired reads end the whole attempt via ServiceError.
  const auto await = [this](LineReader& reader, const std::string& id,
                            std::string* raw) -> Event {
    std::string line;
    for (;;) {
      if (!reader.next(line, options_.max_line_bytes)) {
        throw ServiceError(ErrCode::ConnLost,
                           "server closed the connection awaiting '" + id +
                               "'");
      }
      if (options_.on_line) options_.on_line(line);
      Event ev = parse_event(line);
      if (ev.event == "error" && ev.id.empty()) {
        // Not about any job: the connection itself was rejected (shed,
        // idle-reaped, draining). Carry the code and hint up.
        throw ServiceError(ev.code == ErrCode::None ? ErrCode::ConnLost
                                                    : ev.code,
                           "connection rejected: " + ev.message,
                           ev.retry_after_ms);
      }
      if (ev.id != id) continue;  // progress/status of another job
      if (ev.event == "ack" || ev.event == "error" || ev.event == "result") {
        if (raw != nullptr) *raw = line;
        return ev;
      }
    }
  };

  double hint_ms = -1;
  std::string last_why = "never attempted";
  ErrCode last_code = ErrCode::ConnLost;

  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    hint_ms = -1;
    for (JobProgress& s : states) s.acked = false;
    try {
      FdHandle conn = tcp_connect(options_.port);
      LineReader reader(conn);
      reader.set_timeout_ms(options_.io_timeout_ms);

      // Phase 1: (re)submit everything unfinished. Resubmission is
      // idempotent — a job that actually completed last attempt comes
      // back as a result-cache hit.
      for (JobProgress& s : states) {
        if (s.terminal) continue;
        write_line(conn, s.job->submit_line, options_.io_timeout_ms);
        const Event ev = await(reader, s.job->id, nullptr);
        if (ev.event == "ack") {
          s.acked = true;
          continue;
        }
        if (err_retryable(ev.code)) {
          // Shed or draining: leave pending for the next attempt.
          hint_ms = std::max(hint_ms, ev.retry_after_ms);
          last_code = ev.code;
          last_why = ev.message;
          continue;
        }
        s.terminal = true;  // fatal: the request itself is wrong
        s.result.ok = false;
        s.result.code = ev.code == ErrCode::None ? ErrCode::BadRequest
                                                 : ev.code;
        s.result.error = ev.message;
      }

      // Phase 2: collect results for everything acked this attempt.
      for (JobProgress& s : states) {
        if (s.terminal || !s.acked) continue;
        std::string request = "{\"op\":\"result\",\"id\":";
        json_append_quoted(request, s.job->id);
        request += "}";
        write_line(conn, request, options_.io_timeout_ms);
        std::string raw;
        const Event ev = await(reader, s.job->id, &raw);
        if (ev.event == "result") {
          s.terminal = true;
          s.result.ok = true;
          s.result.result_line = std::move(raw);
          continue;
        }
        if (err_retryable(ev.code)) {
          // e.g. queue_expired: the job died waiting; resubmit.
          hint_ms = std::max(hint_ms, ev.retry_after_ms);
          last_code = ev.code;
          last_why = ev.message;
          continue;
        }
        s.terminal = true;
        s.result.ok = false;
        s.result.code = ev.code == ErrCode::None ? ErrCode::JobFailed
                                                 : ev.code;
        s.result.error = ev.message;
      }
    } catch (const ServiceError& e) {
      hint_ms = std::max(hint_ms, e.retry_after_ms());
      last_code = e.code();
      last_why = e.what();
    } catch (const Error& e) {
      // tcp_connect refusal and kin: the server may be restarting.
      last_code = ErrCode::ConnLost;
      last_why = e.what();
    }

    const bool done = std::all_of(states.begin(), states.end(),
                                  [](const JobProgress& s) {
                                    return s.terminal;
                                  });
    if (done || attempt == policy.max_attempts) break;

    const double wait = std::max(policy.backoff_ms(attempt), hint_ms);
    if (options_.on_backoff) options_.on_backoff(attempt, wait, last_why);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(wait));
  }

  std::vector<ClientResult> out;
  out.reserve(states.size());
  for (JobProgress& s : states) {
    if (!s.terminal) {
      s.result.ok = false;
      s.result.code = last_code;
      s.result.error = "retries exhausted (" +
                       std::to_string(policy.max_attempts) +
                       " attempts); last failure: " + last_why;
    }
    out.push_back(std::move(s.result));
  }
  return out;
}

}  // namespace ffp
