// Multi-tenant job scheduling over the solver engine layer: the service
// subsystem's core. Clients submit JobSpecs (graph + method spec + budget +
// seed + priority); a fixed set of runner threads executes them
// highest-priority-first (FIFO within a priority), each solve leasing its
// workers from a ThreadBudget so N concurrent jobs can never oversubscribe
// the machine no matter how much intra-run parallelism each one asks for.
//
// Determinism contract (what the service tests prove): a job's result
// depends only on its JobSpec — seed, step budget, method, k, objective.
// Runner scheduling, the budget size, and how many worker slots a solve
// happens to be granted never change the partition, because (a) every
// random draw derives from the spec's seed and (b) the batched
// fusion-fission engine is byte-identical at any worker count. So a fixed
// set of step-budgeted jobs yields byte-identical partitions whether
// submitted serially or concurrently, at any budget. (Wall-clock-budgeted
// jobs trade that guarantee for latency control, exactly like the CLI.)
//
// Cancellation: cancel() removes a queued job outright and flips a running
// job's cancel flag, which the solver's StopCondition observes — the job
// then finishes early with state Cancelled and its best-so-far partition
// attached, an anytime result rather than wasted work.
//
// Progress: each job owns a thread-safe AnytimeRecorder subclass;
// progress() snapshots the improvement trajectory mid-run, and an optional
// on_improvement hook streams events as they happen (ffp_serve forwards
// them to the client as `progress` lines).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "metaheuristics/anytime.hpp"
#include "service/errors.hpp"
#include "service/thread_budget.hpp"
#include "solver/solver.hpp"

namespace ffp {

namespace persist {
class Journal;  // persist/journal.hpp
}

enum class JobState { Queued, Running, Done, Cancelled, Failed };

std::string_view to_string(JobState state);

struct JobSpec {
  std::shared_ptr<const Graph> graph;  ///< required, shared across jobs
  std::string method = "fusion_fission";  ///< registry spec (solver/registry)
  /// Optional pre-resolved solver for `method` (the api engine resolves
  /// specs once and passes the instance through); null → submit() builds
  /// it from `method`.
  SolverPtr solver;
  int k = 2;
  ObjectiveKind objective = ObjectiveKind::MinMaxCut;
  std::uint64_t seed = 1;
  /// Deterministic step budget; 0 falls back to the wall clock, which
  /// forfeits the byte-identical guarantee (documented above).
  std::int64_t steps = 0;
  double budget_ms = 5000;
  int priority = 0;    ///< higher runs first; FIFO within a priority
  unsigned threads = 0;  ///< intra-run worker *want*, leased from the budget
  /// Queue TTL: a job that waited longer than this before a runner picked
  /// it up goes terminal Failed with code QueueExpired instead of running
  /// — its caller has typically given up, and running it anyway would
  /// burn a runner on a result nobody reads. 0 = no TTL.
  double queue_ttl_ms = 0;
  /// Portfolio multi-start: > 1 fans that many independently seeded
  /// restarts of the method across the budget (solver/portfolio.hpp) and
  /// keeps the best — the per-restart seed stream depends only on `seed`,
  /// so the job stays deterministic under a step budget.
  int restarts = 1;
  // Durable-solve hooks, forwarded verbatim into the SolverRequest (see
  // solver/solver.hpp for the contract). The api engine fills them from
  // the SolveSpec + its state dir; direct scheduler users may too.
  std::shared_ptr<const std::vector<int>> warm_start;
  double warm_start_value = std::numeric_limits<double>::infinity();
  std::int64_t checkpoint_every_ms = 0;
  std::function<void(const std::vector<int>& assignment, double value)>
      checkpoint_sink;
  // Evolve-mode portfolio hooks, forwarded into PortfolioOptions (see
  // solver/portfolio.hpp for the thread-safety/ordering contract). Setting
  // either routes the job through the PortfolioRunner even at restarts=1.
  std::function<void(int restart, SolverRequest& request)> seed_restart;
  std::function<void(int restart, const SolverResult& result)>
      on_restart_result;
  /// Write-ahead journaling: when non-empty AND the scheduler has a
  /// journal, this job leaves submitted/started/terminal records, each
  /// durable before the transition it describes becomes visible. The
  /// payload is opaque to the scheduler — api::Engine builds it with
  /// everything needed to resubmit the job after a crash.
  std::string journal_payload;
};

/// Point-in-time view of a job. `result` is set once the job is terminal
/// and produced a partition (Done always; Cancelled when it was cancelled
/// mid-run, carrying the best-so-far).
struct JobStatus {
  JobState state = JobState::Queued;
  double seconds = 0.0;  ///< run time so far (terminal: total)
  std::string error;     ///< Failed only
  /// Failed only: the taxonomy code (QueueExpired for TTL expiry,
  /// JobFailed for solver failures) so transports can mark the error
  /// retryable or fatal without parsing the message.
  ErrCode error_code = ErrCode::None;
  std::vector<AnytimeRecorder::Point> progress;
  std::shared_ptr<const SolverResult> result;
};

struct JobSchedulerOptions {
  unsigned runners = 1;  ///< concurrent jobs (each runner leases a slot)
  /// Budget all runners and their solves lease from; null uses the
  /// process-wide ThreadBudget::process().
  ThreadBudget* budget = nullptr;
  /// Bounded submit queue (load shedding): when more than this many jobs
  /// are waiting, submit() throws ServiceError(Overloaded) with a
  /// retry-after hint instead of queueing — backpressure surfaces at the
  /// API boundary, not as unbounded latency. 0 = unbounded (trusted
  /// in-process callers).
  std::size_t max_queued = 0;
  /// The retry-after hint attached to Overloaded rejections, ms.
  double overload_retry_after_ms = 250;
  /// Streaming hook: called from runner threads on every improvement a
  /// job's recorder sees. Must be thread-safe.
  std::function<void(std::uint64_t job, double seconds, double value)>
      on_improvement;
  /// Terminal hook: called exactly once per job, right after it reaches
  /// Done/Cancelled/Failed, with its final status — how the api engine
  /// feeds its result cache without polling. Called outside the scheduler
  /// lock (from runner threads, or from the thread driving cancel/
  /// shutdown); must be thread-safe.
  std::function<void(std::uint64_t job, const JobStatus& status)> on_terminal;
  /// Write-ahead journal for jobs carrying a journal_payload; null turns
  /// journaling off. Must outlive the scheduler. The terminal record is
  /// appended AFTER on_terminal returns, so by the time the journal calls
  /// a job finished, whatever on_terminal persisted (the engine's durable
  /// cache entry) is already on disk — a crash can duplicate work, never
  /// lose it.
  persist::Journal* journal = nullptr;
};

class JobScheduler {
 public:
  explicit JobScheduler(JobSchedulerOptions options = {});
  /// Cancels everything still queued, lets running jobs finish, joins.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues a job; returns its id (monotonic from 1). Validates the spec
  /// (graph present, k ≥ 1, known method) up front so bad submissions fail
  /// at the API boundary, not inside a runner.
  std::uint64_t submit(JobSpec spec);

  /// Queued → removed (terminal Cancelled, no result); Running → flagged,
  /// the job finishes early with its best-so-far. Returns false when the
  /// id is unknown or the job was already terminal.
  bool cancel(std::uint64_t id);

  /// Snapshot, any time. Throws on unknown ids.
  JobStatus status(std::uint64_t id) const;

  /// Blocks until the job is terminal, then returns its final status.
  JobStatus wait(std::uint64_t id);

  /// Bounded wait: blocks up to `timeout_ms` (<= 0 polls once). Returns
  /// the final status when the job went terminal in time, std::nullopt
  /// otherwise — the deadline-bounded form transports use so one wedged
  /// job cannot hold a session teardown hostage.
  std::optional<JobStatus> wait_for(std::uint64_t id, double timeout_ms);

  /// Blocks until every submitted job is terminal.
  void drain();

  /// Stops accepting submissions, cancels the queue, waits for running
  /// jobs. Idempotent; the destructor calls it. Safe on an empty queue.
  void shutdown();

  unsigned runners() const { return static_cast<unsigned>(runners_.size()); }
  ThreadBudget& budget() const { return *budget_; }
  std::int64_t jobs_completed() const;

 private:
  struct Job;
  /// Thread-safe per-job recorder: serializes the base AnytimeRecorder and
  /// forwards improvements to the scheduler's streaming hook.
  class ProgressRecorder final : public AnytimeRecorder {
   public:
    ProgressRecorder(JobScheduler* scheduler, Job* job)
        : scheduler_(scheduler), job_(job) {}
    void start() override;
    void record(double best_value) override;
    std::vector<Point> snapshot() const;

   private:
    JobScheduler* scheduler_;
    Job* job_;
    mutable std::mutex mu_;
  };

  struct Job {
    std::uint64_t id = 0;
    JobSpec spec;
    SolverPtr solver;  ///< resolved at submit so typos fail the API call
    JobState state = JobState::Queued;
    std::atomic<bool> cancel_flag{false};
    WallTimer queued_timer;  ///< armed at submit; feeds the queue TTL
    WallTimer timer;       ///< armed when the job starts running
    double seconds = 0.0;  ///< total run time once terminal
    std::string error;
    ErrCode error_code = ErrCode::None;  ///< Failed only
    std::shared_ptr<const SolverResult> result;
    std::unique_ptr<ProgressRecorder> recorder;
  };

  void runner_loop();
  void run_job(Job& job);
  /// Fires options_.on_terminal for a job that just went terminal; takes
  /// mu_ itself to snapshot, so call it with the lock released.
  void notify_terminal(std::uint64_t id);
  JobStatus status_locked(const Job& job) const;
  static bool terminal(JobState s) {
    return s == JobState::Done || s == JobState::Cancelled ||
           s == JobState::Failed;
  }

  JobSchedulerOptions options_;
  ThreadBudget* budget_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;   ///< runners: work or shutdown
  std::condition_variable changed_cv_; ///< waiters: a job went terminal
  std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
  /// Pop order: highest priority first, FIFO (lowest id) within one.
  std::set<std::pair<int, std::uint64_t>> queue_;  // (-priority, id)
  std::uint64_t next_id_ = 1;
  std::int64_t completed_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> runners_;
};

}  // namespace ffp
