// Tiny POSIX TCP helpers for the service tools: ffp_serve listens, the
// client connects, both speak newline-delimited lines over a buffered
// reader. Loopback-oriented (the daemon binds 127.0.0.1 only — putting a
// partitioner on a public interface is a deployment's job, behind whatever
// auth it has); every failure is an ffp::Error with errno text, never a
// silent -1.
#pragma once

#include <string>

#include "util/check.hpp"

namespace ffp {

/// RAII file descriptor.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  FdHandle(FdHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdHandle& operator=(FdHandle&& other) noexcept;
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  ~FdHandle() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1:port (port 0 → ephemeral). `bound_port`
/// receives the actual port.
FdHandle tcp_listen(int port, int* bound_port);

/// Accepts one connection; blocks.
FdHandle tcp_accept(const FdHandle& listener);

/// Connects to 127.0.0.1:port.
FdHandle tcp_connect(int port);

/// Writes `line` plus '\n', handling partial writes. Throws on error.
void write_line(const FdHandle& fd, const std::string& line);

/// Half-closes the write side: the peer's reader sees EOF while this end
/// can keep reading — how a client says "no more requests" and still
/// collects every response.
void shutdown_write(const FdHandle& fd);

/// Full-closes both directions without releasing the fd — how the server's
/// shutdown path unblocks connection threads parked in a read. Best-effort
/// (never throws): racing an already-closed peer is the expected case.
void shutdown_both(const FdHandle& fd);

/// Buffered newline-delimited reader over a connected socket.
class LineReader {
 public:
  explicit LineReader(const FdHandle& fd) : fd_(&fd) {}

  /// Reads the next line (without the '\n'); false on orderly EOF.
  /// `max_line_bytes` guards against a peer streaming an unbounded line.
  bool next(std::string& line, std::size_t max_line_bytes = 1u << 26);

 private:
  const FdHandle* fd_;
  std::string buffer_;
  std::size_t pos_ = 0;
};

}  // namespace ffp
