// Tiny POSIX TCP helpers for the service tools: ffp_serve listens, the
// client connects, both speak newline-delimited lines over a buffered
// reader. Loopback-oriented (the daemon binds 127.0.0.1 only — putting a
// partitioner on a public interface is a deployment's job, behind whatever
// auth it has); every failure is an ffp::Error with errno text, never a
// silent -1.
//
// Failure hardening (the deadline layer): reads and writes can carry
// poll()-based timeouts so one slow or dead peer can never wedge a thread
// — LineReader::set_timeout_ms bounds each next() call (ffp_serve uses it
// as the idle-connection reaper), write_line takes a per-call deadline
// spanning all its partial writes. Deadline expiry throws
// ServiceError(Timeout); a reset/torn connection throws
// ServiceError(ConnLost) — both retryable codes, so callers can
// distinguish "try again" from real protocol errors. Every blocking call
// here is also a fault-injection point (util/fault.hpp): short reads, torn
// writes, dropped connections and accept failures can be injected with
// FFP_FAULT for chaos testing.
#pragma once

#include <string>

#include "service/errors.hpp"
#include "util/check.hpp"

namespace ffp {

/// RAII file descriptor.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  FdHandle(FdHandle&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  FdHandle& operator=(FdHandle&& other) noexcept;
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  ~FdHandle() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1:port (port 0 → ephemeral). `bound_port`
/// receives the actual port.
FdHandle tcp_listen(int port, int* bound_port);

/// Accepts one connection; blocks. Under FFP_FAULT accept_fail, an
/// accepted connection may be destroyed on arrival (throws ConnLost) —
/// accept loops must treat accept errors as transient and keep serving.
FdHandle tcp_accept(const FdHandle& listener);

/// Connects to 127.0.0.1:port.
FdHandle tcp_connect(int port);

/// Writes `line` plus '\n', handling partial writes. `timeout_ms` bounds
/// the WHOLE write (all partial sends against one deadline); <= 0 means
/// block forever. Throws ServiceError(Timeout) on deadline expiry,
/// ServiceError(ConnLost) on a reset/closed peer, ffp::Error otherwise.
void write_line(const FdHandle& fd, const std::string& line,
                double timeout_ms = 0);

/// Half-closes the write side: the peer's reader sees EOF while this end
/// can keep reading — how a client says "no more requests" and still
/// collects every response.
void shutdown_write(const FdHandle& fd);

/// Full-closes both directions without releasing the fd — how the server's
/// shutdown path unblocks connection threads parked in a read. Best-effort
/// (never throws): racing an already-closed peer is the expected case.
void shutdown_both(const FdHandle& fd);

/// Buffered newline-delimited reader over a connected socket.
class LineReader {
 public:
  explicit LineReader(const FdHandle& fd) : fd_(&fd) {}

  /// Per-next() read deadline in milliseconds; <= 0 (the default) blocks
  /// forever. When no complete line arrives within the deadline, next()
  /// throws ServiceError(Timeout) — ffp_serve's idle-connection reaper and
  /// the client's response timeout are both exactly this knob.
  void set_timeout_ms(double ms) { timeout_ms_ = ms; }

  /// Reads the next line (without the '\n'); false on orderly EOF.
  /// `max_line_bytes` guards against a peer streaming an unbounded line.
  bool next(std::string& line, std::size_t max_line_bytes = 1u << 26);

 private:
  const FdHandle* fd_;
  std::string buffer_;
  std::size_t pos_ = 0;
  double timeout_ms_ = 0;
};

}  // namespace ffp
