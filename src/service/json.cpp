#include "service/json.hpp"

#include <charconv>
#include <cmath>
#include <set>

namespace ffp {

namespace {

[[noreturn]] void fail_at(std::size_t offset, const std::string& msg) {
  throw Error("JSON error at byte " + std::to_string(offset) + ": " + msg);
}

}  // namespace

class JsonParser {
 public:
  JsonParser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  JsonValue run() {
    if (text_.size() > limits_.max_bytes) {
      fail_at(0, "document exceeds " + std::to_string(limits_.max_bytes) +
                     " bytes");
    }
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail_at(pos_, "trailing bytes after document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail_at(pos_, "unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail_at(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void count_element() {
    if (++elements_ > limits_.max_elements) {
      fail_at(pos_, "document exceeds " + std::to_string(limits_.max_elements) +
                        " values");
    }
  }

  JsonValue parse_value(int depth) {
    if (depth > limits_.max_depth) fail_at(pos_, "nesting too deep");
    count_element();
    JsonValue v;
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        v.kind_ = JsonValue::Kind::String;
        v.string_ = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail_at(pos_, "invalid literal");
        v.kind_ = JsonValue::Kind::Bool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail_at(pos_, "invalid literal");
        v.kind_ = JsonValue::Kind::Bool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail_at(pos_, "invalid literal");
        v.kind_ = JsonValue::Kind::Null;
        return v;
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    // Set-based duplicate detection: a linear scan per key would make a
    // crafted million-key object quadratic — a CPU DoS on untrusted input.
    std::set<std::string> keys;
    for (;;) {
      skip_ws();
      if (peek() != '"') fail_at(pos_, "expected object key string");
      std::string key = parse_string();
      if (!keys.insert(key).second) {
        fail_at(pos_, "duplicate object key '" + key + "'");
      }
      skip_ws();
      expect(':');
      skip_ws();
      v.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail_at(pos_, "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.array_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail_at(pos_, "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail_at(pos_, "unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) fail_at(pos_, "unescaped control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // consume backslash
      if (pos_ >= text_.size()) fail_at(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default:
          fail_at(pos_ - 1, "invalid escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail_at(pos_, "truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail_at(pos_ - 1, "invalid hex digit in \\u escape");
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
          text_[pos_ + 1] != 'u') {
        fail_at(pos_, "high surrogate not followed by \\u escape");
      }
      pos_ += 2;
      const unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) {
        fail_at(pos_, "invalid low surrogate");
      }
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail_at(pos_, "unpaired low surrogate");
    }
    // Encode the code point as UTF-8.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail_at(start, "invalid number");
    JsonValue v;
    v.kind_ = JsonValue::Kind::Number;
    double d = 0.0;
    const auto* end = token.data() + token.size();
    auto [p, ec] = std::from_chars(token.data(), end, d);
    if (ec != std::errc() || p != end || !std::isfinite(d)) {
      fail_at(start, "invalid number");
    }
    v.number_ = d;
    // Preserve exact integers (ids, counts) when the token has no
    // fractional syntax and fits int64.
    if (token.find_first_of(".eE") == std::string_view::npos) {
      std::int64_t i = 0;
      auto [pi, eci] = std::from_chars(token.data(), end, i);
      if (eci == std::errc() && pi == end) {
        v.int_ = i;
        v.is_int_ = true;
      }
    }
    return v;
  }

  std::string_view text_;
  JsonLimits limits_;
  std::size_t pos_ = 0;
  std::size_t elements_ = 0;
};

JsonValue JsonValue::parse(std::string_view text, const JsonLimits& limits) {
  return JsonParser(text, limits).run();
}

bool JsonValue::as_bool() const {
  if (!is_bool()) throw Error("JSON value is not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) throw Error("JSON value is not a number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  if (!is_number() || !is_int_) throw Error("JSON value is not an integer");
  return int_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw Error("JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (!is_array()) throw Error("JSON value is not an array");
  return array_;
}

const std::vector<JsonValue::Member>& JsonValue::as_object() const {
  if (!is_object()) throw Error("JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [k, v] : as_object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void json_append_quoted(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[c >> 4]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

}  // namespace ffp
