#include "service/thread_budget.hpp"

#include <algorithm>
#include <thread>

namespace ffp {

void WorkerLease::release() {
  if (budget_ != nullptr && granted_ > 0) budget_->give_back(granted_);
  budget_ = nullptr;
  granted_ = 0;
}

ThreadBudget::ThreadBudget(unsigned total)
    : total_(total == 0 ? std::max(1u, std::thread::hardware_concurrency())
                        : total) {}

unsigned ThreadBudget::in_use() const {
  std::lock_guard lock(mu_);
  return in_use_;
}

unsigned ThreadBudget::available() const {
  std::lock_guard lock(mu_);
  return total_ - in_use_;
}

unsigned ThreadBudget::peak_in_use() const {
  std::lock_guard lock(mu_);
  return peak_;
}

WorkerLease ThreadBudget::lease(unsigned want) {
  std::lock_guard lock(mu_);
  const unsigned granted = std::min(want, total_ - in_use_);
  in_use_ += granted;
  peak_ = std::max(peak_, in_use_);
  return WorkerLease(this, granted);
}

WorkerLease ThreadBudget::acquire(unsigned want) {
  FFP_CHECK(want >= 1, "acquire needs at least one slot");
  std::unique_lock lock(mu_);
  freed_.wait(lock, [this] { return in_use_ < total_; });
  const unsigned granted = std::min(want, total_ - in_use_);
  in_use_ += granted;
  peak_ = std::max(peak_, in_use_);
  return WorkerLease(this, granted);
}

void ThreadBudget::give_back(unsigned slots) {
  {
    std::lock_guard lock(mu_);
    FFP_CHECK(slots <= in_use_, "lease returned more slots than leased");
    in_use_ -= slots;
  }
  freed_.notify_all();
}

ThreadBudget& ThreadBudget::process() {
  static ThreadBudget* budget = new ThreadBudget();
  return *budget;
}

void ThreadBudget::set_process_total(unsigned total) {
  ThreadBudget& b = process();
  std::lock_guard lock(b.mu_);
  FFP_CHECK(b.in_use_ == 0,
            "cannot resize the process thread budget while workers are "
            "leased");
  b.total_ = total == 0 ? std::max(1u, std::thread::hardware_concurrency())
                        : total;
}

}  // namespace ffp
