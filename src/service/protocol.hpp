// The service wire protocol: line-delimited JSON, transport-agnostic.
// One request object per line in, one event object per line out — the same
// codec serves a TCP socket, a stdin/stdout pipe, and the in-process tests.
//
// Requests (all carry "op"; job ops carry the client-chosen string "id"):
//
//   {"op":"submit","id":"j1","graph_file":"mesh.graph","k":8,
//    "method":"fusion_fission","objective":"mcut","seed":7,"steps":20000,
//    "priority":0,"threads":2,"queue_ttl_ms":5000}
//   {"op":"submit","id":"j2","graph":{"n":4,"edges":[[0,1],[1,2],[2,3,2.5]]},
//    "k":2,"steps":1000}
//   {"op":"status","id":"j1"}
//   {"op":"cancel","id":"j1"}
//   {"op":"result","id":"j1"}          // blocks until the job is terminal
//   {"op":"shutdown"}
//   {"op":"migrate_elite","digest":"00c4f2...","k":8,"objective":"mcut",
//    "value":5.9,"assignment":[0,1,0,...]}   // shard-to-shard elite push
//
// Responses:
//
//   {"event":"ack","id":"j1"}
//   {"event":"error","id":"j1","message":"...","code":"bad_request",
//    "retryable":false}                                 // id "" if unknown
//   {"event":"error","id":"","message":"...","code":"overloaded",
//    "retryable":true,"retry_after_ms":250}             // shed / transient
//   {"event":"progress","id":"j1","seconds":0.41,"value":6.02}
//   {"event":"status","id":"j1","state":"running","seconds":0.5,
//    "best_value":6.1,"improvements":3}
//   {"event":"result","id":"j1","state":"done","value":5.9,"seconds":1.2,
//    "partition":[0,1,0,2,...]}
//   {"event":"bye"}
//   {"event":"migrate","admitted":true}      // migrate_elite outcome
//
// Input is UNTRUSTED: the parser is strict (unknown ops, unknown keys, bad
// types, out-of-range values, oversized ids and documents all fail with a
// clear message and never touch the scheduler), and inline graphs are
// range-checked edge by edge under the same IoLimits the hardened file
// readers enforce. Every parse failure throws ffp::Error; the session
// turns it into an `error` event instead of dying.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/result_cache.hpp"
#include "api/solve_spec.hpp"
#include "evolve/elite_archive.hpp"
#include "graph/io.hpp"
#include "service/job_scheduler.hpp"
#include "service/json.hpp"

namespace ffp {

struct ProtocolLimits {
  JsonLimits json;     ///< per-line document limits
  IoLimits graph;      ///< inline-graph and graph_file ceilings
  /// Extra ceiling on an inline graph's declared `n`. Unlike a file —
  /// where n lines must physically exist — an inline submit pays nothing
  /// for a huge declared n while Graph::from_edges allocates O(n), so a
  /// 70-byte request could otherwise demand gigabytes. Big graphs travel
  /// by file path. The effective inline cap is min(this, graph cap).
  std::int64_t max_inline_vertices = 1 << 22;
  std::size_t max_id_bytes = 128;
  std::int64_t max_steps = 1'000'000'000'000;  ///< 1e12 committed steps
  double max_budget_ms = 86'400'000;           ///< one day of wall clock
  unsigned max_threads = 4096;
  int max_restarts = 4096;
};

enum class RequestOp {
  Submit,
  Status,
  Cancel,
  Result,
  Shutdown,
  /// Shard-to-shard elite push (inter-shard evolution, KaFFPaE style):
  /// offers one foreign partition to this server's elite archive under the
  /// usual diversity-aware admission rules. Keyed on (digest, k,
  /// objective) — the digest is sent as a hex string because a 64-bit
  /// value does not survive a signed JSON integer.
  MigrateElite,
};

/// A validated request. For Submit, `spec` is the facade SolveSpec — the
/// protocol submits through api::Engine like every other entry point; the
/// graph arrives either inline (`inline_graph`) or by path (`graph_file`,
/// loaded by the host subject to its file policy).
struct Request {
  RequestOp op = RequestOp::Shutdown;
  std::string id;       ///< client job id (empty only for shutdown/status)
  api::SolveSpec spec;  ///< Submit only (MigrateElite reuses k/objective)
  std::string graph_file;                  ///< Submit, file variant
  std::shared_ptr<const Graph> inline_graph;  ///< Submit, inline variant
  // MigrateElite only:
  std::uint64_t digest = 0;         ///< graph content digest of the elite
  double migrate_value = 0;         ///< the elite's objective value
  std::shared_ptr<const std::vector<int>> migrate_assignment;
};

/// Parses and validates one request line. Throws ffp::Error on anything
/// malformed — syntax, unknown op, unknown key, bad type or range.
Request parse_request(std::string_view line, const ProtocolLimits& limits = {});

/// Serving-layer counters surfaced in status replies so the new scale-out
/// path is observable: connection gauges (both server modes), event-loop
/// wakeups, overload sheds, and elite migrations in either direction.
/// Collected by ServiceHost::serve_stats(); formatted when non-null.
struct ServeCounters {
  std::int64_t connections_open = 0;
  std::int64_t connections_total = 0;
  std::int64_t loop_wakeups = 0;  ///< epoll_wait returns (0 in thread mode)
  std::int64_t sheds = 0;         ///< connections refused at max_clients
  std::int64_t migrations_sent = 0;
  std::int64_t migrations_received = 0;
};

// ---- response formatting (one line each, no trailing newline) ----------

std::string format_ack(std::string_view id);
/// `error` event carrying the taxonomy (service/errors.hpp): `code` names
/// the error class, `retryable` tells the client whether the identical
/// resubmission can succeed (it is idempotent either way — results are
/// cache-keyed on the spec), and `retry_after_ms` appears only when the
/// server attached a backoff hint (Overloaded sheds).
std::string format_error(std::string_view id, std::string_view message,
                         ErrCode code = ErrCode::BadRequest,
                         double retry_after_ms = -1);
std::string format_progress(std::string_view id, double seconds, double value);
/// `status` event: state, seconds, best value seen (absent before the
/// first improvement) and the improvement count. When `cache` is non-null
/// the event also carries the host's result-cache counters (hits, misses,
/// entries, capacity, evictions — everything an operator needs to size
/// --cache-entries); when `archive` is non-null, the elite-archive stats
/// (size, populations, admissions, snapshot hit rate); when
/// `archive_best` is non-null, the best archived value for THIS job's
/// population — every status reply doubles as a health probe.
std::string format_status(std::string_view id, const JobStatus& status,
                          const api::CacheCounters* cache = nullptr,
                          const evolve::ArchiveCounters* archive = nullptr,
                          const double* archive_best = nullptr,
                          const ServeCounters* serve = nullptr);
/// `result` event for a terminal job with a partition attached (Done, or
/// Cancelled mid-run). Failed/cancelled-before-running jobs get `error`.
std::string format_result(std::string_view id, const JobStatus& status);
/// The one response a terminal job gets from a `result` op, whichever side
/// renders it (the blocking wait() path and the event loop's async
/// delivery must emit byte-identical lines): `result` when a partition is
/// attached, the classified `error` event otherwise.
std::string format_terminal(std::string_view id, const JobStatus& status);
std::string format_bye();
/// `migrate` event answering a migrate_elite push.
std::string format_migrate(bool admitted);
/// The migrate_elite request line itself — shared by the EliteMigrator and
/// the tests so the wire spelling has exactly one producer.
std::string format_migrate_elite(const evolve::PopulationKey& key,
                                 double value, std::span<const int> parts);

}  // namespace ffp
