// The protocol layer over the api facade: ServiceHost is the shared server
// state — ONE api::Engine (scheduler + thread budget + result cache) plus a
// weak per-path graph cache — and ServiceSession is one client's protocol
// view of it. ffp_serve wraps a session around each TCP connection (or
// around stdin/stdout in pipe mode); the tests drive sessions directly with
// no transport at all. Every session submits through the same engine, so N
// concurrent connections share runners, budget, and cache — the
// KaFFPaE-style single-submission-point the distributed levers need.
//
// The session owns only its client-id → SolveHandle map and its emit lock:
// responses to commands are emitted synchronously from handle_line();
// `progress` events are emitted from engine runner threads as improvements
// happen (when streaming is on), serialized with everything else through
// the session's emit lock — the callback itself never needs to be
// thread-safe.
//
// Untrusted-input policy: every parse or validation failure becomes an
// `error` event (the session never throws, never dies); graph files are
// read through the hardened readers under the host's IoLimits, and
// `allow_files = false` turns graph_file submissions off entirely. Graphs
// named by the same path are parsed once and shared across jobs and
// sessions (weak cache), which is what makes a burst of jobs on one mesh
// cheap.
//
// Lifetime: a session destroyed with jobs still pending cancels them and
// waits — but only up to SessionPolicy::teardown_wait_ms. A job that
// ignores its cancel flag past that deadline is abandoned (logged to
// stderr) rather than holding the transport thread hostage; the emit state
// is a shared guard the streaming closures hold, so an abandoned job's
// progress events drop silently instead of calling into a dead session. A
// clean EOF calls drain() first, which lets jobs finish — so piped batch
// runs still get their results while a vanished TCP client stops burning
// runners.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "api/api.hpp"
#include "service/protocol.hpp"

namespace ffp {

/// Process-wide serving counters (protocol.hpp ServeCounters is the wire
/// rendering): maintained by whichever transports are running — the
/// thread-per-connection TcpServer, the epoll EventLoopServer, and the
/// EliteMigrator all update the one instance their ServiceHost owns, so a
/// status probe on any connection sees the whole server.
class ServeStats {
 public:
  std::atomic<std::int64_t> connections_open{0};
  std::atomic<std::int64_t> connections_total{0};
  std::atomic<std::int64_t> loop_wakeups{0};
  std::atomic<std::int64_t> sheds{0};
  std::atomic<std::int64_t> migrations_sent{0};
  std::atomic<std::int64_t> migrations_received{0};

  ServeCounters snapshot() const {
    ServeCounters out;
    out.connections_open = connections_open.load(std::memory_order_relaxed);
    out.connections_total = connections_total.load(std::memory_order_relaxed);
    out.loop_wakeups = loop_wakeups.load(std::memory_order_relaxed);
    out.sheds = sheds.load(std::memory_order_relaxed);
    out.migrations_sent = migrations_sent.load(std::memory_order_relaxed);
    out.migrations_received =
        migrations_received.load(std::memory_order_relaxed);
    return out;
  }
};

struct ServiceOptions {
  unsigned runners = 1;  ///< concurrent jobs across ALL sessions
  /// Worker governor shared with everything else in the process; null uses
  /// ThreadBudget::process().
  ThreadBudget* budget = nullptr;
  /// Result-cache entries (api::ResultCache); 0 disables. Deterministic
  /// repeat submissions — same graph digest, same canonical spec — are
  /// answered from the cache without a solve.
  std::size_t cache_capacity = 64;
  bool stream_progress = false;  ///< emit `progress` events as they happen
  bool allow_files = true;       ///< permit graph_file submissions
  /// Bounded submit queue across ALL sessions: beyond this many queued
  /// jobs, submits are shed with a structured Overloaded error (and a
  /// retry-after hint) instead of queueing without bound. 0 = unbounded.
  std::size_t max_queued = 0;
  /// Retry-after hint attached to Overloaded rejections, ms.
  double overload_retry_after_ms = 250;
  /// Durable-state directory, forwarded to api::EngineOptions::state_dir
  /// (see there for the layout and recovery semantics). Empty keeps the
  /// historical fully-in-memory server.
  std::string state_dir;
  /// Elite-archive capacity per (graph digest, k, objective) population,
  /// forwarded to api::EngineOptions::evolve_capacity. 0 turns the archive
  /// (and `"evolve":true` submissions) off.
  std::size_t evolve_capacity = 8;
  ProtocolLimits limits;
};

/// Shared server state: the engine every session submits through plus the
/// per-path graph cache. Construct one per daemon, then one ServiceSession
/// per connection.
class ServiceHost {
 public:
  explicit ServiceHost(ServiceOptions options);

  ServiceHost(const ServiceHost&) = delete;
  ServiceHost& operator=(const ServiceHost&) = delete;

  api::Engine& engine() { return engine_; }
  const ServiceOptions& options() const { return options_; }
  ServeStats& serve_stats() { return serve_stats_; }

  /// Resolves a submit's graph: inline graphs pass through; file graphs go
  /// through the hardened reader under the host's limits and the weak
  /// path cache (subject to allow_files). Throws ffp::Error on policy or
  /// read failures.
  api::Problem load_problem(const Request& request);

 private:
  /// Weak graph plus its memoized content digest, so repeat submissions of
  /// a cached path never rescan the CSR arrays (the digest is the cache
  /// key half and would otherwise be recomputed per request).
  struct CachedGraph {
    std::weak_ptr<const Graph> graph;
    std::uint64_t digest = 0;
  };

  ServiceOptions options_;
  std::mutex mu_;  ///< graph cache
  std::map<std::string, CachedGraph> graph_cache_;
  ServeStats serve_stats_;
  api::Engine engine_;
};

/// Per-connection policy knobs — what THIS transport may do, as opposed to
/// ServiceOptions (what the host allows anyone). ffp_serve grants
/// shutdown to its stdio pipe (the operator's own terminal) but gates it
/// on --allow-remote-shutdown for TCP peers.
struct SessionPolicy {
  /// Whether {"op":"shutdown"} is honored. When false the request gets a
  /// structured Forbidden error and the connection stays up.
  bool allow_shutdown = true;
  /// Teardown deadline: how long the destructor waits (total, across all
  /// of the session's jobs) after cancelling them before abandoning the
  /// stragglers. 0 waits forever (trusted in-process sessions); < 0 does
  /// not wait at all — cancel and abandon immediately, for transports
  /// that must never block (the event loop tears sessions down on its one
  /// thread; the server's drain bounds the stragglers instead).
  double teardown_wait_ms = 5000;
  /// Async result delivery: `result` replies are emitted by the engine's
  /// terminal callback instead of a blocking wait() in handle_line — the
  /// event-loop transport multiplexes thousands of connections on one
  /// thread and can afford neither the block nor a thread per waiter.
  /// The wait() path and the callback render byte-identical lines
  /// (format_terminal); which side emits is settled by a claim set, so
  /// every result op gets exactly one reply either way.
  bool async_results = false;
};

class ServiceSession {
 public:
  using Emit = std::function<void(const std::string& line)>;

  ServiceSession(ServiceHost& host, Emit emit, SessionPolicy policy = {});
  /// Cancels this session's unfinished jobs and waits up to
  /// policy.teardown_wait_ms for them — call drain() first for
  /// let-them-finish semantics. Jobs still running at the deadline are
  /// abandoned (their streaming events drop; the scheduler finishes them).
  ~ServiceSession();

  ServiceSession(const ServiceSession&) = delete;
  ServiceSession& operator=(const ServiceSession&) = delete;

  /// Handles one request line, emitting the response line(s). Returns
  /// false when the line was a shutdown request — the transport loop
  /// should stop reading. Never throws on bad input; `error` events carry
  /// the diagnosis instead.
  bool handle_line(std::string_view line);

  /// Blocks until every job this session submitted is terminal.
  void drain();

  /// Unfinished (non-terminal) jobs plus unclaimed result interests — the
  /// event loop uses this to decide when a read-closed connection has
  /// nothing left to say and can be reaped.
  std::size_t pending_work();

  ServiceHost& host() { return host_; }

 private:
  /// The emit half of the session, shared with every streaming closure it
  /// spawned: the mutex serializes command responses with progress events,
  /// and `alive` is flipped off at teardown so a closure owned by an
  /// abandoned job drops its events instead of calling a dead sink.
  struct EmitState {
    std::mutex mu;
    Emit sink;
    bool alive = true;
  };
  static void emit_to(const std::shared_ptr<EmitState>& state,
                      const std::string& line);

  void emit(const std::string& line) { emit_to(emit_, line); }
  api::SolveHandle lookup(const std::string& id);

  /// Async-result bookkeeping, shared with every terminal callback this
  /// session registered: `wanted` holds the client ids whose result op is
  /// awaiting delivery. Whoever erases an id (the callback or a poll that
  /// found the job already terminal) owns the emit — exactly one side
  /// renders the reply. Outlives the session like EmitState does.
  struct AsyncWaits {
    std::mutex mu;
    std::set<std::string> wanted;
  };

  ServiceHost& host_;
  SessionPolicy policy_;
  std::shared_ptr<EmitState> emit_;
  std::shared_ptr<AsyncWaits> waits_;

  std::mutex mu_;  ///< handle + population maps
  std::map<std::string, api::SolveHandle> handles_;  ///< client id → handle
  /// client id → the job's elite-archive population, recorded at submit so
  /// a later status can report archive_best for exactly this job's
  /// (digest, k, objective) without re-loading the graph.
  std::map<std::string, evolve::PopulationKey> populations_;
};

}  // namespace ffp
