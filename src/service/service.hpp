// ServiceSession: one client's view of the partitioning service — the
// piece ffp_serve wraps around a socket, ffp_serve's stdin mode wraps
// around a pipe, and the tests drive directly with no transport at all.
//
// The session owns a JobScheduler and speaks the line protocol
// (service/protocol.hpp): feed it request lines, it emits response lines
// through a callback. Responses to commands are emitted synchronously from
// handle_line(); `progress` events are emitted from scheduler runner
// threads as improvements happen (when streaming is on), serialized with
// everything else through one internal emit lock — the callback itself
// never needs to be thread-safe.
//
// Untrusted-input policy: every parse or validation failure becomes an
// `error` event (the session never throws, never dies); graph files are
// read through the hardened readers under the session's IoLimits, and
// `allow_files = false` turns graph_file submissions off entirely for
// deployments that must not touch the server's filesystem. Graphs named
// by the same path are parsed once and shared across jobs (weak cache),
// which is what makes a burst of jobs on one mesh cheap.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "service/job_scheduler.hpp"
#include "service/protocol.hpp"

namespace ffp {

struct ServiceOptions {
  unsigned runners = 1;  ///< concurrent jobs (JobSchedulerOptions::runners)
  /// Worker governor shared with everything else in the process; null uses
  /// ThreadBudget::process().
  ThreadBudget* budget = nullptr;
  bool stream_progress = false;  ///< emit `progress` events as they happen
  bool allow_files = true;       ///< permit graph_file submissions
  ProtocolLimits limits;
};

class ServiceSession {
 public:
  using Emit = std::function<void(const std::string& line)>;

  ServiceSession(ServiceOptions options, Emit emit);
  /// Waits for running jobs (scheduler shutdown) before tearing down.
  ~ServiceSession() = default;

  ServiceSession(const ServiceSession&) = delete;
  ServiceSession& operator=(const ServiceSession&) = delete;

  /// Handles one request line, emitting the response line(s). Returns
  /// false when the line was a shutdown request — the transport loop
  /// should stop reading. Never throws on bad input; `error` events carry
  /// the diagnosis instead.
  bool handle_line(std::string_view line);

  /// Blocks until every submitted job is terminal.
  void drain();

  JobScheduler& scheduler() { return *scheduler_; }

 private:
  void emit(const std::string& line);
  void on_improvement(std::uint64_t job, double seconds, double value);
  std::uint64_t lookup(const std::string& id);
  std::shared_ptr<const Graph> load_graph(const Request& request);

  ServiceOptions options_;
  Emit sink_;
  std::mutex emit_mu_;  ///< serializes command responses with progress events

  std::mutex mu_;  ///< id maps + graph cache (runner threads read names_)
  std::map<std::string, std::uint64_t> ids_;    ///< client id → job id
  std::map<std::uint64_t, std::string> names_;  ///< job id → client id
  std::map<std::string, std::weak_ptr<const Graph>> graph_cache_;

  /// Last member: destroyed first, so runner threads are joined before the
  /// maps and sink they reach through the progress hook go away.
  std::unique_ptr<JobScheduler> scheduler_;
};

}  // namespace ffp
