#include "service/errors.hpp"

namespace ffp {

bool err_retryable(ErrCode code) {
  switch (code) {
    case ErrCode::Overloaded:
    case ErrCode::QueueExpired:
    case ErrCode::Timeout:
    case ErrCode::ConnLost:
    case ErrCode::ShuttingDown:
      return true;
    case ErrCode::None:
    case ErrCode::BadRequest:
    case ErrCode::UnknownJob:
    case ErrCode::Forbidden:
    case ErrCode::JobFailed:
    case ErrCode::Cancelled:
    case ErrCode::Internal:
      return false;
  }
  return false;
}

std::string_view err_name(ErrCode code) {
  switch (code) {
    case ErrCode::None: return "none";
    case ErrCode::BadRequest: return "bad_request";
    case ErrCode::UnknownJob: return "unknown_job";
    case ErrCode::Forbidden: return "forbidden";
    case ErrCode::JobFailed: return "job_failed";
    case ErrCode::Cancelled: return "cancelled";
    case ErrCode::Internal: return "internal";
    case ErrCode::Overloaded: return "overloaded";
    case ErrCode::QueueExpired: return "queue_expired";
    case ErrCode::Timeout: return "timeout";
    case ErrCode::ConnLost: return "conn_lost";
    case ErrCode::ShuttingDown: return "shutting_down";
  }
  return "none";
}

ErrCode err_from_name(std::string_view name) {
  for (const ErrCode code :
       {ErrCode::BadRequest, ErrCode::UnknownJob, ErrCode::Forbidden,
        ErrCode::JobFailed, ErrCode::Cancelled, ErrCode::Internal,
        ErrCode::Overloaded, ErrCode::QueueExpired, ErrCode::Timeout,
        ErrCode::ConnLost, ErrCode::ShuttingDown}) {
    if (err_name(code) == name) return code;
  }
  return ErrCode::None;
}

}  // namespace ffp
