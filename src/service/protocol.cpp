#include "service/protocol.hpp"

#include <cmath>
#include <set>

#include "util/strings.hpp"

namespace ffp {

namespace {

[[noreturn]] void reject(const std::string& msg) {
  throw Error("bad request: " + msg);
}

/// Every key the submit op understands; anything else is a typo and fails
/// loudly, same policy as the solver registry's option parsing.
const std::set<std::string_view>& submit_keys() {
  static const std::set<std::string_view> keys = {
      "op",        "id",    "graph_file", "graph",     "method",   "k",
      "objective", "seed",  "steps",      "budget_ms", "priority",
      "threads",   "restarts", "queue_ttl_ms", "checkpoint_every_ms",
      "warm_start", "evolve"};
  return keys;
}

std::string parse_id(const JsonValue& root, const ProtocolLimits& limits) {
  const JsonValue* id = root.find("id");
  if (id == nullptr) reject("missing 'id'");
  if (!id->is_string()) reject("'id' must be a string");
  const std::string& value = id->as_string();
  if (value.empty()) reject("'id' must not be empty");
  if (value.size() > limits.max_id_bytes) {
    reject("'id' longer than " + std::to_string(limits.max_id_bytes) +
           " bytes");
  }
  return value;
}

std::int64_t int_field(const JsonValue& root, std::string_view key,
                       std::int64_t fallback, std::int64_t lo,
                       std::int64_t hi) {
  const JsonValue* v = root.find(key);
  if (v == nullptr) return fallback;
  std::int64_t value = 0;
  try {
    value = v->as_int();
  } catch (const Error&) {
    reject("'" + std::string(key) + "' must be an integer");
  }
  if (value < lo || value > hi) {
    reject("'" + std::string(key) + "' out of range [" + std::to_string(lo) +
           ", " + std::to_string(hi) + "]");
  }
  return value;
}

std::shared_ptr<const Graph> parse_inline_graph(const JsonValue& spec,
                                                const ProtocolLimits& limits) {
  if (!spec.is_object()) reject("'graph' must be an object");
  for (const auto& [key, unused] : spec.as_object()) {
    (void)unused;
    if (key != "n" && key != "edges") {
      reject("unknown key '" + key + "' in 'graph'");
    }
  }
  // The same resolved ceilings the hardened file readers enforce — so the
  // inline and file paths can never diverge — plus the inline-only vertex
  // cap (see ProtocolLimits: a declared n costs the sender nothing but
  // costs the server O(n) allocation).
  const std::int64_t vcap =
      std::min(limits.graph.vertex_cap(), limits.max_inline_vertices);
  const std::int64_t ecap = limits.graph.edge_cap();

  const JsonValue* edges_v = spec.find("edges");
  if (edges_v == nullptr || !edges_v->is_array()) {
    reject("'graph' needs an 'edges' array");
  }
  const auto& raw = edges_v->as_array();
  if (static_cast<std::int64_t>(raw.size()) > ecap) {
    reject("'graph.edges' exceeds the edge limit " + std::to_string(ecap));
  }

  std::int64_t n = int_field(spec, "n", 0, 0, vcap);
  std::vector<WeightedEdge> edges;
  edges.reserve(raw.size());
  VertexId max_v = -1;
  for (const JsonValue& e : raw) {
    if (!e.is_array() || (e.as_array().size() != 2 && e.as_array().size() != 3)) {
      reject("each edge must be [u, v] or [u, v, w]");
    }
    const auto& t = e.as_array();
    std::int64_t u = 0;
    std::int64_t v = 0;
    try {
      u = t[0].as_int();
      v = t[1].as_int();
    } catch (const Error&) {
      reject("edge endpoints must be integers");
    }
    if (u < 0 || v < 0 || u >= vcap || v >= vcap) {
      reject("edge endpoint out of range");
    }
    if (u == v) reject("self loop on vertex " + std::to_string(u));
    double w = 1.0;
    if (t.size() == 3) {
      if (!t[2].is_number()) reject("edge weight must be a number");
      w = t[2].as_number();
      if (!std::isfinite(w) || w < 0) {
        reject("edge weight must be finite and >= 0");
      }
    }
    edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v), w});
    max_v = std::max(max_v, static_cast<VertexId>(std::max(u, v)));
  }
  if (n == 0) n = static_cast<std::int64_t>(max_v) + 1;
  if (n <= 0) reject("'graph' is empty");
  if (max_v >= n) {
    reject("edge endpoint " + std::to_string(max_v) +
           " exceeds declared n = " + std::to_string(n));
  }
  // from_edges re-checks every invariant; wrap its Error as a bad request.
  try {
    return std::make_shared<const Graph>(
        Graph::from_edges(static_cast<VertexId>(n), edges));
  } catch (const Error& e) {
    reject(e.what());
  }
}

Request parse_submit(const JsonValue& root, const ProtocolLimits& limits) {
  Request req;
  req.op = RequestOp::Submit;
  req.id = parse_id(root, limits);
  for (const auto& [key, unused] : root.as_object()) {
    (void)unused;
    if (submit_keys().count(key) == 0) {
      reject("unknown key '" + key + "' in submit");
    }
  }

  const JsonValue* file = root.find("graph_file");
  const JsonValue* inline_g = root.find("graph");
  if ((file != nullptr) == (inline_g != nullptr)) {
    reject("submit needs exactly one of 'graph_file' or 'graph'");
  }
  if (file != nullptr) {
    if (!file->is_string() || file->as_string().empty()) {
      reject("'graph_file' must be a non-empty string");
    }
    req.graph_file = file->as_string();
  } else {
    req.inline_graph = parse_inline_graph(*inline_g, limits);
  }

  if (const JsonValue* m = root.find("method"); m != nullptr) {
    if (!m->is_string() || m->as_string().empty()) {
      reject("'method' must be a non-empty string");
    }
    req.spec.method = m->as_string();
  }
  if (const JsonValue* o = root.find("objective"); o != nullptr) {
    if (!o->is_string()) reject("'objective' must be a string");
    const auto kind = objective_from_name(o->as_string());
    if (!kind) {
      reject("unknown objective '" + o->as_string() +
             "' (expected cut|ncut|mcut|rcut)");
    }
    req.spec.objective = *kind;
  }
  req.spec.k = static_cast<int>(int_field(root, "k", 2, 1, 1 << 24));
  req.spec.seed = static_cast<std::uint64_t>(int_field(
      root, "seed", 1, 0, std::numeric_limits<std::int64_t>::max()));
  req.spec.steps =
      int_field(root, "steps", 0, 0, limits.max_steps);
  req.spec.priority = static_cast<int>(
      int_field(root, "priority", 0, -1'000'000, 1'000'000));
  req.spec.threads = static_cast<unsigned>(
      int_field(root, "threads", 0, 0, limits.max_threads));
  req.spec.restarts =
      static_cast<int>(int_field(root, "restarts", 1, 1, limits.max_restarts));
  if (const JsonValue* b = root.find("budget_ms"); b != nullptr) {
    if (!b->is_number()) reject("'budget_ms' must be a number");
    const double ms = b->as_number();
    if (!(ms >= 0) || ms > limits.max_budget_ms) {
      reject("'budget_ms' out of range [0, " +
             std::to_string(limits.max_budget_ms) + "]");
    }
    req.spec.budget_ms = ms;
  }
  if (const JsonValue* t = root.find("queue_ttl_ms"); t != nullptr) {
    if (!t->is_number()) reject("'queue_ttl_ms' must be a number");
    const double ms = t->as_number();
    if (!(ms >= 0) || ms > limits.max_budget_ms) {
      reject("'queue_ttl_ms' out of range [0, " +
             std::to_string(limits.max_budget_ms) + "]");
    }
    req.spec.queue_ttl_ms = ms;
  }
  // Durable-state knobs (no-ops on a server without --state-dir).
  req.spec.checkpoint_every_ms = int_field(
      root, "checkpoint_every_ms", 0, 0,
      static_cast<std::int64_t>(limits.max_budget_ms));
  if (const JsonValue* w = root.find("warm_start"); w != nullptr) {
    if (!w->is_bool()) reject("'warm_start' must be a boolean");
    req.spec.warm_start = w->as_bool();
  }
  if (const JsonValue* e = root.find("evolve"); e != nullptr) {
    if (!e->is_bool()) reject("'evolve' must be a boolean");
    req.spec.evolve = e->as_bool();
  }
  return req;
}

/// migrate_elite: the inter-shard elite push. Input is as untrusted as any
/// other op — a hostile peer must not be able to plant an oversized
/// assignment or an out-of-range part id in the archive.
Request parse_migrate(const JsonValue& root, const ProtocolLimits& limits) {
  Request req;
  req.op = RequestOp::MigrateElite;
  for (const auto& [key, unused] : root.as_object()) {
    (void)unused;
    if (key != "op" && key != "digest" && key != "k" && key != "objective" &&
        key != "value" && key != "assignment") {
      reject("unknown key '" + key + "' in migrate_elite");
    }
  }

  const JsonValue* d = root.find("digest");
  if (d == nullptr || !d->is_string()) reject("'digest' must be a hex string");
  const std::string& hex = d->as_string();
  if (hex.empty() || hex.size() > 16) {
    reject("'digest' must be 1..16 hex digits");
  }
  std::uint64_t digest = 0;
  for (const char c : hex) {
    int v = -1;
    if (c >= '0' && c <= '9') v = c - '0';
    else if (c >= 'a' && c <= 'f') v = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') v = c - 'A' + 10;
    else reject("'digest' must be 1..16 hex digits");
    digest = digest * 16 + static_cast<std::uint64_t>(v);
  }
  req.digest = digest;

  if (root.find("k") == nullptr) reject("missing 'k'");
  req.spec.k = static_cast<int>(int_field(root, "k", 0, 1, 1 << 24));
  const JsonValue* o = root.find("objective");
  if (o == nullptr || !o->is_string()) reject("'objective' must be a string");
  const auto kind = objective_from_name(o->as_string());
  if (!kind) {
    reject("unknown objective '" + o->as_string() +
           "' (expected cut|ncut|mcut|rcut)");
  }
  req.spec.objective = *kind;

  const JsonValue* v = root.find("value");
  if (v == nullptr || !v->is_number()) reject("'value' must be a number");
  req.migrate_value = v->as_number();
  if (!std::isfinite(req.migrate_value)) reject("'value' must be finite");

  const JsonValue* a = root.find("assignment");
  if (a == nullptr || !a->is_array()) reject("'assignment' must be an array");
  const auto& raw = a->as_array();
  const std::int64_t vcap =
      std::min(limits.graph.vertex_cap(), limits.max_inline_vertices);
  if (raw.empty() || static_cast<std::int64_t>(raw.size()) > vcap) {
    reject("'assignment' size out of range [1, " + std::to_string(vcap) +
           "]");
  }
  auto parts = std::make_shared<std::vector<int>>();
  parts->reserve(raw.size());
  for (const JsonValue& e : raw) {
    std::int64_t p = 0;
    try {
      p = e.as_int();
    } catch (const Error&) {
      reject("'assignment' entries must be integers");
    }
    if (p < 0 || p >= req.spec.k) {
      reject("'assignment' entry out of range [0, k)");
    }
    parts->push_back(static_cast<int>(p));
  }
  req.migrate_assignment = std::move(parts);
  return req;
}

}  // namespace

Request parse_request(std::string_view line, const ProtocolLimits& limits) {
  JsonValue root = JsonValue::parse(line, limits.json);
  if (!root.is_object()) reject("request must be a JSON object");
  const JsonValue* op = root.find("op");
  if (op == nullptr || !op->is_string()) reject("missing string 'op'");
  const std::string& name = op->as_string();

  if (name == "submit") return parse_submit(root, limits);
  if (name == "migrate_elite") return parse_migrate(root, limits);

  if (name == "shutdown") {
    for (const auto& [key, unused] : root.as_object()) {
      (void)unused;
      if (key != "op") reject("unknown key '" + key + "' in shutdown");
    }
    Request req;
    req.op = RequestOp::Shutdown;
    return req;
  }

  RequestOp kind;
  if (name == "status") kind = RequestOp::Status;
  else if (name == "cancel") kind = RequestOp::Cancel;
  else if (name == "result") kind = RequestOp::Result;
  else reject("unknown op '" + name + "'");

  for (const auto& [key, unused] : root.as_object()) {
    (void)unused;
    if (key != "op" && key != "id") {
      reject("unknown key '" + key + "' in " + name);
    }
  }
  Request req;
  req.op = kind;
  req.id = parse_id(root, limits);
  return req;
}

namespace {

void append_number(std::string& out, double value) {
  out += format("%.17g", value);
}

}  // namespace

std::string format_ack(std::string_view id) {
  std::string out = "{\"event\":\"ack\",\"id\":";
  json_append_quoted(out, id);
  out += "}";
  return out;
}

std::string format_error(std::string_view id, std::string_view message,
                         ErrCode code, double retry_after_ms) {
  std::string out = "{\"event\":\"error\",\"id\":";
  json_append_quoted(out, id);
  out += ",\"message\":";
  json_append_quoted(out, message);
  out += ",\"code\":\"";
  out += err_name(code);
  out += "\",\"retryable\":";
  out += err_retryable(code) ? "true" : "false";
  if (retry_after_ms >= 0) {
    out += ",\"retry_after_ms\":";
    append_number(out, retry_after_ms);
  }
  out += "}";
  return out;
}

std::string format_progress(std::string_view id, double seconds,
                            double value) {
  std::string out = "{\"event\":\"progress\",\"id\":";
  json_append_quoted(out, id);
  out += ",\"seconds\":";
  append_number(out, seconds);
  out += ",\"value\":";
  append_number(out, value);
  out += "}";
  return out;
}

std::string format_status(std::string_view id, const JobStatus& status,
                          const api::CacheCounters* cache,
                          const evolve::ArchiveCounters* archive,
                          const double* archive_best,
                          const ServeCounters* serve) {
  std::string out = "{\"event\":\"status\",\"id\":";
  json_append_quoted(out, id);
  out += ",\"state\":\"";
  out += to_string(status.state);
  out += "\",\"seconds\":";
  append_number(out, status.seconds);
  if (!status.progress.empty()) {
    out += ",\"best_value\":";
    append_number(out, status.progress.back().best_value);
  }
  out += ",\"improvements\":" + std::to_string(status.progress.size());
  if (cache != nullptr) {
    out += ",\"cache_hits\":" + std::to_string(cache->hits);
    out += ",\"cache_misses\":" + std::to_string(cache->misses);
    out += ",\"cache_entries\":" + std::to_string(cache->entries);
    out += ",\"cache_capacity\":" + std::to_string(cache->capacity);
    out += ",\"cache_evictions\":" + std::to_string(cache->evictions);
  }
  if (archive != nullptr) {
    out += ",\"archive_elites\":" + std::to_string(archive->elites);
    out += ",\"archive_populations\":" + std::to_string(archive->populations);
    out += ",\"archive_admitted\":" + std::to_string(archive->admitted);
    out += ",\"archive_evicted\":" + std::to_string(archive->evicted);
    out += ",\"archive_hit_rate\":";
    append_number(out, archive->lookups > 0
                           ? static_cast<double>(archive->hits) /
                                 static_cast<double>(archive->lookups)
                           : 0.0);
  }
  if (archive_best != nullptr) {
    out += ",\"archive_best\":";
    append_number(out, *archive_best);
  }
  if (serve != nullptr) {
    out += ",\"conns_open\":" + std::to_string(serve->connections_open);
    out += ",\"conns_total\":" + std::to_string(serve->connections_total);
    out += ",\"loop_wakeups\":" + std::to_string(serve->loop_wakeups);
    out += ",\"sheds\":" + std::to_string(serve->sheds);
    out += ",\"migrations_sent\":" + std::to_string(serve->migrations_sent);
    out += ",\"migrations_received\":" +
           std::to_string(serve->migrations_received);
  }
  out += "}";
  return out;
}

std::string format_result(std::string_view id, const JobStatus& status) {
  FFP_CHECK(status.result != nullptr,
            "format_result needs a terminal job with a partition");
  std::string out = "{\"event\":\"result\",\"id\":";
  json_append_quoted(out, id);
  out += ",\"state\":\"";
  out += to_string(status.state);
  out += "\",\"value\":";
  append_number(out, status.result->best_value);
  out += ",\"seconds\":";
  append_number(out, status.seconds);
  out += ",\"partition\":[";
  const auto parts = status.result->best.assignment();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(parts[i]);
  }
  out += "]}";
  return out;
}

std::string format_terminal(std::string_view id, const JobStatus& status) {
  if (status.result != nullptr) return format_result(id, status);
  if (status.state == JobState::Failed) {
    // Preserve the scheduler's code (QueueExpired is retryable; solver
    // failures are not) instead of flattening to one class.
    return format_error(id, "job failed: " + status.error,
                        status.error_code != ErrCode::None
                            ? status.error_code
                            : ErrCode::JobFailed);
  }
  return format_error(id, "job was cancelled before it ran",
                      ErrCode::Cancelled);
}

std::string format_bye() { return "{\"event\":\"bye\"}"; }

std::string format_migrate(bool admitted) {
  return admitted ? "{\"event\":\"migrate\",\"admitted\":true}"
                  : "{\"event\":\"migrate\",\"admitted\":false}";
}

std::string format_migrate_elite(const evolve::PopulationKey& key,
                                 double value, std::span<const int> parts) {
  std::string out = "{\"op\":\"migrate_elite\",\"digest\":\"";
  out += format("%016llx", static_cast<unsigned long long>(key.digest));
  out += "\",\"k\":" + std::to_string(key.k);
  out += ",\"objective\":\"";
  out += objective_token(key.objective);
  out += "\",\"value\":";
  append_number(out, value);
  out += ",\"assignment\":[";
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(parts[i]);
  }
  out += "]}";
  return out;
}

}  // namespace ffp
