// Structured error taxonomy for the service stack: every failure a client
// can observe carries a machine-readable code and a retryable verdict, so
// `ffp_client` (and any other caller) can decide retry-with-backoff vs
// give-up without parsing prose. The codes travel on the wire in `error`
// events ({"code":"overloaded","retryable":true,...}) and internally as
// ServiceError, a subclass of ffp::Error — call sites that only know about
// Error keep working, call sites that care catch ServiceError first.
//
// Retryable means "the identical request may succeed later": capacity and
// deadline failures qualify because the service's determinism contract
// makes resubmission idempotent (a repeat of a deterministic spec is a
// result-cache hit, not duplicated work). Fatal means the request itself
// is wrong (malformed, unknown id, disabled op) or the work is genuinely
// dead (solver failure, caller-initiated cancel) — retrying reproduces the
// same failure.
#pragma once

#include <string>
#include <string_view>

#include "util/check.hpp"

namespace ffp {

enum class ErrCode {
  None = 0,      ///< no code attached (e.g. a non-failed JobStatus)
  // ---- fatal: retrying the identical request reproduces the failure ----
  BadRequest,    ///< malformed or invalid request
  UnknownJob,    ///< job id not known to this session
  Forbidden,     ///< op disabled by server policy (e.g. remote shutdown)
  JobFailed,     ///< the solver itself failed
  Cancelled,     ///< job cancelled before it produced a result
  Internal,      ///< unexpected server-side failure
  // ---- retryable: the identical request may succeed later --------------
  Overloaded,    ///< queue or connection capacity exhausted
  QueueExpired,  ///< job spent longer queued than its TTL allowed
  Timeout,       ///< a read/write/idle deadline expired
  ConnLost,      ///< connection dropped, reset, or torn mid-message
  ShuttingDown,  ///< server is draining; try again (or another replica)
};

/// True for the codes a client should retry with backoff.
bool err_retryable(ErrCode code);

/// Stable wire name ("overloaded", "conn_lost", ...).
std::string_view err_name(ErrCode code);

/// Reverse lookup for clients parsing error events; None on unknown names
/// (never throws — the wire is untrusted).
ErrCode err_from_name(std::string_view name);

/// An Error with a taxonomy code and an optional server-supplied
/// retry-after hint (milliseconds; < 0 means no hint).
class ServiceError : public Error {
 public:
  ServiceError(ErrCode code, const std::string& what,
               double retry_after_ms = -1)
      : Error(what), code_(code), retry_after_ms_(retry_after_ms) {}

  ErrCode code() const { return code_; }
  bool retryable() const { return err_retryable(code_); }
  double retry_after_ms() const { return retry_after_ms_; }

 private:
  ErrCode code_;
  double retry_after_ms_;
};

}  // namespace ffp
