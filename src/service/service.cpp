#include "service/service.hpp"

#include <cstdio>
#include <iterator>
#include <utility>
#include <vector>

#include "util/strings.hpp"
#include "util/timer.hpp"

namespace ffp {

namespace {

api::EngineOptions engine_options(const ServiceOptions& options) {
  api::EngineOptions out;
  out.runners = options.runners;
  out.budget = options.budget;
  out.cache_capacity = options.cache_capacity;
  out.max_queued = options.max_queued;
  out.overload_retry_after_ms = options.overload_retry_after_ms;
  out.state_dir = options.state_dir;
  out.evolve_capacity = options.evolve_capacity;
  return out;
}

}  // namespace

ServiceHost::ServiceHost(ServiceOptions options)
    : options_(std::move(options)), engine_(engine_options(options_)) {}

api::Problem ServiceHost::load_problem(const Request& request) {
  if (request.inline_graph != nullptr) {
    return api::Problem::from_shared(request.inline_graph);
  }
  if (!options_.allow_files) {
    throw Error("graph_file submissions are disabled on this server "
                "(inline 'graph' only)");
  }
  {
    std::lock_guard lock(mu_);
    const auto it = graph_cache_.find(request.graph_file);
    if (it != graph_cache_.end()) {
      if (auto cached = it->second.graph.lock()) {
        return api::Problem::from_shared_with_digest(
            std::move(cached), it->second.digest,
            "file:" + request.graph_file);
      }
    }
  }
  // Parse (and digest) outside mu_ — a big (or slow) file must not stall
  // concurrent sessions resolving other paths. A concurrent submit of the
  // same path may parse twice; last one in wins the cache slot, both
  // graphs are equal, and the losers die with their jobs.
  auto graph = std::make_shared<const Graph>(
      read_chaco_file(request.graph_file, options_.limits.graph));
  const std::uint64_t digest = api::graph_digest(*graph);
  std::lock_guard lock(mu_);
  // Insert only after a successful read (a failing path must not leave a
  // node behind), and sweep expired entries so a long-running daemon fed
  // many distinct paths cannot grow the cache without bound.
  for (auto it = graph_cache_.begin(); it != graph_cache_.end();) {
    it = it->second.graph.expired() ? graph_cache_.erase(it) : std::next(it);
  }
  graph_cache_[request.graph_file] = {graph, digest};
  return api::Problem::from_shared_with_digest(std::move(graph), digest,
                                               "file:" + request.graph_file);
}

ServiceSession::ServiceSession(ServiceHost& host, Emit emit,
                               SessionPolicy policy)
    : host_(host),
      policy_(policy),
      emit_(std::make_shared<EmitState>()),
      waits_(policy.async_results ? std::make_shared<AsyncWaits>() : nullptr) {
  emit_->sink = std::move(emit);
}

ServiceSession::~ServiceSession() {
  // Abnormal teardown (connection dropped): stop burning runners on jobs
  // nobody will read, then wait — bounded by the policy deadline — so a
  // job that ignores its cancel flag cannot hold the transport thread
  // hostage forever.
  std::vector<api::SolveHandle> handles;
  {
    std::lock_guard lock(mu_);
    for (auto& [id, handle] : handles_) handles.push_back(handle);
  }
  for (const auto& handle : handles) handle.cancel();

  std::size_t abandoned = 0;
  const WallTimer timer;
  for (const auto& handle : handles) {
    if (policy_.teardown_wait_ms < 0) continue;  // no-wait transports
    if (policy_.teardown_wait_ms == 0) {
      handle.wait();
      continue;
    }
    const double remaining =
        policy_.teardown_wait_ms - timer.elapsed_millis();
    if (remaining <= 0 || !handle.wait_for(remaining).has_value()) {
      ++abandoned;
    }
  }
  if (abandoned > 0) {
    std::fprintf(stderr,
                 "ffp service: abandoning %zu unfinished job(s) after "
                 "%.0f ms teardown wait (cancelled; the scheduler will "
                 "finish them)\n",
                 abandoned, policy_.teardown_wait_ms);
  }
  // Closures owned by abandoned jobs outlive us; kill their sink access
  // before the transport underneath it goes away.
  std::lock_guard lock(emit_->mu);
  emit_->alive = false;
  emit_->sink = nullptr;
}

void ServiceSession::emit_to(const std::shared_ptr<EmitState>& state,
                             const std::string& line) {
  std::lock_guard lock(state->mu);
  if (!state->alive) return;  // session torn down; drop the event
  state->sink(line);
}

api::SolveHandle ServiceSession::lookup(const std::string& id) {
  std::lock_guard lock(mu_);
  const auto it = handles_.find(id);
  if (it == handles_.end()) {
    throw ServiceError(ErrCode::UnknownJob, "unknown job id '" + id + "'");
  }
  return it->second;
}

bool ServiceSession::handle_line(std::string_view line) {
  if (trim(line).empty()) return true;  // blank lines are keep-alives
  std::string id;
  try {
    Request request = parse_request(line, host_.options().limits);
    id = request.id;
    switch (request.op) {
      case RequestOp::Submit: {
        {
          std::lock_guard lock(mu_);
          if (handles_.count(request.id) > 0) {
            throw Error("duplicate job id '" + request.id + "'");
          }
        }
        const api::Problem problem = host_.load_problem(request);
        api::ImprovementFn stream;
        if (host_.options().stream_progress) {
          // The closure shares the emit state, not the session: it owns
          // its client id and survives a torn-down session (the alive
          // flag drops its events), so a dead transport can never fail
          // the job it reports on.
          stream = [state = emit_,
                    client = request.id](double seconds, double value) {
            try {
              emit_to(state, format_progress(client, seconds, value));
            } catch (const std::exception&) {
              // Peer gone mid-stream; the result op will surface it.
            }
          };
        }
        api::TerminalFn done;
        if (policy_.async_results) {
          // Fires once per job, from whichever thread finalizes it. Emits
          // only if a result op has registered interest (the claim set) —
          // otherwise the terminal status stays queryable and a later
          // result op delivers it synchronously via poll().
          done = [waits = waits_, state = emit_,
                  client = request.id](const JobStatus& status) {
            {
              std::lock_guard lock(waits->mu);
              if (waits->wanted.erase(client) == 0) return;
            }
            try {
              emit_to(state, format_terminal(client, status));
            } catch (const std::exception&) {
              // Peer gone; the claim is consumed either way.
            }
          };
        }
        api::SolveHandle handle = host_.engine().submit(
            problem, request.spec, std::move(stream), std::move(done));
        {
          std::lock_guard lock(mu_);
          handles_.emplace(request.id, std::move(handle));
          if (host_.options().evolve_capacity > 0) {
            populations_.emplace(
                request.id, evolve::PopulationKey{problem.digest(),
                                                  request.spec.k,
                                                  request.spec.objective});
          }
        }
        emit(format_ack(request.id));
        return true;
      }
      case RequestOp::Status: {
        const JobStatus status = lookup(id).poll();
        const bool cache_on = host_.options().cache_capacity > 0;
        const api::CacheCounters counters =
            cache_on ? host_.engine().cache_counters() : api::CacheCounters{};
        const bool archive_on = host_.options().evolve_capacity > 0;
        const evolve::ArchiveCounters archive =
            archive_on ? host_.engine().archive_counters()
                       : evolve::ArchiveCounters{};
        std::optional<double> best;
        if (archive_on) {
          std::lock_guard lock(mu_);
          const auto it = populations_.find(id);
          if (it != populations_.end()) {
            best = host_.engine().archive_best(it->second.digest,
                                               it->second.k,
                                               it->second.objective);
          }
        }
        const ServeCounters serve = host_.serve_stats().snapshot();
        emit(format_status(id, status, cache_on ? &counters : nullptr,
                           archive_on ? &archive : nullptr,
                           best.has_value() ? &*best : nullptr, &serve));
        return true;
      }
      case RequestOp::Cancel:
        if (!lookup(id).cancel()) {
          throw Error("job '" + id + "' is already terminal");
        }
        emit(format_ack(id));
        return true;
      case RequestOp::Result: {
        const api::SolveHandle handle = lookup(id);
        if (!policy_.async_results) {
          emit(format_terminal(id, handle.wait()));
          return true;
        }
        // Async mode: register interest FIRST, then poll. Already
        // terminal -> reclaim the interest and answer inline (the
        // terminal callback, if it raced us here, consumed the claim and
        // emitted — then our erase finds nothing and we stay silent).
        // Still running -> the callback owns delivery.
        {
          std::lock_guard lock(waits_->mu);
          waits_->wanted.insert(id);
        }
        const JobStatus status = handle.poll();
        if (status.state == JobState::Done ||
            status.state == JobState::Failed ||
            status.state == JobState::Cancelled) {
          bool claimed = false;
          {
            std::lock_guard lock(waits_->mu);
            claimed = waits_->wanted.erase(id) > 0;
          }
          if (claimed) emit(format_terminal(id, status));
        }
        return true;
      }
      case RequestOp::MigrateElite: {
        if (host_.options().evolve_capacity == 0) {
          throw ServiceError(ErrCode::Forbidden,
                             "the elite archive is disabled on this server "
                             "(--evolve-elites 0)");
        }
        // Foreign partitions go through the same diversity-aware admission
        // as local results; a wrong-size assignment is harmless (the
        // evolve planner skips elites that do not match its graph).
        const bool admitted = host_.engine().archive_admit(
            request.digest, request.spec.k, request.spec.objective,
            *request.migrate_assignment, request.migrate_value);
        host_.serve_stats().migrations_received.fetch_add(
            1, std::memory_order_relaxed);
        emit(format_migrate(admitted));
        return true;
      }
      case RequestOp::Shutdown:
        if (!policy_.allow_shutdown) {
          throw ServiceError(
              ErrCode::Forbidden,
              "shutdown is not allowed on this connection (start the "
              "server with --allow-remote-shutdown)");
        }
        host_.engine().scheduler().shutdown();
        emit(format_bye());
        return false;
    }
  } catch (const ServiceError& e) {
    // Already classified (shed, expired, forbidden, ...): forward the code
    // and any retry-after hint to the client verbatim.
    emit(format_error(id, e.what(), e.code(), e.retry_after_ms()));
  } catch (const Error& e) {
    // ffp::Error out of parsing/validation/loading: the request was bad.
    emit(format_error(id, e.what(), ErrCode::BadRequest));
  } catch (const std::exception& e) {
    emit(format_error(id, e.what(), ErrCode::Internal));
  }
  return true;
}

void ServiceSession::drain() {
  std::vector<api::SolveHandle> handles;
  {
    std::lock_guard lock(mu_);
    for (auto& [id, handle] : handles_) handles.push_back(handle);
  }
  for (const auto& handle : handles) handle.wait();
}

std::size_t ServiceSession::pending_work() {
  std::size_t open = 0;
  if (waits_ != nullptr) {
    std::lock_guard lock(waits_->mu);
    open += waits_->wanted.size();
  }
  std::vector<api::SolveHandle> handles;
  {
    std::lock_guard lock(mu_);
    for (auto& [id, handle] : handles_) handles.push_back(handle);
  }
  for (const auto& handle : handles) {
    const JobState state = handle.poll().state;
    if (state != JobState::Done && state != JobState::Failed &&
        state != JobState::Cancelled) {
      ++open;
    }
  }
  return open;
}

}  // namespace ffp
