#include "service/service.hpp"

#include <iterator>
#include <utility>
#include <vector>

#include "util/strings.hpp"

namespace ffp {

namespace {

api::EngineOptions engine_options(const ServiceOptions& options) {
  api::EngineOptions out;
  out.runners = options.runners;
  out.budget = options.budget;
  out.cache_capacity = options.cache_capacity;
  return out;
}

}  // namespace

ServiceHost::ServiceHost(ServiceOptions options)
    : options_(std::move(options)), engine_(engine_options(options_)) {}

api::Problem ServiceHost::load_problem(const Request& request) {
  if (request.inline_graph != nullptr) {
    return api::Problem::from_shared(request.inline_graph);
  }
  if (!options_.allow_files) {
    throw Error("graph_file submissions are disabled on this server "
                "(inline 'graph' only)");
  }
  {
    std::lock_guard lock(mu_);
    const auto it = graph_cache_.find(request.graph_file);
    if (it != graph_cache_.end()) {
      if (auto cached = it->second.graph.lock()) {
        return api::Problem::from_shared_with_digest(
            std::move(cached), it->second.digest,
            "file:" + request.graph_file);
      }
    }
  }
  // Parse (and digest) outside mu_ — a big (or slow) file must not stall
  // concurrent sessions resolving other paths. A concurrent submit of the
  // same path may parse twice; last one in wins the cache slot, both
  // graphs are equal, and the losers die with their jobs.
  auto graph = std::make_shared<const Graph>(
      read_chaco_file(request.graph_file, options_.limits.graph));
  const std::uint64_t digest = api::graph_digest(*graph);
  std::lock_guard lock(mu_);
  // Insert only after a successful read (a failing path must not leave a
  // node behind), and sweep expired entries so a long-running daemon fed
  // many distinct paths cannot grow the cache without bound.
  for (auto it = graph_cache_.begin(); it != graph_cache_.end();) {
    it = it->second.graph.expired() ? graph_cache_.erase(it) : std::next(it);
  }
  graph_cache_[request.graph_file] = {graph, digest};
  return api::Problem::from_shared_with_digest(std::move(graph), digest,
                                               "file:" + request.graph_file);
}

ServiceSession::ServiceSession(ServiceHost& host, Emit emit)
    : host_(host), sink_(std::move(emit)) {}

ServiceSession::~ServiceSession() {
  // Abnormal teardown (connection dropped): stop burning runners on jobs
  // nobody will read, then wait so no progress callback can outlive us.
  std::vector<api::SolveHandle> handles;
  {
    std::lock_guard lock(mu_);
    for (auto& [id, handle] : handles_) handles.push_back(handle);
  }
  for (const auto& handle : handles) handle.cancel();
  for (const auto& handle : handles) handle.wait();
}

void ServiceSession::emit(const std::string& line) {
  std::lock_guard lock(emit_mu_);
  sink_(line);
}

api::SolveHandle ServiceSession::lookup(const std::string& id) {
  std::lock_guard lock(mu_);
  const auto it = handles_.find(id);
  if (it == handles_.end()) throw Error("unknown job id '" + id + "'");
  return it->second;
}

bool ServiceSession::handle_line(std::string_view line) {
  if (trim(line).empty()) return true;  // blank lines are keep-alives
  std::string id;
  try {
    Request request = parse_request(line, host_.options().limits);
    id = request.id;
    switch (request.op) {
      case RequestOp::Submit: {
        {
          std::lock_guard lock(mu_);
          if (handles_.count(request.id) > 0) {
            throw Error("duplicate job id '" + request.id + "'");
          }
        }
        const api::Problem problem = host_.load_problem(request);
        api::ImprovementFn stream;
        if (host_.options().stream_progress) {
          // The closure owns its client id, so streaming never needs the
          // session's maps; a dead transport drops events rather than
          // failing the job it reports on.
          stream = [this, client = request.id](double seconds, double value) {
            try {
              emit(format_progress(client, seconds, value));
            } catch (const std::exception&) {
              // Peer gone mid-stream; the result op will surface it.
            }
          };
        }
        api::SolveHandle handle =
            host_.engine().submit(problem, request.spec, std::move(stream));
        {
          std::lock_guard lock(mu_);
          handles_.emplace(request.id, std::move(handle));
        }
        emit(format_ack(request.id));
        return true;
      }
      case RequestOp::Status: {
        const JobStatus status = lookup(id).poll();
        const bool cache_on = host_.options().cache_capacity > 0;
        const api::CacheCounters counters =
            cache_on ? host_.engine().cache_counters() : api::CacheCounters{};
        emit(format_status(id, status, cache_on ? &counters : nullptr));
        return true;
      }
      case RequestOp::Cancel:
        if (!lookup(id).cancel()) {
          throw Error("job '" + id + "' is already terminal");
        }
        emit(format_ack(id));
        return true;
      case RequestOp::Result: {
        const JobStatus status = lookup(id).wait();
        if (status.result != nullptr) {
          emit(format_result(id, status));
        } else if (status.state == JobState::Failed) {
          throw Error("job failed: " + status.error);
        } else {
          throw Error("job was cancelled before it ran");
        }
        return true;
      }
      case RequestOp::Shutdown:
        host_.engine().scheduler().shutdown();
        emit(format_bye());
        return false;
    }
  } catch (const std::exception& e) {
    emit(format_error(id, e.what()));
  }
  return true;
}

void ServiceSession::drain() {
  std::vector<api::SolveHandle> handles;
  {
    std::lock_guard lock(mu_);
    for (auto& [id, handle] : handles_) handles.push_back(handle);
  }
  for (const auto& handle : handles) handle.wait();
}

}  // namespace ffp
