#include "service/service.hpp"

#include <iterator>
#include <utility>

#include "util/strings.hpp"

namespace ffp {

ServiceSession::ServiceSession(ServiceOptions options, Emit emit)
    : options_(std::move(options)), sink_(std::move(emit)) {
  JobSchedulerOptions sched;
  sched.runners = options_.runners;
  sched.budget = options_.budget;
  if (options_.stream_progress) {
    sched.on_improvement = [this](std::uint64_t job, double seconds,
                                  double value) {
      on_improvement(job, seconds, value);
    };
  }
  scheduler_ = std::make_unique<JobScheduler>(std::move(sched));
}

void ServiceSession::emit(const std::string& line) {
  std::lock_guard lock(emit_mu_);
  sink_(line);
}

void ServiceSession::on_improvement(std::uint64_t job, double seconds,
                                    double value) {
  std::string name;
  {
    std::lock_guard lock(mu_);
    const auto it = names_.find(job);
    if (it == names_.end()) return;  // unreachable: named before submitted
    name = it->second;
  }
  emit(format_progress(name, seconds, value));
}

std::uint64_t ServiceSession::lookup(const std::string& id) {
  std::lock_guard lock(mu_);
  const auto it = ids_.find(id);
  if (it == ids_.end()) throw Error("unknown job id '" + id + "'");
  return it->second;
}

std::shared_ptr<const Graph> ServiceSession::load_graph(
    const Request& request) {
  if (request.inline_graph != nullptr) return request.inline_graph;
  if (!options_.allow_files) {
    throw Error("graph_file submissions are disabled on this server "
                "(inline 'graph' only)");
  }
  {
    std::lock_guard lock(mu_);
    const auto it = graph_cache_.find(request.graph_file);
    if (it != graph_cache_.end()) {
      if (auto cached = it->second.lock()) return cached;
    }
  }
  // Parse outside mu_ — runner threads take it for every progress event,
  // and a big (or slow) file must not stall them. A concurrent submit of
  // the same path may parse twice; last one in wins the cache slot, both
  // graphs are equal, and the losers die with their jobs.
  auto graph = std::make_shared<const Graph>(
      read_chaco_file(request.graph_file, options_.limits.graph));
  std::lock_guard lock(mu_);
  // Insert only after a successful read (a failing path must not leave a
  // node behind), and sweep expired entries so a long-running daemon fed
  // many distinct paths cannot grow the cache without bound.
  for (auto it = graph_cache_.begin(); it != graph_cache_.end();) {
    it = it->second.expired() ? graph_cache_.erase(it) : std::next(it);
  }
  graph_cache_[request.graph_file] = graph;
  return graph;
}

bool ServiceSession::handle_line(std::string_view line) {
  if (trim(line).empty()) return true;  // blank lines are keep-alives
  std::string id;
  try {
    Request request = parse_request(line, options_.limits);
    id = request.id;
    switch (request.op) {
      case RequestOp::Submit: {
        request.spec.graph = load_graph(request);
        {
          std::lock_guard lock(mu_);
          if (ids_.count(request.id) > 0) {
            throw Error("duplicate job id '" + request.id + "'");
          }
          // Holding mu_ across submit + map insert means the progress hook
          // (which locks mu_ to resolve the name) cannot observe the gap
          // between the scheduler knowing the job and us knowing its name.
          const std::uint64_t job =
              scheduler_->submit(std::move(request.spec));
          ids_.emplace(request.id, job);
          names_.emplace(job, request.id);
        }
        // Emit outside mu_: a slow client draining the socket must not
        // stall runner threads blocked on the name lookup.
        emit(format_ack(request.id));
        return true;
      }
      case RequestOp::Status:
        emit(format_status(id, scheduler_->status(lookup(id))));
        return true;
      case RequestOp::Cancel:
        if (!scheduler_->cancel(lookup(id))) {
          throw Error("job '" + id + "' is already terminal");
        }
        emit(format_ack(id));
        return true;
      case RequestOp::Result: {
        const JobStatus status = scheduler_->wait(lookup(id));
        if (status.result != nullptr) {
          emit(format_result(id, status));
        } else if (status.state == JobState::Failed) {
          throw Error("job failed: " + status.error);
        } else {
          throw Error("job was cancelled before it ran");
        }
        return true;
      }
      case RequestOp::Shutdown:
        scheduler_->shutdown();
        emit(format_bye());
        return false;
    }
  } catch (const std::exception& e) {
    emit(format_error(id, e.what()));
  }
  return true;
}

void ServiceSession::drain() { scheduler_->drain(); }

}  // namespace ffp
