#include "service/job_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "persist/journal.hpp"
#include "solver/portfolio.hpp"
#include "solver/registry.hpp"
#include "util/timer.hpp"

namespace ffp {

std::string_view to_string(JobState state) {
  switch (state) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Cancelled: return "cancelled";
    case JobState::Failed: return "failed";
  }
  return "unknown";
}

void JobScheduler::ProgressRecorder::start() {
  std::lock_guard lock(mu_);
  AnytimeRecorder::start();
}

void JobScheduler::ProgressRecorder::record(double best_value) {
  Point point{};
  {
    std::lock_guard lock(mu_);
    AnytimeRecorder::record(best_value);
    point = points().back();
  }
  // Outside the recorder lock: the hook may do arbitrary (slow) I/O.
  if (scheduler_->options_.on_improvement) {
    scheduler_->options_.on_improvement(job_->id, point.seconds,
                                        point.best_value);
  }
}

std::vector<AnytimeRecorder::Point> JobScheduler::ProgressRecorder::snapshot()
    const {
  std::lock_guard lock(mu_);
  return points();
}

JobScheduler::JobScheduler(JobSchedulerOptions options)
    : options_(std::move(options)),
      budget_(options_.budget != nullptr ? options_.budget
                                         : &ThreadBudget::process()) {
  const unsigned runners = std::max(1u, options_.runners);
  runners_.reserve(runners);
  for (unsigned i = 0; i < runners; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }
}

JobScheduler::~JobScheduler() { shutdown(); }

std::uint64_t JobScheduler::submit(JobSpec spec) {
  FFP_CHECK(spec.graph != nullptr, "job needs a graph");
  FFP_CHECK(spec.graph->num_vertices() >= 1, "job graph is empty");
  FFP_CHECK(spec.k >= 1, "job needs k >= 1");
  FFP_CHECK(spec.steps >= 0, "job step budget must be >= 0");
  FFP_CHECK(spec.budget_ms >= 0, "job wall-clock budget must be >= 0");
  FFP_CHECK(spec.restarts >= 1, "job needs restarts >= 1");
  FFP_CHECK(spec.queue_ttl_ms >= 0, "job queue TTL must be >= 0");
  // Resolve the method now so a typo fails the submit, not the runner
  // (unless the caller already resolved it — the api engine does).
  SolverPtr solver =
      spec.solver != nullptr ? spec.solver : make_solver(spec.method);

  std::uint64_t id = 0;
  {
    std::lock_guard lock(mu_);
    if (stopping_) {
      throw ServiceError(ErrCode::ShuttingDown,
                         "submit rejected: scheduler is shutting down");
    }
    if (options_.max_queued > 0 && queue_.size() >= options_.max_queued) {
      // Load shedding: reject at the boundary rather than queue without
      // bound. Retryable — the identical resubmission is idempotent.
      throw ServiceError(
          ErrCode::Overloaded,
          "submit rejected: " + std::to_string(queue_.size()) +
              " jobs already queued (max_queued = " +
              std::to_string(options_.max_queued) + ")",
          options_.overload_retry_after_ms);
    }
    id = next_id_++;
    if (options_.journal != nullptr && !spec.journal_payload.empty()) {
      // WAL discipline: the submitted record is durable before the job
      // becomes visible to runners. If the append throws, the submit
      // fails outright; a stray record for a never-queued job only costs
      // an idempotent resubmission on recovery.
      options_.journal->submitted(id, spec.journal_payload);
    }
    auto job = std::make_unique<Job>();
    job->id = id;
    job->spec = std::move(spec);
    job->solver = std::move(solver);
    job->recorder = std::make_unique<ProgressRecorder>(this, job.get());
    queue_.emplace(-job->spec.priority, id);
    jobs_.emplace(id, std::move(job));
  }
  queue_cv_.notify_one();
  return id;
}

bool JobScheduler::cancel(std::uint64_t id) {
  std::unique_lock lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (terminal(job.state)) return false;
  if (job.state == JobState::Queued) {
    queue_.erase({-job.spec.priority, id});
    job.state = JobState::Cancelled;
    ++completed_;
    lock.unlock();
    changed_cv_.notify_all();
    notify_terminal(id);
    return true;
  }
  // Running (or claimed and waiting for budget): the flag stops the solver
  // at its next StopCondition check; the runner finalizes the state.
  job.cancel_flag.store(true, std::memory_order_relaxed);
  return true;
}

JobStatus JobScheduler::status_locked(const Job& job) const {
  JobStatus out;
  out.state = job.state;
  out.seconds =
      job.state == JobState::Running ? job.timer.elapsed_seconds() : job.seconds;
  out.error = job.error;
  out.error_code = job.error_code;
  out.progress = job.recorder->snapshot();
  out.result = job.result;
  return out;
}

JobStatus JobScheduler::status(std::uint64_t id) const {
  std::lock_guard lock(mu_);
  const auto it = jobs_.find(id);
  FFP_CHECK(it != jobs_.end(), "unknown job id ", id);
  return status_locked(*it->second);
}

JobStatus JobScheduler::wait(std::uint64_t id) {
  std::unique_lock lock(mu_);
  const auto it = jobs_.find(id);
  FFP_CHECK(it != jobs_.end(), "unknown job id ", id);
  Job& job = *it->second;
  changed_cv_.wait(lock, [&] { return terminal(job.state); });
  return status_locked(job);
}

std::optional<JobStatus> JobScheduler::wait_for(std::uint64_t id,
                                                double timeout_ms) {
  std::unique_lock lock(mu_);
  const auto it = jobs_.find(id);
  FFP_CHECK(it != jobs_.end(), "unknown job id ", id);
  Job& job = *it->second;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(std::max(0.0, timeout_ms)));
  if (!changed_cv_.wait_until(lock, deadline,
                              [&] { return terminal(job.state); })) {
    return std::nullopt;
  }
  return status_locked(job);
}

void JobScheduler::drain() {
  std::unique_lock lock(mu_);
  changed_cv_.wait(lock, [this] {
    return completed_ == static_cast<std::int64_t>(jobs_.size());
  });
}

void JobScheduler::shutdown() {
  std::vector<std::uint64_t> swept;
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    // Cancel everything still queued; running jobs finish on their own.
    for (const auto& [neg_priority, id] : queue_) {
      (void)neg_priority;
      Job& job = *jobs_.at(id);
      job.state = JobState::Cancelled;
      ++completed_;
      swept.push_back(id);
    }
    queue_.clear();
  }
  queue_cv_.notify_all();
  changed_cv_.notify_all();
  for (const std::uint64_t id : swept) notify_terminal(id);
  for (auto& runner : runners_) {
    if (runner.joinable()) runner.join();
  }
}

std::int64_t JobScheduler::jobs_completed() const {
  std::lock_guard lock(mu_);
  return completed_;
}

void JobScheduler::runner_loop() {
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;  // spurious wakeup
      }
      const auto it = queue_.begin();
      job = jobs_.at(it->second).get();
      queue_.erase(it);
      // Queue TTL: a job that outwaited its deadline expires with a
      // structured error instead of running — by now its caller has given
      // up, and a runner burned on it would only delay live jobs further.
      const double queued_ms = job->queued_timer.elapsed_millis();
      if (job->spec.queue_ttl_ms > 0 && queued_ms > job->spec.queue_ttl_ms) {
        job->state = JobState::Failed;
        job->error_code = ErrCode::QueueExpired;
        job->error = "expired in queue after " +
                     std::to_string(queued_ms) + " ms (queue_ttl_ms = " +
                     std::to_string(job->spec.queue_ttl_ms) + ")";
        job->seconds = 0.0;
        ++completed_;
        lock.unlock();
        changed_cv_.notify_all();
        notify_terminal(job->id);
        continue;
      }
      job->state = JobState::Running;
      job->timer.reset();
    }
    if (options_.journal != nullptr && !job->spec.journal_payload.empty()) {
      // Outside mu_ (the append fsyncs); spec is immutable after submit.
      try {
        options_.journal->started(job->id);
      } catch (const std::exception&) {
        // A failed started record never fails the job — it only widens
        // the recovery window back to "submitted".
      }
    }

    // The runner's own slot: the one blocking wait in the whole budget
    // protocol, safe exactly here because the runner holds nothing while
    // waiting (thread_budget.hpp).
    WorkerLease self = budget_->acquire(1);
    if (job->cancel_flag.load(std::memory_order_relaxed)) {
      std::lock_guard lock(mu_);
      job->state = JobState::Cancelled;
      job->seconds = job->timer.elapsed_seconds();
      ++completed_;
    } else {
      run_job(*job);
    }
    self.release();
    changed_cv_.notify_all();
    notify_terminal(job->id);
  }
}

void JobScheduler::notify_terminal(std::uint64_t id) {
  JobStatus status;
  bool journaled = false;
  {
    std::lock_guard lock(mu_);
    const Job& job = *jobs_.at(id);
    status = status_locked(job);
    journaled =
        options_.journal != nullptr && !job.spec.journal_payload.empty();
  }
  // Order matters: on_terminal persists the engine's durable cache entry
  // FIRST, so by the time the journal's terminal record lands the result
  // is already on disk. A crash between the two resubmits the job on
  // recovery — duplicated work, never lost work.
  if (options_.on_terminal) options_.on_terminal(id, status);
  if (journaled) {
    try {
      options_.journal->terminal(id, std::string(to_string(status.state)));
    } catch (const std::exception&) {
      // Journal damage must not take the scheduler down; the record is
      // re-derived from a resubmission after restart.
    }
  }
}

void JobScheduler::run_job(Job& job) {
  const JobSpec& spec = job.spec;
  SolverRequest request;
  request.k = spec.k;
  request.objective = spec.objective;
  request.seed = spec.seed;
  request.threads = spec.threads;
  request.budget = budget_;
  request.recorder = job.recorder.get();
  request.warm_start = spec.warm_start;
  request.warm_start_value = spec.warm_start_value;
  request.checkpoint_every_ms = spec.checkpoint_every_ms;
  request.checkpoint_sink = spec.checkpoint_sink;
  request.stop = spec.steps > 0 ? StopCondition::after_steps(spec.steps)
                                : StopCondition::after_millis(spec.budget_ms);
  request.stop.set_cancel_flag(&job.cancel_flag);

  std::shared_ptr<const SolverResult> result;
  std::string error;
  try {
    if (spec.restarts > 1 || spec.seed_restart || spec.on_restart_result) {
      // Portfolio multi-start inside the job: restart workers and each
      // restart's intra-run engine all lease from the scheduler's budget,
      // so a portfolio job obeys the same machine-wide cap as any other.
      // Evolve hooks force this path even at restarts=1, so their seeding
      // and feedback contracts hold uniformly.
      PortfolioOptions popt;
      popt.restarts = spec.restarts;
      popt.threads = spec.threads;
      popt.budget = budget_;
      popt.seed_restart = spec.seed_restart;
      popt.on_result = spec.on_restart_result;
      result = std::make_shared<const SolverResult>(
          PortfolioRunner(job.solver, popt).run(*spec.graph, request));
    } else {
      result = std::make_shared<const SolverResult>(
          job.solver->run(*spec.graph, request));
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  std::lock_guard lock(mu_);
  job.seconds = job.timer.elapsed_seconds();
  if (!error.empty()) {
    job.state = JobState::Failed;
    job.error = std::move(error);
    job.error_code = ErrCode::JobFailed;
  } else {
    job.result = std::move(result);
    job.state = job.cancel_flag.load(std::memory_order_relaxed)
                    ? JobState::Cancelled
                    : JobState::Done;
  }
  ++completed_;
}

}  // namespace ffp
