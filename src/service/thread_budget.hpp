// Process-wide worker-thread governor: every parallel client in the repo —
// PortfolioRunner's restart workers, the batched fusion-fission engine's
// speculation workers, and the service JobScheduler's runners — *leases*
// its threads from one ThreadBudget instead of sizing its own pool, so the
// composition of parallel layers can never oversubscribe the machine (the
// PR-3 caveat: R portfolio restarts × T speculation workers used to spawn
// R×T threads on a T-core box).
//
// The protocol is deliberately non-blocking: `lease(want)` grants
// min(want, available) slots — possibly zero — and never waits. A caller
// granted fewer workers than it wanted degrades to narrower parallelism
// (ultimately to running inline on its own thread), which is always
// correct here because every parallel consumer in the repo is
// scheduling-independent: results are byte-identical at any worker count.
// Non-blocking grants are also what makes nesting deadlock-free — a
// portfolio restart that leases speculation workers from inside a leased
// portfolio slot can never wait on capacity its own ancestors hold.
//
// Accounting model: a lease covers *worker threads doing work*. The
// calling thread itself is not counted — it either blocks waiting for its
// workers (portfolio, batched engine) or is itself covered by its parent's
// lease (a scheduler runner executing a solve). So a budget of B bounds
// the number of runnable leased workers at B; `peak_in_use()` records the
// high-water mark, which the service tests assert never exceeds `total()`.
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>

#include "util/check.hpp"

namespace ffp {

class ThreadBudget;

/// RAII grant of `granted()` worker slots; slots return to the budget on
/// destruction. Movable, not copyable. A default-constructed (or moved-
/// from) lease holds nothing and grants 0.
class WorkerLease {
 public:
  WorkerLease() = default;
  WorkerLease(WorkerLease&& other) noexcept
      : budget_(other.budget_), granted_(other.granted_) {
    other.budget_ = nullptr;
    other.granted_ = 0;
  }
  WorkerLease& operator=(WorkerLease&& other) noexcept {
    if (this != &other) {
      release();
      budget_ = other.budget_;
      granted_ = other.granted_;
      other.budget_ = nullptr;
      other.granted_ = 0;
    }
    return *this;
  }
  WorkerLease(const WorkerLease&) = delete;
  WorkerLease& operator=(const WorkerLease&) = delete;
  ~WorkerLease() { release(); }

  unsigned granted() const { return granted_; }

  /// Returns the slots early (idempotent; the destructor calls it too).
  void release();

 private:
  friend class ThreadBudget;
  WorkerLease(ThreadBudget* budget, unsigned granted)
      : budget_(budget), granted_(granted) {}

  ThreadBudget* budget_ = nullptr;
  unsigned granted_ = 0;
};

class ThreadBudget {
 public:
  /// total == 0 means hardware_concurrency (at least 1).
  explicit ThreadBudget(unsigned total = 0);

  unsigned total() const { return total_; }
  unsigned in_use() const;
  unsigned available() const;
  /// High-water mark of in_use() since construction — what the service
  /// tests assert against total() to prove the budget is respected.
  unsigned peak_in_use() const;

  /// Non-blocking: grants min(want, available), possibly 0. Never waits,
  /// so nested leases (portfolio restart → speculation workers) cannot
  /// deadlock; a 0-slot grant means "run inline on your own thread".
  WorkerLease lease(unsigned want);

  /// Blocking: waits until at least one slot is free, then grants
  /// min(want, available) ≥ 1. ONLY for top-level clients that hold no
  /// lease while waiting (the JobScheduler's runners, which block here
  /// before touching a job) — a nested client that blocked could deadlock
  /// on capacity its own ancestors hold, which is why everything below the
  /// scheduler uses the non-blocking lease().
  WorkerLease acquire(unsigned want = 1);

  /// The process-wide budget every CLI-level entry point shares. Defaults
  /// to hardware concurrency; resize it once at startup (before any lease)
  /// with set_process_total().
  static ThreadBudget& process();
  /// Re-sizes the process budget. FFP_CHECKs that nothing is leased.
  static void set_process_total(unsigned total);

 private:
  friend class WorkerLease;
  void give_back(unsigned slots);

  mutable std::mutex mu_;
  std::condition_variable freed_;
  unsigned total_ = 1;
  unsigned in_use_ = 0;
  unsigned peak_ = 0;
};

}  // namespace ffp
