// TcpServer — the service's TCP front end as a library (ffp_serve is a
// thin flag-parsing wrapper around it, and the chaos tests drive it
// in-process). One accept loop, thread-per-connection ServiceSessions over
// one shared ServiceHost, and the failure-hardening policy in one place:
//
//   * Overload shedding: a connection beyond `max_clients` is accepted,
//     told {"event":"error","code":"overloaded","retry_after_ms":...} and
//     closed IMMEDIATELY — it never queues behind live clients, so a
//     full server degrades into fast structured rejections instead of
//     silent connect-then-hang.
//   * Idle reaping: a connection that sends no request for
//     `idle_timeout_ms` is told code "timeout" and closed, so a silent
//     client cannot hold a --max-clients slot forever.
//   * Write deadlines: every response line is bounded by
//     `write_timeout_ms`, so a client that stops reading cannot wedge a
//     session thread in send().
//   * Graceful drain: request_stop() is async-signal-safe (self-pipe) —
//     ffp_serve points SIGTERM/SIGINT at it. The loop then stops
//     accepting, kicks every live connection loose, cancels their jobs
//     (bounded, SessionPolicy::teardown_wait_ms) and shuts the scheduler
//     down: queued work is cancelled, running work finishes early with
//     best-so-far semantics.
//
// A client-requested {"op":"shutdown"} (when the session policy allows
// it) drains the same way — there is exactly one stop path.
#pragma once

#include <atomic>

#include "service/net.hpp"
#include "service/service.hpp"

namespace ffp {

struct TcpServerOptions {
  int port = 0;               ///< 127.0.0.1 port; 0 picks ephemeral
  unsigned max_clients = 8;   ///< live sessions; beyond this, shed
  /// Per-request read deadline: a connection idle this long is reaped
  /// (structured `timeout` error, then close). <= 0 disables reaping.
  double idle_timeout_ms = 30000;
  /// Per-response write deadline (spans all partial sends). <= 0 blocks
  /// forever — only sensible for trusted in-process tests.
  double write_timeout_ms = 10000;
  /// The retry-after hint shed connections are sent.
  double overload_retry_after_ms = 250;
  /// Per-connection policy (shutdown gating, teardown deadline).
  SessionPolicy session;
};

class TcpServer {
 public:
  /// Binds the listener (throws ffp::Error when the port is taken). The
  /// host must outlive the server.
  TcpServer(ServiceHost& host, TcpServerOptions options);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  int port() const { return port_; }

  /// Serves until a stop: request_stop(), or an allowed client shutdown
  /// op. Drains before returning (sessions torn down bounded, scheduler
  /// shut down). Call once.
  void run();

  /// Async-signal-safe stop request: one byte down the self-pipe wakes
  /// the accept loop's poll(). Safe from signal handlers and any thread;
  /// idempotent.
  void request_stop() noexcept;

 private:
  class ConnectionSet;
  void serve_connection(int index, std::shared_ptr<FdHandle> conn);

  ServiceHost& host_;
  TcpServerOptions options_;
  FdHandle listener_;
  int port_ = 0;
  FdHandle stop_read_;   ///< self-pipe read end (polled with the listener)
  FdHandle stop_write_;  ///< self-pipe write end (request_stop writes here)
  std::unique_ptr<ConnectionSet> connections_;
};

}  // namespace ffp
