#include "persist/journal.hpp"

#include <unistd.h>

#include <algorithm>
#include <optional>

#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"

namespace ffp::persist {

namespace {

// Record encodings (the record framing handles lengths, so payloads may
// contain anything, newlines included):
//   "S <id>\n<payload>"   "R <id>"   "T <id> <state>"
std::string encode_submitted(std::uint64_t job, std::string_view payload) {
  std::string r = "S " + std::to_string(job) + "\n";
  r.append(payload);
  return r;
}

std::string encode_started(std::uint64_t job) {
  return "R " + std::to_string(job);
}

std::string encode_terminal(std::uint64_t job, std::string_view state) {
  std::string r = "T " + std::to_string(job) + " ";
  r.append(state);
  return r;
}

std::optional<JournalEvent> decode(const std::string& record) {
  if (record.size() < 3 || record[1] != ' ') return std::nullopt;
  JournalEvent ev;
  std::size_t id_end = std::string::npos;  // Started: id runs to the end
  switch (record[0]) {
    case 'S':
      ev.kind = JournalEventKind::Submitted;
      id_end = record.find('\n', 2);
      break;
    case 'R':
      ev.kind = JournalEventKind::Started;
      break;
    case 'T':
      ev.kind = JournalEventKind::Terminal;
      id_end = record.find(' ', 2);
      break;
    default:
      return std::nullopt;
  }
  const bool delimited = id_end != std::string::npos;
  if (!delimited) id_end = record.size();
  const auto id = parse_int(std::string_view(record).substr(2, id_end - 2));
  if (!id.has_value() || *id < 0) return std::nullopt;
  ev.job = static_cast<std::uint64_t>(*id);
  if (delimited) ev.payload = record.substr(id_end + 1);
  return ev;
}

void fire_crash_point() {
  if (fault::fire(fault::Point::CrashAfterAppend)) {
    // The record IS durable; the process dies before acting on it — the
    // sharpest crash-recovery case. 137 == 128 + SIGKILL, matching what a
    // real kill -9 exit status looks like to the parent.
    ::_exit(137);
  }
}

}  // namespace

Journal::Journal(std::string path) : path_(std::move(path)) {
  JournalReplay rep = replay(path_);
  recovered_ = std::move(rep.unfinished);
  recovered_truncated_ = rep.truncated;
  // Start this process's journal clean: the old records have been turned
  // into the recovered() work list, so keeping them would only make every
  // future replay re-parse dead history.
  write_records_atomic(path_, kJournalVersion, {});
  writer_ = std::make_unique<RecordWriter>(path_, kJournalVersion);
}

void Journal::submitted(std::uint64_t job, std::string_view payload) {
  std::lock_guard lock(mu_);
  writer_->append(encode_submitted(job, payload));
  ++appends_;
  outstanding_.emplace(job, std::string(payload));
  fire_crash_point();
}

void Journal::started(std::uint64_t job) {
  std::lock_guard lock(mu_);
  writer_->append(encode_started(job));
  ++appends_;
  fire_crash_point();
}

void Journal::terminal(std::uint64_t job, std::string_view state) {
  std::lock_guard lock(mu_);
  writer_->append(encode_terminal(job, state));
  ++appends_;
  fire_crash_point();
  outstanding_.erase(job);
  if (outstanding_.empty()) compact_locked();
}

void Journal::compact_locked() {
  // Closing before the atomic rewrite matters: write_records_atomic
  // replaces the inode, and the stale fd would otherwise keep appending
  // to the unlinked old file.
  writer_.reset();
  std::vector<std::string> live;
  live.reserve(outstanding_.size());
  std::vector<std::uint64_t> ids;
  ids.reserve(outstanding_.size());
  for (const auto& [id, payload] : outstanding_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const std::uint64_t id : ids) {
    live.push_back(encode_submitted(id, outstanding_.at(id)));
  }
  write_records_atomic(path_, kJournalVersion, live);
  writer_ = std::make_unique<RecordWriter>(path_, kJournalVersion);
  ++compactions_;
}

std::int64_t Journal::appends() const {
  std::lock_guard lock(mu_);
  return appends_;
}

std::int64_t Journal::compactions() const {
  std::lock_guard lock(mu_);
  return compactions_;
}

std::size_t Journal::outstanding() const {
  std::lock_guard lock(mu_);
  return outstanding_.size();
}

JournalReplay Journal::replay(const std::string& path) {
  JournalReplay out;
  const RecordReadResult raw = read_records(path, kJournalVersion);
  out.truncated = raw.truncated;
  // id -> index into out.unfinished (still-live submitted payloads).
  std::unordered_map<std::uint64_t, std::size_t> live;
  std::vector<std::pair<std::uint64_t, std::string>> submitted_order;
  for (const std::string& record : raw.records) {
    auto ev = decode(record);
    if (!ev.has_value()) {
      // A frame that passed CRC but doesn't parse is a writer bug, not
      // crash damage — but recovery must still limp past it.
      out.truncated = true;
      continue;
    }
    switch (ev->kind) {
      case JournalEventKind::Submitted:
        if (live.find(ev->job) == live.end()) {
          live.emplace(ev->job, submitted_order.size());
          submitted_order.emplace_back(ev->job, ev->payload);
        }
        break;
      case JournalEventKind::Started:
        break;
      case JournalEventKind::Terminal:
        live.erase(ev->job);  // duplicates and unknown ids are no-ops
        break;
    }
    out.events.push_back(std::move(*ev));
  }
  for (const auto& [id, payload] : submitted_order) {
    if (live.find(id) != live.end()) out.unfinished.push_back(payload);
  }
  return out;
}

}  // namespace ffp::persist
