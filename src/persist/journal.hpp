// Write-ahead job journal: the crash-recovery spine of `ffp_serve
// --state-dir`.
//
// Every journaled job leaves three records over its life, each fsync'd
// before the action it describes becomes visible:
//
//   S <id>\n<payload>   submitted — payload is everything needed to
//                       resubmit the job (api::Engine builds and parses
//                       it; the journal treats it as opaque bytes)
//   R <id>              started running
//   T <id> <state>      terminal (done/failed/cancelled/...)
//
// Replay after a crash is tolerant by construction: records ride the
// persist::atomic_file CRC framing, so a tail torn by kill -9 mid-append
// drops at most the record being written, and a submitted record with no
// terminal record marks a job the dead process still owed an answer —
// the resubmission work list.
//
// The journal compacts itself: whenever a terminal record leaves zero
// outstanding jobs, the file is atomically rewritten to just a header, so
// steady-state disk cost is bounded by the live job set, not server
// uptime. Construction replays + compacts, so a process only ever appends
// to a file describing its own jobs.
//
// Thread-safe; every append is durable (fsync) before returning. The
// crash_after_append fault point fires right AFTER an append becomes
// durable — _exit(137) at the worst possible moment is exactly the drill
// tests/test_recovery.cpp runs.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "persist/atomic_file.hpp"

namespace ffp::persist {

inline constexpr std::uint32_t kJournalVersion = 1;

enum class JournalEventKind { Submitted, Started, Terminal };

struct JournalEvent {
  JournalEventKind kind = JournalEventKind::Submitted;
  std::uint64_t job = 0;
  std::string payload;  ///< Submitted: resubmit spec; Terminal: state name
};

struct JournalReplay {
  std::vector<JournalEvent> events;
  bool truncated = false;
  /// Submitted payloads with no terminal record, in submission order.
  std::vector<std::string> unfinished;
};

class Journal {
 public:
  /// Opens (creating) the journal at `path`. Any existing records are
  /// replayed first — tolerantly, see replay() — and the unfinished work
  /// list is kept for recovered(); the file is then compacted to a fresh
  /// header. Throws on a wrong-magic / unknown-version file: that is a
  /// format error, not a crash artifact.
  explicit Journal(std::string path);

  /// The previous process's unfinished submitted payloads (resubmission
  /// work list). Stable after construction.
  const std::vector<std::string>& recovered() const { return recovered_; }
  bool recovered_truncated() const { return recovered_truncated_; }

  void submitted(std::uint64_t job, std::string_view payload);
  void started(std::uint64_t job);
  /// Appends the terminal record; when it leaves no outstanding job the
  /// file is compacted to an empty header. Duplicate terminals (replay
  /// races, defensive callers) are appended but otherwise harmless.
  void terminal(std::uint64_t job, std::string_view state);

  std::int64_t appends() const;
  std::int64_t compactions() const;
  std::size_t outstanding() const;
  const std::string& path() const { return path_; }

  /// Tolerant read of a journal file: a torn tail sets `truncated` and
  /// drops only the damaged frames; duplicate terminal records and
  /// records for unknown jobs are ignored. Missing file -> empty replay.
  /// Wrong magic / unknown version -> throws ffp::Error.
  static JournalReplay replay(const std::string& path);

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::unique_ptr<RecordWriter> writer_;
  /// Journaled jobs without a terminal record yet, payload kept so
  /// compaction can rewrite their submitted records.
  std::unordered_map<std::uint64_t, std::string> outstanding_;
  std::vector<std::string> recovered_;
  bool recovered_truncated_ = false;
  std::int64_t appends_ = 0;
  std::int64_t compactions_ = 0;

  void compact_locked();
};

}  // namespace ffp::persist
