#include "persist/checkpoint.hpp"

#include <cstdio>

#include "persist/atomic_file.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace ffp::persist {

namespace {

std::uint64_t fnv1a(std::string_view data, std::uint64_t h) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= kPrime;
  }
  return h;
}

}  // namespace

std::string keyed_record_path(const std::string& dir, std::string_view stem,
                              std::uint64_t graph_digest,
                              const std::string& key) {
  std::uint64_t h = fnv1a(key, 14695981039346656037ull);
  char digest_bytes[8];
  for (int i = 0; i < 8; ++i) {
    digest_bytes[i] = static_cast<char>((graph_digest >> (8 * i)) & 0xff);
  }
  h = fnv1a(std::string_view(digest_bytes, 8), h);
  char name[32];
  std::snprintf(name, sizeof(name), "-%016llx.rec",
                static_cast<unsigned long long>(h));
  return dir + "/" + std::string(stem) + name;
}

std::string checkpoint_path(const std::string& dir,
                            std::uint64_t graph_digest,
                            const std::string& solve_key) {
  return keyed_record_path(dir, "ck", graph_digest, solve_key);
}

void save_checkpoint(const std::string& path, const Checkpoint& checkpoint) {
  std::string body;
  body.reserve(32 + checkpoint.assignment.size() * 4);
  char head[64];
  std::snprintf(head, sizeof(head), "k %d\nvalue %.17g\n", checkpoint.k,
                checkpoint.value);
  body += head;
  for (const int part : checkpoint.assignment) {
    body += std::to_string(part);
    body += '\n';
  }
  write_records_atomic(path, kCheckpointVersion, {body});
}

std::optional<Checkpoint> load_checkpoint(const std::string& path) {
  RecordReadResult raw;
  try {
    raw = read_records(path, kCheckpointVersion);
  } catch (const Error&) {
    return std::nullopt;  // bad magic / foreign version: start cold
  }
  if (raw.records.size() != 1) return std::nullopt;
  const std::string& body = raw.records.front();

  Checkpoint ck;
  std::size_t pos = 0;
  const auto next_line = [&]() -> std::optional<std::string_view> {
    if (pos >= body.size()) return std::nullopt;
    const std::size_t nl = body.find('\n', pos);
    const std::size_t end = nl == std::string::npos ? body.size() : nl;
    std::string_view line(body.data() + pos, end - pos);
    pos = end + 1;
    return line;
  };

  const auto k_line = next_line();
  if (!k_line.has_value() || !starts_with(*k_line, "k ")) return std::nullopt;
  const auto k = parse_int(k_line->substr(2));
  if (!k.has_value() || *k < 1) return std::nullopt;
  ck.k = static_cast<int>(*k);

  const auto v_line = next_line();
  if (!v_line.has_value() || !starts_with(*v_line, "value ")) {
    return std::nullopt;
  }
  const auto value = parse_double(v_line->substr(6));
  if (!value.has_value()) return std::nullopt;
  ck.value = *value;

  while (const auto line = next_line()) {
    if (line->empty()) continue;
    const auto part = parse_int(*line);
    if (!part.has_value() || *part < 0) return std::nullopt;
    ck.assignment.push_back(static_cast<int>(*part));
  }
  if (ck.assignment.empty()) return std::nullopt;
  return ck;
}

}  // namespace ffp::persist
