// Crash-only file primitives — the ONE path every durable write in the
// repo goes through (journal, checkpoints, persisted cache entries,
// partition files, bench JSON).
//
// Two layers:
//
//   * atomic_write_file(): write to a same-directory temp file, fsync the
//     file, rename() over the target, fsync the directory. A reader (or a
//     process restarted after kill -9) sees either the old contents or the
//     new contents in full — never a torn mix. The torn_checkpoint fault
//     point (FFP_FAULT) bypasses this dance and short-writes straight to
//     the final path, simulating the legacy non-atomic write the record
//     framing below must reject.
//
//   * Framed record files: an 8-byte magic + little-endian u32 version
//     header, then [u32 length][u32 crc32][payload] records. Appends go
//     through RecordWriter (write + fsync per record — write-ahead-log
//     discipline); reads go through read_records(), which stops cleanly at
//     the first torn/corrupt frame (`truncated` flag) instead of throwing:
//     a tail ripped by a crash mid-append loses at most the record being
//     written. A wrong magic or an unknown version DOES throw — that is a
//     format error, not a crash artifact, and must fail loudly.
//
// All paths are plain byte strings; directories are created with
// ensure_dir(). Errors (ENOSPC, EACCES, ...) throw ffp::Error.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ffp::persist {

/// CRC-32 (IEEE 802.3, reflected) of `data`. crc32("123456789") ==
/// 0xCBF43926.
std::uint32_t crc32(std::string_view data);

/// mkdir -p: creates `path` and any missing parents. No-op when it
/// already exists as a directory.
void ensure_dir(const std::string& path);

bool file_exists(const std::string& path);

/// Whole-file read; std::nullopt when the file does not exist. Other I/O
/// errors throw.
std::optional<std::string> read_file(const std::string& path);

/// Best-effort unlink (missing file is fine).
void remove_file(const std::string& path);

/// Regular-file names in `path`, sorted; empty when the directory is
/// missing.
std::vector<std::string> list_dir(const std::string& path);

/// Durable atomic replace of `path` with `contents` (temp + fsync +
/// rename + directory fsync).
void atomic_write_file(const std::string& path, std::string_view contents);

struct RecordReadResult {
  std::vector<std::string> records;
  /// True when the file ended inside a frame or a frame failed its CRC:
  /// everything before the damage is in `records`, the rest is dropped.
  bool truncated = false;
};

/// Append-side of a framed record file. Opens (creating) `path`, writes
/// the header if the file is empty, and validates magic + version if not.
class RecordWriter {
 public:
  RecordWriter(const std::string& path, std::uint32_t version);
  ~RecordWriter();
  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  /// Frames, writes and fsyncs one record; durable on return.
  void append(std::string_view payload);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Tolerant read of a framed record file. Missing file -> empty result.
/// Wrong magic or version != expected_version -> throws ffp::Error.
RecordReadResult read_records(const std::string& path,
                              std::uint32_t expected_version);

/// Atomically replaces `path` with a fresh header + the given records —
/// the compaction primitive (and the writer for single-record files like
/// checkpoints).
void write_records_atomic(const std::string& path, std::uint32_t version,
                          const std::vector<std::string>& records);

}  // namespace ffp::persist
