#include "persist/atomic_file.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "util/check.hpp"
#include "util/fault.hpp"

namespace ffp::persist {

namespace {

// Record-file header: 8 magic bytes + little-endian u32 format version.
// The \r\n in the magic catches text-mode line-ending mangling the same
// way PNG's does.
constexpr char kMagic[8] = {'f', 'f', 'p', 'r', 'e', 'c', '\r', '\n'};
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + 4;
// A frame length beyond this is garbage from a torn tail, not a record.
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

void put_le32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_le32(const char* p) {
  const auto b = [&](int i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

std::string header_bytes(std::uint32_t version) {
  std::string h(kMagic, sizeof(kMagic));
  put_le32(h, version);
  return h;
}

std::string frame(std::string_view payload) {
  FFP_CHECK(payload.size() <= kMaxRecordBytes, "persist: record too large (",
            payload.size(), " bytes)");
  std::string f;
  f.reserve(8 + payload.size());
  put_le32(f, static_cast<std::uint32_t>(payload.size()));
  put_le32(f, crc32(payload));
  f.append(payload);
  return f;
}

std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void write_all(int fd, std::string_view data, const std::string& path) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      FFP_CHECK(false, "persist: write('", path,
                "') failed: ", std::strerror(errno));
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  FFP_CHECK(::fsync(fd) == 0, "persist: fsync('", path,
            "') failed: ", std::strerror(errno));
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  // Some filesystems refuse directory opens; the rename is still ordered
  // after the file fsync, so degrade silently rather than fail the write.
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void ensure_dir(const std::string& path) {
  FFP_CHECK(!path.empty(), "persist: ensure_dir on empty path");
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    pos = path.find('/', pos + 1);
    const std::string prefix =
        pos == std::string::npos ? path : path.substr(0, pos);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0777) == 0 || errno == EEXIST) continue;
    FFP_CHECK(false, "persist: mkdir('", prefix,
              "') failed: ", std::strerror(errno));
  }
  struct stat st{};
  FFP_CHECK(::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode),
            "persist: '", path, "' is not a directory");
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::optional<std::string> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    FFP_CHECK(false, "persist: open('", path,
              "') failed: ", std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      FFP_CHECK(false, "persist: read('", path,
                "') failed: ", std::strerror(err));
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

void remove_file(const std::string& path) { ::unlink(path.c_str()); }

std::vector<std::string> list_dir(const std::string& path) {
  std::vector<std::string> names;
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return names;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (file_exists(path + "/" + name)) names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

void atomic_write_file(const std::string& path, std::string_view contents) {
  if (fault::fire(fault::Point::TornCheckpoint)) {
    // The legacy failure mode this module exists to prevent: a direct
    // overwrite of the final path, truncated halfway — what a crash
    // mid-write leaves behind without the temp+rename dance. Readers must
    // reject it (CRC framing) or see a torn file (plain files).
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0666);
    FFP_CHECK(fd >= 0, "persist: open('", path,
              "') failed: ", std::strerror(errno));
    write_all(fd, contents.substr(0, contents.size() / 2), path);
    ::close(fd);
    return;
  }

  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0666);
  FFP_CHECK(fd >= 0, "persist: open('", tmp,
            "') failed: ", std::strerror(errno));
  write_all(fd, contents, tmp);
  fsync_or_throw(fd, tmp);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    FFP_CHECK(false, "persist: rename('", tmp, "' -> '", path,
              "') failed: ", std::strerror(err));
  }
  fsync_dir(dir_of(path));
}

RecordWriter::RecordWriter(const std::string& path, std::uint32_t version)
    : path_(path) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_APPEND, 0666);
  FFP_CHECK(fd_ >= 0, "persist: open('", path,
            "') failed: ", std::strerror(errno));
  struct stat st{};
  FFP_CHECK(::fstat(fd_, &st) == 0, "persist: fstat('", path,
            "') failed: ", std::strerror(errno));
  if (static_cast<std::size_t>(st.st_size) < kHeaderBytes) {
    // Empty (fresh create) or a header torn by a crash before its fsync:
    // neither can hold a record, so start the file over.
    FFP_CHECK(::ftruncate(fd_, 0) == 0, "persist: ftruncate('", path,
              "') failed: ", std::strerror(errno));
    write_all(fd_, header_bytes(version), path);
    fsync_or_throw(fd_, path);
    fsync_dir(dir_of(path));
    return;
  }
  char head[kHeaderBytes];
  FFP_CHECK(::pread(fd_, head, kHeaderBytes, 0) ==
                static_cast<ssize_t>(kHeaderBytes),
            "persist: pread('", path, "') failed: ", std::strerror(errno));
  FFP_CHECK(std::memcmp(head, kMagic, sizeof(kMagic)) == 0, "persist: '",
            path, "' is not a record file (bad magic)");
  const std::uint32_t found = get_le32(head + sizeof(kMagic));
  FFP_CHECK(found == version, "persist: '", path, "' has format version ",
            found, ", this build writes version ", version);
}

RecordWriter::~RecordWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void RecordWriter::append(std::string_view payload) {
  write_all(fd_, frame(payload), path_);
  fsync_or_throw(fd_, path_);
}

RecordReadResult read_records(const std::string& path,
                              std::uint32_t expected_version) {
  RecordReadResult out;
  const auto contents = read_file(path);
  if (!contents.has_value() || contents->empty()) return out;
  const std::string& data = *contents;
  if (data.size() < kHeaderBytes) {
    out.truncated = true;  // crash between create and header fsync
    return out;
  }
  FFP_CHECK(std::memcmp(data.data(), kMagic, sizeof(kMagic)) == 0,
            "persist: '", path, "' is not a record file (bad magic)");
  const std::uint32_t found = get_le32(data.data() + sizeof(kMagic));
  FFP_CHECK(found == expected_version, "persist: '", path,
            "' has format version ", found, ", this build reads version ",
            expected_version);
  std::size_t pos = kHeaderBytes;
  while (pos + 8 <= data.size()) {
    const std::uint32_t len = get_le32(data.data() + pos);
    const std::uint32_t crc = get_le32(data.data() + pos + 4);
    if (len > kMaxRecordBytes || pos + 8 + len > data.size()) {
      out.truncated = true;
      return out;
    }
    const std::string_view payload(data.data() + pos + 8, len);
    if (crc32(payload) != crc) {
      out.truncated = true;
      return out;
    }
    out.records.emplace_back(payload);
    pos += 8 + len;
  }
  if (pos != data.size()) out.truncated = true;
  return out;
}

void write_records_atomic(const std::string& path, std::uint32_t version,
                          const std::vector<std::string>& records) {
  std::string out = header_bytes(version);
  for (const std::string& r : records) out.append(frame(r));
  atomic_write_file(path, out);
}

}  // namespace ffp::persist
