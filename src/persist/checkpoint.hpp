// Durable anytime-best solve checkpoints.
//
// A checkpoint is the best-at-k partition a metaheuristic has seen so
// far, written atomically (persist::atomic_write_file + CRC framing) so a
// crash mid-write leaves either the previous checkpoint or the new one —
// never a torn file. Loading is crash-only: anything damaged, truncated
// or unparsable reads as "no checkpoint" and the solve simply starts
// cold, because a checkpoint is an optimization, never an obligation.
//
// Files are keyed by graph digest + the spec's canonical checkpoint key
// (api::SolveSpec::checkpoint_key), so a resumed run maps to exactly the
// file its predecessor wrote. The same key scheme is the substrate the
// ROADMAP's elite archive will store populations under.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ffp::persist {

inline constexpr std::uint32_t kCheckpointVersion = 1;

struct Checkpoint {
  int k = 0;
  double value = 0.0;  ///< objective of `assignment` (exact round-trip)
  std::vector<int> assignment;
};

/// Deterministic record-file path for (graph digest, canonical key) under
/// `dir`: "<dir>/<stem>-<fnv1a64(key, digest)>.rec". Any process computes
/// the same path for the same identity — checkpoints use stem "ck", the
/// evolve archive's populations use stem "pop".
std::string keyed_record_path(const std::string& dir, std::string_view stem,
                              std::uint64_t graph_digest,
                              const std::string& key);

/// The checkpoint file for (graph digest, canonical solve key) under
/// `dir`. Deterministic — any process computes the same path.
std::string checkpoint_path(const std::string& dir,
                            std::uint64_t graph_digest,
                            const std::string& solve_key);

/// Atomic durable write. Throws on I/O failure.
void save_checkpoint(const std::string& path, const Checkpoint& checkpoint);

/// std::nullopt when the file is missing, torn, CRC-damaged or
/// unparsable. Never throws for on-disk damage.
std::optional<Checkpoint> load_checkpoint(const std::string& path);

}  // namespace ffp::persist
