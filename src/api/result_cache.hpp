// api::ResultCache — a small thread-safe LRU of finished SolverResults,
// keyed on (graph content digest, canonical SolveSpec). Only deterministic
// solves are cached (SolveSpec::cache_key() is empty otherwise), so a hit
// is byte-for-byte the partition a fresh run would have produced — the
// KaFFPaE-style "repeat tenant" lever: a burst of identical submissions
// costs one solve.
//
// Entries are shared_ptr<const SolverResult>, so a hit costs a refcount
// bump, eviction never invalidates a result a caller still holds, and the
// cache's footprint is bounded by `capacity` results.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "solver/solver.hpp"

namespace ffp::api {

struct CacheCounters {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t entries = 0;
  std::int64_t capacity = 0;
  std::int64_t evictions = 0;  ///< entries dropped by capacity pressure
};

class ResultCache {
 public:
  /// capacity 0 disables the cache: get() always misses without counting,
  /// put() drops.
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  bool enabled() const { return capacity_ > 0; }

  /// Returns the cached result and refreshes its recency, or null. Every
  /// call on an enabled cache counts as a hit or a miss.
  std::shared_ptr<const SolverResult> get(const std::string& key);

  /// Inserts (or refreshes) `result` under `key`, evicting the least
  /// recently used entry when full. Null results and empty keys drop.
  void put(const std::string& key,
           std::shared_ptr<const SolverResult> result);

  CacheCounters counters() const;

  /// Called (outside the cache lock) with the key of each entry dropped by
  /// capacity pressure — not for refreshes or replacements — so a durable
  /// tier (the engine's on-disk cache entries) can drop its copy in step.
  /// Set once at startup, before the cache sees concurrent use.
  void set_eviction_hook(std::function<void(const std::string&)> hook) {
    eviction_hook_ = std::move(hook);
  }

 private:
  using Entry = std::pair<std::string, std::shared_ptr<const SolverResult>>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
  std::int64_t evictions_ = 0;
  std::function<void(const std::string&)> eviction_hook_;
};

}  // namespace ffp::api
