// api::SolveSpec — everything that identifies ONE solve besides the graph:
// registry method spec, k, objective, seed, budget (deterministic steps or
// wall clock), portfolio restarts, intra-run thread want, and queue
// priority. This struct replaces the raw SolverRequest + PortfolioRunner
// wiring every tool, bench and example used to carry: the facade maps it
// onto a service JobSpec, so the CLI, the daemon, and embedded callers all
// run the identical pipeline.
//
// Determinism is part of the spec, not the call site: resolved_steps()
// holds the ONE copy of the old ffp_part rule — whenever parallelism is in
// play (restarts, a thread want, or a threads=/batch= key inside the
// method spec) a metaheuristic's wall clock is replaced by a step budget
// derived from budget_ms, so the partition can never depend on scheduling.
#pragma once

#include <cstdint>
#include <string>

#include "partition/objectives.hpp"
#include "solver/solver.hpp"

namespace ffp::api {

/// One-pass resolution of a SolveSpec's method-dependent facts — computed
/// by SolveSpec::resolve() with a single solver construction, so the
/// submit hot path never re-parses the spec per question it asks.
struct ResolvedSpec {
  SolverPtr solver;              ///< the constructed (validated) solver
  std::string canonical_method;  ///< SolverRegistry::canonical_spec form
  std::int64_t steps = 0;        ///< the budget the solve actually runs under
  bool metaheuristic = false;
  bool deterministic = false;    ///< result is a pure function of the spec
};

struct SolveSpec {
  std::string method = "fusion_fission";  ///< registry spec (solver/registry)
  int k = 2;
  ObjectiveKind objective = ObjectiveKind::MinMaxCut;
  std::uint64_t seed = 1;
  /// Deterministic step budget. 0 = derive one from budget_ms when the
  /// request is parallel (see resolved_steps()), else run on the wall
  /// clock (which forfeits byte-identical results, exactly like the CLI).
  std::int64_t steps = 0;
  double budget_ms = 5000;
  int restarts = 1;      ///< portfolio multi-start; 1 = single run
  unsigned threads = 0;  ///< intra-run worker want, leased from the budget
  int priority = 0;      ///< scheduler priority; higher runs first
  /// Queue TTL: if no runner picked the solve up within this many ms it
  /// expires with a structured QueueExpired error instead of running after
  /// its caller gave up. 0 = no TTL. Like priority, this shapes WHEN work
  /// runs, never its result — it is excluded from the cache key.
  double queue_ttl_ms = 0;
  /// Durable checkpointing (engines with a --state-dir only): > 0 writes
  /// the anytime-best partition atomically at most once per interval,
  /// keyed by graph digest + checkpoint_key(). Pure observation — the
  /// solve's result is unchanged — so it is excluded from the cache key.
  std::int64_t checkpoint_every_ms = 0;
  /// Resume from the durable checkpoint for (graph, checkpoint_key())
  /// when one exists (cold start when none does). The result then depends
  /// on disk state, so a warm-started spec is never cacheable — but it is
  /// guaranteed to never be WORSE than the checkpoint it restored.
  bool warm_start = false;
  /// Evolutionary portfolio (src/evolve/): draw the `restarts` starting
  /// partitions from the engine's elite archive — crossover offspring,
  /// mutated elites, and fresh cold starts — and feed every restart's
  /// result back. Honored for the FF-family methods (fusion_fission,
  /// mlff) on an engine with a non-zero archive; otherwise the job runs
  /// as a plain portfolio. Like warm_start, the result depends on state
  /// outside the spec (the archive), so an evolve spec is never cacheable
  /// — but for a FIXED archive state it stays deterministic at any
  /// thread count (the plan is computed at submit from the spec seed).
  bool evolve = false;

  /// Nominal metaheuristic step rate used to turn budget_ms into a step
  /// budget when determinism requires one (steps overrides).
  static constexpr double kStepsPerMs = 50.0;

  /// Resolves every method-dependent fact in one pass (one solver
  /// construction, reused all the way into the scheduler): the solver
  /// itself, the canonical method, the effective step budget per THE
  /// determinism rule — `steps` when set, else budget_ms * kStepsPerMs
  /// when the spec asks for any parallelism (restarts, a thread want, or
  /// threads=/batch= keys inside `method`) and the method is a
  /// metaheuristic, else 0 (wall clock) — and the determinism verdict.
  /// Throws ffp::Error on specs that do not resolve.
  ResolvedSpec resolve() const;

  /// Convenience forms of resolve() for cold paths and tests.
  std::int64_t resolved_steps() const { return resolve().steps; }
  bool deterministic() const { return resolve().deterministic; }
  std::string canonical_method() const { return resolve().canonical_method; }

  /// The spec half of the result-cache key: canonical method plus every
  /// field that can change the partition. Threads and priority are
  /// deliberately absent — the engine's determinism contract makes results
  /// independent of where and when the work ran — but the serial-vs-batched
  /// engine choice (threads == 0 vs > 0) is included, because a thread
  /// want selects a different (equally deterministic) engine schedule.
  /// Returns "" when the spec is not deterministic (never cacheable), and
  /// when warm_start or evolve is set (the result then depends on the
  /// on-disk checkpoint / the elite archive, which are outside the key).
  std::string cache_key(const ResolvedSpec& resolved) const;
  std::string cache_key() const { return cache_key(resolve()); }

  /// The durable-checkpoint identity of this solve: cache_key minus the
  /// persistence knobs themselves, so the run that WRITES a checkpoint
  /// (warm_start=false) and the run that RESUMES it (warm_start=true) map
  /// to the same file. "" when the spec is not deterministic.
  std::string checkpoint_key(const ResolvedSpec& resolved) const;
};

}  // namespace ffp::api
