// ffp::api — the stable public facade over the whole repository. Prefer
// including this via its stable path:
//
//   #include "ffp/api.hpp"
//
//   ffp::api::Problem problem = ffp::api::Problem::from_file("mesh.graph");
//   ffp::api::SolveSpec spec;           // method, k, objective, seed, budget
//   spec.method = "fusion_fission";
//   spec.k = 32;
//   auto result = ffp::api::Engine::shared().solve(problem, spec);
//
// Problem      — graph from file / inline CSR / named generator, validated
//                through the hardened io limits, content-digested.
// SolveSpec    — registry method spec + k/objective/seed/budget/restarts/
//                threads; one struct instead of SolverRequest +
//                PortfolioRunner wiring at every call site.
// Engine       — async submit/solve over the service JobScheduler and the
//                process ThreadBudget, with an LRU result cache riding on
//                deterministic solves.
// SolveHandle  — wait / poll / cancel (anytime best-so-far) / streamed
//                improvements for one submitted solve.
#pragma once

#include "api/engine.hpp"
#include "api/problem.hpp"
#include "api/result_cache.hpp"
#include "api/solve_spec.hpp"
