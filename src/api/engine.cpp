#include "api/engine.hpp"

#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "evolve/plan.hpp"
#include "persist/checkpoint.hpp"
#include "persist/journal.hpp"
#include "util/strings.hpp"

namespace ffp::api {

namespace {

/// On-disk cache entry format version (persist::read_records framing).
constexpr std::uint32_t kCacheEntryVersion = 1;

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Deterministic file name for one persisted cache entry: any process
/// maps the same key to the same file (the eviction hook relies on it).
std::string cache_entry_name(const std::string& key) {
  return format("e-%016llx.rec",
                static_cast<unsigned long long>(fnv1a64(key)));
}

/// `key=value` lines -> map, splitting at the FIRST '=' (values may
/// contain '='; keys never do). Blank lines are skipped.
std::map<std::string, std::string> parse_payload(const std::string& payload) {
  std::map<std::string, std::string> out;
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto eq = line.find('=');
    FFP_CHECK(eq != std::string::npos && eq > 0,
              "journal payload line is not key=value: ", line);
    out[line.substr(0, eq)] = line.substr(eq + 1);
  }
  return out;
}

const std::string& payload_field(
    const std::map<std::string, std::string>& fields, const char* key) {
  const auto it = fields.find(key);
  FFP_CHECK(it != fields.end(), "journal payload is missing '", key, "'");
  return it->second;
}

}  // namespace

/// The state handles share with their engine: the scheduler, the cache,
/// and the per-job bookkeeping the scheduler hooks dispatch on.
struct SolveHandle::EngineState {
  explicit EngineState(const EngineOptions& options)
      // A state dir implies a result cache (durable entries need an
      // in-memory tier to reload into); an explicit capacity wins.
      : cache(options.cache_capacity == 0 && !options.state_dir.empty()
                  ? kDefaultDurableCacheCapacity
                  : options.cache_capacity),
        state_dir(options.state_dir),
        archive(evolve::ArchiveOptions{
            options.evolve_capacity,
            options.state_dir.empty() ? std::string()
                                      : options.state_dir + "/evolve"}) {
    JobSchedulerOptions sched;
    sched.runners = options.runners;
    sched.budget = options.budget;
    sched.max_queued = options.max_queued;
    sched.overload_retry_after_ms = options.overload_retry_after_ms;
    sched.on_improvement = [this](std::uint64_t job, double seconds,
                                  double value) {
      handle_improvement(job, seconds, value);
    };
    sched.on_terminal = [this](std::uint64_t job, const JobStatus& status) {
      finalize(job, status);
    };
    if (!state_dir.empty()) {
      persist::ensure_dir(state_dir);
      persist::ensure_dir(state_dir + "/cache");
      persist::ensure_dir(state_dir + "/checkpoints");
      persist::ensure_dir(state_dir + "/graphs");
      journal = std::make_unique<persist::Journal>(state_dir + "/journal.rec");
      sched.journal = journal.get();
      cache.set_eviction_hook(
          [dir = state_dir + "/cache"](const std::string& key) {
            persist::remove_file(dir + "/" + cache_entry_name(key));
          });
    }
    scheduler = std::make_unique<JobScheduler>(std::move(sched));
  }

  static constexpr std::size_t kDefaultDurableCacheCapacity = 64;

  struct Pending {
    std::string cache_key;  ///< empty: not cacheable
    /// Problem::from_any form of the graph source, for the durable cache
    /// entry (empty when this job is not persisted).
    std::string graph_source;
    ImprovementFn on_improvement;
    /// Fired exactly once by finalize(), for any terminal state, after
    /// the cache/archive feedback — the async delivery channel the event
    /// loop's sessions use instead of blocking in wait().
    TerminalFn on_terminal;
    /// Archive feedback: Done results admit into this population (every
    /// finished solve grows the archive, evolve-mode or not).
    evolve::PopulationKey population;
    bool feed_archive = false;
  };

  void handle_improvement(std::uint64_t job, double seconds, double value) {
    ImprovementFn fn;
    {
      std::lock_guard lock(mu);
      const auto it = pending.find(job);
      if (it == pending.end() || !it->second.on_improvement) return;
      fn = it->second.on_improvement;
    }
    // Invoked outside mu so a slow consumer stalls only its own runner
    // thread. Safe against unregistration: improvements fire synchronously
    // from inside the solve, strictly before the job's terminal transition
    // — anyone who waited for terminal can never observe an in-flight call.
    fn(seconds, value);
  }

  /// Exactly-once job finalization: feeds the cache and drops the
  /// callbacks. Raced by the scheduler's on_terminal hook AND by any
  /// handle observing a terminal status (so a wait() returning Done is
  /// guaranteed to see the result cached before it returns); the pending
  /// entry is the tie-breaker.
  void finalize(std::uint64_t job, const JobStatus& status) {
    std::string key;
    std::string source;
    TerminalFn done;
    evolve::PopulationKey population;
    bool feed = false;
    {
      std::lock_guard lock(mu);
      const auto it = pending.find(job);
      if (it == pending.end()) return;
      key = std::move(it->second.cache_key);
      source = std::move(it->second.graph_source);
      done = std::move(it->second.on_terminal);
      population = it->second.population;
      feed = it->second.feed_archive;
      pending.erase(it);
    }
    if (status.state == JobState::Done) {
      cache.put(key, status.result);
      persist_cache_entry(key, source, status.result.get());
      if (feed && status.result != nullptr) {
        // Cross-job learning: every finished partition is offered to its
        // population (exact duplicates are rejected there, so the evolve
        // per-restart feedback and this winner feedback never double up).
        archive.admit(population, status.result->best.assignment(),
                      status.result->best_value);
      }
    }
    // After the cache/archive feed: a terminal notification implies the
    // result is observable through the cache. Outside mu — the callback
    // may re-enter the engine (status probes, even submits).
    if (done) done(status);
  }

  /// Durable twin of cache.put(): the finished result as one atomic CRC-
  /// framed file under state_dir/cache. Best-effort — a full disk must
  /// not fail a solve that already succeeded — and ordered BEFORE the
  /// journal's terminal record (scheduler contract), so a terminal record
  /// implies the entry is on disk.
  void persist_cache_entry(const std::string& key, const std::string& source,
                           const SolverResult* result) {
    if (state_dir.empty() || key.empty() || source.empty() ||
        result == nullptr) {
      return;
    }
    std::string body = "key " + key + "\n";
    body += "graph " + source + "\n";
    body += format("value %.17g\n", result->best_value);
    body += format("seconds %.17g\n", result->seconds);
    for (const int p : result->best.assignment()) {
      body += std::to_string(p);
      body += '\n';
    }
    try {
      persist::write_records_atomic(state_dir + "/cache/" +
                                        cache_entry_name(key),
                                    kCacheEntryVersion, {body});
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ffp: cache persist failed (non-fatal): %s\n",
                   e.what());
    }
  }

  /// Startup half: every readable entry under state_dir/cache reloads
  /// into the in-memory cache; anything damaged or stale (graph gone,
  /// digest mismatch) is deleted rather than trusted.
  void load_persisted_cache() {
    if (state_dir.empty() || !cache.enabled()) return;
    const std::string dir = state_dir + "/cache";
    for (const auto& name : persist::list_dir(dir)) {
      const std::string path = dir + "/" + name;
      try {
        load_one_entry(path);
      } catch (const std::exception&) {
        persist::remove_file(path);
      }
    }
  }

  void load_one_entry(const std::string& path) {
    const auto read = persist::read_records(path, kCacheEntryVersion);
    FFP_CHECK(read.records.size() == 1 && !read.truncated,
              "damaged cache entry");
    std::istringstream in(read.records[0]);
    std::string line;
    auto field = [&](const char* prefix) {
      FFP_CHECK(std::getline(in, line) && line.rfind(prefix, 0) == 0,
                "cache entry missing '", prefix, "'");
      return line.substr(std::string_view(prefix).size());
    };
    const std::string key = field("key ");
    const std::string source = field("graph ");
    const double value = std::stod(field("value "));
    const double seconds = std::stod(field("seconds "));
    std::vector<int> parts;
    while (std::getline(in, line)) {
      if (!line.empty()) parts.push_back(std::stoi(line));
    }
    const Problem problem = Problem::from_any(source);
    FFP_CHECK(parts.size() == static_cast<std::size_t>(
                                  problem.graph().num_vertices()),
              "cache entry size mismatch");
    // The key embeds the graph digest; a source file that changed since
    // the entry was written no longer matches and the entry is stale.
    const std::string expect =
        format("g%016llx|", static_cast<unsigned long long>(problem.digest()));
    FFP_CHECK(key.rfind(expect, 0) == 0, "cache entry digest mismatch");
    std::shared_ptr<const Graph> g = problem.share();
    SolverResult res{Partition::from_assignment(*g, parts), value, seconds,
                     {}};
    // Results reference their graph; pin it for the engine's lifetime.
    pinned_graphs.push_back(std::move(g));
    cache.put(key, std::make_shared<const SolverResult>(std::move(res)));
  }

  ResultCache cache;
  std::mutex mu;
  std::map<std::uint64_t, Pending> pending;
  const std::string state_dir;  ///< empty: persistence off
  std::unique_ptr<persist::Journal> journal;
  /// Graphs backing reloaded cache entries (Partition holds a Graph*).
  std::vector<std::shared_ptr<const Graph>> pinned_graphs;
  std::size_t recovered_count = 0;
  /// Declared before the scheduler: portfolio feedback closures hold a raw
  /// pointer to it, so it must outlive the runner threads.
  evolve::EliteArchive archive;
  /// Last member: destroyed (and its runner threads joined) first, so the
  /// hooks above can never fire into a dead EngineState.
  std::unique_ptr<JobScheduler> scheduler;
};

namespace {

bool is_terminal(JobState state) {
  return state == JobState::Done || state == JobState::Cancelled ||
         state == JobState::Failed;
}

}  // namespace

JobStatus SolveHandle::poll() const {
  FFP_CHECK(valid(), "poll on an empty SolveHandle");
  if (cached()) return *immediate_;
  const JobStatus status = impl_->scheduler->status(job_);
  if (is_terminal(status.state)) impl_->finalize(job_, status);
  return status;
}

JobStatus SolveHandle::wait() const {
  FFP_CHECK(valid(), "wait on an empty SolveHandle");
  if (cached()) return *immediate_;
  const JobStatus status = impl_->scheduler->wait(job_);
  impl_->finalize(job_, status);
  return status;
}

std::optional<JobStatus> SolveHandle::wait_for(double timeout_ms) const {
  FFP_CHECK(valid(), "wait_for on an empty SolveHandle");
  if (cached()) return *immediate_;
  const std::optional<JobStatus> status =
      impl_->scheduler->wait_for(job_, timeout_ms);
  if (status.has_value()) impl_->finalize(job_, *status);
  return status;
}

bool SolveHandle::cancel() const {
  FFP_CHECK(valid(), "cancel on an empty SolveHandle");
  if (cached()) return false;
  return impl_->scheduler->cancel(job_);
}

Engine::Engine(EngineOptions options)
    : impl_(std::make_shared<SolveHandle::EngineState>(options)) {
  recover();
}

Engine::~Engine() { impl_->scheduler->shutdown(); }

SolveHandle Engine::submit(const Problem& problem, const SolveSpec& spec,
                           ImprovementFn on_improvement,
                           TerminalFn on_terminal) {
  FFP_CHECK(problem.valid(), "submit needs a valid Problem");

  // One resolution pass answers everything method-dependent (and rejects
  // bad specs here, at the API boundary).
  const ResolvedSpec resolved = spec.resolve();

  std::string key;
  const std::string spec_key = spec.cache_key(resolved);
  if (impl_->cache.enabled() && resolved.deterministic && !spec_key.empty()) {
    key = format("g%016llx|",
                 static_cast<unsigned long long>(problem.digest())) +
          spec_key;
    if (auto hit = impl_->cache.get(key)) {
      auto status = std::make_shared<JobStatus>();
      status->state = JobState::Done;
      status->seconds = 0.0;  // nothing ran; result->seconds has the solve
      status->result = std::move(hit);
      return SolveHandle(impl_, 0, std::move(status));
    }
  }

  JobSpec job;
  job.graph = problem.share();
  job.method = spec.method;
  job.solver = resolved.solver;  // spec resolved once, reused by the runner
  job.k = spec.k;
  job.objective = spec.objective;
  job.seed = spec.seed;
  job.steps = resolved.steps;
  job.budget_ms = spec.budget_ms;
  job.priority = spec.priority;
  job.threads = spec.threads;
  job.restarts = spec.restarts;
  job.queue_ttl_ms = spec.queue_ttl_ms;

  // Evolutionary portfolio wiring (src/evolve/). Only the FF-family
  // methods honor the warm-start/incumbent seeding channels with the
  // never-worsen contract the plan relies on; for anything else an
  // evolve spec degrades to a plain (uncached) portfolio. The plan is
  // computed HERE, from one archive snapshot and the spec seed, so the
  // restart workers only read immutable state — byte-identical at any
  // thread count for a fixed archive.
  const evolve::PopulationKey population{problem.digest(), spec.k,
                                         spec.objective};
  const bool ff_family = resolved.solver->name() == "fusion_fission" ||
                         resolved.solver->name() == "mlff";
  const bool feed_archive =
      impl_->archive.enabled() && resolved.metaheuristic;
  if (spec.evolve && impl_->archive.enabled() && ff_family) {
    auto plan = std::make_shared<const evolve::EvolvePlan>(evolve::plan_evolve(
        impl_->archive, population, spec.restarts, spec.seed,
        /*allow_crossover=*/resolved.solver->name() == "fusion_fission",
        static_cast<std::size_t>(problem.graph().num_vertices())));
    job.seed_restart = [plan, graph = job.graph](int restart,
                                                 SolverRequest& request) {
      evolve::apply_restart_seed(*plan, *graph, restart, request);
    };
    // Raw pointer, not the shared EngineState: the archive outlives the
    // scheduler by member order, and a shared_ptr here would cycle
    // (state -> scheduler -> job -> closure -> state).
    job.on_restart_result = [archive = &impl_->archive, population](
                                int, const SolverResult& result) {
      archive->admit(population, result.best.assignment(),
                     result.best_value);
    };
  }

  // Durable-state wiring — deterministic solves only: a wall-clock run is
  // not reproducible, so journaling its spec or keying a checkpoint on it
  // would promise a recovery nobody can honor.
  std::string graph_source;
  if (impl_->journal != nullptr && resolved.deterministic) {
    graph_source = durable_graph_source(problem);
    job.journal_payload = build_payload(graph_source, spec, resolved);
    if (spec.checkpoint_every_ms > 0 || spec.warm_start) {
      const std::string ckpath = persist::checkpoint_path(
          impl_->state_dir + "/checkpoints", problem.digest(),
          spec.checkpoint_key(resolved));
      if (spec.checkpoint_every_ms > 0) {
        job.checkpoint_every_ms = spec.checkpoint_every_ms;
        job.checkpoint_sink = [ckpath, k = spec.k](
                                  const std::vector<int>& parts,
                                  double value) {
          // Checkpointing is an optimization, never an obligation: a
          // failed write must not fail the solve it observes.
          try {
            persist::save_checkpoint(ckpath,
                                     persist::Checkpoint{k, value, parts});
          } catch (const std::exception&) {
          }
        };
      }
      if (spec.warm_start) {
        auto ck = persist::load_checkpoint(ckpath);
        if (ck.has_value() && ck->k == spec.k &&
            ck->assignment.size() ==
                static_cast<std::size_t>(problem.graph().num_vertices())) {
          job.warm_start = std::make_shared<std::vector<int>>(
              std::move(ck->assignment));
          job.warm_start_value = ck->value;
        }
        // No (usable) checkpoint: cold start, by contract.
      }
    }
  }

  std::uint64_t id = 0;
  {
    // Submit and register under one lock: the scheduler's hooks (which
    // lock the same mutex) cannot observe the gap between the scheduler
    // knowing the job and the engine knowing its callbacks.
    std::lock_guard lock(impl_->mu);
    id = impl_->scheduler->submit(std::move(job));
    impl_->pending.emplace(
        id, SolveHandle::EngineState::Pending{std::move(key),
                                              std::move(graph_source),
                                              std::move(on_improvement),
                                              std::move(on_terminal),
                                              population, feed_archive});
  }
  return SolveHandle(impl_, id, nullptr);
}

/// The Problem::from_any form of a problem's source — what both the
/// journal payload and the durable cache entry store so a fresh process
/// can rebuild the graph. File and generator sources round-trip verbatim;
/// inline graphs are spilled once (atomic, digest-keyed) under
/// state_dir/graphs.
std::string Engine::durable_graph_source(const Problem& problem) {
  const std::string& src = problem.source();
  if (src.rfind("file:", 0) == 0) return src.substr(5);
  if (src.rfind("gen:", 0) == 0) return src.substr(4);
  const std::string path =
      impl_->state_dir + "/graphs/" +
      format("g%016llx.graph",
             static_cast<unsigned long long>(problem.digest()));
  if (!persist::file_exists(path)) {
    std::ostringstream out;
    write_chaco(problem.graph(), out);
    persist::atomic_write_file(path, out.str());
  }
  return path;
}

std::string Engine::build_payload(const std::string& graph_source,
                                  const SolveSpec& spec,
                                  const ResolvedSpec& resolved) {
  std::string p;
  p += "graph=" + graph_source + "\n";
  p += "method=" + spec.method + "\n";
  p += "k=" + std::to_string(spec.k) + "\n";
  // objective_token, not objective_name: the journal payload must hold the
  // spelling objective_from_name accepts, or recover() skips every job.
  p += "objective=" + std::string(objective_token(spec.objective)) + "\n";
  p += "seed=" + std::to_string(spec.seed) + "\n";
  // The RESOLVED step budget, so the resubmission is deterministic even
  // when the original spec derived its steps from budget_ms.
  p += "steps=" + std::to_string(resolved.steps) + "\n";
  p += format("budget_ms=%.17g\n", spec.budget_ms);
  p += "restarts=" + std::to_string(spec.restarts) + "\n";
  p += "threads=" + std::to_string(spec.threads) + "\n";
  p += "priority=" + std::to_string(spec.priority) + "\n";
  p += format("queue_ttl_ms=%.17g\n", spec.queue_ttl_ms);
  p += "checkpoint_every_ms=" + std::to_string(spec.checkpoint_every_ms) +
       "\n";
  p += std::string("warm_start=") + (spec.warm_start ? "1" : "0") + "\n";
  p += std::string("evolve=") + (spec.evolve ? "1" : "0") + "\n";
  return p;
}

void Engine::recover() {
  if (impl_->journal == nullptr) return;
  // Finished results first, so a resubmission whose terminal record was
  // lost (crash between the cache persist and the journal append) is a
  // cache hit instead of a duplicate solve.
  impl_->load_persisted_cache();
  for (const std::string& payload : impl_->journal->recovered()) {
    try {
      const auto f = parse_payload(payload);
      const Problem problem = Problem::from_any(payload_field(f, "graph"));
      SolveSpec spec;
      spec.method = payload_field(f, "method");
      spec.k = std::stoi(payload_field(f, "k"));
      const auto objective = objective_from_name(payload_field(f, "objective"));
      FFP_CHECK(objective.has_value(), "unknown objective in journal payload");
      spec.objective = *objective;
      spec.seed = std::stoull(payload_field(f, "seed"));
      spec.steps = std::stoll(payload_field(f, "steps"));
      spec.budget_ms = std::stod(payload_field(f, "budget_ms"));
      spec.restarts = std::stoi(payload_field(f, "restarts"));
      spec.threads =
          static_cast<unsigned>(std::stoul(payload_field(f, "threads")));
      spec.priority = std::stoi(payload_field(f, "priority"));
      // Deliberately NOT restored: queue_ttl_ms. The original caller's
      // deadline died with the original process; the resubmission runs to
      // warm the durable cache for their retry.
      spec.checkpoint_every_ms =
          std::stoll(payload_field(f, "checkpoint_every_ms"));
      spec.warm_start = payload_field(f, "warm_start") == "1";
      // Tolerant of pre-evolve journals, which have no such field.
      const auto evolve_it = f.find("evolve");
      spec.evolve = evolve_it != f.end() && evolve_it->second == "1";
      submit(problem, spec);
      ++impl_->recovered_count;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ffp: recovery: skipping journaled job: %s\n",
                   e.what());
    }
  }
}

std::size_t Engine::recovered_jobs() const { return impl_->recovered_count; }

ffp::persist::Journal* Engine::journal() { return impl_->journal.get(); }

SolverResult Engine::solve(const Problem& problem, const SolveSpec& spec,
                           ImprovementFn on_improvement) {
  const SolveHandle handle =
      submit(problem, spec, std::move(on_improvement));
  const JobStatus status = handle.wait();
  if (status.state == JobState::Failed) {
    throw Error("solve failed: " + status.error);
  }
  if (status.result == nullptr) {
    throw Error("solve was cancelled before it ran");
  }
  return *status.result;
}

void Engine::drain() {
  impl_->scheduler->drain();
  // The scheduler's drain wakes on the terminal STATE; the runner thread
  // may still be inside its on_terminal hook. Handles finalize on observe
  // (poll/wait); drain has no handle, so finalize the stragglers here —
  // otherwise "drain, then resubmit" could miss a result that is still
  // being cached. The pending map is the exactly-once tie-breaker.
  std::vector<std::uint64_t> ids;
  {
    std::lock_guard lock(impl_->mu);
    ids.reserve(impl_->pending.size());
    for (const auto& [id, entry] : impl_->pending) ids.push_back(id);
  }
  for (const std::uint64_t id : ids) {
    impl_->finalize(id, impl_->scheduler->status(id));
  }
}

CacheCounters Engine::cache_counters() const { return impl_->cache.counters(); }

evolve::ArchiveCounters Engine::archive_counters() const {
  return impl_->archive.counters();
}

std::optional<double> Engine::archive_best(std::uint64_t digest, int k,
                                           ObjectiveKind objective) const {
  return impl_->archive.best_value(
      evolve::PopulationKey{digest, k, objective});
}

bool Engine::archive_admit(std::uint64_t digest, int k,
                           ObjectiveKind objective,
                           std::span<const int> assignment, double value) {
  return impl_->archive.admit(evolve::PopulationKey{digest, k, objective},
                              assignment, value);
}

std::vector<std::pair<evolve::PopulationKey, evolve::Elite>>
Engine::archive_exports() const {
  return impl_->archive.best_elites();
}

JobScheduler& Engine::scheduler() { return *impl_->scheduler; }

ThreadBudget& Engine::budget() { return impl_->scheduler->budget(); }

Engine& Engine::shared() {
  static Engine engine{EngineOptions{}};
  return engine;
}

}  // namespace ffp::api
