#include "api/engine.hpp"

#include <map>
#include <utility>

#include "util/strings.hpp"

namespace ffp::api {

/// The state handles share with their engine: the scheduler, the cache,
/// and the per-job bookkeeping the scheduler hooks dispatch on.
struct SolveHandle::EngineState {
  explicit EngineState(const EngineOptions& options)
      : cache(options.cache_capacity) {
    JobSchedulerOptions sched;
    sched.runners = options.runners;
    sched.budget = options.budget;
    sched.max_queued = options.max_queued;
    sched.overload_retry_after_ms = options.overload_retry_after_ms;
    sched.on_improvement = [this](std::uint64_t job, double seconds,
                                  double value) {
      handle_improvement(job, seconds, value);
    };
    sched.on_terminal = [this](std::uint64_t job, const JobStatus& status) {
      finalize(job, status);
    };
    scheduler = std::make_unique<JobScheduler>(std::move(sched));
  }

  struct Pending {
    std::string cache_key;  ///< empty: not cacheable
    ImprovementFn on_improvement;
  };

  void handle_improvement(std::uint64_t job, double seconds, double value) {
    ImprovementFn fn;
    {
      std::lock_guard lock(mu);
      const auto it = pending.find(job);
      if (it == pending.end() || !it->second.on_improvement) return;
      fn = it->second.on_improvement;
    }
    // Invoked outside mu so a slow consumer stalls only its own runner
    // thread. Safe against unregistration: improvements fire synchronously
    // from inside the solve, strictly before the job's terminal transition
    // — anyone who waited for terminal can never observe an in-flight call.
    fn(seconds, value);
  }

  /// Exactly-once job finalization: feeds the cache and drops the
  /// callbacks. Raced by the scheduler's on_terminal hook AND by any
  /// handle observing a terminal status (so a wait() returning Done is
  /// guaranteed to see the result cached before it returns); the pending
  /// entry is the tie-breaker.
  void finalize(std::uint64_t job, const JobStatus& status) {
    std::string key;
    {
      std::lock_guard lock(mu);
      const auto it = pending.find(job);
      if (it == pending.end()) return;
      key = std::move(it->second.cache_key);
      pending.erase(it);
    }
    if (status.state == JobState::Done) cache.put(key, status.result);
  }

  ResultCache cache;
  std::mutex mu;
  std::map<std::uint64_t, Pending> pending;
  /// Last member: destroyed (and its runner threads joined) first, so the
  /// hooks above can never fire into a dead EngineState.
  std::unique_ptr<JobScheduler> scheduler;
};

namespace {

bool is_terminal(JobState state) {
  return state == JobState::Done || state == JobState::Cancelled ||
         state == JobState::Failed;
}

}  // namespace

JobStatus SolveHandle::poll() const {
  FFP_CHECK(valid(), "poll on an empty SolveHandle");
  if (cached()) return *immediate_;
  const JobStatus status = impl_->scheduler->status(job_);
  if (is_terminal(status.state)) impl_->finalize(job_, status);
  return status;
}

JobStatus SolveHandle::wait() const {
  FFP_CHECK(valid(), "wait on an empty SolveHandle");
  if (cached()) return *immediate_;
  const JobStatus status = impl_->scheduler->wait(job_);
  impl_->finalize(job_, status);
  return status;
}

std::optional<JobStatus> SolveHandle::wait_for(double timeout_ms) const {
  FFP_CHECK(valid(), "wait_for on an empty SolveHandle");
  if (cached()) return *immediate_;
  const std::optional<JobStatus> status =
      impl_->scheduler->wait_for(job_, timeout_ms);
  if (status.has_value()) impl_->finalize(job_, *status);
  return status;
}

bool SolveHandle::cancel() const {
  FFP_CHECK(valid(), "cancel on an empty SolveHandle");
  if (cached()) return false;
  return impl_->scheduler->cancel(job_);
}

Engine::Engine(EngineOptions options)
    : impl_(std::make_shared<SolveHandle::EngineState>(options)) {}

Engine::~Engine() { impl_->scheduler->shutdown(); }

SolveHandle Engine::submit(const Problem& problem, const SolveSpec& spec,
                           ImprovementFn on_improvement) {
  FFP_CHECK(problem.valid(), "submit needs a valid Problem");

  // One resolution pass answers everything method-dependent (and rejects
  // bad specs here, at the API boundary).
  const ResolvedSpec resolved = spec.resolve();

  std::string key;
  if (impl_->cache.enabled() && resolved.deterministic) {
    key = format("g%016llx|",
                 static_cast<unsigned long long>(problem.digest())) +
          spec.cache_key(resolved);
    if (auto hit = impl_->cache.get(key)) {
      auto status = std::make_shared<JobStatus>();
      status->state = JobState::Done;
      status->seconds = 0.0;  // nothing ran; result->seconds has the solve
      status->result = std::move(hit);
      return SolveHandle(impl_, 0, std::move(status));
    }
  }

  JobSpec job;
  job.graph = problem.share();
  job.method = spec.method;
  job.solver = resolved.solver;  // spec resolved once, reused by the runner
  job.k = spec.k;
  job.objective = spec.objective;
  job.seed = spec.seed;
  job.steps = resolved.steps;
  job.budget_ms = spec.budget_ms;
  job.priority = spec.priority;
  job.threads = spec.threads;
  job.restarts = spec.restarts;
  job.queue_ttl_ms = spec.queue_ttl_ms;

  std::uint64_t id = 0;
  {
    // Submit and register under one lock: the scheduler's hooks (which
    // lock the same mutex) cannot observe the gap between the scheduler
    // knowing the job and the engine knowing its callbacks.
    std::lock_guard lock(impl_->mu);
    id = impl_->scheduler->submit(std::move(job));
    impl_->pending.emplace(
        id, SolveHandle::EngineState::Pending{std::move(key),
                                              std::move(on_improvement)});
  }
  return SolveHandle(impl_, id, nullptr);
}

SolverResult Engine::solve(const Problem& problem, const SolveSpec& spec,
                           ImprovementFn on_improvement) {
  const SolveHandle handle =
      submit(problem, spec, std::move(on_improvement));
  const JobStatus status = handle.wait();
  if (status.state == JobState::Failed) {
    throw Error("solve failed: " + status.error);
  }
  if (status.result == nullptr) {
    throw Error("solve was cancelled before it ran");
  }
  return *status.result;
}

void Engine::drain() { impl_->scheduler->drain(); }

CacheCounters Engine::cache_counters() const { return impl_->cache.counters(); }

JobScheduler& Engine::scheduler() { return *impl_->scheduler; }

ThreadBudget& Engine::budget() { return impl_->scheduler->budget(); }

Engine& Engine::shared() {
  static Engine engine{EngineOptions{}};
  return engine;
}

}  // namespace ffp::api
