#include "api/problem.hpp"

#include <bit>
#include <utility>
#include <vector>

#include "atc/core_area.hpp"
#include "graph/generators.hpp"
#include "util/strings.hpp"

namespace ffp::api {

namespace {

/// FNV-1a 64-bit, fed machine words; doubles go in by bit pattern so the
/// digest is exact, not rounded.
struct Fnv {
  std::uint64_t h = 1469598103934665603ull;

  void mix(std::uint64_t x) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (x >> (byte * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void mix(double x) { mix(std::bit_cast<std::uint64_t>(x)); }
};

struct GeneratorArgs {
  std::vector<double> args;

  double at(std::size_t i, const char* what) const {
    FFP_CHECK(i < args.size(), "generator spec is missing argument ", i + 1,
              " (", what, ")");
    return args[i];
  }
  int as_int(std::size_t i, const char* what) const {
    const double v = at(i, what);
    const auto n = static_cast<std::int64_t>(v);
    FFP_CHECK(static_cast<double>(n) == v, "generator argument ", i + 1, " (",
              what, ") must be an integer");
    return static_cast<int>(n);
  }
  std::uint64_t seed(std::size_t i) const {
    if (i >= args.size()) return 1;  // stochastic families default seed
    const auto s = static_cast<std::int64_t>(at(i, "seed"));
    FFP_CHECK(s >= 0, "generator seed must be >= 0");
    return static_cast<std::uint64_t>(s);
  }
};

GeneratorArgs parse_generator_args(std::string_view text) {
  GeneratorArgs out;
  std::size_t i = 0;
  while (i <= text.size()) {
    std::size_t j = text.find(',', i);
    if (j == std::string_view::npos) j = text.size();
    const std::string_view token = trim(text.substr(i, j - i));
    if (!token.empty()) {
      const auto v = parse_double(token);
      FFP_CHECK(v.has_value(), "bad generator argument '", std::string(token),
                "'");
      out.args.push_back(*v);
    }
    i = j + 1;
  }
  return out;
}

Graph make_generated(std::string_view family, const GeneratorArgs& a) {
  if (family == "grid2d") {
    return make_grid2d(a.as_int(0, "rows"), a.as_int(1, "cols"));
  }
  if (family == "grid3d") {
    return make_grid3d(a.as_int(0, "nx"), a.as_int(1, "ny"), a.as_int(2, "nz"));
  }
  if (family == "torus") {
    return make_torus(a.as_int(0, "rows"), a.as_int(1, "cols"));
  }
  if (family == "path") return make_path(a.as_int(0, "n"));
  if (family == "cycle") return make_cycle(a.as_int(0, "n"));
  if (family == "complete") return make_complete(a.as_int(0, "n"));
  if (family == "star") return make_star(a.as_int(0, "leaves"));
  if (family == "barbell") {
    return make_barbell(a.as_int(0, "clique"),
                        a.args.size() > 1 ? a.as_int(1, "bridge") : 1);
  }
  if (family == "caterpillar") {
    return make_caterpillar(a.as_int(0, "spine"), a.as_int(1, "legs"));
  }
  if (family == "geometric") {
    return make_random_geometric(a.as_int(0, "n"), a.at(1, "radius"),
                                 a.seed(2));
  }
  if (family == "powerlaw") {
    return make_power_law(a.as_int(0, "n"), a.at(1, "avg_deg"),
                          a.at(2, "gamma"), a.seed(3));
  }
  if (family == "random") {
    return make_random_graph(a.as_int(0, "n"),
                             static_cast<std::int64_t>(a.at(1, "m")),
                             a.seed(2));
  }
  if (family == "atc") {
    CoreAreaOptions opt;
    opt.seed = a.seed(0);
    if (a.args.size() > 1) opt.n_sectors = a.as_int(1, "sectors");
    if (a.args.size() > 2) opt.n_edges = a.as_int(2, "edges");
    return make_core_area_graph(opt).graph;
  }
  throw Error("unknown generator family '" + std::string(family) +
              "' (grid2d|grid3d|torus|path|cycle|complete|star|barbell|"
              "caterpillar|geometric|powerlaw|random|atc)");
}

bool is_generator_family(std::string_view family) {
  for (const char* known :
       {"grid2d", "grid3d", "torus", "path", "cycle", "complete", "star",
        "barbell", "caterpillar", "geometric", "powerlaw", "random", "atc"}) {
    if (family == known) return true;
  }
  return false;
}

}  // namespace

std::uint64_t graph_digest(const Graph& g) {
  Fnv fnv;
  fnv.mix(static_cast<std::uint64_t>(g.num_vertices()));
  fnv.mix(static_cast<std::uint64_t>(g.num_edges()));
  for (const ArcId x : g.xadj()) fnv.mix(static_cast<std::uint64_t>(x));
  for (const VertexId v : g.adj()) fnv.mix(static_cast<std::uint64_t>(v));
  for (const Weight w : g.arc_weights()) fnv.mix(w);
  for (VertexId v = 0; v < g.num_vertices(); ++v) fnv.mix(g.vertex_weight(v));
  return fnv.h;
}

Problem Problem::from_graph(Graph g) {
  return from_shared(std::make_shared<const Graph>(std::move(g)));
}

Problem Problem::from_shared(std::shared_ptr<const Graph> g,
                             std::string source) {
  FFP_CHECK(g != nullptr, "Problem needs a graph");
  FFP_CHECK(g->num_vertices() >= 1, "Problem graph is empty");
  auto state = std::make_shared<State>();
  state->graph = std::move(g);
  state->source = std::move(source);
  return Problem(std::move(state));
}

Problem Problem::from_shared_with_digest(std::shared_ptr<const Graph> g,
                                         std::uint64_t digest,
                                         std::string source) {
  Problem out = from_shared(std::move(g), std::move(source));
  // Pre-fire the memo so digest() never rescans.
  std::call_once(out.state_->digest_once,
                 [&] { out.state_->digest = digest; });
  return out;
}

Problem Problem::viewing(const Graph& g) {
  // Aliasing shared_ptr with no ownership: share() hands out pointers that
  // never free, which is exactly the documented caller contract.
  return from_shared(std::shared_ptr<const Graph>(
                         std::shared_ptr<const void>(), &g),
                     "view");
}

Problem Problem::from_file(const std::string& path, const IoLimits& limits) {
  return from_shared(
      std::make_shared<const Graph>(read_chaco_file(path, limits)),
      "file:" + path);
}

Problem Problem::generated(std::string_view spec) {
  const std::size_t colon = spec.find(':');
  const std::string_view family = trim(spec.substr(0, colon));
  const std::string_view args_text =
      colon == std::string_view::npos ? std::string_view{}
                                      : spec.substr(colon + 1);
  const Graph g = make_generated(family, parse_generator_args(args_text));
  Problem out = from_shared(std::make_shared<const Graph>(std::move(g)),
                            "gen:" + std::string(trim(spec)));
  return out;
}

Problem Problem::from_any(const std::string& source, const IoLimits& limits) {
  const std::size_t colon = source.find(':');
  if (colon != std::string::npos &&
      is_generator_family(trim(std::string_view(source).substr(0, colon)))) {
    return generated(source);
  }
  return from_file(source, limits);
}

const Graph& Problem::graph() const {
  FFP_CHECK(valid(), "empty Problem");
  return *state_->graph;
}

std::shared_ptr<const Graph> Problem::share() const {
  FFP_CHECK(valid(), "empty Problem");
  return state_->graph;
}

const std::string& Problem::source() const {
  FFP_CHECK(valid(), "empty Problem");
  return state_->source;
}

std::uint64_t Problem::digest() const {
  FFP_CHECK(valid(), "empty Problem");
  std::call_once(state_->digest_once,
                 [&] { state_->digest = graph_digest(*state_->graph); });
  return state_->digest;
}

}  // namespace ffp::api
