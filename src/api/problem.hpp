// api::Problem — the one way a graph enters the facade. A Problem wraps an
// immutable, shareable Graph plus where it came from (file, inline, named
// generator), and lazily computes a content digest over the CSR arrays —
// the graph half of the result-cache key, and the identity concurrent
// sessions share when they submit the same instance.
//
// Every source goes through the hardened entry points: files through the
// untrusted-input Chaco/METIS reader under explicit IoLimits, generators
// through the library's validated constructors. Problems are cheap value
// types (shared_ptr copies); the digest is computed once per underlying
// graph no matter how many copies exist.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace ffp::api {

/// Content digest of a graph: a 64-bit FNV-1a over n, the CSR arrays and
/// both weight lanes. Two graphs with equal digests are treated as equal by
/// the result cache (the usual hashing caveat applies; 64 bits over a
/// cache of tens of entries makes collisions a non-concern).
std::uint64_t graph_digest(const Graph& g);

class Problem {
 public:
  /// An empty problem; valid() is false and graph() throws.
  Problem() = default;

  /// Wraps an existing graph (copied into shared ownership).
  static Problem from_graph(Graph g);
  /// Wraps an already-shared graph without copying.
  static Problem from_shared(std::shared_ptr<const Graph> g,
                             std::string source = "inline");
  /// from_shared with the digest injected instead of recomputed — for
  /// callers that cache graphs across Problems (the service host): the
  /// memoized digest survives as long as the CALLER's cache does, keeping
  /// the "one digest scan per underlying graph" promise even though each
  /// request wraps the graph in a fresh Problem.
  static Problem from_shared_with_digest(std::shared_ptr<const Graph> g,
                                         std::uint64_t digest,
                                         std::string source = "inline");
  /// Non-owning view for synchronous embedding (benches looping over
  /// graphs they own): zero-copy, but the caller must keep `g` alive until
  /// every solve submitted on this Problem is terminal. Prefer from_graph /
  /// from_shared for async use.
  static Problem viewing(const Graph& g);
  /// Reads a Chaco/METIS file through the hardened reader.
  static Problem from_file(const std::string& path,
                           const IoLimits& limits = {});
  /// Builds a named generator instance from a `family:arg,arg,...` spec —
  /// the same families ffp_gen exposes:
  ///   grid2d:R,C        grid3d:X,Y,Z      torus:R,C      path:N
  ///   cycle:N           complete:N        star:LEAVES    barbell:CLIQUE,BRIDGE
  ///   caterpillar:SPINE,LEGS              geometric:N,RADIUS,SEED
  ///   powerlaw:N,AVGDEG,GAMMA,SEED        random:N,M,SEED
  ///   atc:SEED[,SECTORS,EDGES]
  /// Throws ffp::Error on unknown families or malformed arguments.
  static Problem generated(std::string_view spec);
  /// Resolves `source` as a generator spec when its `family:` prefix is a
  /// known family, as a file path otherwise — the CLI's --graph grammar.
  static Problem from_any(const std::string& source,
                          const IoLimits& limits = {});

  bool valid() const { return state_ != nullptr; }
  const Graph& graph() const;
  std::shared_ptr<const Graph> share() const;
  /// Where the graph came from ("file:<path>", "gen:<spec>", "inline").
  const std::string& source() const;
  /// Content digest; computed on first call, cached per underlying graph.
  std::uint64_t digest() const;

 private:
  struct State {
    std::shared_ptr<const Graph> graph;
    std::string source;
    mutable std::once_flag digest_once;
    mutable std::uint64_t digest = 0;
  };

  explicit Problem(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

}  // namespace ffp::api
