#include "api/result_cache.hpp"

namespace ffp::api {

std::shared_ptr<const SolverResult> ResultCache::get(const std::string& key) {
  if (!enabled() || key.empty()) return nullptr;
  std::lock_guard lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::put(const std::string& key,
                      std::shared_ptr<const SolverResult> result) {
  if (!enabled() || key.empty() || result == nullptr) return;
  std::string evicted;
  {
    std::lock_guard lock(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(result);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(result));
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
      evicted = lru_.back().first;
      index_.erase(evicted);
      lru_.pop_back();
      ++evictions_;
    }
  }
  // Outside mu_: the hook may do file I/O (unlinking the durable copy).
  if (!evicted.empty() && eviction_hook_) eviction_hook_(evicted);
}

CacheCounters ResultCache::counters() const {
  std::lock_guard lock(mu_);
  CacheCounters out;
  out.hits = hits_;
  out.misses = misses_;
  out.entries = static_cast<std::int64_t>(lru_.size());
  out.capacity = static_cast<std::int64_t>(capacity_);
  out.evictions = evictions_;
  return out;
}

}  // namespace ffp::api
