// api::Engine — the one async solve facade everything in the repo runs
// through. submit(Problem, SolveSpec) maps the spec onto the service
// JobScheduler (always: the CLI's one-shot solve and a daemon tenant's job
// take the identical code path, lease workers from the same ThreadBudget,
// and honor the same determinism contract) and returns a SolveHandle —
// wait / poll / cancel, with anytime best-so-far on cancel and an optional
// per-solve improvement stream.
//
// A result cache rides on the facade: deterministic solves (step budget,
// or a direct solver) are keyed on (graph content digest, canonical
// SolveSpec) in a small LRU, so repeat submissions cost a lookup instead
// of a solve. Cache hits come back as already-terminal handles.
//
// Lifetime: handles share ownership of the engine internals, so a handle
// outliving its Engine can still be waited on (the engine's destructor
// cancels what is queued and lets running jobs finish, exactly like the
// scheduler it wraps).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "api/problem.hpp"
#include "api/result_cache.hpp"
#include "api/solve_spec.hpp"
#include "evolve/elite_archive.hpp"
#include "service/job_scheduler.hpp"

namespace ffp::persist {
class Journal;  // persist/journal.hpp
}

namespace ffp::api {

struct EngineOptions {
  unsigned runners = 1;  ///< concurrent solves (JobScheduler runners)
  /// Worker governor every solve leases from; null uses the process-wide
  /// ThreadBudget::process().
  ThreadBudget* budget = nullptr;
  std::size_t cache_capacity = 0;  ///< result-cache entries; 0 disables
  /// Bounded submit queue: beyond this many queued solves, submit() throws
  /// ServiceError(Overloaded) with a retry-after hint (load shedding).
  /// 0 = unbounded. Cache hits never count — they are answered inline.
  std::size_t max_queued = 0;
  /// Retry-after hint attached to Overloaded rejections, ms.
  double overload_retry_after_ms = 250;
  /// Durable-state directory (empty = fully in-memory, the historical
  /// behavior, bit-identical and zero-overhead). When set the engine
  /// becomes crash-safe: deterministic solves leave a write-ahead record
  /// in `<dir>/journal.rec` and their finished results as atomic files
  /// under `<dir>/cache/`; solve checkpoints live under
  /// `<dir>/checkpoints/`, inline graphs are spilled to `<dir>/graphs/`.
  /// Construction replays the journal — persisted results reload into the
  /// result cache and unfinished jobs are resubmitted (idempotent: a
  /// resubmission whose result already landed is a cache hit). A state
  /// dir implies a result cache: cache_capacity 0 is bumped to a default
  /// so durability has somewhere to land.
  std::string state_dir;
  /// Elite-archive capacity per (graph digest, k, objective) population
  /// (src/evolve/): every finished Done solve feeds its partition back,
  /// and SolveSpec::evolve portfolios seed from the population. 0 turns
  /// the archive (and evolve mode) off. With a state_dir, populations
  /// persist under `<dir>/evolve/` and survive restarts.
  std::size_t evolve_capacity = 8;
};

/// Per-solve improvement stream: (seconds since the solve started, new
/// best objective value). Called from engine runner threads — must be
/// thread-safe against the caller's own state.
using ImprovementFn = std::function<void(double seconds, double value)>;

/// Per-solve terminal notification: fired exactly once, after the result
/// has been cached and fed to the elite archive, for ANY terminal state
/// (Done, Failed, Cancelled). Called from whichever thread finalizes the
/// job — usually an engine runner, but possibly a handle's poll/wait path
/// — so it must be thread-safe and must not block. Cache hits never fire
/// it (the handle is already terminal at submit; poll it first).
using TerminalFn = std::function<void(const JobStatus& status)>;

class Engine;

/// Async handle on one submitted solve. Cheap to copy; the default-
/// constructed handle is invalid. All methods are thread-safe.
class SolveHandle {
 public:
  SolveHandle() = default;

  bool valid() const { return impl_ != nullptr; }
  /// True when the solve was served from the result cache (already
  /// terminal at submit; job_id() is 0).
  bool cached() const { return immediate_ != nullptr; }
  std::uint64_t job_id() const { return job_; }

  /// Point-in-time status (state, seconds, progress trajectory, result
  /// once terminal).
  JobStatus poll() const;
  /// Blocks until the solve is terminal. Never throws on solver failure —
  /// inspect status.state / status.error (Engine::solve wraps this with
  /// throwing semantics).
  JobStatus wait() const;
  /// Deadline-bounded wait(): the final status when the solve went
  /// terminal within `timeout_ms`, std::nullopt otherwise. Cache hits are
  /// already terminal and always return immediately.
  std::optional<JobStatus> wait_for(double timeout_ms) const;
  /// Queued → removed; running → stopped early with its best-so-far
  /// attached (anytime semantics). False when already terminal or cached.
  bool cancel() const;

 private:
  friend class Engine;
  struct EngineState;
  SolveHandle(std::shared_ptr<EngineState> impl, std::uint64_t job,
              std::shared_ptr<const JobStatus> immediate)
      : impl_(std::move(impl)), job_(job), immediate_(std::move(immediate)) {}

  std::shared_ptr<EngineState> impl_;
  std::uint64_t job_ = 0;
  std::shared_ptr<const JobStatus> immediate_;  ///< cache hits only
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  /// Cancels everything queued, waits for running solves.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Validates and enqueues one solve. Throws ffp::Error on specs that do
  /// not resolve (unknown method, bad options, k < 1, ...) — failures
  /// happen at the API boundary, not inside a runner. `on_improvement`
  /// streams best-so-far improvements for this solve only.
  SolveHandle submit(const Problem& problem, const SolveSpec& spec,
                     ImprovementFn on_improvement = {},
                     TerminalFn on_terminal = {});

  /// submit + wait with throwing semantics: returns the finished result,
  /// throws ffp::Error when the solve failed or was cancelled before
  /// producing a partition.
  SolverResult solve(const Problem& problem, const SolveSpec& spec,
                     ImprovementFn on_improvement = {});

  /// Blocks until every submitted solve is terminal.
  void drain();

  CacheCounters cache_counters() const;
  /// Elite-archive health (admissions, evictions, snapshot hit rate, …).
  evolve::ArchiveCounters archive_counters() const;
  /// Best archived objective value for one population, if any — the
  /// per-digest quality floor status replies report.
  std::optional<double> archive_best(std::uint64_t digest, int k,
                                     ObjectiveKind objective) const;
  /// Offers a foreign partition (an elite migrated from a peer shard) to
  /// the archive under the usual diversity-aware admission rules. Returns
  /// true when the population changed. No-op (false) with the archive off.
  bool archive_admit(std::uint64_t digest, int k, ObjectiveKind objective,
                     std::span<const int> assignment, double value);
  /// Best elite of every non-empty population — what elite migration
  /// ships to peer shards.
  std::vector<std::pair<evolve::PopulationKey, evolve::Elite>>
  archive_exports() const;
  JobScheduler& scheduler();
  ThreadBudget& budget();

  /// Jobs the constructor resubmitted from a recovered journal (0 without
  /// a state dir, or after a clean shutdown).
  std::size_t recovered_jobs() const;
  /// The write-ahead journal; null without a state dir.
  ffp::persist::Journal* journal();

  /// The process-wide engine CLI-style entry points share: one runner over
  /// ThreadBudget::process(), cache disabled. Created on first use.
  static Engine& shared();

 private:
  /// Journal replay half of construction: reload persisted cache entries,
  /// resubmit unfinished journaled jobs (skipping, with a stderr note, any
  /// payload that no longer parses).
  void recover();
  /// The Problem::from_any form of the graph source stored in journal
  /// payloads and cache entries; spills inline graphs to the state dir.
  std::string durable_graph_source(const Problem& problem);
  static std::string build_payload(const std::string& graph_source,
                                   const SolveSpec& spec,
                                   const ResolvedSpec& resolved);

  std::shared_ptr<SolveHandle::EngineState> impl_;
};

}  // namespace ffp::api
