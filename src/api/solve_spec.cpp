#include "api/solve_spec.hpp"

#include "solver/registry.hpp"
#include "util/strings.hpp"

namespace ffp::api {

ResolvedSpec SolveSpec::resolve() const {
  ResolvedSpec out;
  const auto& registry = SolverRegistry::builtin();
  const auto [name, opts_text] = SolverRegistry::split_spec(method);
  const SolverOptions options = SolverOptions::parse(opts_text);
  // THE construction: validates the whole spec — name, option keys,
  // option values — and is reused all the way into the scheduler.
  out.solver = registry.create(name, options);
  out.metaheuristic = out.solver->is_metaheuristic();
  out.canonical_method = SolverRegistry::canonical_join(name, options);
  out.steps = steps;
  if (out.steps == 0 && out.metaheuristic &&
      (restarts > 1 || threads > 0 || options.get_int("threads", 0) > 0 ||
       options.get_int("batch", 0) > 0)) {
    out.steps = static_cast<std::int64_t>(budget_ms * kStepsPerMs);
  }
  // Direct (non-metaheuristic) solvers ignore the stop condition entirely:
  // their result is a pure function of (graph, k, seed, options).
  out.deterministic = out.steps > 0 || !out.metaheuristic;
  return out;
}

std::string SolveSpec::cache_key(const ResolvedSpec& resolved) const {
  // Warm-started and evolve-mode solves depend on state outside the spec
  // (the on-disk checkpoint / the elite archive) — never cacheable.
  if (warm_start || evolve) return {};
  return checkpoint_key(resolved);
}

std::string SolveSpec::checkpoint_key(const ResolvedSpec& resolved) const {
  if (!resolved.deterministic) return {};
  std::string key = resolved.canonical_method;
  key += "|k=" + std::to_string(k);
  key += "|obj=" + std::string(objective_name(objective));
  key += "|seed=" + std::to_string(seed);
  key += "|steps=" + std::to_string(resolved.steps);
  key += "|restarts=" + std::to_string(restarts);
  // threads>0 selects the batched engine (results identical at ANY positive
  // count, but not necessarily to the serial engine's).
  key += threads > 0 ? "|engine=batched" : "|engine=default";
  return key;
}

}  // namespace ffp::api
