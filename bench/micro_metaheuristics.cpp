// Microbenchmarks for the metaheuristic building blocks: percolation,
// SA step throughput, ACO iteration, FF operators.
#include <benchmark/benchmark.h>

#include "core/fusion_fission.hpp"
#include "graph/generators.hpp"
#include "metaheuristics/annealing.hpp"
#include "metaheuristics/ant_colony.hpp"
#include "metaheuristics/percolation.hpp"

namespace {

using namespace ffp;

const Graph& bench_graph() {
  static const Graph g =
      with_random_weights(make_random_geometric(800, 0.055, 3), 1.0, 50.0, 4);
  return g;
}

void BM_PercolationPartition(benchmark::State& state) {
  const auto& g = bench_graph();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    PercolationOptions opt;
    opt.seed = ++seed;
    auto p = percolation_partition(g, 16, opt);
    benchmark::DoNotOptimize(p.edge_cut());
  }
}
BENCHMARK(BM_PercolationPartition);

void BM_PercolationBisect(benchmark::State& state) {
  const auto& g = bench_graph();
  std::vector<VertexId> half;
  for (VertexId v = 0; v < g.num_vertices() / 2; ++v) half.push_back(v);
  Rng rng(5);
  for (auto _ : state) {
    auto side = percolation_bisect(g, half, rng);
    benchmark::DoNotOptimize(side[0]);
  }
}
BENCHMARK(BM_PercolationBisect);

void BM_AnnealingSteps(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto init = percolation_partition(g, 16, {});
  AnnealingOptions opt;
  opt.objective = ObjectiveKind::MinMaxCut;
  SimulatedAnnealing sa(g, 16, opt);
  for (auto _ : state) {
    auto r = sa.run(init, StopCondition::after_steps(20000));
    benchmark::DoNotOptimize(r.best_value);
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_AnnealingSteps);

void BM_AntColonyIterations(benchmark::State& state) {
  const auto& g = bench_graph();
  const auto init = percolation_partition(g, 16, {});
  AntColonyOptions opt;
  opt.objective = ObjectiveKind::MinMaxCut;
  AntColony aco(g, 16, opt);
  for (auto _ : state) {
    auto r = aco.run(init, StopCondition::after_steps(20));
    benchmark::DoNotOptimize(r.best_value);
  }
  state.SetItemsProcessed(state.iterations() * 20);
}
BENCHMARK(BM_AntColonyIterations);

void BM_FusionFissionInitialize(benchmark::State& state) {
  const auto& g = bench_graph();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    FusionFissionOptions opt;
    opt.seed = ++seed;
    FusionFission ff(g, 16, opt);
    auto p = ff.initialize();
    benchmark::DoNotOptimize(p.num_nonempty_parts());
  }
}
BENCHMARK(BM_FusionFissionInitialize);

void BM_FusionFissionSteps(benchmark::State& state) {
  const auto& g = bench_graph();
  FusionFissionOptions opt;
  opt.objective = ObjectiveKind::MinMaxCut;
  for (auto _ : state) {
    FusionFission ff(g, 16, opt);
    auto r = ff.run(StopCondition::after_steps(300));
    benchmark::DoNotOptimize(r.best_value);
  }
  state.SetItemsProcessed(state.iterations() * 300);
}
BENCHMARK(BM_FusionFissionSteps);

}  // namespace
