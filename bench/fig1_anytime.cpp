// Reproduction of Figure 1 (§6): anytime Mcut trajectories of the three
// metaheuristics on the core-area graph (k = 32), against the best
// spectral and multilevel values as horizontal reference lines.
//
// The paper's x-axis runs from 1 s to 60 min on a 3 GHz Pentium 4; the
// default here is FFP_FIG1_BUDGET_MS = 8000 ms with log-spaced checkpoints,
// which preserves the curve shapes (ant colony improves fastest at the
// start; fusion fission starts from the worst initialization and ends
// best — §6's reading of the figure).
#include <cmath>
#include <cstdio>
#include <vector>

#include "atc/core_area.hpp"
#include "benchlib/budget.hpp"
#include "benchlib/methods.hpp"
#include "partition/objectives.hpp"

int main() {
  using namespace ffp;
  const double budget_ms = fig1_budget_ms();
  const std::uint64_t seed = bench_seed();

  std::printf("=== Figure 1: running time of the metaheuristics (Mcut) ===\n");
  std::printf("budget: %.1f s per metaheuristic (FFP_FIG1_BUDGET_MS)\n\n",
              budget_ms / 1000.0);

  const auto core = make_core_area_graph();
  const auto methods = table1_methods();

  // Reference lines: best spectral and best multilevel Mcut (Cut-minimizing
  // tools evaluated under Mcut, exactly like the paper's dashed lines).
  double best_spectral = 1e300, best_multilevel = 1e300;
  for (const auto& m : methods) {
    if (m.is_metaheuristic || m.name.rfind("Linear", 0) == 0 ||
        m.name == "Percolation") {
      continue;
    }
    MethodContext ctx;
    ctx.k = 32;
    ctx.seed = seed;
    const auto p = m.run(core.graph, ctx);
    const double mcut = objective(ObjectiveKind::MinMaxCut).evaluate(p);
    if (m.name.rfind("Multilevel", 0) == 0) {
      best_multilevel = std::min(best_multilevel, mcut);
    } else {
      best_spectral = std::min(best_spectral, mcut);
    }
  }

  // Trajectories.
  const char* names[3] = {"Simulated annealing", "Ant colony",
                          "Fusion Fission"};
  std::vector<AnytimeRecorder> recorders(3);
  for (int i = 0; i < 3; ++i) {
    const auto& m = method_by_name(methods, names[i]);
    MethodContext ctx;
    ctx.k = 32;
    ctx.seed = seed;
    ctx.objective = ObjectiveKind::MinMaxCut;
    ctx.budget_ms = budget_ms;
    ctx.recorder = &recorders[static_cast<std::size_t>(i)];
    m.run(core.graph, ctx);
  }

  // Log-spaced checkpoints like the paper's axis (1s … 60m → scaled).
  std::vector<double> checkpoints;
  const double lo = budget_ms / 1000.0 / 256.0;
  for (double t = lo; t <= budget_ms / 1000.0 * 1.0001; t *= 2.0) {
    checkpoints.push_back(t);
  }

  std::printf("%-10s %-14s %-14s %-14s\n", "time (s)", "annealing",
              "ant colony", "fusion fission");
  for (double t : checkpoints) {
    std::printf("%-10.3f", t);
    for (int i = 0; i < 3; ++i) {
      const double v = recorders[static_cast<std::size_t>(i)].value_at(t);
      if (std::isnan(v)) {
        std::printf(" %-13s", "-");
      } else {
        std::printf(" %-13.2f", v);
      }
    }
    std::printf("\n");
  }
  std::printf("\nreference lines (evaluated under Mcut):\n");
  std::printf("  best spectral   : %.2f\n", best_spectral);
  std::printf("  best multilevel : %.2f\n", best_multilevel);

  std::printf("\nshape checks (paper Fig. 1): ant colony drops fastest in "
              "the first instants\n(percolation start), fusion fission "
              "begins worst (grown from singletons) and\nfinishes best; "
              "the metaheuristics end below the reference lines.\n");
  return 0;
}
