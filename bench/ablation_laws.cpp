// Ablation: the FF laws (§4.1's learned ejection probabilities). The paper
// motivates them ("a memory which updates laws: if the law gives a better
// solution, the process is enforced, else it is weakened") without
// isolating their effect — this bench does.
#include <cstdio>

#include "atc/core_area.hpp"
#include "benchlib/budget.hpp"
#include "ffp/api.hpp"
#include "util/stats.hpp"

int main() {
  using namespace ffp;
  const double budget = table_budget_ms();
  const int trials = 3;

  std::printf("=== Ablation: FF laws on/off (Mcut, k=32, %d seeds x %.1fs) "
              "===\n\n",
              trials, budget / 1000.0);
  const auto core = make_core_area_graph();

  const api::Problem problem = api::Problem::viewing(core.graph);
  for (const bool use_laws : {true, false}) {
    RunningStats stats;
    std::int64_t ejections = 0;
    for (int t = 0; t < trials; ++t) {
      api::SolveSpec spec;
      spec.method =
          use_laws ? "fusion_fission" : "fusion_fission:use_laws=false";
      spec.k = 32;
      spec.objective = ObjectiveKind::MinMaxCut;
      spec.budget_ms = budget;
      spec.seed = bench_seed() + static_cast<std::uint64_t>(t);
      const auto res = api::Engine::shared().solve(problem, spec);
      stats.add(res.best_value);
      ejections += static_cast<std::int64_t>(res.stat("ejections"));
    }
    std::printf("laws %-3s : Mcut mean %8.2f  (min %.2f, max %.2f), "
                "%lld nucleon ejections\n",
                use_laws ? "ON" : "off", stats.mean(), stats.min(),
                stats.max(), static_cast<long long>(ejections));
  }
  std::printf("\nshape check: laws ON should be no worse on average — the "
              "learned ejections\nact as a local repair operator around "
              "each fusion/fission.\n");
  return 0;
}
