// Ablation: the FF scaling function (§4.1). The paper requires energies to
// be comparable across part counts ("after the scaling function … energies
// are the same for the same quality"); this bench compares the binding-
// energy normalization against a naive linear scale and no scaling at all.
#include <cstdio>

#include "atc/core_area.hpp"
#include "benchlib/budget.hpp"
#include "solver/registry.hpp"
#include "util/stats.hpp"

int main() {
  using namespace ffp;
  const double budget = table_budget_ms();
  const int trials = 3;

  std::printf("=== Ablation: FF scaling function (Mcut, k=32, %d seeds x "
              "%.1fs) ===\n\n",
              trials, budget / 1000.0);
  const auto core = make_core_area_graph();

  const struct {
    const char* spec;
    const char* name;
  } variants[] = {
      {"fusion_fission:scaling=binding", "binding-energy"},
      {"fusion_fission:scaling=linear", "linear"},
      {"fusion_fission:scaling=identity", "identity (none)"},
  };
  for (const auto& variant : variants) {
    const auto solver = make_solver(variant.spec);
    RunningStats stats;
    RunningStats visited;  // how many distinct part counts each run explored
    for (int t = 0; t < trials; ++t) {
      SolverRequest request;
      request.k = 32;
      request.objective = ObjectiveKind::MinMaxCut;
      request.stop = StopCondition::after_millis(budget);
      request.seed = bench_seed() + static_cast<std::uint64_t>(t);
      const auto res = solver->run(core.graph, request);
      stats.add(res.best_value);
      visited.add(res.stat("part_counts_visited"));
    }
    std::printf("%-16s : Mcut mean %8.2f (min %.2f, max %.2f), "
                "%4.1f part counts visited\n",
                variant.name, stats.mean(), stats.min(), stats.max(),
                visited.mean());
  }
  std::printf("\nshape check: identity scaling biases the energy toward few "
              "big atoms (raw\nobjective shrinks with part count), so it "
              "should explore k poorly; the\nbinding-energy normalization "
              "keeps exploration centered on the target.\n");
  return 0;
}
