// Ablation: the FF scaling function (§4.1). The paper requires energies to
// be comparable across part counts ("after the scaling function … energies
// are the same for the same quality"); this bench compares the binding-
// energy normalization against a naive linear scale and no scaling at all.
#include <cstdio>

#include "atc/core_area.hpp"
#include "benchlib/budget.hpp"
#include "core/fusion_fission.hpp"
#include "util/stats.hpp"

int main() {
  using namespace ffp;
  const double budget = table_budget_ms();
  const int trials = 3;

  std::printf("=== Ablation: FF scaling function (Mcut, k=32, %d seeds x "
              "%.1fs) ===\n\n",
              trials, budget / 1000.0);
  const auto core = make_core_area_graph();

  const struct {
    ScalingKind kind;
    const char* name;
  } variants[] = {
      {ScalingKind::BindingEnergy, "binding-energy"},
      {ScalingKind::Linear, "linear"},
      {ScalingKind::Identity, "identity (none)"},
  };
  for (const auto& variant : variants) {
    RunningStats stats;
    RunningStats visited;  // how many distinct part counts each run explored
    for (int t = 0; t < trials; ++t) {
      FusionFissionOptions opt;
      opt.objective = ObjectiveKind::MinMaxCut;
      opt.scaling = variant.kind;
      opt.seed = bench_seed() + static_cast<std::uint64_t>(t);
      FusionFission ff(core.graph, 32, opt);
      const auto res = ff.run(StopCondition::after_millis(budget));
      stats.add(res.best_value);
      visited.add(static_cast<double>(res.best_by_part_count.size()));
    }
    std::printf("%-16s : Mcut mean %8.2f (min %.2f, max %.2f), "
                "%4.1f part counts visited\n",
                variant.name, stats.mean(), stats.min(), stats.max(),
                visited.mean());
  }
  std::printf("\nshape check: identity scaling biases the energy toward few "
              "big atoms (raw\nobjective shrinks with part count), so it "
              "should explore k poorly; the\nbinding-energy normalization "
              "keeps exploration centered on the target.\n");
  return 0;
}
