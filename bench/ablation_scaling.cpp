// Ablation: the FF scaling function (§4.1). The paper requires energies to
// be comparable across part counts ("after the scaling function … energies
// are the same for the same quality"); this bench compares the binding-
// energy normalization against a naive linear scale and no scaling at all.
#include <cstdio>

#include "atc/core_area.hpp"
#include "benchlib/budget.hpp"
#include "ffp/api.hpp"
#include "util/stats.hpp"

int main() {
  using namespace ffp;
  const double budget = table_budget_ms();
  const int trials = 3;

  std::printf("=== Ablation: FF scaling function (Mcut, k=32, %d seeds x "
              "%.1fs) ===\n\n",
              trials, budget / 1000.0);
  const auto core = make_core_area_graph();

  const struct {
    const char* spec;
    const char* name;
  } variants[] = {
      {"fusion_fission:scaling=binding", "binding-energy"},
      {"fusion_fission:scaling=linear", "linear"},
      {"fusion_fission:scaling=identity", "identity (none)"},
  };
  const api::Problem problem = api::Problem::viewing(core.graph);
  for (const auto& variant : variants) {
    RunningStats stats;
    RunningStats visited;  // how many distinct part counts each run explored
    for (int t = 0; t < trials; ++t) {
      api::SolveSpec spec;
      spec.method = variant.spec;
      spec.k = 32;
      spec.objective = ObjectiveKind::MinMaxCut;
      spec.budget_ms = budget;
      spec.seed = bench_seed() + static_cast<std::uint64_t>(t);
      const auto res = api::Engine::shared().solve(problem, spec);
      stats.add(res.best_value);
      visited.add(res.stat("part_counts_visited"));
    }
    std::printf("%-16s : Mcut mean %8.2f (min %.2f, max %.2f), "
                "%4.1f part counts visited\n",
                variant.name, stats.mean(), stats.min(), stats.max(),
                visited.mean());
  }
  std::printf("\nshape check: identity scaling biases the energy toward few "
              "big atoms (raw\nobjective shrinks with part count), so it "
              "should explore k poorly; the\nbinding-energy normalization "
              "keeps exploration centered on the target.\n");
  return 0;
}
