// Microbenchmarks for the spectral substrate: Laplacian apply, Lanczos,
// SYMMLQ-family solves, RQI refinement.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "linalg/lanczos.hpp"
#include "linalg/rqi.hpp"
#include "linalg/symmlq.hpp"
#include "spectral/fiedler.hpp"
#include "spectral/laplacian.hpp"
#include "util/rng.hpp"

namespace {

using namespace ffp;

void BM_LaplacianApply(benchmark::State& state) {
  const auto g = make_grid2d(60, 60);
  const LaplacianOperator op(g);
  std::vector<double> x(static_cast<std::size_t>(g.num_vertices()), 1.0);
  std::vector<double> y(x.size());
  Rng rng(3);
  for (auto& xi : x) xi = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    op.apply(x, y);
    benchmark::DoNotOptimize(y[0]);
  }
  state.SetItemsProcessed(state.iterations() * g.num_arcs());
}
BENCHMARK(BM_LaplacianApply);

void BM_LanczosFiedler(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto g = make_grid2d(side, side);
  for (auto _ : state) {
    FiedlerOptions opt;
    opt.engine = FiedlerEngine::Lanczos;
    auto r = fiedler_vectors(g, opt);
    benchmark::DoNotOptimize(r.values[0]);
  }
}
BENCHMARK(BM_LanczosFiedler)->Arg(16)->Arg(28);

void BM_MultilevelRqiFiedler(benchmark::State& state) {
  const int side = static_cast<int>(state.range(0));
  const auto g = make_grid2d(side, side);
  for (auto _ : state) {
    FiedlerOptions opt;
    opt.engine = FiedlerEngine::MultilevelRqi;
    auto r = fiedler_vectors(g, opt);
    benchmark::DoNotOptimize(r.values[0]);
  }
}
BENCHMARK(BM_MultilevelRqiFiedler)->Arg(16)->Arg(28);

void BM_SymmlqSolve(benchmark::State& state) {
  const auto g = make_grid2d(30, 30);
  const LaplacianOperator op(g);
  Rng rng(5);
  std::vector<double> b(static_cast<std::size_t>(g.num_vertices()));
  for (auto& bi : b) bi = rng.uniform(-1.0, 1.0);
  // Orthogonalize against the kernel so the system is consistent.
  double mean = 0.0;
  for (double bi : b) mean += bi;
  mean /= static_cast<double>(b.size());
  for (auto& bi : b) bi -= mean;
  for (auto _ : state) {
    SymmlqOptions opt;
    opt.shift = -0.5;  // (L + 0.5 I): SPD, definite solve
    opt.tolerance = 1e-8;
    auto r = symmlq_solve(op, b, opt);
    benchmark::DoNotOptimize(r.x[0]);
  }
}
BENCHMARK(BM_SymmlqSolve);

void BM_RqiRefine(benchmark::State& state) {
  const auto g = make_grid2d(24, 24);
  const LaplacianOperator op(g);
  FiedlerOptions lopt;
  lopt.tolerance = 1e-2;  // rough start
  const auto rough = fiedler_vectors(g, lopt);
  std::vector<std::vector<double>> deflate{
      trivial_eigenvector(g, SpectralProblem::Combinatorial)};
  for (auto _ : state) {
    auto r = rqi_refine(op, rough.vectors[0], {}, deflate);
    benchmark::DoNotOptimize(r.value);
  }
}
BENCHMARK(BM_RqiRefine);

}  // namespace
