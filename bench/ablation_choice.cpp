// Parameter-sensitivity bench: the paper counts parameters per method (§6)
// and notes FF's choice function "can be customized". This sweeps the
// (k, r) parameters of α(t) for FF and tmax for SA — the tuning story
// behind Table 1.
#include <cstdio>

#include "atc/core_area.hpp"
#include "benchlib/budget.hpp"
#include "ffp/api.hpp"
#include "util/strings.hpp"

int main() {
  using namespace ffp;
  const double budget = table_budget_ms();

  const auto core = make_core_area_graph();

  std::printf("=== FF choice-function sweep: slope (paper's k) x offset "
              "(paper's r) ===\n");
  std::printf("Mcut, k=32, %.1fs each\n\n", budget / 1000.0);
  std::printf("%8s", "");
  for (double offset : {0.1, 0.25, 0.5}) std::printf("  r=%-8.2f", offset);
  std::printf("\n");
  const api::Problem problem = api::Problem::viewing(core.graph);
  for (double slope : {1.0, 4.0, 12.0}) {
    std::printf("k=%-6.1f", slope);
    for (double offset : {0.1, 0.25, 0.5}) {
      api::SolveSpec spec;
      spec.method = format("fusion_fission:choice_slope=%g,choice_offset=%g",
                           slope, offset);
      spec.k = 32;
      spec.objective = ObjectiveKind::MinMaxCut;
      spec.budget_ms = budget;
      spec.seed = bench_seed();
      const auto res = api::Engine::shared().solve(problem, spec);
      std::printf("  %-10.2f", res.best_value);
    }
    std::printf("\n");
  }

  std::printf("\n=== SA tmax sweep (its single tuned parameter, §6) ===\n\n");
  for (double tmax : {0.0 /*auto*/, 1e-3, 1e-1, 10.0}) {
    api::SolveSpec spec;
    spec.method = format("annealing:tmax=%g", tmax);
    spec.k = 32;
    spec.objective = ObjectiveKind::MinMaxCut;
    spec.budget_ms = budget;
    spec.seed = bench_seed();
    const auto res = api::Engine::shared().solve(problem, spec);
    if (tmax == 0.0) {
      std::printf("tmax auto-calibrated : Mcut %8.2f\n", res.best_value);
    } else {
      std::printf("tmax %-15.3f : Mcut %8.2f\n", tmax, res.best_value);
    }
  }
  std::printf("\nshape check: FF is robust across a wide (k, r) region "
              "(the paper tuned by\nhand); SA degrades when tmax is far "
              "from the move-delta scale, which is why\nthe library "
              "auto-calibrates it.\n");
  return 0;
}
