// Performance suite: the recorded point on the repo's perf trajectory.
//
// Times the fusion-fission hot paths — Algorithm 2 initialization from
// singletons, Algorithm 1 step throughput, and end-to-end solves — plus
// simulated-annealing step throughput and k-way FM refinement across the
// generator families at several (n, k) points, and emits the results as
// machine-readable JSON (default BENCH_ffp.json) for scripts/bench_diff.py
// to hold future PRs against.
//
//   $ ./bench_perf_suite                # full suite (~1 min), BENCH_ffp.json
//   $ ./bench_perf_suite --quick       # CI smoke sizes (a few seconds)
//   $ ./bench_perf_suite --out my.json
//
// Metric naming: <metric>/<family>/n<verts>[/k<parts>]. Direction is
// encoded in the metric name: *_per_sec is higher-is-better, *_sec is
// lower-is-better — bench_diff.py keys off the suffix.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <string_view>
#include <utility>
#include <vector>

#include "benchlib/budget.hpp"
#include "benchlib/table.hpp"
#include "core/fusion_fission.hpp"
#include "ffp/api.hpp"
#include "graph/generators.hpp"
#include "metaheuristics/annealing.hpp"
#include "metaheuristics/percolation.hpp"
#include "multilevel/mlff.hpp"
#include "net/event_loop.hpp"
#include "persist/atomic_file.hpp"
#include "service/net.hpp"
#include "service/server.hpp"
#include "service/service.hpp"
#include "persist/checkpoint.hpp"
#include "refine/kway_fm.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace {

using namespace ffp;

struct Metrics {
  std::vector<std::pair<std::string, double>> values;  // insertion-ordered

  void add(std::string name, double value) {
    values.emplace_back(std::move(name), value);
  }

  void write_json(const std::string& path, bool quick) const {
    // Atomic replace: an interrupted bench run leaves the previous
    // recording intact instead of a half-written JSON bench_diff.py
    // chokes on.
    std::string out = "{\n";
    out += "  \"bench\": \"ffp_perf_suite\",\n";
    out += "  \"schema\": 1,\n";
    out += std::string("  \"quick\": ") + (quick ? "true" : "false") + ",\n";
    out += "  \"metrics\": {\n";
    for (std::size_t i = 0; i < values.size(); ++i) {
      out += format("    \"%s\": %.6g%s\n", values[i].first.c_str(),
                    values[i].second, i + 1 < values.size() ? "," : "");
    }
    out += "  }\n}\n";
    persist::atomic_write_file(path, out);
  }
};

struct Family {
  const char* name;
  Graph (*make)(int n, std::uint64_t seed);
};

Graph grid_of(int n, std::uint64_t) {
  int side = 1;
  while (side * side < n) ++side;
  return make_grid2d(side, side);
}
Graph torus_of(int n, std::uint64_t) {
  int side = 2;
  while (side * side < n) ++side;
  return make_torus(side, side);
}
Graph geometric_of(int n, std::uint64_t seed) {
  // Radius ~ sqrt(12/n) keeps the average degree near constant as n grows.
  return make_random_geometric(n, std::sqrt(12.0 / n), seed);
}
Graph powerlaw_of(int n, std::uint64_t seed) {
  return make_power_law(n, 6.0, 2.5, seed);
}

constexpr Family kFamilies[] = {
    {"grid", grid_of},
    {"torus", torus_of},
    {"geometric", geometric_of},
    {"powerlaw", powerlaw_of},
};

std::string point_name(const char* metric, const char* family, VertexId n,
                       int k = -1, int threads = -1) {
  std::string out = std::string(metric) + "/" + family + "/n" + std::to_string(n);
  if (k >= 0) out += "/k" + std::to_string(k);
  if (threads >= 0) out += "/t" + std::to_string(threads);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.flag("out", "BENCH_ffp.json", "output JSON path")
      .flag("seed", "2006", "bench seed")
      .flag("reps", "3", "repetitions per timed metric (best kept)")
      .toggle("quick", "CI smoke sizes (a few seconds total)");
  args.parse(argc, argv);
  const bool quick = args.get_bool("quick");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const int reps = std::max(1, quick ? 1 : static_cast<int>(args.get_int("reps")));
  // Best-of-N wall time: the minimum over repetitions is the least
  // contended measurement — the one that reflects the code, not the
  // neighbors on the machine.
  const auto best_seconds = [reps](auto&& body) {
    double best = std::numeric_limits<double>::infinity();
    for (int r = 0; r < reps; ++r) best = std::min(best, timed_seconds(body));
    return best;
  };

  Metrics metrics;
  AsciiTable table({"metric", "value", "unit"});
  auto record = [&](const std::string& name, double value, const char* unit) {
    metrics.add(name, value);
    table.add_row({name, fmt1(value), unit});
  };

  // -------------------------------------------------- step throughput ----
  // Algorithm 1 steps/sec at k = 64 on every family, plus a k = 128 point.
  // Init time is measured separately and subtracted so the metric isolates
  // the step loop (same seed => identical Algorithm 2 work).
  {
    struct Point {
      int n, k;
      std::int64_t steps;
    };
    const std::vector<Point> points =
        quick ? std::vector<Point>{{1024, 64, 3000}}
              : std::vector<Point>{{4096, 64, 30000}, {16384, 128, 30000}};
    for (const auto& pt : points) {
      for (const auto& family : kFamilies) {
        const Graph g = family.make(pt.n, seed);
        FusionFissionOptions opt;
        opt.seed = seed;
        FusionFission ff(g, pt.k, opt);
        const double init_sec = best_seconds([&] { ff.initialize(); });
        FusionFission timed(g, pt.k, opt);
        const double run_sec = best_seconds(
            [&] { timed.run(StopCondition::after_steps(pt.steps)); });
        const double step_sec = std::max(run_sec - init_sec, 1e-9);
        record(point_name("ff_steps_per_sec", family.name, g.num_vertices(),
                          pt.k),
               static_cast<double>(pt.steps) / step_sec, "steps/s");
        record(point_name("ff_init_sec", family.name, g.num_vertices()),
               init_sec, "s");
      }
    }
  }

  // ------------------------------------------------- large-n init time ----
  // Algorithm 2 from n singleton atoms — the startup path the issue calls
  // out as O(n^2) pre-tracker. Mesh families only (generator cost itself is
  // negligible there).
  {
    const std::vector<int> sizes =
        quick ? std::vector<int>{10000} : std::vector<int>{102400};
    for (int n : sizes) {
      const Graph g = grid_of(n, seed);
      FusionFissionOptions opt;
      opt.seed = seed;
      FusionFission ff(g, 64, opt);
      const double init_sec = best_seconds([&] { ff.initialize(); });
      record(point_name("ff_init_sec", "grid", g.num_vertices()), init_sec,
             "s");
    }
  }

  // ------------------------------------------ SA step throughput ----------
  {
    const int n = quick ? 1024 : 4096;
    const std::int64_t steps = quick ? 50000 : 400000;
    const Graph g = grid_of(n, seed);
    PercolationOptions popt;
    popt.seed = seed;
    const auto init = percolation_partition(g, 64, popt);
    AnnealingOptions opt;
    opt.seed = seed;
    SimulatedAnnealing sa(g, 64, opt);
    const double sec = best_seconds(
        [&] { sa.run(init, StopCondition::after_steps(steps)); });
    record(point_name("sa_steps_per_sec", "grid", g.num_vertices(), 64),
           static_cast<double>(steps) / std::max(sec, 1e-9), "steps/s");
  }

  // ------------------------------------------------- k-way FM refine ------
  {
    const int n = quick ? 1024 : 4096;
    const Graph g = grid_of(n, seed);
    PercolationOptions popt;
    popt.seed = seed;
    auto p = percolation_partition(g, 64, popt);
    KwayFmOptions fm;
    const double sec = best_seconds([&] {
      auto copy = p;
      Rng rng(seed);
      kway_fm_refine(copy, objective(ObjectiveKind::Cut), fm, rng);
    });
    record(point_name("fm_refine_sec", "grid", g.num_vertices(), 64), sec,
           "s");
  }

  // ------------------------------------------------ end-to-end solve ------
  // Full FusionFission::run (Algorithm 2 + Algorithm 1) under a step
  // budget: the wall clock a caller actually pays per solve.
  {
    struct Point {
      const char* family;
      int n, k;
      std::int64_t steps;
    };
    const std::vector<Point> points =
        quick ? std::vector<Point>{{"grid", 1024, 32, 4000}}
              : std::vector<Point>{{"grid", 2500, 32, 20000},
                                   {"geometric", 2500, 32, 20000}};
    for (const auto& pt : points) {
      const Family* family = nullptr;
      for (const auto& f : kFamilies) {
        if (std::string_view(f.name) == pt.family) family = &f;
      }
      const Graph g = family->make(pt.n, seed);
      FusionFissionOptions opt;
      opt.seed = seed;
      FusionFission ff(g, pt.k, opt);
      double best_value = 0.0;
      const double sec = best_seconds([&] {
        best_value = ff.run(StopCondition::after_steps(pt.steps)).best_value;
      });
      record(point_name("ff_e2e_sec", pt.family, g.num_vertices(), pt.k), sec,
             "s");
      record(point_name("ff_e2e_mcut", pt.family, g.num_vertices(), pt.k),
             best_value, "obj");

      // checkpoint_overhead axis: the identical solve with a REAL durable
      // checkpoint sink armed at 250 ms (atomic temp+fsync+rename per
      // improvement flush, exactly the engine's --state-dir path).
      // Disabled checkpointing is structurally zero-cost — the engine
      // checks one bool per 64 steps only when armed, so the baseline row
      // above is byte-identical to pre-persistence builds; this row bounds
      // what enabling costs (the <2% gate bench_diff.py holds it to).
      {
        FusionFissionOptions copt;
        copt.seed = seed;
        copt.checkpoint_every_ms = 250;
        const std::string ckpath =
            std::string("bench_ckpt_") + pt.family + ".rec";
        copt.checkpoint_sink = [&ckpath, k = pt.k](
                                   const std::vector<int>& parts,
                                   double value) {
          persist::save_checkpoint(ckpath,
                                   persist::Checkpoint{k, value, parts});
        };
        FusionFission ckff(g, pt.k, copt);
        const double ck_sec = best_seconds(
            [&] { ckff.run(StopCondition::after_steps(pt.steps)); });
        persist::remove_file(ckpath);
        record(point_name("ff_e2e_ckpt_sec", pt.family, g.num_vertices(),
                          pt.k),
               ck_sec, "s");
      }
    }
  }

  // --------------------------------------- batched engine: threads axis ---
  // End-to-end batched fusion-fission solves across worker counts — the
  // intra-run parallel engine, as opposed to the between-restart portfolio.
  // The suite also *verifies* the engine's determinism contract: every
  // thread count must produce the byte-identical partition, so the recorded
  // per-thread Mcut rows are equal by construction.
  {
    struct Point {
      const char* family;
      int n, k;
      std::int64_t steps;
    };
    const std::vector<Point> points =
        quick ? std::vector<Point>{{"grid", 1024, 32, 3000}}
              : std::vector<Point>{{"grid", 16384, 64, 20000},
                                   {"geometric", 16384, 64, 6000}};
    const std::vector<int> thread_counts =
        quick ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    for (const auto& pt : points) {
      const Family* family = nullptr;
      for (const auto& f : kFamilies) {
        if (std::string_view(f.name) == pt.family) family = &f;
      }
      FFP_CHECK(family != nullptr, "unknown family '", pt.family,
                "' in the threads-axis point table");
      const Graph g = family->make(pt.n, seed);
      std::vector<int> reference;
      for (const int threads : thread_counts) {
        FusionFissionOptions opt;
        opt.seed = seed;
        opt.threads = threads;
        FusionFission ff(g, pt.k, opt);
        double best_value = 0.0;
        const double sec = best_seconds([&] {
          auto res = ff.run(StopCondition::after_steps(pt.steps));
          best_value = res.best_value;
          if (reference.empty()) {
            reference.assign(res.best.assignment().begin(),
                             res.best.assignment().end());
          } else {
            for (VertexId v = 0; v < g.num_vertices(); ++v) {
              FFP_CHECK(reference[static_cast<std::size_t>(v)] ==
                            res.best.assignment()[static_cast<std::size_t>(v)],
                        "batched engine not deterministic across thread "
                        "counts at t=", threads, " vertex ", v);
            }
          }
        });
        record(point_name("ff_e2e_sec", pt.family, g.num_vertices(), pt.k,
                          threads),
               sec, "s");
        record(point_name("ff_e2e_mcut", pt.family, g.num_vertices(), pt.k,
                          threads),
               best_value, "obj");
      }
    }
  }

  // ------------------------------- multilevel×fusion-fission hybrid ------
  // mlff_e2e_*: the coarsen→FF→project+refine pipeline at the sizes pure
  // fusion-fission cannot touch, plus a coarsen_sec axis for the coarsening
  // stage alone. At the n=262144 comparison point the suite also records a
  // pure fusion-fission row under the same step budget — the headline
  // speedup claim (mlff equal-or-better Mcut in a fraction of the wall
  // time) is read directly off these four rows. Points with a threads axis
  // additionally FFP_CHECK the determinism contract: threads=1 and
  // threads=4 must produce the byte-identical partition.
  {
    struct Point {
      const char* family;
      int n, k;
      std::int64_t steps;
      bool check_threads;  // run t=1 and t=4, verify identical partitions
      bool ff_baseline;    // also time pure serial fusion-fission
    };
    const std::vector<Point> points =
        quick ? std::vector<Point>{{"grid", 262144, 64, 4000, true, false}}
              : std::vector<Point>{{"grid", 16384, 64, 20000, true, false},
                                   {"grid", 262144, 64, 20000, true, true},
                                   {"grid", 1000000, 64, 20000, false, false}};
    for (const auto& pt : points) {
      const Family* family = nullptr;
      for (const auto& f : kFamilies) {
        if (std::string_view(f.name) == pt.family) family = &f;
      }
      FFP_CHECK(family != nullptr, "unknown family '", pt.family,
                "' in the mlff point table");
      const Graph g = family->make(pt.n, seed);
      // Large points are timed once — best-of-reps would triple a
      // multi-second measurement for noise rejection the trend lines don't
      // need at this scale.
      const auto measure = [&](auto&& body) {
        return pt.n >= 100000 ? timed_seconds(body) : best_seconds(body);
      };

      {
        CoarsenOptions copt;
        copt.min_vertices = static_cast<int>(std::max<std::int64_t>(
            static_cast<std::int64_t>(pt.k) * 64, g.num_vertices() / 64));
        copt.seed = seed;
        const double sec = measure([&] { coarsen_chain(g, copt); });
        record(point_name("coarsen_sec", pt.family, g.num_vertices()), sec,
               "s");
      }

      std::vector<int> reference;
      for (const int threads : pt.check_threads ? std::vector<int>{1, 4}
                                                : std::vector<int>{1}) {
        MlffOptions opt;
        opt.seed = seed;
        opt.threads = threads;
        double best_value = 0.0;
        const double sec = measure([&] {
          auto res = mlff_partition(g, pt.k, opt,
                                    StopCondition::after_steps(pt.steps));
          best_value = res.best_value;
          if (reference.empty()) {
            reference.assign(res.best.assignment().begin(),
                             res.best.assignment().end());
          } else {
            for (VertexId v = 0; v < g.num_vertices(); ++v) {
              FFP_CHECK(reference[static_cast<std::size_t>(v)] ==
                            res.best.assignment()[static_cast<std::size_t>(v)],
                        "mlff not deterministic across thread counts at t=",
                        threads, " vertex ", v);
            }
          }
        });
        record(point_name("mlff_e2e_sec", pt.family, g.num_vertices(), pt.k,
                          threads),
               sec, "s");
        record(point_name("mlff_e2e_mcut", pt.family, g.num_vertices(), pt.k,
                          threads),
               best_value, "obj");
      }

      if (pt.ff_baseline) {
        FusionFissionOptions opt;
        opt.seed = seed;
        FusionFission ff(g, pt.k, opt);
        double best_value = 0.0;
        const double sec = measure([&] {
          best_value =
              ff.run(StopCondition::after_steps(pt.steps)).best_value;
        });
        record(point_name("ff_e2e_sec", pt.family, g.num_vertices(), pt.k),
               sec, "s");
        record(point_name("ff_e2e_mcut", pt.family, g.num_vertices(), pt.k),
               best_value, "obj");
      }
    }
  }

  // ----------------------------------------------- evolve gain axis ------
  // evolve_*_mcut: best-of-R portfolio quality with and without the elite
  // archive at an EQUAL total step budget. Both modes run `rounds`
  // sequential R-restart portfolios with identical seeds and step budgets;
  // "cold" starts every restart from scratch (archive off), "seeded" lets
  // the archive carry elites across rounds (mutate/crossover seeding).
  // Recorded as min/med/max over the per-round best values, plus the gain
  // (cold min − seeded min; positive means evolution found a better
  // partition for the same work).
  {
    struct Point {
      const char* family;
      int n, k;
      std::int64_t steps;
    };
    const std::vector<Point> points =
        quick ? std::vector<Point>{{"grid", 1024, 8, 600}}
              : std::vector<Point>{{"grid", 2500, 8, 1500},
                                   {"geometric", 2500, 8, 1500}};
    const int rounds = quick ? 3 : 5;
    for (const auto& pt : points) {
      const Family* family = nullptr;
      for (const auto& f : kFamilies) {
        if (std::string_view(f.name) == pt.family) family = &f;
      }
      FFP_CHECK(family != nullptr, "unknown family '", pt.family,
                "' in the evolve point table");
      const Graph g = family->make(pt.n, seed);
      const auto problem = api::Problem::viewing(g);
      const auto run_mode = [&](bool seeded) {
        ThreadBudget budget(1);
        api::EngineOptions options;
        options.budget = &budget;
        options.evolve_capacity = seeded ? 8 : 0;
        api::Engine engine(options);
        std::vector<double> values;
        for (int round = 0; round < rounds; ++round) {
          api::SolveSpec spec;
          spec.k = pt.k;
          spec.seed = seed + static_cast<std::uint64_t>(round);
          spec.steps = pt.steps;
          spec.restarts = 3;
          spec.evolve = seeded;
          values.push_back(engine.solve(problem, spec).best_value);
        }
        std::sort(values.begin(), values.end());
        return values;
      };
      const std::vector<double> cold = run_mode(false);
      const std::vector<double> fed = run_mode(true);
      const auto spread = [&](const char* metric,
                              const std::vector<double>& v) {
        record(point_name((std::string(metric) + "_min").c_str(), pt.family,
                          g.num_vertices(), pt.k),
               v.front(), "obj");
        record(point_name((std::string(metric) + "_med").c_str(), pt.family,
                          g.num_vertices(), pt.k),
               v[v.size() / 2], "obj");
        record(point_name((std::string(metric) + "_max").c_str(), pt.family,
                          g.num_vertices(), pt.k),
               v.back(), "obj");
      };
      spread("evolve_cold_mcut", cold);
      spread("evolve_seeded_mcut", fed);
      record(point_name("evolve_gain_mcut", pt.family, g.num_vertices(),
                        pt.k),
             cold.front() - fed.front(), "obj");
    }
  }

  // ----------------------------------------- service job throughput ------
  // serve_jobs_per_sec: how many small solve jobs the facade completes per
  // second — engine submit + scheduler dispatch + budget leasing + per-job
  // solver construction on top of the raw solve. The job set is fixed and
  // step-budgeted, so the work per job is deterministic; the metric tracks
  // the service overhead trajectory, not solver quality.
  {
    const int n = quick ? 1024 : 2500;
    const int jobs = quick ? 8 : 24;
    const std::int64_t steps = quick ? 300 : 1000;
    const auto g = std::make_shared<const Graph>(grid_of(n, seed));
    const auto problem = api::Problem::from_shared(g);
    const double sec = best_seconds([&] {
      ThreadBudget budget(2);
      api::EngineOptions options;
      options.runners = 2;
      options.budget = &budget;
      api::Engine engine(options);
      for (int i = 0; i < jobs; ++i) {
        api::SolveSpec spec;
        spec.k = 16;
        spec.seed = seed + static_cast<std::uint64_t>(i);
        spec.steps = steps;
        spec.threads = 2;
        engine.submit(problem, spec);
      }
      engine.drain();
    });
    record(point_name("serve_jobs_per_sec", "grid", g->num_vertices(), 16),
           static_cast<double>(jobs) / std::max(sec, 1e-9), "jobs/s");
  }

  // ------------------------------------ contended service throughput ------
  // serve_contended_jobs_per_sec/<mode>/c<clients>: wall-clock throughput
  // of the FULL serving stack — loopback TCP, protocol parse, engine,
  // result cache — under C concurrent client connections, for both
  // transports (thread-per-connection vs the epoll event loop). Each
  // client runs its own distinct spec: one real solve then three repeats,
  // submit→result sequentially, so the cache hit ratio is exactly 0.75 by
  // construction (serve_contended_cache_hit_ratio pins that the cache
  // keeps working under contention; it is not a tunable).
  //
  // Caveat for trend readers: on a single-core or throttled runner the
  // two transports converge — the comparison is about scheduling
  // overhead, which needs real parallelism to show.
  {
    const std::vector<int> fleets =
        quick ? std::vector<int>{8} : std::vector<int>{8, 64, 256};
    constexpr int kJobsPerClient = 4;
    for (const std::string mode : {"thread", "eventloop"}) {
      for (const int clients : fleets) {
        ServiceOptions sopt;
        sopt.runners = 2;
        sopt.cache_capacity = 1024;  // every client's entry stays resident
        ServiceHost host(std::move(sopt));

        std::unique_ptr<TcpServer> tcp;
        std::unique_ptr<EventLoopServer> loop;
        int port = 0;
        // 2x slot slack: a finished client's slot frees only when the
        // server notices its EOF, and on a loaded single core that lags
        // the accept of the last connections — without slack a late
        // client can be shed (a race this axis does not measure).
        const unsigned slots = static_cast<unsigned>(clients) * 2;
        if (mode == "thread") {
          TcpServerOptions topt;
          topt.port = 0;
          topt.max_clients = slots;
          tcp = std::make_unique<TcpServer>(host, std::move(topt));
          port = tcp->port();
        } else {
          EventLoopOptions lopt;
          lopt.port = 0;
          lopt.max_clients = slots;
          loop = std::make_unique<EventLoopServer>(host, std::move(lopt));
          port = loop->port();
        }
        std::thread pump([&] { tcp ? tcp->run() : loop->run(); });

        std::atomic<int> failed{0};
        const auto client_body = [&](int c) {
          try {
            const FdHandle conn = tcp_connect(port);
            LineReader reader(conn);
            reader.set_timeout_ms(120000);
            std::string line;
            for (int j = 0; j < kJobsPerClient; ++j) {
              const std::string id =
                  "c" + std::to_string(c) + "j" + std::to_string(j);
              // Same graph each time; the per-client seed makes the spec
              // — and therefore the cache entry — this client's own.
              write_line(conn,
                         "{\"op\":\"submit\",\"id\":\"" + id +
                             "\",\"graph\":{\"n\":12,\"edges\":[[0,1],[1,2],"
                             "[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],[8,9],"
                             "[9,10],[10,11],[11,0]]},\"k\":3,\"steps\":200,"
                             "\"seed\":" + std::to_string(1000 + c) + "}");
              if (!reader.next(line)) throw Error("unexpected EOF");
              write_line(conn, "{\"op\":\"result\",\"id\":\"" + id + "\"}");
              if (!reader.next(line)) throw Error("unexpected EOF");
            }
          } catch (const std::exception& e) {
            // A throw escaping a std::thread is std::terminate — convert
            // to a counted failure the suite can report structurally.
            failed.fetch_add(1, std::memory_order_relaxed);
            std::fprintf(stderr, "contended client %d failed: %s\n", c,
                         e.what());
          }
        };
        const double sec = timed_seconds([&] {
          std::vector<std::thread> fleet;
          fleet.reserve(static_cast<std::size_t>(clients));
          for (int c = 0; c < clients; ++c) {
            fleet.emplace_back(client_body, c);
          }
          for (auto& t : fleet) t.join();
        });
        if (tcp != nullptr) {
          tcp->request_stop();
        } else {
          loop->request_stop();
        }
        pump.join();
        FFP_CHECK(failed.load() == 0, "contended axis (", mode, ", c",
                  clients, "): ", failed.load(), " client(s) failed");

        const double total = static_cast<double>(clients) * kJobsPerClient;
        const std::string suffix = mode + "/c" + std::to_string(clients);
        record("serve_contended_jobs_per_sec/" + suffix,
               total / std::max(sec, 1e-9), "jobs/s");
        const auto cache = host.engine().cache_counters();
        record("serve_contended_cache_hit_ratio/" + suffix,
               static_cast<double>(cache.hits) /
                   std::max<double>(
                       static_cast<double>(cache.hits + cache.misses), 1.0),
               "ratio");
      }
    }
  }

  // --------------------------------------------- api submit overhead ------
  // api_submit_overhead_sec: per-solve cost of the facade itself, isolated
  // by measuring cache HITS — canonical-spec computation, cache key + LRU
  // lookup, handle construction — with no solver work behind them. This is
  // the tax every repeat tenant pays per request.
  // api_jobs_per_sec: end-to-end facade throughput on small uncached
  // solves (the cache-off sibling of serve_jobs_per_sec at one runner).
  {
    const int n = quick ? 256 : 1024;
    const Graph g = grid_of(n, seed);
    const auto problem = api::Problem::viewing(g);
    ThreadBudget budget(1);

    const int submits = quick ? 500 : 2000;
    api::EngineOptions options;
    options.runners = 1;
    options.budget = &budget;
    options.cache_capacity = 4;
    api::Engine engine(options);
    api::SolveSpec spec;
    spec.k = 4;
    spec.seed = seed;
    spec.steps = 200;
    engine.solve(problem, spec);  // prime the cache
    const double hit_sec = best_seconds([&] {
      for (int i = 0; i < submits; ++i) engine.solve(problem, spec);
    });
    FFP_CHECK(engine.cache_counters().hits >= submits,
              "api_submit_overhead must measure cache hits");
    record(point_name("api_submit_overhead_sec", "grid", g.num_vertices(), 4),
           hit_sec / submits, "s");

    const int jobs = quick ? 16 : 64;
    const double solve_sec = best_seconds([&] {
      api::EngineOptions uncached;
      uncached.runners = 1;
      uncached.budget = &budget;
      api::Engine fresh(uncached);
      for (int i = 0; i < jobs; ++i) {
        api::SolveSpec s;
        s.k = 4;
        s.seed = seed + static_cast<std::uint64_t>(i);
        s.steps = 200;
        fresh.submit(problem, s);
      }
      fresh.drain();
    });
    record(point_name("api_jobs_per_sec", "grid", g.num_vertices(), 4),
           static_cast<double>(jobs) / std::max(solve_sec, 1e-9), "jobs/s");
  }

  table.print(std::cout);
  const std::string out = args.get("out");
  metrics.write_json(out, quick);
  std::printf("\nwrote %zu metrics to %s\n", metrics.values.size(),
              out.c_str());
  return 0;
}
