// The §6 claim: "if fusion fission returns a 32-partition, it returns good
// solutions from 27 to 38 partitions." One FF run targeting k = 32 also
// yields its best-by-part-count curve; this bench prints it against
// independent multilevel runs at each k (the fixed-k tool must be re-run
// per k — the point of the claim).
#include <cstdio>

#include "atc/core_area.hpp"
#include "benchlib/budget.hpp"
#include "core/fusion_fission.hpp"
#include "ffp/api.hpp"
#include "partition/objectives.hpp"

int main() {
  using namespace ffp;
  const double budget = table_budget_ms() * 2.0;

  std::printf("=== k-robustness: one FF run vs per-k multilevel runs ===\n");
  std::printf("FF targets k=32 once (%.1f s); multilevel reruns per k.\n\n",
              budget / 1000.0);

  const auto core = make_core_area_graph();

  // The best-by-part-count curve is a FusionFission-specific output, so
  // this bench drives the algorithm class directly rather than the Solver
  // facade (which returns only the target-k winner).
  FusionFissionOptions opt;
  opt.objective = ObjectiveKind::MinMaxCut;
  opt.seed = bench_seed();
  FusionFission ff(core.graph, 32, opt);
  const auto res = ff.run(StopCondition::after_millis(budget));

  const api::Problem problem = api::Problem::viewing(core.graph);
  std::printf("%4s  %16s  %18s\n", "k", "FF best (1 run)",
              "multilevel (per-k run)");
  for (int k = 27; k <= 38; ++k) {
    api::SolveSpec spec;
    spec.method = "multilevel";
    spec.k = k;
    spec.objective = ObjectiveKind::MinMaxCut;
    spec.seed = bench_seed();
    const double ml_mcut =
        api::Engine::shared().solve(problem, spec).best_value;
    const auto it = res.best_by_part_count.find(k);
    if (it != res.best_by_part_count.end()) {
      std::printf("%4d  %16.2f  %18.2f\n", k, it->second, ml_mcut);
    } else {
      std::printf("%4d  %16s  %18.2f\n", k, "(not visited)", ml_mcut);
    }
  }
  std::printf("\nshape check: FF's single run should cover most of 27..38 "
              "with values\ncompetitive with the per-k multilevel reruns "
              "around the target.\n");
  return 0;
}
