// Reproduction of Table 1 (§6): every method on the core-area graph,
// k = 32, under the three criteria (Cut/1000, Ncut, Mcut).
//
// Protocol (DESIGN.md §5.2): Chaco-family rows minimize Cut once;
// metaheuristic rows run once optimizing Mcut (§5 — "the appropriate
// objective function to use is Mcut") with a wall-clock budget
// (FFP_BENCH_BUDGET_MS, default 6000 ms — the paper gave them tens of
// minutes on a 2006 Pentium 4, so absolute values differ; the *ordering*
// is the result). Every row's single partition is evaluated under all
// three criteria, which reproduces the paper's structure: a Cut-optimized
// metaheuristic without balance constraints would collapse into a
// degenerate low-cut partition no Chaco-style tool would emit.
//
// The paper's own numbers are printed alongside for shape comparison.
#include <cstdio>
#include <iostream>

#include "atc/core_area.hpp"
#include "benchlib/budget.hpp"
#include "benchlib/methods.hpp"
#include "benchlib/table.hpp"
#include "partition/balance.hpp"
#include "util/timer.hpp"

namespace {

struct PaperRow {
  const char* name;
  double cut, ncut, mcut;  // as printed in the paper (cut already /1000)
};

// Table 1 of the paper, verbatim.
constexpr PaperRow kPaperRows[] = {
    {"Linear (Bi)", 274.2, 30.12, 2300.85},
    {"Linear (Bi, KL)", 210.4, 23.35, 89.09},
    {"Linear (Oct, KL)", 216.5, 23.97, 105.16},
    {"Spectral (Lanc, Bi)", 202.0, 22.62, 81.38},
    {"Spectral (Lanc, Bi, KL)", 202.7, 22.62, 120.29},
    {"Spectral (Lanc, Oct)", 201.0, 22.56, 89.89},
    {"Spectral (Lanc, Oct, KL)", 203.1, 22.88, 88.18},
    {"Spectral (RQI, Bi)", 203.2, 22.58, 79.58},
    {"Spectral (RQI, Bi, KL)", 203.0, 22.47, 77.80},
    {"Spectral (RQI, Oct)", 201.6, 22.47, 78.02},
    {"Spectral (RQI, Oct, KL)", 202.4, 22.31, 75.45},
    {"Multilevel (Bi)", 202.1, 22.42, 76.93},
    {"Multilevel (Oct)", 201.7, 22.49, 78.84},
    {"Percolation", 213.7, 23.72, 96.87},
    {"Simulated annealing", 203.9, 22.34, 74.44},
    {"Ant colony", 203.3, 22.30, 74.22},
    {"Fusion Fission", 198.0, 21.83, 69.03},
};

double evaluate(const ffp::Partition& p, ffp::ObjectiveKind kind) {
  return ffp::objective(kind).evaluate(p);
}

}  // namespace

int main() {
  using namespace ffp;
  const double budget = table_budget_ms();
  const std::uint64_t seed = bench_seed();

  std::printf("=== Table 1: comparisons between algorithms ===\n");
  std::printf("graph: synthetic country core area (762 vertices, 3165 "
              "edges); k = 32\n");
  std::printf("metaheuristic budget: %.0f ms per run per criterion "
              "(FFP_BENCH_BUDGET_MS)\n\n",
              budget);

  const auto core = make_core_area_graph();
  const auto methods = table1_methods();

  AsciiTable table({"Method", "Cut/1000", "Ncut", "Mcut", "imb", "sec",
                    "paper Cut", "paper Ncut", "paper Mcut"});
  for (std::size_t i = 0; i < methods.size(); ++i) {
    const auto& m = methods[i];
    MethodContext ctx;
    ctx.k = 32;
    ctx.seed = seed;
    ctx.objective = ObjectiveKind::MinMaxCut;  // metaheuristic rows only
    ctx.budget_ms = budget;
    Partition p(core.graph, 1);
    // One shared clock path (util/timer.hpp) for every reported duration,
    // so this table agrees with the perf-suite JSON.
    const double seconds = timed_seconds([&] { p = m.run(core.graph, ctx); });
    const double cut = evaluate(p, ObjectiveKind::Cut) / 1000.0;
    const double ncut = evaluate(p, ObjectiveKind::NormalizedCut);
    const double mcut = evaluate(p, ObjectiveKind::MinMaxCut);
    const double imb = imbalance(p, 32);
    table.add_row({m.name, fmt1(cut), fmt2(ncut), fmt2(mcut), fmt2(imb),
                   fmt2(seconds), fmt1(kPaperRows[i].cut),
                   fmt2(kPaperRows[i].ncut), fmt2(kPaperRows[i].mcut)});
  }
  table.print(std::cout);

  std::printf("\nshape checks (paper §6):\n");
  std::printf("  - Fusion Fission should lead every criterion among "
              "metaheuristics;\n");
  std::printf("  - metaheuristics should lead Mcut overall; spectral/"
              "multilevel lead Cut among the fast tools;\n");
  std::printf("  - Percolation and Linear (Bi) should trail on the ratio "
              "criteria.\n");
  std::printf("\nabsolute values are not comparable to the paper's: the "
              "graph is a synthetic\nsubstitute for proprietary ENAC data "
              "and budgets are seconds, not tens of\nminutes (see "
              "EXPERIMENTS.md).\n");
  return 0;
}
