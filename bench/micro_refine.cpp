// Microbenchmarks for the refinement and multilevel machinery.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "multilevel/multilevel.hpp"
#include "refine/fm_bisection.hpp"
#include "refine/kl_bisection.hpp"
#include "refine/kway_fm.hpp"
#include "util/rng.hpp"

namespace {

using namespace ffp;

std::vector<int> random_bisection(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> assign(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t i = 0; i < assign.size(); ++i) {
    assign[i] = static_cast<int>(i % 2);
  }
  rng.shuffle(assign);
  return assign;
}

void BM_FmBisection(benchmark::State& state) {
  const auto g = make_grid2d(40, 40);
  const auto base = random_bisection(g, 3);
  for (auto _ : state) {
    auto assign = base;
    auto r = fm_refine_bisection(g, assign, {});
    benchmark::DoNotOptimize(r.final_cut);
  }
}
BENCHMARK(BM_FmBisection);

void BM_KlBisection(benchmark::State& state) {
  const auto g = make_grid2d(24, 24);
  const auto base = random_bisection(g, 5);
  for (auto _ : state) {
    auto p = Partition::from_assignment(g, base, 2);
    auto r = kl_refine_bisection(p, 0, 1);
    benchmark::DoNotOptimize(r.final_cut);
  }
}
BENCHMARK(BM_KlBisection);

void BM_KwayFm(benchmark::State& state) {
  const auto g = make_random_geometric(1200, 0.05, 7);
  Rng seed_rng(9);
  std::vector<int> base(static_cast<std::size_t>(g.num_vertices()));
  for (auto& a : base) a = static_cast<int>(seed_rng.below(16));
  for (auto _ : state) {
    auto p = Partition::from_assignment(g, base, 16);
    Rng rng(11);
    auto r = kway_fm_refine(p, objective(ObjectiveKind::Cut), {}, rng);
    benchmark::DoNotOptimize(r.final_objective);
  }
}
BENCHMARK(BM_KwayFm);

void BM_CoarsenChain(benchmark::State& state) {
  const auto g = make_grid2d(50, 50);
  for (auto _ : state) {
    CoarsenOptions opt;
    opt.min_vertices = 50;
    auto chain = coarsen_chain(g, opt);
    benchmark::DoNotOptimize(chain.size());
  }
}
BENCHMARK(BM_CoarsenChain);

void BM_MultilevelPartition(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto g = make_random_geometric(1500, 0.045, 13);
  for (auto _ : state) {
    MultilevelOptions opt;
    auto p = multilevel_partition(g, k, opt);
    benchmark::DoNotOptimize(p.edge_cut());
  }
}
BENCHMARK(BM_MultilevelPartition)->Arg(8)->Arg(32);

}  // namespace
