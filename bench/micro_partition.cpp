// Microbenchmarks for the hot path of every metaheuristic: Partition::move
// and the objective move deltas.
#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "partition/objectives.hpp"
#include "util/rng.hpp"

namespace {

using namespace ffp;

Partition random_partition(const Graph& g, int k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> assign(static_cast<std::size_t>(g.num_vertices()));
  for (auto& a : assign) a = static_cast<int>(rng.below(k));
  return Partition::from_assignment(g, assign, k);
}

void BM_PartitionMove(benchmark::State& state) {
  const auto g = make_random_geometric(2000, 0.04, 3);
  auto p = random_partition(g, 32, 5);
  Rng rng(7);
  for (auto _ : state) {
    const auto v = static_cast<VertexId>(
        rng.below(static_cast<std::uint64_t>(g.num_vertices())));
    const int t = static_cast<int>(rng.below(32));
    p.move(v, t);
    benchmark::DoNotOptimize(p.total_cut_pairs());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartitionMove);

void BM_MoveDelta(benchmark::State& state) {
  const auto kind = static_cast<ObjectiveKind>(state.range(0));
  const auto g = make_random_geometric(2000, 0.04, 3);
  auto p = random_partition(g, 32, 5);
  const auto& fn = objective(kind);
  Rng rng(9);
  for (auto _ : state) {
    const auto v = static_cast<VertexId>(
        rng.below(static_cast<std::uint64_t>(g.num_vertices())));
    const int t = static_cast<int>(rng.below(32));
    benchmark::DoNotOptimize(fn.move_delta(p, v, t));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MoveDelta)
    ->Arg(static_cast<int>(ObjectiveKind::Cut))
    ->Arg(static_cast<int>(ObjectiveKind::NormalizedCut))
    ->Arg(static_cast<int>(ObjectiveKind::MinMaxCut));

void BM_Evaluate(benchmark::State& state) {
  const auto kind = static_cast<ObjectiveKind>(state.range(0));
  const auto g = make_random_geometric(2000, 0.04, 3);
  const auto p = random_partition(g, 32, 5);
  const auto& fn = objective(kind);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fn.evaluate(p));
  }
}
BENCHMARK(BM_Evaluate)
    ->Arg(static_cast<int>(ObjectiveKind::Cut))
    ->Arg(static_cast<int>(ObjectiveKind::MinMaxCut));

void BM_FromAssignmentRebuild(benchmark::State& state) {
  const auto g = make_grid2d(50, 50);
  Rng rng(11);
  std::vector<int> assign(static_cast<std::size_t>(g.num_vertices()));
  for (auto& a : assign) a = static_cast<int>(rng.below(16));
  for (auto _ : state) {
    auto p = Partition::from_assignment(g, assign, 16);
    benchmark::DoNotOptimize(p.edge_cut());
  }
}
BENCHMARK(BM_FromAssignmentRebuild);

void BM_Connections(benchmark::State& state) {
  const auto g = make_random_geometric(2000, 0.04, 3);
  const auto p = random_partition(g, 32, 5);
  std::vector<std::pair<int, Weight>> conns;
  int q = 0;
  for (auto _ : state) {
    conns.clear();
    p.connections(p.nonempty_parts()[static_cast<std::size_t>(q)], conns);
    q = (q + 1) % p.num_nonempty_parts();
    benchmark::DoNotOptimize(conns.size());
  }
}
BENCHMARK(BM_Connections);

}  // namespace
