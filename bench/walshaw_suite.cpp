// Generality sweep over Walshaw-archive-style graph families (§1 motivates
// partitioning for FE meshes, VLSI, clustering). The archive itself is not
// shipped; the generators reproduce its structural families at laptop scale
// (DESIGN.md §2.3).
//
// Comparison criterion: Mcut (the paper's application criterion) — ratio
// objectives keep the metaheuristics honest, whereas unconstrained Cut
// minimization degenerates into one giant part plus splinters. Imbalance is
// reported alongside. All three columns are solver-registry runs driven by
// one shared request.
#include <cstdio>
#include <string>
#include <vector>

#include "benchlib/budget.hpp"
#include "ffp/api.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "partition/balance.hpp"

namespace {

/// Chung–Lu graphs come out disconnected; splitting off whole components is
/// a trivial Mcut optimum, so benchmark on the giant component instead.
ffp::Graph largest_component(const ffp::Graph& g) {
  const auto comps = ffp::connected_components(g);
  if (comps.count <= 1) return g;
  auto groups = comps.groups();
  std::size_t best = 0;
  for (std::size_t i = 1; i < groups.size(); ++i) {
    if (groups[i].size() > groups[best].size()) best = i;
  }
  return ffp::induced_subgraph(g, groups[best]).graph;
}

}  // namespace

int main() {
  using namespace ffp;
  const double budget = table_budget_ms();
  const int k = 8;

  std::printf("=== Walshaw-style families: Mcut at k=%d "
              "(FF/SA budget %.1fs) ===\n\n",
              k, budget / 1000.0);

  struct Case {
    std::string name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"grid 40x25 (FE mesh)", make_grid2d(40, 25)});
  cases.push_back({"grid3d 12x10x8", make_grid3d(12, 10, 8)});
  cases.push_back({"torus 32x32", make_torus(32, 32)});
  cases.push_back({"geometric n=1000", make_random_geometric(1000, 0.055, 3)});
  cases.push_back({"power-law (giant comp)",
                   largest_component(make_power_law(1000, 6.0, 2.5, 5))});
  cases.push_back(
      {"weighted grid 30x30", with_random_weights(make_grid2d(30, 30), 1.0,
                                                  9.0, 7)});

  const auto& mcut = objective(ObjectiveKind::MinMaxCut);
  std::printf("%-22s %10s | %18s %18s %18s\n", "graph", "n/m",
              "multilevel", "annealing", "fusion-fission");
  for (const auto& c : cases) {
    // One facade spec, three methods: the same pipeline every tool runs.
    const api::Problem problem = api::Problem::viewing(c.graph);
    api::SolveSpec spec;
    spec.k = k;
    spec.objective = ObjectiveKind::MinMaxCut;
    spec.budget_ms = budget;
    spec.seed = bench_seed();
    auto& engine = api::Engine::shared();

    spec.method = "multilevel";
    const auto ml = engine.solve(problem, spec);
    spec.method = "annealing";
    const auto sa = engine.solve(problem, spec);
    spec.method = "fusion_fission";
    const auto ff = engine.solve(problem, spec);

    std::printf(
        "%-22s %4d/%-6lld | %9.3f (i%4.2f) %9.3f (i%4.2f) %9.3f (i%4.2f)\n",
        c.name.c_str(), c.graph.num_vertices(),
        static_cast<long long>(c.graph.num_edges()), mcut.evaluate(ml.best),
        imbalance(ml.best, k), sa.best_value, imbalance(sa.best, k),
        ff.best_value, imbalance(ff.best, k));
  }
  std::printf("\nshape check: multilevel is excellent on its home-turf mesh "
              "instances even under\nMcut; the metaheuristics are "
              "competitive everywhere and win where structure is\n"
              "irregular — the paper's generality argument.\n");
  return 0;
}
